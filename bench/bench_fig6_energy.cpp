// Fig. 6 — normalized execution time and energy consumption of the seven
// Table-II benchmarks under Cilk, Cilk-D and EEWA on the 16-core
// Opteron-8380 machine model. The paper reports everything normalized to
// Cilk; we print the same two series plus absolute values.
//
// Expected shape (paper): EEWA cuts energy 8.7%-29.8% vs Cilk and
// 2.3%-18.4% vs Cilk-D with <= 3.7% slowdown; Cilk-D sits between.
#include <cstdio>
#include <string>

#include "sim/simulate.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

int run(int argc, char** argv) {
  std::size_t batches = 40;
  std::uint64_t seed = 2024;
  bool live_calibration = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--batches" && i + 1 < argc) batches = std::stoul(argv[++i]);
    if (arg == "--seed" && i + 1 < argc) seed = std::stoull(argv[++i]);
    if (arg == "--calibrate") live_calibration = true;
  }

  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;

  const auto cal = live_calibration ? wl::calibrate()
                                    : wl::reference_calibration();

  std::printf(
      "Fig. 6 — normalized exec time & energy, 16 cores, %zu batches "
      "(%s calibration)\n\n",
      batches, live_calibration ? "live host" : "reference");

  util::TablePrinter table({"benchmark", "time cilk", "time cilk-d",
                            "time eewa", "energy cilk", "energy cilk-d",
                            "energy eewa", "eewa energy save",
                            "eewa vs cilk-d"});
  util::CsvWriter csv;
  csv.row({"benchmark", "policy", "time_s", "energy_j", "norm_time",
           "norm_energy"});

  for (const auto& bench : wl::suite()) {
    const auto trace = wl::build_trace(bench, cal, batches, seed);
    sim::CilkPolicy cilk;
    sim::CilkDPolicy cilkd;
    sim::EewaPolicy eewa(trace.class_names);
    const auto a = sim::simulate(trace, cilk, opt);
    const auto d = sim::simulate(trace, cilkd, opt);
    const auto e = sim::simulate(trace, eewa, opt);

    auto norm = [&](double v, double base) { return v / base; };
    table.add(bench.name, 1.0, norm(d.time_s, a.time_s),
              norm(e.time_s, a.time_s), 1.0, norm(d.energy_j, a.energy_j),
              norm(e.energy_j, a.energy_j),
              util::TablePrinter::fixed(
                  100.0 * (1.0 - e.energy_j / a.energy_j), 1) +
                  "%",
              util::TablePrinter::fixed(
                  100.0 * (1.0 - e.energy_j / d.energy_j), 1) +
                  "%");
    for (const auto* r : {&a, &d, &e}) {
      csv.row_values(bench.name, r->policy, r->time_s, r->energy_j,
                     r->time_s / a.time_s, r->energy_j / a.energy_j);
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("CSV:\n%s\n", csv.str().c_str());
  std::printf(
      "Paper's bands: EEWA saves 8.7%%-29.8%% vs Cilk, 2.3%%-18.4%% vs\n"
      "Cilk-D, perf within 3.7%%. See EXPERIMENTS.md for the comparison.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
