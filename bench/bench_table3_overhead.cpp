// Table III — the execution time and the overhead of EEWA's end-of-batch
// adjuster (profile aggregation + CC table + Algorithm 1 + plan) per
// benchmark, and the percentage of the total execution time it costs.
// Also prints the Fig. 3 worked CC-table example with the k-tuple the
// backtracking search selects.
//
// Expected shape (paper): overhead tens of milliseconds per run on 2008
// hardware, always < 2% of execution time. Our adjuster runs on a modern
// host, so absolute overheads are microseconds; the percentage bound is
// the reproducible claim.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/cc_table.hpp"
#include "core/ktuple_search.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulate.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

void fig3_example() {
  const auto cc = core::CCTable::from_matrix(
      {{2, 3, 1, 1}, {4, 6, 2, 2}, {6, 9, 3, 3}, {8, 12, 4, 4}});
  const auto res = core::search_backtracking(cc, 16);
  std::printf("Fig. 3 worked example (4 classes, 4 rungs, 16 cores):\n%s",
              cc.to_string().c_str());
  std::printf("k-tuple: (");
  for (std::size_t i = 0; i < res.tuple.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", res.tuple[i]);
  }
  std::printf(")  cores used: %zu  nodes visited: %zu\n\n",
              res.cores_used, res.nodes_visited);
}

int run(int argc, char** argv) {
  std::size_t batches = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--batches" && i + 1 < argc) {
      batches = std::stoul(argv[++i]);
    }
  }
  fig3_example();

  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;
  const auto cal = wl::reference_calibration();

  std::printf("Table III — execution time and adjuster overhead (%zu "
              "batches)\n\n",
              batches);
  util::TablePrinter table({"benchmark", "exec time (ms)", "overhead (ms)",
                            "overhead %", "searches", "avg nodes"});
  for (const auto& bench : wl::suite()) {
    const auto trace = wl::build_trace(bench, cal, batches, 2024);
    sim::EewaPolicy eewa(trace.class_names);
    const auto res = sim::simulate(trace, eewa, opt);
    double overhead_s = 0.0;
    for (const auto& b : res.batches) overhead_s += b.overhead_s;
    const auto& ctrl = eewa.controller();
    table.add(bench.name, res.time_s * 1e3, overhead_s * 1e3,
              util::TablePrinter::fixed(100.0 * overhead_s / res.time_s, 3) +
                  "%",
              ctrl.batches_completed(),
              ctrl.last_search().nodes_visited);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Paper's bound: overhead < 2%% of execution time for every\n"
      "benchmark (their absolute values: 12.7-48.9 ms on 2.5 GHz K10).\n\n");

  // Observability overhead: the same claim applied to the obs layer.
  // A tracer that is attached but runtime-disabled must not move the
  // makespan — with the deterministic fixed adjuster overhead both runs
  // reproduce the identical simulated timeline, so any drift is a
  // regression in the gating.
  std::printf("Tracing overhead (tracer %s, runtime-disabled):\n",
              obs::EventTracer::kCompiledIn ? "compiled in" : "compiled out");
  const auto trace = wl::build_trace(wl::find_benchmark("MD5"), cal, 10,
                                     2024);
  sim::SimOptions base = opt;
  base.fixed_adjuster_overhead_s = 50e-6;
  double off_s;
  {
    sim::EewaPolicy p(trace.class_names);
    off_s = sim::simulate(trace, p, base).time_s;
  }
  obs::EventTracer tracer(base.cores + 1);
  tracer.set_enabled(false);
  sim::SimOptions with = base;
  with.tracer = &tracer;
  double on_s;
  {
    sim::EewaPolicy p(trace.class_names);
    on_s = sim::simulate(trace, p, with).time_s;
  }
  const double pct = 100.0 * std::abs(on_s - off_s) / off_s;
  std::printf(
      "  makespan without tracer: %.6f s, with disabled tracer: %.6f s\n"
      "  delta: %.4f%% (bound: < 2%%) %s\n",
      off_s, on_s, pct, pct < 2.0 ? "OK" : "EXCEEDED");

  // Idle-path overhead: starved workers back off through yield into a
  // capped (256 us) exponential sleep instead of spinning. The cost to
  // assert on is wakeup latency at the batch barrier: a batch whose
  // critical path is a single long task must finish within 2% of that
  // task's intrinsic duration even with every other worker asleep. Min
  // over a few batches filters external preemption on shared hosts.
  std::printf("\nIdle-path overhead (sleep backoff, 4 workers, 1 task):\n");
  rt::RuntimeOptions ropt;
  ropt.workers = 4;
  ropt.kind = rt::SchedulerKind::kCilk;
  ropt.enable_pmc = false;
  rt::Runtime runtime(ropt);
  const double task_s = 50e-3;
  auto long_task = [task_s] {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(task_s);
    volatile std::uint64_t sink = 0;
    while (std::chrono::steady_clock::now() < until) sink = sink + 1;
  };
  auto one_task_batch = [&] {
    std::vector<rt::TaskDesc> tasks;
    tasks.push_back(rt::TaskDesc{"long", long_task});
    return tasks;
  };
  runtime.run_batch(one_task_batch());  // warmup (threads, slabs, intern)
  double best_s = 1e9;
  for (int rep = 0; rep < 5; ++rep) {
    best_s = std::min(best_s, runtime.run_batch(one_task_batch()));
  }
  const double idle_pct = 100.0 * (best_s - task_s) / task_s;
  std::printf(
      "  intrinsic task: %.3f ms, best batch makespan: %.3f ms\n"
      "  idle overhead: %.4f%% (bound: < 2%%) %s\n",
      task_s * 1e3, best_s * 1e3, idle_pct,
      idle_pct < 2.0 ? "OK" : "EXCEEDED");
  return pct < 2.0 && idle_pct < 2.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
