// Spawn-throughput storm — the scheduler-overhead microbench that anchors
// the repo's perf trajectory. Every task is a node in a binary recursion
// tree: roots are submitted as a batch, every inner node spawn()s two
// children from inside a worker, leaves do (nearly) no work. With task
// bodies this small the measured rate is almost pure runtime overhead —
// interning, task materialization, deque traffic — which is exactly the
// cost EEWA's evaluation assumes is negligible next to task work
// (Table III), so regressions here show up before they can pollute the
// paper-facing numbers.
//
// Usage: bench_spawn_throughput [--iters N] [--workers N] [--depth D]
//                               [--roots R] [--out FILE]
//
// Prints a table (scheduler x spawn mode) and writes a JSON report
// (default BENCH_spawn.json) that is re-parsed with the in-repo
// json_lite parser before the process exits — a malformed report fails
// the run, so CI can trust the artifact.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_lite.hpp"
#include "runtime/runtime.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace eewa;

struct StormConfig {
  std::size_t iters = 5;
  std::size_t workers = 4;
  std::size_t depth = 9;  ///< tree depth; 2^(depth+1)-1 tasks per root
  std::size_t roots = 8;  ///< root tasks submitted per batch
  std::string out = "BENCH_spawn.json";
};

struct StormResult {
  std::string scheduler;
  std::string mode;  ///< "name" (string interning) or "handle"
  std::uint64_t tasks = 0;
  double seconds = 0.0;
  double tasks_per_sec = 0.0;
};

struct TreeCtx {
  rt::Runtime* rt;
  std::atomic<std::uint64_t>* leaves;
};

// By-name spawning: every node pays the class-name lookup, like
// application code that never caches a handle.
void node_by_name(const TreeCtx& ctx, std::uint32_t depth) {
  if (depth == 0) {
    ctx.leaves->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (int child = 0; child < 2; ++child) {
    ctx.rt->spawn("storm_node", [ctx, depth] {
      node_by_name(ctx, depth - 1);
    });
  }
}

// By-handle spawning: the class is interned once per run and spawn takes
// the pre-resolved handle — the steady-state hot path.
void node_by_handle(const TreeCtx& ctx, rt::ClassHandle h,
                    std::uint32_t depth) {
  if (depth == 0) {
    ctx.leaves->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (int child = 0; child < 2; ++child) {
    ctx.rt->spawn(h, [ctx, h, depth] {
      node_by_handle(ctx, h, depth - 1);
    });
  }
}

rt::RuntimeOptions storm_options(rt::SchedulerKind kind,
                                 const StormConfig& cfg) {
  rt::RuntimeOptions opt;
  opt.workers = cfg.workers;
  opt.kind = kind;
  opt.enable_pmc = false;  // keep perf-counter syscalls out of the number
  if (kind == rt::SchedulerKind::kWats) {
    // Two c-groups (F0 and a middle rung) so preference stealing and the
    // cross-group rob path stay on the measured path.
    const std::size_t mid = opt.ladder.size() / 2;
    for (std::size_t w = 0; w < cfg.workers; ++w) {
      opt.fixed_rungs.push_back(w % 2 == 0 ? 0 : mid);
    }
  }
  return opt;
}

StormResult run_storm(rt::SchedulerKind kind, const char* sched_name,
                      bool by_handle, const StormConfig& cfg) {
  rt::Runtime runtime(storm_options(kind, cfg));
  std::atomic<std::uint64_t> leaves{0};
  TreeCtx ctx{&runtime, &leaves};
  const rt::ClassHandle h = runtime.handle("storm_node");

  auto make_roots = [&] {
    std::vector<rt::TaskDesc> tasks;
    tasks.reserve(cfg.roots);
    for (std::size_t r = 0; r < cfg.roots; ++r) {
      if (by_handle) {
        tasks.push_back(rt::TaskDesc{
            "storm_node", [ctx, h, depth = cfg.depth] {
              node_by_handle(ctx, h, static_cast<std::uint32_t>(depth));
            }});
      } else {
        tasks.push_back(rt::TaskDesc{
            "storm_node", [ctx, depth = cfg.depth] {
              node_by_name(ctx, static_cast<std::uint32_t>(depth));
            }});
      }
    }
    return tasks;
  };

  // One warmup batch: grows deque rings, task arenas, and (for EEWA)
  // runs the measurement batch so the timed region is steady state.
  runtime.run_batch(make_roots());

  StormResult res;
  res.scheduler = sched_name;
  res.mode = by_handle ? "handle" : "name";
  for (std::size_t i = 0; i < cfg.iters; ++i) {
    res.seconds += runtime.run_batch(make_roots());
  }
  const std::uint64_t per_root = (1ull << (cfg.depth + 1)) - 1;
  res.tasks = cfg.iters * cfg.roots * per_root;
  const std::uint64_t expect_leaves =
      (cfg.iters + 1) * cfg.roots * (1ull << cfg.depth);
  if (leaves.load() != expect_leaves) {
    std::fprintf(stderr, "%s/%s: leaf count %llu != expected %llu\n",
                 sched_name, res.mode.c_str(),
                 static_cast<unsigned long long>(leaves.load()),
                 static_cast<unsigned long long>(expect_leaves));
    std::exit(1);
  }
  res.tasks_per_sec =
      res.seconds > 0.0 ? static_cast<double>(res.tasks) / res.seconds : 0.0;
  return res;
}

std::string to_json(const StormConfig& cfg,
                    const std::vector<StormResult>& results) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"spawn_throughput\",\n"
     << "  \"workers\": " << cfg.workers << ",\n"
     << "  \"depth\": " << cfg.depth << ",\n"
     << "  \"roots\": " << cfg.roots << ",\n"
     << "  \"iters\": " << cfg.iters << ",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\"scheduler\": \"" << r.scheduler << "\", \"mode\": \""
       << r.mode << "\", \"tasks\": " << r.tasks << ", \"seconds\": "
       << r.seconds << ", \"tasks_per_sec\": " << r.tasks_per_sec << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

int run(int argc, char** argv) {
  StormConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iters" && i + 1 < argc) cfg.iters = std::stoul(argv[++i]);
    if (arg == "--workers" && i + 1 < argc) {
      cfg.workers = std::stoul(argv[++i]);
    }
    if (arg == "--depth" && i + 1 < argc) cfg.depth = std::stoul(argv[++i]);
    if (arg == "--roots" && i + 1 < argc) cfg.roots = std::stoul(argv[++i]);
    if (arg == "--out" && i + 1 < argc) cfg.out = argv[++i];
  }

  const std::uint64_t per_batch =
      cfg.roots * ((1ull << (cfg.depth + 1)) - 1);
  std::printf(
      "Spawn-throughput storm: %zu workers, depth %zu, %zu roots "
      "(%llu tasks/batch), %zu timed batches\n\n",
      cfg.workers, cfg.depth, cfg.roots,
      static_cast<unsigned long long>(per_batch), cfg.iters);

  std::vector<StormResult> results;
  util::TablePrinter table(
      {"scheduler", "spawn mode", "tasks", "time (s)", "tasks/sec"});
  const std::pair<rt::SchedulerKind, const char*> kinds[] = {
      {rt::SchedulerKind::kCilk, "cilk"},
      {rt::SchedulerKind::kCilkD, "cilkd"},
      {rt::SchedulerKind::kWats, "wats"},
      {rt::SchedulerKind::kEewa, "eewa"},
  };
  for (const auto& [kind, name] : kinds) {
    for (const bool by_handle : {false, true}) {
      const auto r = run_storm(kind, name, by_handle, cfg);
      table.add(r.scheduler, r.mode, r.tasks, r.seconds, r.tasks_per_sec);
      results.push_back(r);
    }
  }
  std::printf("%s\n", table.str().c_str());

  const std::string json = to_json(cfg, results);
  try {
    // The report must round-trip through the repo's own parser: an
    // artifact CI cannot parse is a bench bug, not a consumer problem.
    const auto doc = obs::parse_json(json);
    if (doc.at("results").array.size() != results.size()) {
      throw std::runtime_error("result rows went missing");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "BENCH_spawn.json failed validation: %s\n",
                 e.what());
    return 1;
  }
  std::ofstream out(cfg.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  out << json;
  std::printf("report: %s (validated with json_lite)\n", cfg.out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
