// Ablation: heterogeneous (big.LITTLE) machines and per-core-type CC
// planning.
//  (1) Worked example: the big.LITTLE preset flattened into global
//      effective-speed rows, the typed CC table those rows induce
//      (Eq. 1 with the per-row effective slowdown), and the plan
//      Algorithm 1 carves out of it — each c-group confined to its own
//      cluster's core range.
//  (2) EEWA vs WATS showdown on the typed simulator across compute-
//      heavy, memory-heavy and mixed synthetic workloads. WATS runs its
//      fixed asymmetric configuration (every cluster pinned at its top
//      rung); EEWA re-plans per batch over the typed table. Writes
//      BENCH_hetero.json (validated with the in-repo json_lite parser)
//      and fails the run unless (a) every simulation is bitwise
//      reproducible across two runs and (b) EEWA's energy is <= WATS's
//      on at least one scenario — the claim the ISSUE gates on.
//
// Usage: bench_ablation_hetero [--scale-only] [--out FILE]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cc_table.hpp"
#include "core/core_type.hpp"
#include "core/frequency_plan.hpp"
#include "core/ktuple_search.hpp"
#include "obs/json_lite.hpp"
#include "sim/policies.hpp"
#include "sim/simulate.hpp"
#include "trace/synthetic.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace eewa;

// ---- (1) Worked example ----------------------------------------------

void worked_example() {
  std::printf("(1) big.LITTLE flattening and the typed CC table\n\n");
  const auto topo = core::MachineTopology::big_little();

  util::TablePrinter rows({"row", "type", "rung", "GHz", "mips", "eff speed",
                           "slowdown", "active W"});
  for (std::size_t j = 0; j < topo.row_count(); ++j) {
    const auto t = topo.row_type(j);
    const auto r = topo.row_rung(j);
    rows.add(j, topo.type(t).name, r, topo.type(t).ladder.ghz(r),
             util::TablePrinter::fixed(topo.type(t).mips_scale[r], 2),
             util::TablePrinter::fixed(topo.row_speed(j), 2),
             util::TablePrinter::fixed(topo.row_slowdown(j), 3),
             util::TablePrinter::fixed(topo.row_active_w(j), 2));
  }
  std::printf("%s\n", rows.str().c_str());

  // Three classes, heavy to light; the heavy one partly memory-bound.
  std::vector<core::ClassProfile> classes = {{0, "heavy", 6, 1.0, 1.2},
                                             {1, "mid", 8, 0.5, 0.6},
                                             {2, "light", 12, 0.2, 0.3}};
  classes[0].mean_alpha = 0.5;
  const double T = 3.0;
  const auto cc = core::CCTable::build_typed(classes, topo, T);
  const auto cc_mem = core::CCTable::build_typed(classes, topo, T, true);

  util::TablePrinter ccp({"row", "heavy", "heavy (mem-aware)", "mid",
                          "light"});
  for (std::size_t j = 0; j < cc.rows(); ++j) {
    ccp.add(j, util::TablePrinter::fixed(cc.at(j, 0), 3),
            util::TablePrinter::fixed(cc_mem.at(j, 0), 3),
            util::TablePrinter::fixed(cc.at(j, 1), 3),
            util::TablePrinter::fixed(cc.at(j, 2), 3));
  }
  std::printf("%s\n", ccp.str().c_str());
  std::printf(
      "the memory-aware column grows slower down the rows: a half\n"
      "memory-bound class keeps alpha of its F0 demand at every speed.\n\n");

  const std::size_t m = topo.total_cores();
  const auto res = core::search_pruned(cc, m);
  if (!res.found) {
    std::printf("no feasible tuple at T=%.2f\n\n", T);
    return;
  }
  const auto plan = core::make_frequency_plan(
      cc, res, m, topo.type(0).ladder, cc.cols());
  std::printf("pruned tuple (global rows): (");
  for (std::size_t i = 0; i < res.tuple.size(); ++i) {
    std::printf("%s%zu", i ? "," : "", res.tuple[i]);
  }
  std::printf(")  modeled energy %.2f J\n\n",
              core::tuple_energy_estimate(cc, res.tuple, m));

  util::TablePrinter groups({"c-group", "type", "rung", "cores"});
  for (std::size_t g = 0; g < plan.layout.group_count(); ++g) {
    const auto& grp = plan.layout.group(g);
    std::string cores;
    for (const auto c : grp.cores) {
      cores += (cores.empty() ? "" : ",") + std::to_string(c);
    }
    groups.add(g, topo.type(grp.core_type).name, grp.freq_index, cores);
  }
  std::printf("%s\n", groups.str().c_str());
  std::printf(
      "every c-group stays inside its cluster's core range; leftovers\n"
      "park at their own cluster's slowest rung.\n\n");
}

// ---- (2) EEWA vs WATS on the typed simulator -------------------------

struct Scenario {
  std::string name;
  trace::SyntheticSpec spec;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  {
    trace::SyntheticSpec s;
    s.name = "compute-heavy";
    s.classes = {{"crunch", 10, 600e-6, 0.25, 0.0, 0.0},
                 {"tick", 24, 120e-6, 0.25, 0.0, 0.0}};
    s.batches = 12;
    s.seed = 11;
    out.push_back({s.name, s});
  }
  {
    trace::SyntheticSpec s;
    s.name = "memory-heavy";
    s.classes = {{"stream", 10, 600e-6, 0.25, 0.06, 0.7},
                 {"gather", 24, 120e-6, 0.25, 0.05, 0.6}};
    s.batches = 12;
    s.seed = 12;
    out.push_back({s.name, s});
  }
  {
    trace::SyntheticSpec s;
    s.name = "mixed";
    s.classes = {{"crunch", 10, 600e-6, 0.25, 0.0, 0.0},
                 {"stream", 16, 250e-6, 0.25, 0.06, 0.7},
                 {"tick", 24, 80e-6, 0.25, 0.01, 0.1}};
    s.batches = 12;
    s.seed = 13;
    out.push_back({s.name, s});
  }
  return out;
}

struct RunStats {
  double time_s = 0.0;
  double energy_j = 0.0;
};

struct ScenarioRow {
  std::string name;
  RunStats eewa;
  RunStats wats;
  RunStats cilk;
  bool reproducible = true;
};

RunStats run_eewa(const trace::TaskTrace& trace, const sim::SimOptions& opt) {
  core::ControllerOptions copts;
  copts.adjuster.memory_aware = true;
  sim::EewaPolicy policy(trace.class_names, copts);
  const auto r = sim::simulate(trace, policy, opt);
  return {r.time_s, r.energy_j};
}

RunStats run_wats(const trace::TaskTrace& trace, const sim::SimOptions& opt) {
  // WATS's fixed asymmetric configuration: every cluster pinned at its
  // top rung — the asymmetry comes from the topology itself.
  sim::WatsPolicy policy(std::vector<std::size_t>(opt.cores, 0),
                         trace.class_names);
  const auto r = sim::simulate(trace, policy, opt);
  return {r.time_s, r.energy_j};
}

RunStats run_cilk(const trace::TaskTrace& trace, const sim::SimOptions& opt) {
  const auto r = sim::simulate_named(trace, "cilk", opt);
  return {r.time_s, r.energy_j};
}

bool bitwise_equal(const RunStats& a, const RunStats& b) {
  return a.time_s == b.time_s && a.energy_j == b.energy_j;
}

int showdown(const std::string& out_file) {
  std::printf("(2) EEWA vs WATS on the big.LITTLE preset (8 cores)\n\n");
  const auto topo = std::make_shared<const core::MachineTopology>(
      core::MachineTopology::big_little());
  sim::SimOptions opt;
  opt.cores = topo->total_cores();
  opt.topology = topo;
  opt.seed = 42;
  // Charge a fixed per-batch adjuster overhead instead of the measured
  // wall-clock plan latency — the bitwise-reproducibility gate below
  // cannot hold against host timing noise.
  opt.fixed_adjuster_overhead_s = 50e-6;

  std::vector<ScenarioRow> rows;
  for (const auto& sc : scenarios()) {
    const auto trace = trace::generate(sc.spec);
    ScenarioRow row;
    row.name = sc.name;
    row.eewa = run_eewa(trace, opt);
    row.wats = run_wats(trace, opt);
    row.cilk = run_cilk(trace, opt);
    // Bitwise reproducibility: rebuild each policy and rerun.
    row.reproducible = bitwise_equal(row.eewa, run_eewa(trace, opt)) &&
                       bitwise_equal(row.wats, run_wats(trace, opt)) &&
                       bitwise_equal(row.cilk, run_cilk(trace, opt));
    rows.push_back(std::move(row));
  }

  util::TablePrinter table({"scenario", "eewa E (J)", "wats E (J)",
                            "cilk E (J)", "eewa/wats", "eewa t/wats t",
                            "bitwise x2"});
  std::size_t eewa_wins = 0;
  bool all_reproducible = true;
  for (const auto& row : rows) {
    const bool win = row.eewa.energy_j <= row.wats.energy_j;
    eewa_wins += win ? 1 : 0;
    all_reproducible = all_reproducible && row.reproducible;
    table.add(row.name, util::TablePrinter::fixed(row.eewa.energy_j, 4),
              util::TablePrinter::fixed(row.wats.energy_j, 4),
              util::TablePrinter::fixed(row.cilk.energy_j, 4),
              util::TablePrinter::fixed(
                  row.eewa.energy_j / row.wats.energy_j, 3),
              util::TablePrinter::fixed(row.eewa.time_s / row.wats.time_s, 3),
              row.reproducible ? "yes" : "NO");
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "WATS holds both clusters at their top rung; EEWA trades makespan\n"
      "slack for down-clocked c-groups per cluster. Memory-heavy mixes\n"
      "narrow the gap: stalled cycles make high rungs cheap to leave but\n"
      "the gate can fall back to measurement-mode placement.\n\n");

  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"hetero_showdown\",\n"
     << "  \"preset\": \"big_little\",\n"
     << "  \"cores\": " << opt.cores << ",\n"
     << "  \"eewa_wins\": " << eewa_wins << ",\n"
     << "  \"reproducible\": " << (all_reproducible ? "true" : "false")
     << ",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "    {\"scenario\": \"" << r.name << "\", \"eewa_energy_j\": "
       << r.eewa.energy_j << ", \"wats_energy_j\": " << r.wats.energy_j
       << ", \"cilk_energy_j\": " << r.cilk.energy_j << ", \"eewa_time_s\": "
       << r.eewa.time_s << ", \"wats_time_s\": " << r.wats.time_s
       << ", \"bitwise\": " << (r.reproducible ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  const std::string json = os.str();
  try {
    const auto doc = obs::parse_json(json);
    if (doc.at("results").array.size() != rows.size()) {
      throw std::runtime_error("result rows went missing");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s failed validation: %s\n", out_file.c_str(),
                 e.what());
    return 1;
  }
  std::ofstream out(out_file);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_file.c_str());
    return 1;
  }
  out << json;
  std::printf("report: %s (validated with json_lite)\n", out_file.c_str());

  if (!all_reproducible) {
    std::fprintf(stderr, "simulations were not bitwise reproducible\n");
    return 1;
  }
  if (eewa_wins == 0) {
    std::fprintf(stderr,
                 "EEWA beat WATS's energy on no scenario (expected >= 1)\n");
    return 1;
  }
  std::printf("EEWA energy <= WATS on %zu/%zu scenarios; all runs bitwise "
              "reproducible\n",
              eewa_wins, rows.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool scale_only = false;
  std::string out_file = "BENCH_hetero.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale-only") scale_only = true;
    if (arg == "--out" && i + 1 < argc) out_file = argv[++i];
  }
  if (!scale_only) worked_example();
  return showdown(out_file);
}
