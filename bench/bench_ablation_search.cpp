// Ablation: design choices of the workload-aware frequency adjuster.
//  (1) Search algorithm: the paper's backtracking vs the exhaustive
//      optimum vs a no-backtracking greedy descent — solution quality
//      (modeled energy) and search effort on the real benchmarks' CC
//      instances.
//  (2) Leftover-core policy: park unclaimed cores at the bottom rung
//      (our default, matching Fig. 8) vs merging them into the slowest
//      selected c-group.
//  (3) Planning margin: end-to-end energy/time as the safety margin on
//      the ideal time T sweeps from 0 (the paper's exact formula) up.
//  (4) Production scale: plan latency per searcher on seeded r=16 /
//      k=256 tables — the regime the pruned/DP search exists for.
//      Writes BENCH_search.json (validated with the in-repo json_lite
//      parser before the process exits) and, under --budget-us, fails
//      the run when the pruned median exceeds the budget so CI can gate
//      on plan latency directly.
//
// Usage: bench_ablation_search [--scale-only] [--budget-us U]
//                              [--tables N] [--reps R] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/adjuster.hpp"
#include "obs/json_lite.hpp"
#include "sim/simulate.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

void search_quality() {
  std::printf("(1) Search algorithm quality on per-benchmark CC tables\n\n");
  const auto cal = wl::reference_calibration();
  const auto model = energy::PowerModel::opteron8380_server();
  util::TablePrinter table({"benchmark", "bt tuple", "bt energy",
                            "exhaustive energy", "greedy found",
                            "bt nodes", "exh nodes"});
  for (const auto& bench : wl::suite()) {
    // Build the CC instance EEWA actually faces: profile of batch 0.
    const auto trace = wl::build_trace(bench, cal, 2, 2024);
    core::TaskClassRegistry reg;
    std::vector<std::size_t> ids;
    for (const auto& name : trace.class_names) ids.push_back(reg.intern(name));
    for (const auto& t : trace.batches[0].tasks) {
      reg.record(ids[t.class_id], t.work_s);
    }
    // Ideal time: total work over 16 cores at 60% utilization.
    const double T = trace.batches[0].total_work_s() / (16.0 * 0.6);
    const auto cc =
        core::CCTable::build(reg.iteration_profile(), model.ladder(), T);

    const auto bt = core::search_backtracking(cc, 16);
    const auto ex = core::search_exhaustive(cc, 16, &model);
    const auto gr = core::search_greedy(cc, 16);
    std::string tuple = "(";
    for (std::size_t i = 0; bt.found && i < bt.tuple.size(); ++i) {
      tuple += (i ? "," : "") + std::to_string(bt.tuple[i]);
    }
    tuple += ")";
    table.add(bench.name, tuple,
              bt.found ? core::tuple_energy_estimate(cc, bt.tuple, 16, &model)
                       : -1.0,
              ex.found ? core::tuple_energy_estimate(cc, ex.tuple, 16, &model)
                       : -1.0,
              gr.found ? "yes" : "no", bt.nodes_visited, ex.nodes_visited);
  }
  std::printf("%s\n", table.str().c_str());
}

void leftover_policy() {
  std::printf("(2) Leftover-core policy, end to end (MD5, 16 cores)\n\n");
  const auto cal = wl::reference_calibration();
  const auto trace =
      wl::build_trace(wl::find_benchmark("MD5"), cal, 30, 2024);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;
  util::TablePrinter table({"policy", "time (s)", "energy (J)"});
  for (const auto leftover : {core::LeftoverPolicy::kParkAtSlowest,
                              core::LeftoverPolicy::kJoinSlowest}) {
    core::ControllerOptions copts;
    copts.adjuster.leftover = leftover;
    sim::EewaPolicy eewa(trace.class_names, copts);
    const auto res = sim::simulate(trace, eewa, opt);
    table.add(leftover == core::LeftoverPolicy::kParkAtSlowest
                  ? "park at slowest rung (default)"
                  : "join slowest selected group",
              res.time_s, res.energy_j);
  }
  std::printf("%s\n", table.str().c_str());
}

void margin_sweep() {
  std::printf("(3) Planning margin sweep (LZW, 16 cores)\n\n");
  const auto cal = wl::reference_calibration();
  const auto trace =
      wl::build_trace(wl::find_benchmark("LZW"), cal, 30, 2024);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;
  sim::CilkPolicy cilk;
  const auto base = sim::simulate(trace, cilk, opt);
  util::TablePrinter table(
      {"margin", "time vs cilk", "energy vs cilk"});
  for (const double margin : {0.0, 0.05, 0.10, 0.15, 0.25, 0.40}) {
    core::ControllerOptions copts;
    copts.adjuster.time_margin = margin;
    sim::EewaPolicy eewa(trace.class_names, copts);
    const auto res = sim::simulate(trace, eewa, opt);
    table.add(margin,
              util::TablePrinter::fixed(res.time_s / base.time_s, 3),
              util::TablePrinter::fixed(res.energy_j / base.energy_j, 3));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "margin 0 is the paper's exact formula; small margins absorb the\n"
      "inter-batch drift, large margins forfeit savings.\n");
}

// ---- (4) Production-scale plan latency -------------------------------

struct ScaleConfig {
  bool scale_only = false;
  std::size_t rungs = 16;
  std::size_t classes = 256;
  std::size_t cores = 256;
  std::size_t tables = 12;  ///< distinct seeded CC instances
  std::size_t reps = 5;     ///< timed plans per table per searcher
  double budget_us = 0.0;   ///< >0: fail if pruned median exceeds it
  std::string out = "BENCH_search.json";
};

/// One seeded production-scale CC instance: a 16-rung ladder and a
/// heavy-tailed class mix (a few dominant classes, a long tail of light
/// ones — the shape SlidingProfile hands the service-mode planner), with
/// T picked so the table is tight but feasible at F0.
core::CCTable make_scale_table(const ScaleConfig& cfg, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<core::ClassProfile> classes(cfg.classes);
  double total_work = 0.0;
  for (std::size_t i = 0; i < cfg.classes; ++i) {
    auto& c = classes[i];
    c.class_id = i;
    c.name = "c" + std::to_string(i);
    c.count = 1 + static_cast<std::size_t>(rng.bounded(64));
    // Lognormal-ish spread over ~3 decades.
    c.mean_workload = 0.001 * std::exp(rng.uniform(0.0, 6.0));
    c.max_workload = c.mean_workload * (1.0 + rng.uniform());
    c.mean_alpha = 0.0;
    total_work += c.total_workload();
  }
  std::sort(classes.begin(), classes.end(), [](const auto& a, const auto& b) {
    return a.mean_workload > b.mean_workload;
  });
  const double util = rng.uniform(0.55, 0.85);
  const double T = total_work / (static_cast<double>(cfg.cores) * util);
  const auto ladder = dvfs::FrequencyLadder::linear(0.8, 3.2, cfg.rungs);
  return core::CCTable::build(std::move(classes), ladder, T);
}

struct ScaleRow {
  std::string search;
  std::size_t found = 0;       ///< tables where a tuple was found
  double mean_nodes = 0.0;     ///< Select() calls per plan
  double energy_vs_pruned = 0.0;  ///< geometric-mean energy ratio
  util::Summary us;            ///< per-plan latency, microseconds
};

int scale_sweep(const ScaleConfig& cfg) {
  std::printf(
      "(4) Production-scale plan latency: r=%zu, k=%zu, m=%zu "
      "(%zu tables x %zu reps)\n\n",
      cfg.rungs, cfg.classes, cfg.cores, cfg.tables, cfg.reps);

  // Exhaustive enumerates r^k tuples — not even startable at this scale,
  // so the ground-truth role falls to the budgeted backtracking descent.
  struct Algo {
    const char* name;
    core::SearchResult (*run)(const core::CCTable&, std::size_t);
  };
  const Algo algos[] = {
      {"backtracking",
       [](const core::CCTable& cc, std::size_t m) {
         return core::search_backtracking(cc, m, core::kIncumbentNodeBudget);
       }},
      {"greedy",
       [](const core::CCTable& cc, std::size_t m) {
         return core::search_greedy(cc, m);
       }},
      {"pruned",
       [](const core::CCTable& cc, std::size_t m) {
         return core::search_pruned(cc, m);
       }},
  };

  std::vector<core::CCTable> tables;
  for (std::size_t t = 0; t < cfg.tables; ++t) {
    tables.push_back(make_scale_table(cfg, 0x5eedULL + t));
  }
  // Per-table pruned energy, the quality baseline for the ratio column.
  std::vector<double> pruned_energy(cfg.tables, 0.0);

  std::vector<ScaleRow> rows;
  for (const auto& algo : algos) {
    ScaleRow row;
    row.search = algo.name;
    std::vector<double> us;
    double log_ratio_sum = 0.0;
    std::size_t ratio_n = 0;
    std::uint64_t nodes = 0;
    for (std::size_t t = 0; t < cfg.tables; ++t) {
      core::SearchResult res;
      for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        res = algo.run(tables[t], cfg.cores);
        const auto t1 = std::chrono::steady_clock::now();
        us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
      nodes += res.nodes_visited;
      if (res.found) {
        ++row.found;
        const double e =
            core::tuple_energy_estimate(tables[t], res.tuple, cfg.cores);
        if (row.search == "pruned") pruned_energy[t] = e;
        if (pruned_energy[t] > 0.0 && e > 0.0) {
          log_ratio_sum += std::log(e / pruned_energy[t]);
          ++ratio_n;
        }
      }
    }
    row.us = util::summarize(us);
    row.mean_nodes =
        static_cast<double>(nodes) / static_cast<double>(cfg.tables);
    row.energy_vs_pruned =
        ratio_n ? std::exp(log_ratio_sum / static_cast<double>(ratio_n))
                : 0.0;
    rows.push_back(std::move(row));
  }
  // The pruned baseline is filled while iterating, so the earlier
  // backtracking pass could not compute its ratio — redo it now.
  for (auto& row : rows) {
    if (row.search == "pruned" || row.energy_vs_pruned > 0.0) continue;
    double log_ratio_sum = 0.0;
    std::size_t ratio_n = 0;
    for (std::size_t t = 0; t < cfg.tables; ++t) {
      // One un-timed rerun per table; the searches are deterministic.
      for (const auto& algo : algos) {
        if (row.search != algo.name) continue;
        const auto res = algo.run(tables[t], cfg.cores);
        if (res.found && pruned_energy[t] > 0.0) {
          const double e =
              core::tuple_energy_estimate(tables[t], res.tuple, cfg.cores);
          log_ratio_sum += std::log(e / pruned_energy[t]);
          ++ratio_n;
        }
      }
    }
    row.energy_vs_pruned =
        ratio_n ? std::exp(log_ratio_sum / static_cast<double>(ratio_n))
                : 0.0;
  }

  util::TablePrinter table({"search", "median (us)", "p95 (us)", "max (us)",
                            "found", "mean nodes", "energy vs pruned"});
  for (const auto& row : rows) {
    table.add(row.search, util::TablePrinter::fixed(row.us.median, 1),
              util::TablePrinter::fixed(row.us.p95, 1),
              util::TablePrinter::fixed(row.us.max, 1),
              std::to_string(row.found) + "/" + std::to_string(cfg.tables),
              row.mean_nodes,
              row.energy_vs_pruned > 0.0
                  ? util::TablePrinter::fixed(row.energy_vs_pruned, 4)
                  : std::string("-"));
  }
  std::printf("%s\n", table.str().c_str());

  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"search_scale\",\n"
     << "  \"rungs\": " << cfg.rungs << ",\n"
     << "  \"classes\": " << cfg.classes << ",\n"
     << "  \"cores\": " << cfg.cores << ",\n"
     << "  \"tables\": " << cfg.tables << ",\n"
     << "  \"reps\": " << cfg.reps << ",\n"
     << "  \"budget_us\": " << cfg.budget_us << ",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "    {\"search\": \"" << r.search << "\", \"median_us\": "
       << r.us.median << ", \"p95_us\": " << r.us.p95 << ", \"max_us\": "
       << r.us.max << ", \"found\": " << r.found << ", \"mean_nodes\": "
       << r.mean_nodes << ", \"energy_vs_pruned\": " << r.energy_vs_pruned
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  const std::string json = os.str();
  try {
    // Round-trip through the repo's own parser: an artifact CI cannot
    // parse is a bench bug, not a consumer problem.
    const auto doc = obs::parse_json(json);
    if (doc.at("results").array.size() != rows.size()) {
      throw std::runtime_error("result rows went missing");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s failed validation: %s\n", cfg.out.c_str(),
                 e.what());
    return 1;
  }
  std::ofstream out(cfg.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  out << json;
  std::printf("report: %s (validated with json_lite)\n", cfg.out.c_str());

  if (cfg.budget_us > 0.0) {
    for (const auto& row : rows) {
      if (row.search != "pruned") continue;
      if (row.us.median > cfg.budget_us) {
        std::fprintf(stderr,
                     "pruned median %.1f us exceeds budget %.1f us\n",
                     row.us.median, cfg.budget_us);
        return 1;
      }
      std::printf("pruned median %.1f us within budget %.1f us\n",
                  row.us.median, cfg.budget_us);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ScaleConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale-only") cfg.scale_only = true;
    if (arg == "--budget-us" && i + 1 < argc) {
      cfg.budget_us = std::stod(argv[++i]);
    }
    if (arg == "--tables" && i + 1 < argc) cfg.tables = std::stoul(argv[++i]);
    if (arg == "--reps" && i + 1 < argc) cfg.reps = std::stoul(argv[++i]);
    if (arg == "--out" && i + 1 < argc) cfg.out = argv[++i];
  }
  if (!cfg.scale_only) {
    search_quality();
    leftover_policy();
    margin_sweep();
  }
  return scale_sweep(cfg);
}
