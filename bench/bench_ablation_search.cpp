// Ablation: design choices of the workload-aware frequency adjuster.
//  (1) Search algorithm: the paper's backtracking vs the exhaustive
//      optimum vs a no-backtracking greedy descent — solution quality
//      (modeled energy) and search effort on the real benchmarks' CC
//      instances.
//  (2) Leftover-core policy: park unclaimed cores at the bottom rung
//      (our default, matching Fig. 8) vs merging them into the slowest
//      selected c-group.
//  (3) Planning margin: end-to-end energy/time as the safety margin on
//      the ideal time T sweeps from 0 (the paper's exact formula) up.
#include <cstdio>

#include "core/adjuster.hpp"
#include "sim/simulate.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

void search_quality() {
  std::printf("(1) Search algorithm quality on per-benchmark CC tables\n\n");
  const auto cal = wl::reference_calibration();
  const auto model = energy::PowerModel::opteron8380_server();
  util::TablePrinter table({"benchmark", "bt tuple", "bt energy",
                            "exhaustive energy", "greedy found",
                            "bt nodes", "exh nodes"});
  for (const auto& bench : wl::suite()) {
    // Build the CC instance EEWA actually faces: profile of batch 0.
    const auto trace = wl::build_trace(bench, cal, 2, 2024);
    core::TaskClassRegistry reg;
    std::vector<std::size_t> ids;
    for (const auto& name : trace.class_names) ids.push_back(reg.intern(name));
    for (const auto& t : trace.batches[0].tasks) {
      reg.record(ids[t.class_id], t.work_s);
    }
    // Ideal time: total work over 16 cores at 60% utilization.
    const double T = trace.batches[0].total_work_s() / (16.0 * 0.6);
    const auto cc =
        core::CCTable::build(reg.iteration_profile(), model.ladder(), T);

    const auto bt = core::search_backtracking(cc, 16);
    const auto ex = core::search_exhaustive(cc, 16, &model);
    const auto gr = core::search_greedy(cc, 16);
    std::string tuple = "(";
    for (std::size_t i = 0; bt.found && i < bt.tuple.size(); ++i) {
      tuple += (i ? "," : "") + std::to_string(bt.tuple[i]);
    }
    tuple += ")";
    table.add(bench.name, tuple,
              bt.found ? core::tuple_energy_estimate(cc, bt.tuple, 16, &model)
                       : -1.0,
              ex.found ? core::tuple_energy_estimate(cc, ex.tuple, 16, &model)
                       : -1.0,
              gr.found ? "yes" : "no", bt.nodes_visited, ex.nodes_visited);
  }
  std::printf("%s\n", table.str().c_str());
}

void leftover_policy() {
  std::printf("(2) Leftover-core policy, end to end (MD5, 16 cores)\n\n");
  const auto cal = wl::reference_calibration();
  const auto trace =
      wl::build_trace(wl::find_benchmark("MD5"), cal, 30, 2024);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;
  util::TablePrinter table({"policy", "time (s)", "energy (J)"});
  for (const auto leftover : {core::LeftoverPolicy::kParkAtSlowest,
                              core::LeftoverPolicy::kJoinSlowest}) {
    core::ControllerOptions copts;
    copts.adjuster.leftover = leftover;
    sim::EewaPolicy eewa(trace.class_names, copts);
    const auto res = sim::simulate(trace, eewa, opt);
    table.add(leftover == core::LeftoverPolicy::kParkAtSlowest
                  ? "park at slowest rung (default)"
                  : "join slowest selected group",
              res.time_s, res.energy_j);
  }
  std::printf("%s\n", table.str().c_str());
}

void margin_sweep() {
  std::printf("(3) Planning margin sweep (LZW, 16 cores)\n\n");
  const auto cal = wl::reference_calibration();
  const auto trace =
      wl::build_trace(wl::find_benchmark("LZW"), cal, 30, 2024);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;
  sim::CilkPolicy cilk;
  const auto base = sim::simulate(trace, cilk, opt);
  util::TablePrinter table(
      {"margin", "time vs cilk", "energy vs cilk"});
  for (const double margin : {0.0, 0.05, 0.10, 0.15, 0.25, 0.40}) {
    core::ControllerOptions copts;
    copts.adjuster.time_margin = margin;
    sim::EewaPolicy eewa(trace.class_names, copts);
    const auto res = sim::simulate(trace, eewa, opt);
    table.add(margin,
              util::TablePrinter::fixed(res.time_s / base.time_s, 3),
              util::TablePrinter::fixed(res.energy_j / base.energy_j, 3));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "margin 0 is the paper's exact formula; small margins absorb the\n"
      "inter-batch drift, large margins forfeit savings.\n");
}

}  // namespace

int main() {
  search_quality();
  leftover_policy();
  margin_sweep();
  return 0;
}
