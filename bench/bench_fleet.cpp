// Fleet placement bench — the consolidation story in numbers.
//
// One seeded open-loop arrival stream (>= 10M offered tasks across
// >= 64 machines by default) run through sim::Fleet once per placement
// policy (round-robin, least-loaded, pack-and-park). Reports offered /
// completed counts, fleet energy, park/wake ledgers, powered vs parked
// machine-seconds and the wall clock per run, then *asserts* the
// contract the placement tier exists for:
//
//   * scale: the stream offers >= --min-offered tasks (default 10M)
//     over >= --min-machines machines (default 64), and every run
//     finishes inside --budget-s of wall clock;
//   * conservation: every routed task completes, nothing is shed;
//   * energy ordering: pack-and-park spends less fleet energy than
//     round-robin on the identical stream.
//
// Usage: bench_fleet [--machines N] [--cores N] [--duration S]
//                    [--load L] [--epoch S] [--seed N] [--budget-s S]
//                    [--min-offered N] [--min-machines N]
//                    [--threads N] [--min-speedup X]
//                    [--scale-only] [--out FILE]
//
// --scale-only skips the least-loaded row (CI gate mode: the scale and
// energy-ordering assertions only need pack and round-robin).
//
// With --threads != 1 every placement runs twice — serial, then on N
// worker threads (0 = hardware concurrency) — the two FleetReports are
// asserted bit-identical, and the JSON gains serial wall time and the
// serial/parallel speedup. --min-speedup X turns the speedup into a
// contract (default 0: report-only, since shared CI runners can't
// promise cores; the dev-box contract is >= 4x at --threads 8).
//
// Writes BENCH_fleet.json, re-parsed with the in-repo json_lite parser
// before exit — a malformed artifact fails the run.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_lite.hpp"
#include "sim/fleet.hpp"
#include "trace/arrivals.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace eewa;

struct Config {
  std::size_t machines = 64;
  std::size_t cores = 16;
  double duration_s = 3.5;  ///< 3.2M tasks/s at the default mix => ~11.2M
  double load = 0.5;
  double mean_work_us = 100.0;
  double epoch_s = 0.02;
  std::uint64_t seed = 1;
  double budget_s = 60.0;  ///< wall-clock ceiling per placement run
  std::size_t min_offered = 10'000'000;
  std::size_t min_machines = 64;
  std::size_t threads = 1;   ///< 1 = serial only; else serial + parallel
  double min_speedup = 0.0;  ///< 0 = report speedup, don't gate on it
  bool scale_only = false;
  std::string out = "BENCH_fleet.json";
};

struct Row {
  std::string placement;
  obs::FleetReport rep;
  double wall_s = 0.0;         ///< the headline run (parallel when enabled)
  double serial_wall_s = 0.0;  ///< 0 when no serial reference ran
  double speedup = 0.0;        ///< serial_wall_s / wall_s, 0 when serial-only
  double tasks_per_sec = 0.0;  ///< simulated (offered) tasks per wall-second
};

trace::ArrivalSpec fleet_spec(const Config& cfg) {
  trace::ArrivalSpec arr;
  arr.name = "bench_fleet";
  arr.seed = cfg.seed;
  arr.cores = cfg.machines * cfg.cores;
  arr.duration_s = cfg.duration_s;
  arr.load = cfg.load;
  trace::ArrivalClassSpec light;
  light.name = "light";
  light.weight = 1.0;
  light.mean_work_s = cfg.mean_work_us * 1e-6;
  light.cv = 0.3;
  trace::ArrivalClassSpec heavy;
  heavy.name = "heavy";
  heavy.weight = 0.25;
  heavy.mean_work_s = 4.0 * cfg.mean_work_us * 1e-6;
  heavy.cv = 0.2;
  heavy.mem_alpha = 0.1;
  arr.classes = {light, heavy};
  return arr;
}

std::string to_json(const Config& cfg, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"fleet\",\n"
     << "  \"machines\": " << cfg.machines << ",\n"
     << "  \"cores_per_machine\": " << cfg.cores << ",\n"
     << "  \"duration_s\": " << cfg.duration_s << ",\n"
     << "  \"load\": " << cfg.load << ",\n"
     << "  \"epoch_s\": " << cfg.epoch_s << ",\n"
     << "  \"seed\": " << cfg.seed << ",\n"
     << "  \"threads\": " << cfg.threads << ",\n"
     << "  \"placements\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i].rep;
    os << "    {\"placement\": \"" << rows[i].placement << "\""
       << ", \"offered\": " << r.offered
       << ", \"completed\": " << r.completed << ", \"shed\": " << r.shed
       << ", \"parks\": " << r.parks << ", \"wakes\": " << r.wakes
       << ", \"horizon_s\": " << r.horizon_s
       << ", \"powered_machine_s\": " << r.powered_machine_s
       << ", \"parked_machine_s\": " << r.parked_machine_s
       << ", \"energy_j\": " << r.energy_j
       << ", \"wall_s\": " << rows[i].wall_s
       << ", \"serial_wall_s\": " << rows[i].serial_wall_s
       << ", \"speedup\": " << rows[i].speedup
       << ", \"tasks_per_sec\": " << rows[i].tasks_per_sec << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

int run(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--machines") {
      cfg.machines = std::stoul(next());
    } else if (arg == "--cores") {
      cfg.cores = std::stoul(next());
    } else if (arg == "--duration") {
      cfg.duration_s = std::stod(next());
    } else if (arg == "--load") {
      cfg.load = std::stod(next());
    } else if (arg == "--epoch") {
      cfg.epoch_s = std::stod(next());
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
    } else if (arg == "--budget-s") {
      cfg.budget_s = std::stod(next());
    } else if (arg == "--min-offered") {
      cfg.min_offered = std::stoul(next());
    } else if (arg == "--min-machines") {
      cfg.min_machines = std::stoul(next());
    } else if (arg == "--threads") {
      cfg.threads = std::stoul(next());
    } else if (arg == "--min-speedup") {
      cfg.min_speedup = std::stod(next());
    } else if (arg == "--scale-only") {
      cfg.scale_only = true;
    } else if (arg == "--out") {
      cfg.out = next();
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "bench_fleet: fleet placement bench (see the header comment)\n"
          "  --machines N     fleet size (default 64)\n"
          "  --cores N        cores per machine (default 16)\n"
          "  --duration S     stream duration (default 3.5)\n"
          "  --load L         offered load fraction (default 0.5)\n"
          "  --epoch S        routing epoch (default 0.02)\n"
          "  --seed N         stream + machine seed (default 1)\n"
          "  --budget-s S     wall-clock ceiling per run (default 60)\n"
          "  --min-offered N  offered-task floor (default 10M)\n"
          "  --min-machines N machine floor (default 64)\n"
          "  --threads N      != 1: run each placement serial AND on N\n"
          "                   threads (0 = hardware concurrency), assert\n"
          "                   the reports bit-identical, report speedup\n"
          "  --min-speedup X  fail below X-fold speedup (default 0 =\n"
          "                   report only; dev-box contract: 4x at 8)\n"
          "  --scale-only     skip the least-loaded row (CI gate mode)\n"
          "  --out FILE       JSON artifact (default BENCH_fleet.json)");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf(
      "Fleet bench: %zu machines x %zu cores, %.2gs at load %.2g "
      "(~%.3g offered tasks)\n\n",
      cfg.machines, cfg.cores, cfg.duration_s, cfg.load,
      cfg.load * static_cast<double>(cfg.machines * cfg.cores) *
          cfg.duration_s / (cfg.mean_work_us * 1e-6 * 1.6));

  const auto arr = fleet_spec(cfg);
  std::vector<std::string> placements = {"round-robin", "pack"};
  if (!cfg.scale_only) placements.insert(placements.begin() + 1,
                                         "least-loaded");

  std::vector<std::string> failures;
  std::vector<Row> rows;
  for (const auto& placement : placements) {
    sim::FleetOptions opts;
    opts.machines = cfg.machines;
    opts.machine.cores = cfg.cores;
    opts.machine.seed = cfg.seed;
    opts.epoch_s = cfg.epoch_s;
    opts.placement = placement;
    Row row;
    row.placement = placement;
    if (cfg.threads != 1) {
      // Serial reference first, then the parallel engine on the same
      // stream; identical bytes or the bench fails.
      opts.threads = 1;
      const auto s0 = std::chrono::steady_clock::now();
      const auto serial = sim::Fleet(opts, arr).run();
      row.serial_wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - s0)
                              .count();
      opts.threads = cfg.threads;
      const auto w0 = std::chrono::steady_clock::now();
      row.rep = sim::Fleet(opts, arr).run();
      row.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - w0)
                       .count();
      if (!(row.rep == serial)) {
        failures.push_back(placement +
                           ": parallel FleetReport diverged from the "
                           "serial engine (determinism broke)");
      }
      row.speedup = row.wall_s > 0.0 ? row.serial_wall_s / row.wall_s : 0.0;
      if (cfg.min_speedup > 0.0 && row.speedup < cfg.min_speedup) {
        failures.push_back(placement + ": speedup " +
                           std::to_string(row.speedup) + "x is below the " +
                           std::to_string(cfg.min_speedup) + "x floor");
      }
    } else {
      const auto w0 = std::chrono::steady_clock::now();
      row.rep = sim::Fleet(opts, arr).run();
      row.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - w0)
                       .count();
    }
    row.tasks_per_sec = row.wall_s > 0.0
                            ? static_cast<double>(row.rep.offered) / row.wall_s
                            : 0.0;
    rows.push_back(std::move(row));
    const auto& r = rows.back().rep;

    // --- fleet contract ---------------------------------------------------
    if (r.machines < cfg.min_machines) {
      failures.push_back(placement + ": " + std::to_string(r.machines) +
                         " machines is below the " +
                         std::to_string(cfg.min_machines) + " floor");
    }
    if (r.offered < cfg.min_offered) {
      failures.push_back(placement + ": offered " +
                         std::to_string(r.offered) +
                         " tasks, below the " +
                         std::to_string(cfg.min_offered) + " floor");
    }
    if (r.shed != 0 || r.routed != r.completed || r.in_flight != 0) {
      failures.push_back(placement + ": task conservation broke (shed=" +
                         std::to_string(r.shed) + " routed=" +
                         std::to_string(r.routed) + " completed=" +
                         std::to_string(r.completed) + ")");
    }
    if (rows.back().wall_s > cfg.budget_s) {
      failures.push_back(placement + ": wall clock " +
                         std::to_string(rows.back().wall_s) +
                         "s blew the " + std::to_string(cfg.budget_s) +
                         "s budget");
    }
  }

  util::TablePrinter table({"placement", "offered", "completed", "parks",
                            "wakes", "parked mach-s", "energy (J)",
                            "wall (s)", "tasks/s"});
  for (const auto& row : rows) {
    table.add(row.placement, row.rep.offered, row.rep.completed,
              row.rep.parks, row.rep.wakes, row.rep.parked_machine_s,
              row.rep.energy_j, row.wall_s, row.tasks_per_sec);
  }
  std::printf("%s\n", table.str().c_str());
  if (cfg.threads != 1) {
    for (const auto& row : rows) {
      std::printf(
          "%s: serial %.3fs, %zu threads %.3fs => %.2fx speedup "
          "(reports bit-identical)\n",
          row.placement.c_str(), row.serial_wall_s, cfg.threads, row.wall_s,
          row.speedup);
    }
    std::printf("\n");
  }

  const obs::FleetReport* rr = nullptr;
  const obs::FleetReport* pack = nullptr;
  for (const auto& row : rows) {
    if (row.placement == "round-robin") rr = &row.rep;
    if (row.placement == "pack") pack = &row.rep;
  }
  if (rr && pack) {
    if (pack->offered != rr->offered) {
      failures.push_back("pack and round-robin saw different streams");
    }
    if (pack->energy_j >= rr->energy_j) {
      failures.push_back("pack-and-park (" +
                         std::to_string(pack->energy_j) +
                         " J) failed to beat round-robin (" +
                         std::to_string(rr->energy_j) + " J)");
    } else {
      std::printf("pack-and-park saves %.1f%% fleet energy vs round-robin\n",
                  100.0 * (1.0 - pack->energy_j / rr->energy_j));
    }
  }

  const std::string json = to_json(cfg, rows);
  try {
    const auto doc = obs::parse_json(json);
    if (doc.at("placements").array.size() != rows.size()) {
      throw std::runtime_error("placement rows went missing");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s failed validation: %s\n", cfg.out.c_str(),
                 e.what());
    return 1;
  }
  std::ofstream out(cfg.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  out << json;
  std::printf("report: %s (validated with json_lite)\n", cfg.out.c_str());

  if (!failures.empty()) {
    for (const auto& f : failures) {
      std::fprintf(stderr, "CONTRACT VIOLATION: %s\n", f.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
