// Ablation: how much of EEWA's benefit rides on the silicon's
// voltage-frequency curve. The same MD5 trace and schedulers run over
// three power models — the paper-era K10 server (wide VID range), a
// modern server (narrow VID range, big floor), and an embedded part
// (wide range, no floor). Also contrasts task-sharing (the paper's §I
// strawman) with stealing under each model.
#include <cstdio>

#include "sim/simulate.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

int run() {
  const auto trace = wl::build_trace(wl::find_benchmark("MD5"),
                                     wl::reference_calibration(), 30, 2024);

  struct ModelCase {
    const char* name;
    energy::PowerModel model;
  };
  const ModelCase models[] = {
      {"opteron8380 (paper-era)", energy::PowerModel::opteron8380_server()},
      {"modern server", energy::PowerModel::modern_server()},
      {"embedded", energy::PowerModel::embedded()},
  };

  std::printf(
      "Power-model ablation (MD5, 16 cores, 30 batches): energy\n"
      "normalized to Cilk under each model\n\n");
  util::TablePrinter table({"power model", "cilk (J)", "sharing",
                            "ondemand", "cilk-d", "eewa", "eewa saving"});
  for (const auto& mc : models) {
    sim::SimOptions opt;
    opt.cores = 16;
    opt.seed = 42;
    opt.power = mc.model;
    sim::CilkPolicy cilk;
    sim::SharingPolicy sharing;
    sim::OndemandPolicy ondemand;
    sim::CilkDPolicy cilkd;
    sim::EewaPolicy eewa(trace.class_names);
    const auto rc = sim::simulate(trace, cilk, opt);
    const auto rs = sim::simulate(trace, sharing, opt);
    const auto ro = sim::simulate(trace, ondemand, opt);
    const auto rd = sim::simulate(trace, cilkd, opt);
    const auto re = sim::simulate(trace, eewa, opt);
    table.add(mc.name, rc.energy_j,
              util::TablePrinter::fixed(rs.energy_j / rc.energy_j, 3),
              util::TablePrinter::fixed(ro.energy_j / rc.energy_j, 3),
              util::TablePrinter::fixed(rd.energy_j / rc.energy_j, 3),
              util::TablePrinter::fixed(re.energy_j / rc.energy_j, 3),
              util::TablePrinter::fixed(
                  100.0 * (1.0 - re.energy_j / rc.energy_j), 1) +
                  "%");
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: savings are largest where the V-f curve is wide\n"
      "(embedded > paper-era server > modern server); the machine floor\n"
      "compresses all relative savings. Task-sharing trails stealing on\n"
      "makespan, which also costs it energy.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
