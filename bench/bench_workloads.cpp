// Microbenchmarks of the seven benchmark kernels (bytes/second), the
// numbers behind the suite's calibration table. Run with --calibrate on
// bench_fig6_energy to use live values instead of the reference table.
#include <benchmark/benchmark.h>

#include "workloads/suite.hpp"

namespace {

using namespace eewa;

void BM_Kernel(benchmark::State& state, wl::KernelKind kind) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl::run_kernel(kind, bytes, seed++));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}

void register_all() {
  struct Entry {
    const char* name;
    wl::KernelKind kind;
  };
  static constexpr Entry kKernels[] = {
      {"bwc_bwt_stage", wl::KernelKind::kBwcBwtStage},
      {"bwc_entropy_stage", wl::KernelKind::kBwcEntropyStage},
      {"bzip2_pipeline", wl::KernelKind::kBzCompress},
      {"dmc_compress", wl::KernelKind::kDmcCompress},
      {"jpeg_encode", wl::KernelKind::kJeEncode},
      {"jpeg_thumbnail", wl::KernelKind::kJeThumbnail},
      {"lzw_compress", wl::KernelKind::kLzwCompress},
      {"md5", wl::KernelKind::kMd5Hash},
      {"sha1", wl::KernelKind::kSha1Hash},
  };
  for (const auto& e : kKernels) {
    benchmark::RegisterBenchmark(e.name,
                                 [kind = e.kind](benchmark::State& s) {
                                   BM_Kernel(s, kind);
                                 })
        ->Arg(4096)
        ->Arg(65536);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
