// End-to-end on the *real thread runtime* (not the simulator): runs
// down-scaled versions of three Table-II benchmarks with actual kernel
// executions under Cilk and EEWA, metering energy with the power model
// over the recorded DVFS trace. On DVFS-less hosts (most CI boxes) the
// point is exercising the full production path — profiling, planning,
// multi-pool stealing, plan application — with real work; on cpufreq
// hardware the same binary drives real frequency scaling.
//
// Usage: bench_suite_runtime [--batches N] [--workers N] [--scale X]
//                            [--metrics] [--trace-out FILE]
//
// --metrics prints each run's aggregated BatchReport (pops vs. steals
// vs. cross-group robs, per-class exec-time stats); --trace-out attaches
// an event tracer to the EEWA runs and writes chrome://tracing JSON.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "energy/model_meter.hpp"
#include "energy/power_model.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

struct Outcome {
  double seconds = 0.0;
  double joules = 0.0;
  std::size_t steals = 0;
  std::string plan;
};

Outcome run_real(const wl::BenchmarkDef& bench, rt::SchedulerKind kind,
                 std::size_t batches, std::size_t workers, double scale,
                 bool metrics, obs::EventTracer* tracer) {
  rt::RuntimeOptions options;
  options.workers = workers;
  options.kind = kind;
  options.tracer = tracer;
  rt::Runtime runtime(options);
  const auto power = energy::PowerModel::opteron8380_server();
  energy::ModelMeter meter(power, *runtime.trace_backend());

  Outcome out;
  meter.start();
  for (std::size_t b = 0; b < batches; ++b) {
    auto suite_tasks = wl::make_batch(bench, b, 11);
    std::vector<rt::TaskDesc> tasks;
    tasks.reserve(suite_tasks.size());
    for (auto& st : suite_tasks) {
      // Scale the input sizes down so the whole sweep stays snappy.
      const auto bytes = static_cast<std::size_t>(
          std::max(64.0, static_cast<double>(st.bytes) * scale));
      // Rebind the closure at the reduced size via the public kernel
      // entry point (the class name keeps its identity for profiling).
      const auto kernel = [&]() -> wl::KernelKind {
        for (const auto& c : bench.classes) {
          if (c.class_name == st.class_name) return c.kernel;
        }
        return bench.classes.front().kernel;
      }();
      tasks.push_back(
          {st.class_name, [kernel, bytes, seed = b * 1000 + tasks.size()] {
             (void)wl::run_kernel(kernel, bytes, seed);
           }});
    }
    out.seconds += runtime.run_batch(std::move(tasks));
  }
  out.joules = meter.stop_joules();
  out.steals = runtime.total_steals();
  out.plan = runtime.controller().plan().layout.to_string();
  if (metrics) {
    const auto& reg = runtime.controller().registry();
    std::vector<std::string> names;
    for (std::size_t id = 0; id < reg.class_count(); ++id) {
      names.push_back(std::string(reg.name(id)));
    }
    std::printf("%s/%s run totals:\n%s\n", bench.name.c_str(),
                kind == rt::SchedulerKind::kEewa ? "eewa" : "cilk",
                runtime.metrics().totals().to_string(names).c_str());
  }
  return out;
}

int run(int argc, char** argv) {
  std::size_t batches = 3;
  std::size_t workers = 4;
  double scale = 0.1;
  bool metrics = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--batches" && i + 1 < argc) batches = std::stoul(argv[++i]);
    if (arg == "--workers" && i + 1 < argc) workers = std::stoul(argv[++i]);
    if (arg == "--scale" && i + 1 < argc) scale = std::stod(argv[++i]);
    if (arg == "--metrics") metrics = true;
    if (arg == "--trace-out" && i + 1 < argc) trace_out = argv[++i];
  }

  std::unique_ptr<obs::EventTracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<obs::EventTracer>(workers + 1);
    for (std::size_t w = 0; w < workers; ++w) {
      tracer->set_track_name(w, "worker " + std::to_string(w));
    }
    tracer->set_track_name(workers, "control");
  }

  std::printf(
      "Real-runtime end-to-end (%zu workers, %zu batches, inputs scaled "
      "x%.2f)\n\n",
      workers, batches, scale);
  util::TablePrinter table({"benchmark", "sched", "time (s)", "energy (J)",
                            "steals", "final plan"});
  for (const char* name : {"MD5", "SHA-1", "LZW"}) {
    const auto& bench = wl::find_benchmark(name);
    const auto cilk = run_real(bench, rt::SchedulerKind::kCilk, batches,
                               workers, scale, metrics, nullptr);
    const auto eewa = run_real(bench, rt::SchedulerKind::kEewa, batches,
                               workers, scale, metrics, tracer.get());
    table.add(name, "cilk", cilk.seconds, cilk.joules, cilk.steals, "-");
    table.add(name, "eewa", eewa.seconds, eewa.joules, eewa.steals,
              eewa.plan);
  }
  std::printf("%s\n", table.str().c_str());
  if (tracer != nullptr) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    out << tracer->chrome_json();
    std::printf("trace: %zu events -> %s (%llu dropped)\n\n",
                tracer->event_count(), trace_out.c_str(),
                static_cast<unsigned long long>(tracer->dropped()));
  }
  std::printf(
      "Note: on hosts without per-core DVFS the energy column prices the\n"
      "recorded frequency decisions through the power model; makespans\n"
      "on an oversubscribed container reflect time-slicing, not the\n"
      "paper's 16 hardware cores (use the sim benches for the figures).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
