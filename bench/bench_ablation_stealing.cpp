// Ablation: the preference-based task-stealing scheduler.
//  (1) On a fixed asymmetric machine (EEWA's modal MD5 configuration),
//      random stealing (Cilk) vs rob-the-weaker-first preference
//      stealing with workload-aware placement (WATS) vs full EEWA — the
//      value of the preference lists themselves.
//  (2) Steal-probe cost sensitivity: makespans as each probe gets more
//      expensive (contention / remote-cache effects).
#include <cstdio>

#include "sim/simulate.hpp"
#include "trace/synthetic.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

void preference_value() {
  std::printf("(1) Stealing policy on a fixed asymmetric machine (MD5)\n\n");
  const auto cal = wl::reference_calibration();
  const auto trace =
      wl::build_trace(wl::find_benchmark("MD5"), cal, 30, 2024);
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;

  sim::EewaPolicy probe(trace.class_names);
  sim::Machine machine(opt);
  double t = 0.0;
  for (const auto& b : trace.batches) t = machine.run_batch(probe, b, t);
  const auto rungs = probe.modal_rungs(machine);

  util::TablePrinter table({"scheduler", "time (s)", "energy (J)",
                            "steals", "probes"});
  sim::CilkPolicy cilk(rungs);
  sim::WatsPolicy wats(rungs, trace.class_names);
  sim::EewaPolicy eewa(trace.class_names);
  for (auto* policy : std::initializer_list<sim::Policy*>{
           &cilk, &wats, &eewa}) {
    const auto res = sim::simulate(trace, *policy, opt);
    table.add(res.policy, res.time_s, res.energy_j, res.steals, res.probes);
  }
  std::printf("%s\n", table.str().c_str());
}

void steal_cost_sensitivity() {
  std::printf("(2) Steal-probe cost sensitivity (SHA-1, EEWA)\n\n");
  const auto cal = wl::reference_calibration();
  const auto trace =
      wl::build_trace(wl::find_benchmark("SHA-1"), cal, 30, 2024);
  util::TablePrinter table({"probe cost (us)", "time (s)", "energy (J)",
                            "probes"});
  for (const double cost_us : {0.5, 2.0, 8.0, 32.0}) {
    sim::SimOptions opt;
    opt.cores = 16;
    opt.seed = 42;
    opt.steal_attempt_s = cost_us * 1e-6;
    sim::EewaPolicy eewa(trace.class_names);
    const auto res = sim::simulate(trace, eewa, opt);
    table.add(cost_us, res.time_s, res.energy_j, res.probes);
  }
  std::printf("%s\n", table.str().c_str());
}

void spawn_sparsity() {
  std::printf(
      "(3) Cilk-D idle capture vs spawn sparsity (synthetic, 16 cores)\n\n");
  // As tasks materialize gradually instead of all at the barrier,
  // Cilk-D cores bounce between the bottom rung and F0: transitions
  // multiply several-fold. At these task granularities the transition
  // costs stay second-order — the spawn gaps add idle time that parking
  // monetizes, so Cilk-D's relative savings persist (and even grow).
  // The DVFS bounce would only bite with sub-millisecond batches or
  // much slower voltage regulators (raise TransitionModel::latency_s to
  // see it).
  util::TablePrinter table({"release window (ms)", "cilk-d energy vs cilk",
                            "cilk-d transitions"});
  for (const double window_ms : {0.0, 2.0, 5.0, 10.0}) {
    trace::SyntheticSpec spec;
    spec.classes = {{"heavy", 5, 0.010, 0.1, 0, 0},
                    {"light", 40, 0.001, 0.1, 0, 0}};
    spec.batches = 20;
    spec.seed = 12;
    spec.release_window_s = window_ms * 1e-3;
    const auto t = trace::generate(spec);
    sim::SimOptions opt;
    opt.cores = 16;
    opt.seed = 13;
    sim::CilkPolicy cilk;
    sim::CilkDPolicy cilkd;
    const auto rc = sim::simulate(t, cilk, opt);
    const auto rd = sim::simulate(t, cilkd, opt);
    table.add(window_ms,
              util::TablePrinter::fixed(rd.energy_j / rc.energy_j, 3),
              rd.transitions);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main() {
  preference_value();
  steal_cost_sensitivity();
  spawn_sparsity();
  return 0;
}
