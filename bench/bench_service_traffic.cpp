// Open-loop service traffic bench — the overload story in numbers.
//
// Two sections, same arrival model (trace/arrivals.hpp):
//
//  1. Real runtime: drive rt::Runtime's service mode through a ladder of
//     offered-load phases (default 2.0x then 0.5x capacity), pacing each
//     generated stream against the wall clock. Capacity is *measured*
//     first (an unpaced saturation burst), not assumed from the worker
//     count, so "2x" means the same thing on a laptop and a CI
//     container. Per phase it reports offered/executed/shed/deferred
//     counts, the shed rate, p50/p99 completion sojourn and the
//     queue-depth high-water mark — once with the async planner ("eewa")
//     and once with planning disabled ("steal", the work-stealing
//     baseline). The run *asserts* the overload contract: shedding
//     engages at 2x (for shed policies), stops again in the
//     below-capacity phase, depth stays bounded by the configured
//     capacities, and the final report reconciles exactly.
//
//  2. Simulator mirror: the same stream shape packed into a one-batch
//     released trace (arrivals_to_trace) and run on sim::Machine under
//     cilk / cilk-d / eewa, reporting simulated time, energy and open-loop
//     sojourn percentiles per scheduler (Machine::now_s() against each
//     task's release_s). The default spec offers >= 1M simulated
//     tasks/sec, which the run also asserts.
//
// Usage: bench_service_traffic [--workers N] [--phase-s S] [--loads a,b,..]
//                              [--policy block|shed-sla|shed-oldest]
//                              [--sim-cores N] [--sim-duration S]
//                              [--seed N] [--out FILE]
//
// Writes BENCH_service.json, re-parsed with the in-repo json_lite parser
// before exit — a malformed artifact fails the run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_lite.hpp"
#include "runtime/runtime.hpp"
#include "sim/policies.hpp"
#include "sim/simulate.hpp"
#include "trace/arrivals.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace eewa;

std::size_t default_workers() {
  const std::size_t hw = std::thread::hardware_concurrency();
  // Leave a core for the dispatcher/submitter when there is one to spare;
  // the capacity calibration absorbs whatever contention remains.
  return std::clamp<std::size_t>(hw > 1 ? hw - 1 : 2, 2, 4);
}

struct Config {
  std::size_t workers = default_workers();
  std::vector<double> loads = {2.0, 0.5};  ///< phase ladder, in order
  double phase_s = 0.3;
  double mean_work_us = 100.0;
  // Small enough that a 2x storm of phase_s overflows total buffering
  // (3 * capacity) and the admission policy actually has to act.
  std::size_t queue_capacity = 256;
  std::size_t inbox_capacity = 64;
  double epoch_s = 0.002;
  rt::AdmissionPolicy policy = rt::AdmissionPolicy::kShedLowestSla;
  std::size_t sim_cores = 16;
  double sim_load = 2.0;
  double sim_duration_s = 0.25;
  double sim_mean_work_us = 30.0;  ///< 2.0 * 16 / 30us ~= 1.07M tasks/s
  std::uint64_t seed = 1;
  std::string out = "BENCH_service.json";
};

const char* policy_name(rt::AdmissionPolicy p) {
  switch (p) {
    case rt::AdmissionPolicy::kBlock:
      return "block";
    case rt::AdmissionPolicy::kShedLowestSla:
      return "shed-sla";
    case rt::AdmissionPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "?";
}

/// Arrival stream at an absolute task rate (tasks/sec), encoded through
/// ArrivalSpec's load knob: load = rate * mean_work / cores.
trace::ArrivalSpec phase_spec(const Config& cfg, double rate_tps,
                              std::uint64_t seed) {
  trace::ArrivalSpec spec;
  spec.name = "service_phase";
  // A gold (never-shed) control class next to the bulk tier: the gold
  // share must survive every overload phase intact.
  spec.classes = {
      {"gold", 0.2, cfg.mean_work_us * 1e-6, 0.3, 0.0, 0.0, 0},
      {"bulk", 0.8, cfg.mean_work_us * 1e-6, 0.3, 0.0, 0.0, 2},
  };
  spec.cores = cfg.workers;
  spec.load = rate_tps * cfg.mean_work_us * 1e-6 /
              static_cast<double>(cfg.workers);
  spec.duration_s = cfg.phase_s;
  spec.kind = trace::ArrivalKind::kSteady;
  spec.seed = seed;
  return spec;
}

/// One real-runtime phase: deltas between the snapshots bracketing it.
struct PhaseResult {
  std::string scheduler;
  double load = 0.0;  ///< multiple of measured capacity
  std::uint64_t offered = 0;
  std::uint64_t executed = 0;
  std::uint64_t shed = 0;
  std::uint64_t deferred = 0;
  std::uint64_t gold_shed = 0;  ///< this phase only
  double shed_rate = 0.0;
  double p50_us = 0.0;  ///< completion sojourn, this phase only
  double p99_us = 0.0;
  std::uint64_t depth_hwm = 0;  ///< cumulative up to phase end
  double span_s = 0.0;
};

void busy_for(double seconds) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Measured service capacity (executed tasks/sec) under an unpaced
/// saturation burst. Pollutes the cumulative shed counters — callers
/// must account per phase via snapshot deltas.
double calibrate_capacity_tps(rt::Runtime& rt, rt::ClassHandle bulk,
                              double work_s) {
  const obs::EpochReport before = rt.service_snapshot();
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(150)) {
    for (int i = 0; i < 32; ++i) {
      rt.submit(bulk, [work_s] { busy_for(work_s); });
    }
  }
  rt.drain_service(60.0);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  const obs::EpochReport d =
      obs::ServiceMetrics::delta(rt.service_snapshot(), before);
  return static_cast<double>(d.executed) / elapsed.count();
}

double percentile(std::vector<double>& v, double pct) {
  if (v.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      pct / 100.0 * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

/// Run the phase ladder on one service-mode runtime. Returns one result
/// per load; `failures` collects violated contract clauses.
std::vector<PhaseResult> run_runtime_section(
    const Config& cfg, bool planner, double& capacity_tps,
    std::vector<std::string>& failures) {
  const char* sched = planner ? "eewa" : "steal";
  rt::RuntimeOptions ro;
  ro.workers = cfg.workers;
  ro.kind = rt::SchedulerKind::kEewa;
  ro.enable_pmc = false;
  rt::Runtime rt(ro);

  rt::ServiceOptions so;
  so.classes = {{"gold", 0}, {"bulk", 2}};
  so.queue_capacity = cfg.queue_capacity;
  so.inbox_capacity = cfg.inbox_capacity;
  so.policy = cfg.policy;
  so.epoch_s = cfg.epoch_s;
  so.planner_enabled = planner;
  rt.start_service(so);
  const rt::ClassHandle gold = rt.handle("gold");
  const rt::ClassHandle bulk = rt.handle("bulk");

  capacity_tps = calibrate_capacity_tps(rt, bulk, cfg.mean_work_us * 1e-6);
  if (capacity_tps <= 0.0) {
    failures.push_back(std::string(sched) + ": capacity came out zero");
    rt.stop_service();
    return {};
  }

  std::vector<PhaseResult> results;
  obs::EpochReport prev = rt.service_snapshot();
  for (std::size_t p = 0; p < cfg.loads.size(); ++p) {
    const double mult = cfg.loads[p];
    const auto arrivals = trace::generate_arrivals(
        phase_spec(cfg, mult * capacity_tps, cfg.seed + p));
    // Completion sojourn measured in the bench: slot per arrival, each
    // task stamps its own latency (workers write disjoint slots).
    std::vector<double> sojourn_us(arrivals.size(), -1.0);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      const auto& a = arrivals[i];
      std::this_thread::sleep_until(
          t0 + std::chrono::duration<double>(a.time_s));
      const rt::ClassHandle h = a.task.class_id == 0 ? gold : bulk;
      const double work = a.task.work_s;
      double* slot = &sojourn_us[i];
      const auto submit_t = std::chrono::steady_clock::now();
      rt.submit(h, [work, slot, submit_t] {
        busy_for(work);
        *slot = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - submit_t)
                    .count();
      });
    }
    if (!rt.drain_service(60.0)) {
      failures.push_back(std::string(sched) + ": drain timed out at " +
                         std::to_string(mult) + "x load");
      // Quiesce before sojourn_us goes out of scope: in-flight tasks
      // hold pointers into it.
      rt.stop_service();
      return results;
    }
    const obs::EpochReport now = rt.service_snapshot();
    const obs::EpochReport d = obs::ServiceMetrics::delta(now, prev);
    std::vector<double> done;
    done.reserve(sojourn_us.size());
    for (double s : sojourn_us) {
      if (s >= 0.0) done.push_back(s);
    }
    PhaseResult r;
    r.scheduler = sched;
    r.load = mult;
    r.offered = d.offered;
    r.executed = d.executed;
    r.shed = d.shed;
    r.deferred = d.deferred;
    r.gold_shed = d.classes.at(gold.id).shed;
    r.shed_rate = d.offered > 0
                      ? static_cast<double>(d.shed) / d.offered
                      : 0.0;
    r.p50_us = percentile(done, 50.0);
    r.p99_us = percentile(done, 99.0);
    r.depth_hwm = now.queue_depth_hwm;
    r.span_s = cfg.phase_s;
    results.push_back(r);
    prev = now;

    // --- overload contract ------------------------------------------------
    const bool sheds = cfg.policy != rt::AdmissionPolicy::kBlock;
    if (mult >= 2.0 && sheds && r.shed == 0) {
      failures.push_back(std::string(sched) +
                         ": no shedding at 2x offered load");
    }
    if (mult >= 2.0 && !sheds && r.deferred == 0) {
      failures.push_back(std::string(sched) +
                         ": block policy never backpressured at 2x");
    }
    if (mult <= 0.8 && r.shed != 0) {
      failures.push_back(std::string(sched) + ": shed " +
                         std::to_string(r.shed) +
                         " tasks in the recovery phase (" +
                         std::to_string(mult) + "x load)");
    }
    if (r.gold_shed != 0) {
      failures.push_back(std::string(sched) + ": gold (sla 0) shed " +
                         std::to_string(r.gold_shed) + " tasks");
    }
    // Depth is bounded by ring + staging + executing backlog, each
    // capped at queue_capacity.
    if (r.depth_hwm > 3 * cfg.queue_capacity) {
      failures.push_back(std::string(sched) + ": queue depth hwm " +
                         std::to_string(r.depth_hwm) +
                         " exceeds the 3x-capacity bound");
    }
  }

  const obs::EpochReport final_report = rt.stop_service();
  if (final_report.reconcile_slack() != 0) {
    failures.push_back(std::string(sched) + ": final report slack " +
                       std::to_string(final_report.reconcile_slack()));
  }
  return results;
}

/// Delegating policy that records open-loop sojourn (completion time vs
/// release) for every task — the simulator mirror of the runtime's
/// sojourn histogram.
class SojournProbe : public sim::Policy {
 public:
  explicit SojournProbe(std::unique_ptr<sim::Policy> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  void batch_start(sim::Machine& m, const trace::Batch& batch,
                   std::size_t batch_index) override {
    inner_->batch_start(m, batch, batch_index);
  }
  void place_task(sim::Machine& m, sim::TaskId id) override {
    inner_->place_task(m, id);
  }
  std::optional<sim::TaskId> acquire(sim::Machine& m,
                                     std::size_t core) override {
    return inner_->acquire(m, core);
  }
  void task_done(sim::Machine& m, std::size_t core,
                 const trace::TraceTask& task, double exec_s) override {
    sojourns_us_.push_back((m.now_s() - task.release_s) * 1e6);
    inner_->task_done(m, core, task, exec_s);
  }
  double batch_end(sim::Machine& m, double makespan_s) override {
    return inner_->batch_end(m, makespan_s);
  }

  std::vector<double>& sojourns_us() { return sojourns_us_; }

 private:
  std::unique_ptr<sim::Policy> inner_;
  std::vector<double> sojourns_us_;
};

struct SimRow {
  std::string policy;
  std::size_t tasks = 0;
  double time_s = 0.0;
  double energy_j = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double wall_s = 0.0;
};

std::vector<SimRow> run_sim_section(const Config& cfg, double& offered_tps,
                                    std::vector<std::string>& failures) {
  trace::ArrivalSpec spec;
  spec.name = "service_sim";
  spec.classes = {
      {"gold", 0.2, cfg.sim_mean_work_us * 1e-6, 0.3, 0.0, 0.0, 0},
      {"bulk", 0.8, cfg.sim_mean_work_us * 1e-6, 0.3, 0.0, 0.0, 2},
  };
  spec.load = cfg.sim_load;
  spec.cores = cfg.sim_cores;
  spec.duration_s = cfg.sim_duration_s;
  spec.kind = trace::ArrivalKind::kSteady;
  spec.seed = cfg.seed;
  offered_tps = spec.rate_tps();
  if (offered_tps < 1e6) {
    failures.push_back("sim offered rate " + std::to_string(offered_tps) +
                       " tasks/sec is below the 1M floor");
  }
  const auto arrivals = trace::generate_arrivals(spec);
  const auto trace = trace::arrivals_to_trace(spec, arrivals);

  sim::SimOptions so;
  so.cores = cfg.sim_cores;
  so.seed = cfg.seed;
  so.fixed_adjuster_overhead_s = 50e-6;  // deterministic timeline

  std::vector<SimRow> rows;
  const char* names[] = {"cilk", "cilk-d", "eewa"};
  for (const char* name : names) {
    std::unique_ptr<sim::Policy> inner;
    if (std::string(name) == "cilk") {
      inner = std::make_unique<sim::CilkPolicy>();
    } else if (std::string(name) == "cilk-d") {
      inner = std::make_unique<sim::CilkDPolicy>();
    } else {
      inner = std::make_unique<sim::EewaPolicy>(trace.class_names);
    }
    SojournProbe probe(std::move(inner));
    const auto w0 = std::chrono::steady_clock::now();
    const sim::SimResult res = sim::simulate(trace, probe, so);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - w0;
    SimRow row;
    row.policy = name;
    row.tasks = arrivals.size();
    row.time_s = res.time_s;
    row.energy_j = res.energy_j;
    row.p50_us = percentile(probe.sojourns_us(), 50.0);
    row.p99_us = percentile(probe.sojourns_us(), 99.0);
    row.wall_s = wall.count();
    if (probe.sojourns_us().size() != arrivals.size()) {
      failures.push_back(std::string("sim/") + name + ": completed " +
                         std::to_string(probe.sojourns_us().size()) +
                         " of " + std::to_string(arrivals.size()) +
                         " tasks");
    }
    rows.push_back(row);
  }
  return rows;
}

std::string to_json(const Config& cfg,
                    const std::vector<PhaseResult>& phases,
                    double capacity_eewa_tps, double capacity_steal_tps,
                    double offered_tps, const std::vector<SimRow>& sim) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"service_traffic\",\n"
     << "  \"workers\": " << cfg.workers << ",\n"
     << "  \"queue_capacity\": " << cfg.queue_capacity << ",\n"
     << "  \"policy\": \"" << policy_name(cfg.policy) << "\",\n"
     << "  \"epoch_s\": " << cfg.epoch_s << ",\n"
     << "  \"phase_s\": " << cfg.phase_s << ",\n"
     << "  \"capacity_tps\": {\"eewa\": " << capacity_eewa_tps
     << ", \"steal\": " << capacity_steal_tps << "},\n"
     << "  \"runtime_phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const auto& r = phases[i];
    os << "    {\"scheduler\": \"" << r.scheduler << "\", \"load\": "
       << r.load << ", \"offered\": " << r.offered << ", \"executed\": "
       << r.executed << ", \"shed\": " << r.shed << ", \"deferred\": "
       << r.deferred << ", \"shed_rate\": " << r.shed_rate
       << ", \"p50_sojourn_us\": " << r.p50_us << ", \"p99_sojourn_us\": "
       << r.p99_us << ", \"queue_depth_hwm\": " << r.depth_hwm << "}"
       << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"sim\": {\n"
     << "    \"cores\": " << cfg.sim_cores << ",\n"
     << "    \"load\": " << cfg.sim_load << ",\n"
     << "    \"duration_s\": " << cfg.sim_duration_s << ",\n"
     << "    \"offered_tasks_per_sec\": " << offered_tps << ",\n"
     << "    \"results\": [\n";
  for (std::size_t i = 0; i < sim.size(); ++i) {
    const auto& r = sim[i];
    os << "      {\"policy\": \"" << r.policy << "\", \"tasks\": "
       << r.tasks << ", \"time_s\": " << r.time_s << ", \"energy_j\": "
       << r.energy_j << ", \"p50_sojourn_us\": " << r.p50_us
       << ", \"p99_sojourn_us\": " << r.p99_us << ", \"wall_s\": "
       << r.wall_s << "}" << (i + 1 < sim.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }\n}\n";
  return os.str();
}

int run(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--workers") {
      cfg.workers = std::stoul(next());
    } else if (arg == "--phase-s") {
      cfg.phase_s = std::stod(next());
    } else if (arg == "--loads") {
      cfg.loads.clear();
      std::istringstream ls(next());
      for (std::string tok; std::getline(ls, tok, ',');) {
        cfg.loads.push_back(std::stod(tok));
      }
    } else if (arg == "--policy") {
      const std::string p = next();
      if (p == "block") {
        cfg.policy = rt::AdmissionPolicy::kBlock;
      } else if (p == "shed-sla") {
        cfg.policy = rt::AdmissionPolicy::kShedLowestSla;
      } else if (p == "shed-oldest") {
        cfg.policy = rt::AdmissionPolicy::kShedOldest;
      } else {
        std::fprintf(stderr, "unknown policy: %s\n", p.c_str());
        return 2;
      }
    } else if (arg == "--sim-cores") {
      cfg.sim_cores = std::stoul(next());
    } else if (arg == "--sim-duration") {
      cfg.sim_duration_s = std::stod(next());
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
    } else if (arg == "--out") {
      cfg.out = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf(
      "Service traffic: %zu workers, policy %s, %.2fs phases at loads [",
      cfg.workers, policy_name(cfg.policy), cfg.phase_s);
  for (std::size_t i = 0; i < cfg.loads.size(); ++i) {
    std::printf("%s%.2g", i ? ", " : "", cfg.loads[i]);
  }
  std::printf("] x capacity\n\n");

  std::vector<std::string> failures;
  std::vector<PhaseResult> phases;
  double capacity_eewa = 0.0;
  double capacity_steal = 0.0;
  for (const bool planner : {true, false}) {
    double& cap = planner ? capacity_eewa : capacity_steal;
    const auto rows = run_runtime_section(cfg, planner, cap, failures);
    phases.insert(phases.end(), rows.begin(), rows.end());
    std::printf("measured capacity (%s): %.0f tasks/sec\n",
                planner ? "eewa" : "steal", cap);
  }

  util::TablePrinter rt_table({"scheduler", "load", "offered", "executed",
                               "shed", "deferred", "shed rate", "p99 us",
                               "depth hwm"});
  for (const auto& r : phases) {
    rt_table.add(r.scheduler, r.load, r.offered, r.executed, r.shed,
                 r.deferred, r.shed_rate, r.p99_us, r.depth_hwm);
  }
  std::printf("%s\n", rt_table.str().c_str());

  double offered_tps = 0.0;
  const auto sim = run_sim_section(cfg, offered_tps, failures);
  std::printf("Sim mirror: %zu cores, %.2gx load, %.3g offered tasks/sec\n",
              cfg.sim_cores, cfg.sim_load, offered_tps);
  util::TablePrinter sim_table({"policy", "tasks", "sim time (s)",
                                "energy (J)", "p50 us", "p99 us",
                                "wall (s)"});
  for (const auto& r : sim) {
    sim_table.add(r.policy, r.tasks, r.time_s, r.energy_j, r.p50_us,
                  r.p99_us, r.wall_s);
  }
  std::printf("%s\n", sim_table.str().c_str());

  const std::string json =
      to_json(cfg, phases, capacity_eewa, capacity_steal, offered_tps, sim);
  try {
    const auto doc = obs::parse_json(json);
    if (doc.at("runtime_phases").array.size() != phases.size()) {
      throw std::runtime_error("phase rows went missing");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s failed validation: %s\n", cfg.out.c_str(),
                 e.what());
    return 1;
  }
  std::ofstream out(cfg.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  out << json;
  std::printf("report: %s (validated with json_lite)\n", cfg.out.c_str());

  if (!failures.empty()) {
    for (const auto& f : failures) {
      std::fprintf(stderr, "CONTRACT VIOLATION: %s\n", f.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
