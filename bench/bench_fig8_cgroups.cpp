// Fig. 8 — the number of cores at each of the four frequencies across
// the first 10 batches of SHA-1 under EEWA. The paper's series: batch 1
// runs all 16 cores at 2.5 GHz (the measurement batch); from batch 3 on,
// 5 cores stay at 2.5 GHz and the other 11 sit at 0.8 GHz.
#include <cstdio>
#include <string>

#include "sim/simulate.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

int run(int argc, char** argv) {
  std::string bench_name = "SHA-1";
  std::size_t batches = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--benchmark" && i + 1 < argc) bench_name = argv[++i];
    if (arg == "--batches" && i + 1 < argc) batches = std::stoul(argv[++i]);
  }
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;
  const auto cal = wl::reference_calibration();
  const auto trace =
      wl::build_trace(wl::find_benchmark(bench_name), cal, batches, 2024);

  sim::EewaPolicy eewa(trace.class_names);
  const auto res = sim::simulate(trace, eewa, opt);

  std::printf("Fig. 8 — cores per frequency, %s, %zu batches, 16 cores\n\n",
              bench_name.c_str(), batches);
  util::TablePrinter table({"batch", "2.5 GHz", "1.8 GHz", "1.3 GHz",
                            "0.8 GHz", "span (ms)", "steals"});
  util::CsvWriter csv;
  csv.row({"batch", "f2500", "f1800", "f1300", "f800"});
  for (std::size_t b = 0; b < res.batches.size(); ++b) {
    const auto& st = res.batches[b];
    table.add(b + 1, st.cores_per_rung[0], st.cores_per_rung[1],
              st.cores_per_rung[2], st.cores_per_rung[3],
              st.span_s * 1e3, st.steals);
    csv.row_values(b + 1, st.cores_per_rung[0], st.cores_per_rung[1],
                   st.cores_per_rung[2], st.cores_per_rung[3]);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("CSV:\n%s\n", csv.str().c_str());
  std::printf(
      "Paper's series: batch 1 all 16 cores at 2.5 GHz; from batch 3 on,\n"
      "5 cores at 2.5 GHz and 11 at 0.8 GHz.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
