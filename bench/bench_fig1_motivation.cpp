// Fig. 1 — the paper's motivating example: four possible schedules of
// two tasks (2t and t at F0) on a dual-core machine whose cores run at
// f0 or 0.5·f0. We reproduce the time/energy table analytically from
// the power model and additionally replay schedules (a) and (b) on the
// simulator to show they match the closed-form values.
#include <cstdio>

#include "energy/power_model.hpp"
#include "sim/simulate.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace eewa;

int run() {
  // A two-rung ladder {f0, 0.5 f0}; the paper's p0/p1 come from the
  // same f·V² physics as the full model.
  const dvfs::FrequencyLadder ladder({2.0, 1.0});
  const energy::PowerModel model(ladder, {1.3, 1.0},
                                 /*dyn_coeff_w=*/4.0,
                                 /*core_static_w=*/1.0,
                                 /*floor_w=*/0.0);
  const double t = 1.0;  // the paper's unit of time
  const double p0 = model.core_power_w(0, true);
  const double p1 = model.core_power_w(1, true);

  std::printf("Fig. 1 — four schedules of tasks (2t, t) on two cores\n");
  std::printf("p0 = %.2f W (f0), p1 = %.2f W (0.5 f0), t = %.1f s\n\n", p0,
              p1, t);

  util::TablePrinter table(
      {"schedule", "c0 freq", "c1 freq", "exec time", "energy (J)",
       "vs (a)"});
  struct Row {
    const char* name;
    const char* c0;
    const char* c1;
    double time;
    double energy;
  };
  // (a) both at f0; idle core spins at p0 until the barrier.
  const Row a{"(a) both f0 (trad. stealing)", "f0", "f0", 2 * t,
              2 * p0 * 2 * t};
  // (b) c1 (running the small task) scaled to 0.5 f0: finishes at 2t too.
  const Row b{"(b) c1 at 0.5 f0 (EEWA's aim)", "f0", "0.5 f0", 2 * t,
              p0 * 2 * t + p1 * 2 * t};
  // (c) big task mis-scheduled onto the slow core.
  const Row c{"(c) big task on slow c1", "f0", "0.5 f0", 4 * t,
              p0 * 4 * t + p1 * 4 * t};
  // (d) both cores scaled down.
  const Row d{"(d) both at 0.5 f0", "0.5 f0", "0.5 f0", 4 * t,
              2 * p1 * 4 * t};

  for (const Row& r : {a, b, c, d}) {
    char vs[32];
    std::snprintf(vs, sizeof(vs), "%+.1f%%",
                  100.0 * (r.energy / a.energy - 1.0));
    table.add(r.name, r.c0, r.c1, r.time, r.energy, vs);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape check: (b) saves energy at identical makespan; (c) and (d)\n"
      "lose both time and energy — exactly the paper's argument.\n\n");

  // Replay (a) and (b) through the simulator: one heavy task (2t) and
  // one light task (t), Cilk (both f0) vs EEWA after its measurement
  // batch converges to the (b) configuration.
  sim::SimOptions opt;
  opt.cores = 2;
  opt.power = model;
  opt.seed = 1;
  trace::TaskTrace trace;
  trace.name = "fig1";
  trace.class_names = {"big", "small"};
  for (int i = 0; i < 6; ++i) {
    trace::Batch batch;
    batch.tasks.push_back({0, 2 * t, 0, 0});
    batch.tasks.push_back({1, t, 0, 0});
    trace.batches.push_back(batch);
  }
  sim::CilkPolicy cilk;
  core::ControllerOptions copts;
  // The textbook schedule has zero slack: the scaled-down small task
  // finishes exactly at the barrier, so plan without a safety margin.
  copts.adjuster.time_margin = 0.0;
  sim::EewaPolicy eewa(trace.class_names, copts);
  const auto ra = sim::simulate(trace, cilk, opt);
  const auto rb = sim::simulate(trace, eewa, opt);
  std::printf("Simulator replay over %zu batches:\n", trace.batch_count());
  std::printf("  cilk : %.2f s, %.1f J\n", ra.time_s, ra.energy_j);
  std::printf("  eewa : %.2f s, %.1f J  (%.1f%% energy vs cilk)\n",
              rb.time_s, rb.energy_j,
              100.0 * (rb.energy_j / ra.energy_j - 1.0));
  return 0;
}

}  // namespace

int main() { return run(); }
