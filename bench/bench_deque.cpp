// Microbenchmarks of the runtime substrate: Chase–Lev deque operations,
// preference-list construction, and Algorithm 1's backtracking search
// across CC-table sizes (the Table III cost in isolation).
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "core/cc_table.hpp"
#include "core/ktuple_search.hpp"
#include "core/preference_list.hpp"
#include "runtime/chase_lev_deque.hpp"
#include "util/rng.hpp"

namespace {

using namespace eewa;

void BM_DequePushPop(benchmark::State& state) {
  rt::ChaseLevDeque<int*> deque;
  int value = 0;
  for (auto _ : state) {
    deque.push(&value);
    benchmark::DoNotOptimize(deque.pop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DequePushPop);

void BM_DequePushBulkPopAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rt::ChaseLevDeque<int*> deque;
  int value = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) deque.push(&value);
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(deque.pop());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 2);
}
BENCHMARK(BM_DequePushBulkPopAll)->Arg(64)->Arg(1024);

void BM_DequeStealContended(benchmark::State& state) {
  // One owner pushing, one thief stealing throughout the measurement.
  rt::ChaseLevDeque<int*> deque;
  int value = 0;
  std::atomic<bool> stop{false};
  std::thread thief([&] {
    while (!stop.load(std::memory_order_acquire)) {
      benchmark::DoNotOptimize(deque.steal());
    }
  });
  for (auto _ : state) {
    deque.push(&value);
    benchmark::DoNotOptimize(deque.pop());
  }
  stop.store(true, std::memory_order_release);
  thief.join();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DequeStealContended);

void BM_PreferenceListBuild(benchmark::State& state) {
  const auto u = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t g = 0; g < u; ++g) {
      benchmark::DoNotOptimize(core::preference_list(g, u));
    }
  }
}
BENCHMARK(BM_PreferenceListBuild)->Arg(2)->Arg(4)->Arg(8);

core::CCTable random_cc(std::size_t r, std::size_t k, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> slowdown(r, 1.0);
  for (std::size_t j = 1; j < r; ++j) {
    slowdown[j] = slowdown[j - 1] * rng.uniform(1.2, 1.6);
  }
  std::vector<std::vector<double>> rows(r, std::vector<double>(k));
  for (std::size_t i = 0; i < k; ++i) {
    const double base = rng.uniform(0.3, 3.0);
    for (std::size_t j = 0; j < r; ++j) rows[j][i] = base * slowdown[j];
  }
  return core::CCTable::from_matrix(rows);
}

void BM_BacktrackingSearch(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto cc = random_cc(r, k, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::search_backtracking(cc, 16));
  }
}
BENCHMARK(BM_BacktrackingSearch)
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({8, 16});

void BM_ExhaustiveSearch(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto cc = random_cc(r, k, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::search_exhaustive(cc, 16));
  }
}
BENCHMARK(BM_ExhaustiveSearch)->Args({4, 4})->Args({4, 8})->Args({8, 8});

}  // namespace

BENCHMARK_MAIN();
