// Fig. 9 — scalability: normalized execution time and energy of DMC
// under Cilk, Cilk-D and EEWA on machines with 4, 8, 12 and 16 cores.
//
// Expected shape (paper): at 4 cores every core stays at the top
// frequency (no saving, negligible overhead); savings grow with the core
// count, reaching ~24% at 12 cores and more at 16.
#include <cstdio>
#include <string>

#include "sim/simulate.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

int run(int argc, char** argv) {
  std::string bench_name = "DMC";
  std::size_t batches = 40;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--benchmark" && i + 1 < argc) bench_name = argv[++i];
    if (arg == "--batches" && i + 1 < argc) batches = std::stoul(argv[++i]);
  }
  const auto cal = wl::reference_calibration();
  const auto trace =
      wl::build_trace(wl::find_benchmark(bench_name), cal, batches, 2024);

  std::printf(
      "Fig. 9 — %s scalability: normalized time & energy vs Cilk\n"
      "(%zu batches)\n\n",
      bench_name.c_str(), batches);

  util::TablePrinter table({"cores", "time cilk", "time cilk-d",
                            "time eewa", "energy cilk", "energy cilk-d",
                            "energy eewa", "eewa saving"});
  util::CsvWriter csv;
  csv.row({"cores", "policy", "time_s", "energy_j", "norm_time",
           "norm_energy"});
  for (std::size_t cores : {4u, 8u, 12u, 16u}) {
    sim::SimOptions opt;
    opt.cores = cores;
    opt.seed = 42;
    sim::CilkPolicy cilk;
    sim::CilkDPolicy cilkd;
    sim::EewaPolicy eewa(trace.class_names);
    const auto a = sim::simulate(trace, cilk, opt);
    const auto d = sim::simulate(trace, cilkd, opt);
    const auto e = sim::simulate(trace, eewa, opt);
    table.add(cores, 1.0, d.time_s / a.time_s, e.time_s / a.time_s, 1.0,
              d.energy_j / a.energy_j, e.energy_j / a.energy_j,
              util::TablePrinter::fixed(
                  100.0 * (1.0 - e.energy_j / a.energy_j), 1) +
                  "%");
    for (const auto* r : {&a, &d, &e}) {
      csv.row_values(cores, r->policy, r->time_s, r->energy_j,
                     r->time_s / a.time_s, r->energy_j / a.energy_j);
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("CSV:\n%s\n", csv.str().c_str());
  std::printf(
      "Paper's shape: no saving at 4 cores (all cores stay fast),\n"
      "~23.8%% saving at 12 cores, growing with the core count.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
