// Fig. 7 — performance on a *fixed* asymmetric configuration. For each
// benchmark the core frequencies are frozen to the configuration EEWA
// used most often ("the most often used frequency configurations in
// different batches"), then Cilk (random stealing) and WATS
// (workload-aware stealing, no DVFS) run on that machine while EEWA runs
// with its usual per-batch DVFS.
//
// Expected shape (paper): Cilk 1.17x-2.92x of EEWA's time, WATS
// 1.05x-1.24x of EEWA's time.
#include <cstdio>
#include <string>

#include "sim/simulate.hpp"
#include "util/table_printer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace eewa;

int run(int argc, char** argv) {
  std::size_t batches = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--batches" && i + 1 < argc) {
      batches = std::stoul(argv[++i]);
    }
  }
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 42;
  const auto cal = wl::reference_calibration();

  std::printf(
      "Fig. 7 — exec time on the EEWA-chosen asymmetric configuration,\n"
      "normalized to EEWA (%zu batches)\n\n",
      batches);

  util::TablePrinter table({"benchmark", "config (cores@rung)", "cilk/eewa",
                            "wats/eewa", "eewa"});
  for (const auto& bench : wl::suite()) {
    const auto trace = wl::build_trace(bench, cal, batches, 2024);

    // Pass 1: find EEWA's modal configuration.
    sim::EewaPolicy probe(trace.class_names);
    sim::Machine machine(opt);
    double tt = 0.0;
    for (const auto& b : trace.batches) {
      tt = machine.run_batch(probe, b, tt);
    }
    const auto rungs = probe.modal_rungs(machine);
    std::vector<std::size_t> per_rung(4, 0);
    for (auto r : rungs) ++per_rung[r];
    std::string config;
    for (std::size_t j = 0; j < per_rung.size(); ++j) {
      if (per_rung[j] == 0) continue;
      if (!config.empty()) config += " ";
      config += std::to_string(per_rung[j]) + "@F" + std::to_string(j);
    }

    // Pass 2: the three schedulers.
    sim::CilkPolicy cilk(rungs);
    sim::WatsPolicy wats(rungs, trace.class_names);
    sim::EewaPolicy eewa(trace.class_names);
    const auto rc = sim::simulate(trace, cilk, opt);
    const auto rw = sim::simulate(trace, wats, opt);
    const auto re = sim::simulate(trace, eewa, opt);
    table.add(bench.name, config,
              util::TablePrinter::fixed(rc.time_s / re.time_s, 2) + "x",
              util::TablePrinter::fixed(rw.time_s / re.time_s, 2) + "x",
              "1.00x");
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Paper's bands: Cilk 1.17x-2.92x, WATS 1.05x-1.24x of EEWA's time.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
