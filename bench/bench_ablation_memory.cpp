// Ablation: the memory-aware planning extension (paper §IV-D future
// work). A memory-bound batch application runs under (a) Cilk, (b) the
// paper's EEWA, whose cache-miss gate falls back to plain stealing at
// F0, and (c) EEWA with effective-slowdown CC planning, which keeps
// planning because memory-stalled tasks barely slow down at low
// frequency. Also sweeps the stall fraction alpha to show where the
// extension's advantage comes from.
#include <cstdio>

#include "sim/simulate.hpp"
#include "trace/synthetic.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace eewa;

trace::TaskTrace memory_trace(double alpha, double cmi) {
  trace::SyntheticSpec spec;
  spec.name = "membound";
  spec.classes = {{"mem_heavy", 6, 0.08, 0.1, cmi, alpha},
                  {"mem_light", 40, 0.008, 0.1, cmi, alpha}};
  spec.batches = 30;
  spec.seed = 5;
  return trace::generate(spec);
}

int run() {
  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 9;

  std::printf(
      "Memory-aware planning ablation (synthetic memory-bound batches,\n"
      "16 cores, 30 batches)\n\n");

  util::TablePrinter table({"alpha", "scheduler", "time (s)", "energy (J)",
                            "vs cilk"});
  for (const double alpha : {0.0, 0.3, 0.5, 0.7, 0.9}) {
    // CMI above the gate threshold once tasks are meaningfully stalled.
    const double cmi = alpha > 0.0 ? 0.08 : 0.001;
    const auto t = memory_trace(alpha, cmi);
    sim::CilkPolicy cilk;
    const auto rc = sim::simulate(t, cilk, opt);

    sim::EewaPolicy gated(t.class_names);
    const auto rg = sim::simulate(t, gated, opt);

    core::ControllerOptions copts;
    copts.adjuster.memory_aware = true;
    sim::EewaPolicy aware(t.class_names, copts);
    const auto ra = sim::simulate(t, aware, opt);

    auto row = [&](const char* name, const sim::SimResult& r) {
      table.add(alpha, name, r.time_s, r.energy_j,
                util::TablePrinter::fixed(
                    100.0 * (r.energy_j / rc.energy_j - 1.0), 1) +
                    "%");
    };
    row("cilk", rc);
    row(gated.controller().memory_bound_mode() ? "eewa (gated)" : "eewa",
        rg);
    row("eewa memory-aware", ra);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: with alpha = 0 all EEWA variants coincide; as\n"
      "alpha grows the paper's gate forfeits savings while the\n"
      "memory-aware planner keeps (and grows) them, since stalled tasks\n"
      "lose little time at low frequency.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
