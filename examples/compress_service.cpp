// A batch compression service on the real work-stealing runtime: every
// "request wave" (batch) mixes a few large archives with many small
// documents, compressed with the library's real bzip2-style kernel. The
// example runs the same waves under plain Cilk-style stealing and under
// EEWA, then compares makespans and model-metered energy.
//
// Usage: ./examples/compress_service [waves] [workers]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "energy/model_meter.hpp"
#include "energy/power_model.hpp"
#include "runtime/runtime.hpp"
#include "workloads/bzip2ish.hpp"
#include "workloads/data_gen.hpp"

using namespace eewa;

namespace {

std::vector<rt::TaskDesc> make_wave(int wave) {
  std::vector<rt::TaskDesc> tasks;
  const auto seed_base = static_cast<std::uint64_t>(wave) * 1000;
  for (int i = 0; i < 2; ++i) {
    tasks.push_back({"compress_archive", [seed = seed_base + i] {
                       const auto data = wl::markov_text(60000, seed);
                       auto out = wl::bzip2ish_compress_block(data);
                       (void)out;
                     }});
  }
  for (int i = 0; i < 12; ++i) {
    tasks.push_back({"compress_document", [seed = seed_base + 100 + i] {
                       const auto data = wl::markov_text(6000, seed);
                       auto out = wl::bzip2ish_compress_block(data);
                       (void)out;
                     }});
  }
  return tasks;
}

struct RunStats {
  double seconds = 0.0;
  double joules = 0.0;
  std::size_t steals = 0;
};

RunStats run_service(rt::SchedulerKind kind, int waves,
                     std::size_t workers) {
  rt::RuntimeOptions options;
  options.workers = workers;
  options.kind = kind;
  rt::Runtime runtime(options);
  const auto power = energy::PowerModel::opteron8380_server();
  energy::ModelMeter meter(power, *runtime.trace_backend());

  RunStats stats;
  meter.start();
  for (int wave = 0; wave < waves; ++wave) {
    stats.seconds += runtime.run_batch(make_wave(wave));
  }
  stats.joules = meter.stop_joules();
  stats.steals = runtime.total_steals();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const int waves = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::size_t workers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;

  std::printf("compress service: %d waves x 14 requests, %zu workers\n\n",
              waves, workers);
  const RunStats cilk = run_service(rt::SchedulerKind::kCilk, waves, workers);
  const RunStats eewa = run_service(rt::SchedulerKind::kEewa, waves, workers);

  std::printf("%-6s %10s %12s %8s\n", "sched", "time (s)", "energy (J)",
              "steals");
  std::printf("%-6s %10.3f %12.1f %8zu\n", "cilk", cilk.seconds,
              cilk.joules, cilk.steals);
  std::printf("%-6s %10.3f %12.1f %8zu\n", "eewa", eewa.seconds,
              eewa.joules, eewa.steals);
  std::printf("\nmodeled energy delta: %+.1f%% at %+.1f%% time\n",
              100.0 * (eewa.joules / cilk.joules - 1.0),
              100.0 * (eewa.seconds / cilk.seconds - 1.0));
  std::printf(
      "(energy comes from the DVFS-trace model meter; on cpufreq+RAPL\n"
      "hardware swap in SysfsBackend and RaplMeter for real readings)\n");
  return 0;
}
