// Fleet simulator explorer: one deterministic fleet run from the CLI.
//
//   fleet_explorer [--machines N] [--cores C] [--duration S] [--load L]
//                  [--epoch S] [--mean-work S] [--policy NAME]
//                  [--placement NAME] [--seed N] [--initial-state K]
//                  [--park-after N] [--max-backlog S] [--threads N]
//                  [--quiet]
//
// Prints the FleetReport summary. The same flags always produce the
// same report bit for bit — at every --threads value — so diff two
// runs to prove it:
//
//   fleet_explorer --machines 64 --duration 3.5 --load 0.5  # ~11M tasks
//   fleet_explorer --threads 8 ...   # same bytes, less wall time
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "sim/fleet.hpp"
#include "trace/arrivals.hpp"

using namespace eewa;

int main(int argc, char** argv) {
  sim::FleetOptions opts;
  opts.machines = 8;
  opts.machine.cores = 16;
  double duration_s = 0.5;
  double load = 0.5;
  double mean_work_s = 100e-6;
  std::uint64_t seed = 1;
  bool quiet = false;

  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::puts(
          "fleet_explorer: one deterministic fleet run\n"
          "  --machines N      fleet size (default 8)\n"
          "  --cores C         cores per machine (default 16)\n"
          "  --duration S      stream duration in seconds (default 0.5)\n"
          "  --load L          offered load fraction (default 0.5)\n"
          "  --epoch S         routing/consolidation epoch (default 0.02)\n"
          "  --mean-work S     light-class mean task work (default 100e-6)\n"
          "  --policy NAME     per-machine policy (default eewa)\n"
          "  --placement NAME  placement tier (default least-loaded)\n"
          "  --seed N          stream + machine seed (default 1)\n"
          "  --initial-state K 0 = powered, K = parked in ladder[K-1]\n"
          "  --park-after N    idle epochs before parking (default 2)\n"
          "  --max-backlog S   shed above this per-core backlog (0 = never)\n"
          "  --threads N       worker threads for machine epochs: 1 = serial\n"
          "                    (default), 0 = hardware concurrency, N = N.\n"
          "                    The report is bit-identical for every value.\n"
          "  --quiet           one diffable summary line");
      return 0;
    }
    if (arg == "--machines") {
      opts.machines = std::strtoull(next(i), nullptr, 10);
    } else if (arg == "--cores") {
      opts.machine.cores = std::strtoull(next(i), nullptr, 10);
    } else if (arg == "--duration") {
      duration_s = std::strtod(next(i), nullptr);
    } else if (arg == "--load") {
      load = std::strtod(next(i), nullptr);
    } else if (arg == "--epoch") {
      opts.epoch_s = std::strtod(next(i), nullptr);
    } else if (arg == "--mean-work") {
      mean_work_s = std::strtod(next(i), nullptr);
    } else if (arg == "--policy") {
      opts.policy = next(i);
    } else if (arg == "--placement") {
      opts.placement = next(i);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(i), nullptr, 10);
    } else if (arg == "--initial-state") {
      opts.initial_state = std::strtoull(next(i), nullptr, 10);
    } else if (arg == "--park-after") {
      opts.park_after_epochs = std::strtoull(next(i), nullptr, 10);
    } else if (arg == "--max-backlog") {
      opts.max_backlog_s = std::strtod(next(i), nullptr);
    } else if (arg == "--threads") {
      opts.threads = std::strtoull(next(i), nullptr, 10);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  trace::ArrivalSpec arr;
  arr.name = "fleet_explorer";
  arr.seed = seed;
  arr.cores = opts.machines * opts.machine.cores;
  arr.duration_s = duration_s;
  arr.load = load;
  trace::ArrivalClassSpec light;
  light.name = "light";
  light.weight = 1.0;
  light.mean_work_s = mean_work_s;
  light.cv = 0.3;
  trace::ArrivalClassSpec heavy;
  heavy.name = "heavy";
  heavy.weight = 0.25;
  heavy.mean_work_s = 4.0 * mean_work_s;
  heavy.cv = 0.2;
  heavy.mem_alpha = 0.1;
  arr.classes = {light, heavy};
  opts.machine.seed = seed;

  try {
    const auto report = sim::Fleet(opts, arr).run();
    if (quiet) {
      std::printf(
          "offered=%zu completed=%zu shed=%zu parks=%zu wakes=%zu "
          "energy=%.17g horizon=%.17g\n",
          report.offered, report.completed, report.shed, report.parks,
          report.wakes, report.energy_j, report.horizon_s);
    } else {
      std::fputs(report.to_string().c_str(), stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_explorer: %s\n", e.what());
    return 1;
  }
  return 0;
}
