// Deterministic fuzz driver for the scheduler + search stack.
//
// Every case is a pure function of (mode, seed): the seed expands into a
// random CC table (search oracle), a real-runtime workload (runtime
// oracle), a simulated workload (energy oracle) or an open-loop arrival
// stream (service oracle), runs through the corresponding invariant
// catalogue (see docs/testing.md), and prints one line per case. Exit
// code 1 when any invariant fails.
//
// Usage:
//   fuzz_explorer [--mode search|search-large|runtime|energy|service|
//                         fleet|hetero|all]
//                 [--seed N]
//                 [--count N] [--replay N] [--shrink] [--out FILE]
//                 [--verbose]
//
//   --seed N    base seed (default 1)
//   --count N   seeds per selected mode (default 1; sweeps N
//               consecutive seeds from the base)
//   --replay N  shorthand for --seed N --count 1 --verbose
//   --shrink    on failure, bisect the spec to a minimal repro
//   --out FILE  write failing seeds + shrunk repro to FILE (the CI
//               artifact); only written on failure
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "testing/fuzz.hpp"

using namespace eewa;

namespace {

void describe_failure(std::string& out, const testing::FuzzVerdict& v) {
  out += "mode=" + std::string(testing::mode_name(v.mode)) +
         " seed=" + std::to_string(v.seed) + "\n";
  out += "failure: " + v.failure + "\n";
  out += "spec: " + v.spec_summary + "\n";
  out += "repro: " + v.repro_command() + "\n";
  if (!v.shrunk_summary.empty()) {
    out += "shrunk spec: " + v.shrunk_summary + "\n";
    out += "shrunk failure: " + v.shrunk_failure + "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode_arg = "all";
  std::uint64_t seed = 1;
  std::size_t count = 1;
  bool do_shrink = false;
  bool verbose = false;
  std::string out_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--mode") {
      mode_arg = next();
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--count") {
      count = std::stoul(next());
    } else if (arg == "--replay") {
      seed = std::stoull(next());
      count = 1;
      verbose = true;
    } else if (arg == "--shrink") {
      do_shrink = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--out") {
      out_file = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  std::vector<testing::FuzzMode> modes;
  if (mode_arg == "all") {
    modes = {testing::FuzzMode::kSearch, testing::FuzzMode::kSearchLarge,
             testing::FuzzMode::kRuntime, testing::FuzzMode::kEnergy,
             testing::FuzzMode::kService, testing::FuzzMode::kFleet,
             testing::FuzzMode::kHetero};
  } else if (mode_arg == "search") {
    modes = {testing::FuzzMode::kSearch};
  } else if (mode_arg == "search-large") {
    modes = {testing::FuzzMode::kSearchLarge};
  } else if (mode_arg == "runtime") {
    modes = {testing::FuzzMode::kRuntime};
  } else if (mode_arg == "energy") {
    modes = {testing::FuzzMode::kEnergy};
  } else if (mode_arg == "service") {
    modes = {testing::FuzzMode::kService};
  } else if (mode_arg == "fleet") {
    modes = {testing::FuzzMode::kFleet};
  } else if (mode_arg == "hetero") {
    modes = {testing::FuzzMode::kHetero};
  } else {
    std::fprintf(stderr, "unknown mode: %s\n", mode_arg.c_str());
    return 2;
  }

  std::size_t ran = 0;
  std::vector<testing::FuzzVerdict> failures;
  for (const auto mode : modes) {
    for (std::size_t i = 0; i < count; ++i) {
      auto v = do_shrink ? testing::shrink(mode, seed + i)
                         : testing::run_one(mode, seed + i);
      ++ran;
      if (v.ok) {
        if (verbose) {
          std::printf("ok    [%s] seed=%llu\n  spec: %s\n",
                      testing::mode_name(mode),
                      static_cast<unsigned long long>(v.seed),
                      v.spec_summary.c_str());
        }
        continue;
      }
      std::string report;
      describe_failure(report, v);
      std::printf("FAIL  %s", report.c_str());
      failures.push_back(std::move(v));
    }
  }

  std::printf("%zu case%s, %zu failure%s\n", ran, ran == 1 ? "" : "s",
              failures.size(), failures.size() == 1 ? "" : "s");

  if (!failures.empty() && !out_file.empty()) {
    std::string report;
    for (const auto& v : failures) {
      describe_failure(report, v);
      report += "\n";
    }
    std::ofstream out(out_file);
    out << report;
  }
  return failures.empty() ? 0 : 1;
}
