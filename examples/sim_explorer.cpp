// Interactive experiment driver: run any Table-II benchmark under any
// scheduler on any machine size, with one line of output per run —
// handy for sweeping configurations beyond the canned paper figures.
//
// Usage: ./examples/sim_explorer [--benchmark NAME] [--policy cilk|cilk-d|
//        wats|eewa] [--cores N] [--batches N] [--seed N] [--margin X]
//        [--fail-p P] [--drift-p P] [--stuck LIST]
//
// --fail-p/--drift-p/--stuck inject seeded DVFS actuation faults
// (transient write failures, one-rung drift, permanently stuck cores);
// under --policy eewa the run then prints the controller's HealthReport
// (retries, reconciliations, degradations).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "obs/tracer.hpp"
#include "sim/simulate.hpp"
#include "workloads/suite.hpp"

using namespace eewa;

int main(int argc, char** argv) {
  std::string bench_name = "MD5";
  std::string policy_name = "eewa";
  std::size_t cores = 16;
  std::size_t batches = 20;
  std::uint64_t seed = 42;
  double margin = 0.15;
  bool metrics = false;
  std::string trace_out;
  dvfs::FaultSpec faults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--benchmark") bench_name = next();
    else if (arg == "--policy") policy_name = next();
    else if (arg == "--cores") cores = std::stoul(next());
    else if (arg == "--batches") batches = std::stoul(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--margin") margin = std::stod(next());
    else if (arg == "--metrics") metrics = true;
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--fail-p") faults.transient_failure_p = std::stod(next());
    else if (arg == "--drift-p") faults.drift_p = std::stod(next());
    else if (arg == "--stuck") {
      // Comma-separated core list, e.g. --stuck 0,3,7.
      std::string list = next();
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t end = list.find(',', pos);
        if (end == std::string::npos) end = list.size();
        faults.stuck_cores.push_back(std::stoul(list.substr(pos, end - pos)));
        pos = end + 1;
      }
    } else {
      std::printf(
          "usage: sim_explorer [--benchmark B] [--policy P] [--cores N]\n"
          "                    [--batches N] [--seed N] [--margin X]\n"
          "                    [--metrics] [--trace-out FILE[.json|.csv]]\n"
          "                    [--fail-p P] [--drift-p P] [--stuck LIST]\n"
          "benchmarks:");
      for (const auto& b : wl::suite()) std::printf(" %s", b.name.c_str());
      std::printf("\npolicies: cilk cilk-d sharing ondemand wats eewa\n");
      return arg == "--help" ? 0 : 1;
    }
  }

  const auto trace = wl::build_trace(wl::find_benchmark(bench_name),
                                     wl::reference_calibration(), batches,
                                     seed);
  sim::SimOptions opt;
  opt.cores = cores;
  opt.seed = seed;
  faults.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  opt.faults = faults;

  std::unique_ptr<obs::EventTracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<obs::EventTracer>(cores + 1);
    for (std::size_t c = 0; c < cores; ++c) {
      tracer->set_track_name(c, "core " + std::to_string(c));
    }
    tracer->set_track_name(cores, "control");
    tracer->set_class_names(trace.class_names);
    opt.tracer = tracer.get();
  }

  sim::SimResult res;
  std::string health;
  if (policy_name == "cilk" || policy_name == "cilk-d" ||
      policy_name == "sharing" || policy_name == "ondemand") {
    res = sim::simulate_named(trace, policy_name, opt);
  } else if (policy_name == "wats") {
    // Fixed asymmetric split: 1/3 fast cores, the rest at the bottom.
    std::vector<std::size_t> rungs(cores, opt.ladder().slowest_index());
    for (std::size_t c = 0; c < cores / 3 + 1; ++c) rungs[c] = 0;
    sim::WatsPolicy p(rungs, trace.class_names);
    res = sim::simulate(trace, p, opt);
  } else if (policy_name == "eewa") {
    core::ControllerOptions copts;
    copts.adjuster.time_margin = margin;
    sim::EewaPolicy p(trace.class_names, copts);
    res = sim::simulate(trace, p, opt);
    health = p.controller().health().to_string();
  } else {
    std::fprintf(stderr, "unknown policy %s\n", policy_name.c_str());
    return 1;
  }

  std::printf(
      "%s/%s cores=%zu batches=%zu seed=%llu: time %.4f s, energy %.1f J "
      "(cores %.1f J), steals %zu, transitions %zu\n",
      bench_name.c_str(), res.policy.c_str(), cores, batches,
      static_cast<unsigned long long>(seed), res.time_s, res.energy_j,
      res.cpu_energy_j, res.steals, res.transitions);
  for (std::size_t j = 0; j < res.rung_residency_s.size(); ++j) {
    std::printf("  F%zu (%.1f GHz): %.3f core-seconds\n", j,
                opt.ladder().ghz(j), res.rung_residency_s[j]);
  }
  if (!health.empty()) std::printf("  health: %s\n", health.c_str());
  if (metrics) {
    std::printf(
        "  batch  span_ms  ovh_us  steals  probes  trans  energy_J\n");
    for (std::size_t b = 0; b < res.batches.size(); ++b) {
      const auto& bs = res.batches[b];
      std::printf("  %5zu %8.3f %7.1f %7zu %7zu %6zu %9.2f\n", b,
                  bs.span_s * 1e3, bs.overhead_s * 1e6, bs.steals,
                  bs.probes, bs.transitions, bs.energy_j);
    }
  }
  if (tracer != nullptr) {
    const bool csv = trace_out.size() > 4 &&
                     trace_out.compare(trace_out.size() - 4, 4, ".csv") == 0;
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    out << (csv ? tracer->csv() : tracer->chrome_json());
    std::printf("  trace: %zu events -> %s (%llu dropped)\n",
                tracer->event_count(), trace_out.c_str(),
                static_cast<unsigned long long>(tracer->dropped()));
  }
  return 0;
}
