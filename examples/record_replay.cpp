// The profile-once, predict-anywhere workflow: run a real application
// on the thread runtime with trace recording on, then replay the
// recorded task trace on simulated machines of different sizes and
// under different schedulers to predict time and energy before touching
// production hardware.
//
// Usage: ./examples/record_replay [batches]
#include <cstdio>
#include <cstdlib>

#include "runtime/runtime.hpp"
#include "sim/simulate.hpp"
#include "util/table_printer.hpp"
#include "workloads/lzw.hpp"
#include "workloads/data_gen.hpp"
#include "workloads/sha1.hpp"

using namespace eewa;

namespace {

std::vector<rt::TaskDesc> application_batch(int batch) {
  // A mixed ingest pipeline: hash the large uploads, compress the rest.
  std::vector<rt::TaskDesc> tasks;
  const auto base = static_cast<std::uint64_t>(batch) * 7919;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back({"hash_upload", [seed = base + i] {
                       const auto data = wl::skewed_bytes(120000, seed);
                       (void)wl::sha1(data);
                     }});
  }
  for (int i = 0; i < 10; ++i) {
    tasks.push_back({"compress_doc", [seed = base + 100 + i] {
                       const auto data = wl::markov_text(9000, seed);
                       (void)wl::lzw_compress(data);
                     }});
  }
  return tasks;
}

}  // namespace

int main(int argc, char** argv) {
  const int batches = argc > 1 ? std::atoi(argv[1]) : 6;

  // ---- 1. record on the real runtime --------------------------------
  rt::RuntimeOptions options;
  options.workers = 4;
  options.kind = rt::SchedulerKind::kCilk;  // record under plain stealing
  options.record_trace = true;
  rt::Runtime runtime(options);
  for (int b = 0; b < batches; ++b) {
    runtime.run_batch(application_batch(b));
  }
  const trace::TaskTrace recorded = runtime.recorded_trace();
  std::printf(
      "recorded %zu tasks over %zu batches on the real runtime "
      "(%zu classes)\n",
      recorded.task_count(), recorded.batch_count(),
      recorded.class_count());
  std::printf("trace CSV is %zu bytes (TaskTrace::to_csv/from_csv)\n\n",
              recorded.to_csv().size());

  // ---- 2. replay on candidate deployments ----------------------------
  util::TablePrinter table({"machine", "scheduler", "time (s)",
                            "energy (J)", "vs cilk"});
  for (std::size_t cores : {4u, 8u, 16u}) {
    sim::SimOptions opt;
    opt.cores = cores;
    opt.seed = 1;
    sim::CilkPolicy cilk;
    const auto rc = sim::simulate(recorded, cilk, opt);
    sim::EewaPolicy eewa(recorded.class_names);
    const auto re = sim::simulate(recorded, eewa, opt);
    char machine[32];
    std::snprintf(machine, sizeof(machine), "%zu-core server", cores);
    table.add(machine, "cilk", rc.time_s, rc.energy_j, "-");
    table.add(machine, "eewa", re.time_s, re.energy_j,
              util::TablePrinter::fixed(
                  100.0 * (re.energy_j / rc.energy_j - 1.0), 1) +
                  "%");
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "(replayed workloads are the *measured* normalized task times from\n"
      "step 1 — the §IV-D offline-profiling path, end to end)\n");
  return 0;
}
