// Quickstart: the smallest useful EEWA program.
//
// An iteration-based application submits batches of tagged tasks to the
// Runtime; the EEWA controller profiles the first batch at full speed,
// then plans per-batch core frequencies and c-groups. On machines with
// Linux cpufreq the plan drives real DVFS; elsewhere (like this demo) a
// recording backend captures the decisions and a model meter estimates
// the energy.
//
// Build & run:  ./examples/quickstart
#include <atomic>
#include <cstdio>

#include "energy/model_meter.hpp"
#include "energy/power_model.hpp"
#include "runtime/runtime.hpp"

using namespace eewa;

namespace {

// A deliberately lopsided workload: a few coarse "render" tasks pin the
// critical path; many small "postprocess" tasks fill in.
void spin_for(int units) {
  volatile std::uint64_t x = 0;
  for (int i = 0; i < units * 20000; ++i) x = x + static_cast<std::uint64_t>(i);
  (void)x;
}

std::vector<rt::TaskDesc> make_batch(std::atomic<int>& done) {
  std::vector<rt::TaskDesc> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({"render_frame", [&done] {
                       spin_for(40);
                       done.fetch_add(1, std::memory_order_relaxed);
                     }});
  }
  for (int i = 0; i < 24; ++i) {
    tasks.push_back({"postprocess_tile", [&done] {
                       spin_for(4);
                       done.fetch_add(1, std::memory_order_relaxed);
                     }});
  }
  return tasks;
}

}  // namespace

int main() {
  rt::RuntimeOptions options;
  options.workers = 4;
  options.kind = rt::SchedulerKind::kEewa;
  rt::Runtime runtime(options);

  // Meter energy with the power model over the recorded DVFS trace
  // (swap in energy::RaplMeter on hardware with powercap support).
  const auto power = energy::PowerModel::opteron8380_server();
  energy::ModelMeter meter(power, *runtime.trace_backend());

  std::atomic<int> done{0};
  meter.start();
  for (int batch = 0; batch < 4; ++batch) {
    const double span = runtime.run_batch(make_batch(done));
    const auto& plan = runtime.controller().plan();
    std::printf("batch %d: %.1f ms, next plan: %s (%s)\n", batch,
                span * 1e3, plan.layout.to_string().c_str(),
                plan.planned ? "planned" : "measurement/fallback");
  }
  const double joules = meter.stop_joules();

  std::printf("\nran %d tasks in %zu batches, %zu steals\n", done.load(),
              runtime.batches_run(), runtime.total_steals());
  std::printf("ideal iteration time T = %.1f ms\n",
              runtime.controller().ideal_time_s() * 1e3);
  std::printf("modeled energy: %.1f J (adjuster overhead %.1f us)\n",
              joules, runtime.controller().adjust_overhead_us());
  return 0;
}
