// A checksum farm on the simulated 16-core server: batches of MD5/SHA-1
// "file" digests stream through EEWA, and the example prints the live
// c-group evolution (the Fig. 8 view) plus the running energy meter —
// what an operator dashboard for an EEWA deployment would show.
//
// Usage: ./examples/hash_farm [batches] [benchmark]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulate.hpp"
#include "util/histogram.hpp"
#include "workloads/suite.hpp"

using namespace eewa;

int main(int argc, char** argv) {
  const std::size_t batches =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;
  const std::string bench_name = argc > 2 ? argv[2] : "SHA-1";

  const auto& bench = wl::find_benchmark(bench_name);
  const auto trace =
      wl::build_trace(bench, wl::reference_calibration(), batches, 7);

  sim::SimOptions opt;
  opt.cores = 16;
  opt.seed = 99;
  sim::EewaPolicy eewa(trace.class_names);
  sim::Machine machine(opt);

  std::printf("hash farm — %s, 16 cores, %zu batches\n", bench_name.c_str(),
              batches);
  std::printf("%-6s %-26s %10s %12s\n", "batch", "cores @ GHz", "span(ms)",
              "energy(J)");

  double now = 0.0;
  for (std::size_t b = 0; b < trace.batches.size(); ++b) {
    now = machine.run_batch(eewa, trace.batches[b], now);
    const auto& st = machine.batch_stats().back();
    std::string config;
    for (std::size_t j = 0; j < st.cores_per_rung.size(); ++j) {
      if (st.cores_per_rung[j] == 0) continue;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s%zu@%.1f", config.empty() ? "" : " ",
                    st.cores_per_rung[j], machine.ladder().ghz(j));
      config += buf;
    }
    std::printf("%-6zu %-26s %10.2f %12.2f\n", b + 1, config.c_str(),
                st.span_s * 1e3, st.energy_j);
  }

  const auto res = machine.finish(now, "eewa", bench_name);
  std::printf("\ntotal: %.1f ms, %.1f J whole machine (%.1f J cores)\n",
              res.time_s * 1e3, res.energy_j, res.cpu_energy_j);

  // Frequency residency view (core-seconds at each rung).
  util::Histogram residency(0, static_cast<double>(res.rung_residency_s.size()),
                            res.rung_residency_s.size());
  for (std::size_t j = 0; j < res.rung_residency_s.size(); ++j) {
    residency.add(static_cast<double>(j), res.rung_residency_s[j]);
  }
  std::printf("\ncore-seconds per frequency rung (F0 fastest):\n%s",
              residency.ascii(30).c_str());
  std::printf("steals %zu, probes %zu, DVFS transitions %zu\n", res.steals,
              res.probes, res.transitions);
  return 0;
}
