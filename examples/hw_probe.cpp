// Hardware capability probe: reports what this host offers for running
// EEWA for real — cpufreq DVFS control, RAPL energy counters, perf_event
// task counters — and prints the recommended Runtime configuration.
//
// Usage: ./examples/hw_probe [sysfs_root] [powercap_root]
#include <cstdio>

#include "dvfs/sysfs_backend.hpp"
#include "energy/rapl_meter.hpp"
#include "runtime/pmc.hpp"
#include "util/cpu_affinity.hpp"

using namespace eewa;

int main(int argc, char** argv) {
  const std::string sysfs_root =
      argc > 1 ? argv[1] : "/sys/devices/system/cpu";
  const std::string powercap_root =
      argc > 2 ? argv[2] : "/sys/class/powercap";

  std::printf("EEWA hardware probe\n===================\n\n");
  std::printf("online CPUs: %zu\n\n", util::hardware_cpu_count());

  // --- DVFS ---------------------------------------------------------
  auto dvfs = dvfs::SysfsBackend::probe(sysfs_root);
  if (dvfs.has_value()) {
    std::printf("cpufreq DVFS: AVAILABLE (%zu cores, ladder %s, %s)\n",
                dvfs->core_count(), dvfs->ladder().to_string().c_str(),
                dvfs->userspace_governor()
                    ? "userspace governor"
                    : "max-frequency clamp fallback");
  } else {
    std::printf(
        "cpufreq DVFS: not available at %s\n"
        "  -> the Runtime will record frequency decisions in a\n"
        "     TraceBackend; energy comes from the power model.\n",
        sysfs_root.c_str());
  }

  // --- RAPL ----------------------------------------------------------
  energy::RaplMeter rapl(powercap_root);
  if (rapl.available()) {
    std::printf("RAPL energy:  AVAILABLE (%zu package domains)\n",
                rapl.domain_count());
  } else {
    std::printf(
        "RAPL energy:  not available at %s\n"
        "  -> use energy::ModelMeter over the DVFS trace instead.\n",
        powercap_root.c_str());
  }

  // --- perf_event -----------------------------------------------------
  rt::PerfCounters pmc;
  if (pmc.available()) {
    pmc.start();
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 1000000; ++i) x = x + static_cast<std::uint64_t>(i);
    (void)x;
    const auto sample = pmc.stop();
    std::printf(
        "perf_event:   AVAILABLE (sample: %llu instructions, %llu cache "
        "misses, cmi %.5f)\n",
        static_cast<unsigned long long>(sample.instructions),
        static_cast<unsigned long long>(sample.cache_misses),
        sample.cmi());
  } else {
    std::printf(
        "perf_event:   not available (perf_event_open denied)\n"
        "  -> the SS IV-D memory-bound gate falls back to cmi = 0\n"
        "     (treat-as-CPU-bound); pass alpha estimates explicitly if\n"
        "     you have them.\n");
  }

  // --- recommendation -------------------------------------------------
  std::printf("\nrecommended setup:\n");
  if (dvfs.has_value() && rapl.available()) {
    std::printf(
        "  full hardware mode: RuntimeOptions.backend = &sysfs_backend;\n"
        "  measure with energy::RaplMeter.\n");
  } else if (dvfs.has_value()) {
    std::printf(
        "  DVFS-only mode: real frequency scaling, model-based energy\n"
        "  (energy::ModelMeter over the backend's decisions).\n");
  } else {
    std::printf(
        "  simulation mode: develop against rt::Runtime with the trace\n"
        "  backend, reproduce experiments with the sim:: machine model\n"
        "  (see bench/ and examples/sim_explorer).\n");
  }
  return 0;
}
