// A minimal, dependency-free JSON parser — just enough to validate the
// tracer's chrome://tracing exports in tests and tools. Full JSON value
// model (object/array/string/number/bool/null), UTF-8 passthrough,
// \uXXXX escapes decoded for the BMP. Not built for speed; do not put
// it on a hot path.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eewa::obs {

/// Thrown by parse_json on malformed input (message includes offset).
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed JSON value.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Member that must exist; throws std::out_of_range otherwise.
  const JsonValue& at(std::string_view key) const;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws JsonParseError on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace eewa::obs
