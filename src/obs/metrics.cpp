#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace eewa::obs {

std::size_t exec_bucket(double exec_s) {
  // Called once per task (hot path): integer bit_width instead of the
  // libm log2 call; identical bucketing (floor(log2(us)) clamped).
  const double us = exec_s * 1e6;
  if (us < 1.0) return 0;
  if (us >= static_cast<double>(std::uint64_t{1} << (kExecBuckets - 1))) {
    return kExecBuckets - 1;
  }
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(us)) - 1);
}

double exec_bucket_lo_s(std::size_t i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i)) * 1e-6;
}

void ClassExecStats::observe(double exec_s, bool task_failed) {
  if (count == 0 || exec_s < min_s) min_s = exec_s;
  if (exec_s > max_s) max_s = exec_s;
  ++count;
  if (task_failed) ++failed;
  total_s += exec_s;
  ++hist[exec_bucket(exec_s)];
}

void ClassExecStats::merge(const ClassExecStats& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min_s < min_s) min_s = other.min_s;
  if (other.max_s > max_s) max_s = other.max_s;
  count += other.count;
  failed += other.failed;
  total_s += other.total_s;
  for (std::size_t i = 0; i < kExecBuckets; ++i) hist[i] += other.hist[i];
}

void WorkerCounters::reset(std::size_t groups) {
  tasks = spawns = idle_sweeps = failed_sweeps = probes = 0;
  pops.assign(groups, 0);
  steals.assign(groups, 0);
  robs.assign(groups, 0);
  classes.clear();
}

ClassExecStats& WorkerCounters::cls(std::size_t class_id) {
  if (class_id >= classes.size()) classes.resize(class_id + 1);
  return classes[class_id];
}

void BatchReport::merge(const BatchReport& other) {
  groups = std::max(groups, other.groups);
  tasks += other.tasks;
  spawns += other.spawns;
  pops += other.pops;
  local_steals += other.local_steals;
  cross_robs += other.cross_robs;
  failed_sweeps += other.failed_sweeps;
  probes += other.probes;
  idle_sweeps += other.idle_sweeps;
  auto grow_add = [](std::vector<std::uint64_t>& into,
                     const std::vector<std::uint64_t>& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
  };
  grow_add(pops_by_group, other.pops_by_group);
  grow_add(steals_by_group, other.steals_by_group);
  grow_add(robs_by_group, other.robs_by_group);
  if (classes.size() < other.classes.size()) {
    classes.resize(other.classes.size());
  }
  for (std::size_t i = 0; i < other.classes.size(); ++i) {
    classes[i].merge(other.classes[i]);
  }
}

std::string BatchReport::to_string(
    const std::vector<std::string>& class_names) const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "batch %zu: tasks=%llu (spawned %llu) pops=%llu "
                "steals=%llu robs=%llu failed_sweeps=%llu probes=%llu "
                "idle_sweeps=%llu\n",
                batch_index, static_cast<unsigned long long>(tasks),
                static_cast<unsigned long long>(spawns),
                static_cast<unsigned long long>(pops),
                static_cast<unsigned long long>(local_steals),
                static_cast<unsigned long long>(cross_robs),
                static_cast<unsigned long long>(failed_sweeps),
                static_cast<unsigned long long>(probes),
                static_cast<unsigned long long>(idle_sweeps));
  os << line;
  for (std::size_t g = 0; g < pops_by_group.size(); ++g) {
    std::snprintf(line, sizeof(line),
                  "  group %zu: pops=%llu steals=%llu robs=%llu\n", g,
                  static_cast<unsigned long long>(pops_by_group[g]),
                  static_cast<unsigned long long>(steals_by_group[g]),
                  static_cast<unsigned long long>(robs_by_group[g]));
    os << line;
  }
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const auto& cs = classes[c];
    if (cs.count == 0) continue;
    const std::string label = c < class_names.size()
                                  ? class_names[c]
                                  : "class " + std::to_string(c);
    std::snprintf(line, sizeof(line),
                  "  %s: n=%llu failed=%llu mean=%.3f ms min=%.3f ms "
                  "max=%.3f ms\n",
                  label.c_str(), static_cast<unsigned long long>(cs.count),
                  static_cast<unsigned long long>(cs.failed),
                  1e3 * cs.total_s / static_cast<double>(cs.count),
                  1e3 * cs.min_s, 1e3 * cs.max_s);
    os << line;
  }
  return os.str();
}

MetricsRegistry::MetricsRegistry(std::size_t workers)
    : counters_(workers) {
  for (auto& c : counters_) c->reset(1);
}

void MetricsRegistry::begin_batch(std::size_t groups) {
  groups_ = groups == 0 ? 1 : groups;
  for (auto& c : counters_) c->reset(groups_);
}

const BatchReport& MetricsRegistry::finalize_batch() {
  BatchReport r;
  r.batch_index = next_batch_++;
  r.groups = groups_;
  r.pops_by_group.assign(groups_, 0);
  r.steals_by_group.assign(groups_, 0);
  r.robs_by_group.assign(groups_, 0);
  for (const auto& padded : counters_) {
    const WorkerCounters& w = *padded;
    r.tasks += w.tasks;
    r.spawns += w.spawns;
    r.idle_sweeps += w.idle_sweeps;
    r.failed_sweeps += w.failed_sweeps;
    r.probes += w.probes;
    for (std::size_t g = 0; g < groups_ && g < w.pops.size(); ++g) {
      r.pops_by_group[g] += w.pops[g];
      r.steals_by_group[g] += w.steals[g];
      r.robs_by_group[g] += w.robs[g];
      r.pops += w.pops[g];
      r.local_steals += w.steals[g];
      r.cross_robs += w.robs[g];
    }
    if (r.classes.size() < w.classes.size()) {
      r.classes.resize(w.classes.size());
    }
    for (std::size_t i = 0; i < w.classes.size(); ++i) {
      r.classes[i].merge(w.classes[i]);
    }
  }
  reports_.push_back(std::move(r));
  return reports_.back();
}

BatchReport MetricsRegistry::totals() const {
  BatchReport total;
  total.batch_index = reports_.size();
  for (const auto& r : reports_) total.merge(r);
  return total;
}

}  // namespace eewa::obs
