// Low-overhead event tracer: per-track ring buffers of fixed-size
// events, exported as chrome://tracing / Perfetto JSON or CSV.
//
// Tracks are single-writer: the runtime gives each worker its own track
// (plus one control track for batch-level phases), the simulator one
// track per simulated core. Emission is gated twice:
//
//   - compile time: build with -DEEWA_ENABLE_TRACING=0 (CMake option
//     EEWA_TRACING=OFF) and every emitter folds to nothing;
//   - run time: enabled() is a relaxed atomic load; a constructed but
//     disabled tracer costs one predictable branch per call site.
//
// Rings overwrite their oldest events when full (dropped() reports how
// many); exporting is only valid while writers are quiescent — at a
// batch barrier or after the run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/aligned.hpp"

#ifndef EEWA_ENABLE_TRACING
#define EEWA_ENABLE_TRACING 1
#endif

namespace eewa::obs {

/// What an event records.
enum class EventKind : std::uint8_t {
  kTask,   ///< task span: a=class id, b=rung, c=1 when the task threw
  kSteal,  ///< successful steal within the thief's group: a=group, b=victim
  kRob,    ///< successful cross-group steal: a=victim group, b=victim
  kRung,   ///< DVFS transition: a=core, b=new rung
  kPhase,  ///< controller/runtime phase span: a=PhaseKind, c=detail
};

/// Controller / runtime phases traced as kPhase spans.
enum class PhaseKind : std::uint8_t {
  kPrepare = 0,    ///< prepare_batch: actuation + task distribution
  kProfile = 1,    ///< batch-barrier profile merge into the controller
  kPlan = 2,       ///< end_batch: profile sort + CC build + plan
  kSearch = 3,     ///< Algorithm 1 k-tuple search (detail = nodes visited)
  kActuate = 4,    ///< supervised DVFS actuation (detail = retries)
  kReconcile = 5,  ///< plan reconciliation (detail = failed cores)
  kBatch = 6,      ///< one whole batch (detail = batch index)
};

const char* phase_name(PhaseKind p);

/// One trace event. `dur_us < 0` marks an instant event.
struct TraceEvent {
  double ts_us = 0.0;
  double dur_us = -1.0;
  EventKind kind = EventKind::kTask;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
};

class EventTracer {
 public:
  static constexpr bool kCompiledIn = EEWA_ENABLE_TRACING != 0;

  /// `tracks` single-writer tracks, each a ring of `capacity` events.
  explicit EventTracer(std::size_t tracks, std::size_t capacity = 1 << 14);

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  std::size_t track_count() const { return tracks_.size(); }

  bool enabled() const {
    if constexpr (!kCompiledIn) return false;
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    if constexpr (kCompiledIn) {
      enabled_.store(on, std::memory_order_relaxed);
    }
  }

  /// Microseconds since tracer construction (the trace time base).
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  /// Convert a steady_clock time point to the trace time base.
  double to_us(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  // --- emitters (single writer per track; no-ops when disabled) ----------
  void task(std::size_t track, double ts_us, double dur_us,
            std::uint32_t class_id, std::uint32_t rung, bool failed) {
    record(track, TraceEvent{ts_us, dur_us, EventKind::kTask, class_id,
                             rung, failed ? 1u : 0u});
  }
  void steal(std::size_t track, double ts_us, std::uint32_t group,
             std::uint32_t victim, bool cross_group) {
    record(track,
           TraceEvent{ts_us, -1.0,
                      cross_group ? EventKind::kRob : EventKind::kSteal,
                      group, victim, 0});
  }
  void rung(std::size_t track, double ts_us, std::uint32_t core,
            std::uint32_t new_rung) {
    record(track,
           TraceEvent{ts_us, -1.0, EventKind::kRung, core, new_rung, 0});
  }
  void phase(std::size_t track, double ts_us, double dur_us, PhaseKind p,
             std::uint64_t detail = 0) {
    record(track, TraceEvent{ts_us, dur_us, EventKind::kPhase,
                             static_cast<std::uint32_t>(p), 0, detail});
  }

  void record(std::size_t track, TraceEvent ev) {
    if (!enabled()) return;
    Track& t = *tracks_[track];
    if (t.head >= t.buf.size()) ++t.dropped;  // overwriting the oldest
    t.buf[t.head % t.buf.size()] = ev;
    ++t.head;
  }

  /// Class names used to label kTask events in exports.
  void set_class_names(std::vector<std::string> names) {
    class_names_ = std::move(names);
  }

  /// Label a track in exports (defaults to "track N").
  void set_track_name(std::size_t track, std::string name);

  // --- export (writers must be quiescent) --------------------------------
  /// Valid chrome://tracing JSON ({"traceEvents": [...]}).
  std::string chrome_json() const;
  /// CSV with one row per event: track,ts_us,dur_us,kind,a,b,c.
  std::string csv() const;

  std::size_t event_count() const;
  std::uint64_t dropped() const;

  /// Oldest-to-newest snapshot of one track's ring.
  std::vector<TraceEvent> events(std::size_t track) const;

 private:
  struct Track {
    std::vector<TraceEvent> buf;
    std::uint64_t head = 0;
    std::uint64_t dropped = 0;
  };

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::vector<util::CachelinePadded<Track>> tracks_;
  std::vector<std::string> track_names_;
  std::vector<std::string> class_names_;
};

}  // namespace eewa::obs
