#include "obs/json_lite.hpp"

#include <cctype>
#include <cstdlib>

namespace eewa::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::out_of_range("JsonValue: no member '" + std::string(key) +
                            "'");
  }
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs kept as
          // separate units — fine for validation purposes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("bad exponent");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace eewa::obs
