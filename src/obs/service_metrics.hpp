// Service-mode observability: ingress and shedding accounting for the
// epoch-based open-loop runtime (docs/service_mode.md).
//
// Batch mode reads its WorkerCounters at the barrier, where workers are
// parked; service mode has no barrier, so everything here is written
// with atomics and may be read live. Two write disciplines:
//
//   - multi-writer counters (offered/deferred from submitter threads,
//     completed from whichever worker executed the task) use fetch_add;
//   - single-writer slots (per-worker task/acquire counters, the
//     dispatcher's queue-depth gauge) use the load+store idiom, which
//     compiles to a plain add but stays data-race-free for readers.
//
// The EpochReport extends the BatchReport reconciliation idea
// (acquires() == tasks) to open-loop accounting, where shed tasks must
// reconcile too:  offered == admitted + shed + deferred + pending  and
// admitted + spawned == executed + in_flight.  Live snapshots tolerate
// a bounded in-transit slack (a task between two counter bumps); after
// a drain the identities are exact.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/aligned.hpp"

namespace eewa::obs {

/// Ingress accounting for one task class.
struct ServiceClassCounters {
  std::atomic<std::uint64_t> offered{0};   ///< submit() calls
  std::atomic<std::uint64_t> admitted{0};  ///< dispatched to a worker
  std::atomic<std::uint64_t> shed{0};      ///< dropped by admission
  std::atomic<std::uint64_t> deferred{0};  ///< backpressure rejections
  std::atomic<std::uint64_t> executed{0};  ///< ran to completion (or threw)
  std::atomic<std::uint64_t> failed{0};    ///< threw
};

/// Plain-value snapshot of one class's counters.
struct ServiceClassSnapshot {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t deferred = 0;
  std::uint64_t executed = 0;
  std::uint64_t failed = 0;
};

/// Per-worker single-writer service counters (the owning worker is the
/// only writer; planner/report readers see monotonic values).
struct ServiceWorkerCounters {
  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> pops{0};
  std::atomic<std::uint64_t> steals{0};  ///< within own c-group
  std::atomic<std::uint64_t> robs{0};    ///< cross-group
  std::atomic<std::uint64_t> spawned{0};
  /// Sojourn (submit → completion) log2-microsecond histogram, same
  /// bucketing as ClassExecStats (exec_bucket()).
  std::atomic<std::uint64_t> sojourn_hist[kExecBuckets] = {};

  void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }
};

/// One epoch's (or the whole run's) reconciled view of the service.
struct EpochReport {
  std::uint64_t epoch = 0;      ///< plan epoch at snapshot time
  double span_s = 0.0;          ///< wall span this report covers
  std::uint64_t offered = 0;    ///< submit() calls
  std::uint64_t admitted = 0;   ///< handed to a worker inbox
  std::uint64_t shed = 0;       ///< dropped by admission control
  std::uint64_t deferred = 0;   ///< rejected with backpressure
  std::uint64_t spawned = 0;    ///< spawned mid-task inside the service
  std::uint64_t executed = 0;   ///< ran (includes failed)
  std::uint64_t failed = 0;
  std::uint64_t pops = 0;
  std::uint64_t steals = 0;
  std::uint64_t robs = 0;
  std::uint64_t pending = 0;    ///< ingress ring + staging, at snapshot
  std::uint64_t in_flight = 0;  ///< admitted+spawned not yet executed
  std::uint64_t queue_depth_hwm = 0;  ///< high-water queue depth so far
  std::uint64_t plan_publishes = 0;
  std::uint64_t plan_rejects = 0;
  std::uint64_t staleness_events = 0;
  double p50_sojourn_us = 0.0;
  double p99_sojourn_us = 0.0;
  std::vector<ServiceClassSnapshot> classes;

  /// The batch-mode invariant, carried over: every executed task was
  /// acquired exactly once.
  std::uint64_t acquires() const { return pops + steals + robs; }

  /// Largest violation of the conservation identities, in tasks. On a
  /// live snapshot each identity can be off by at most ~one in-transit
  /// bump per thread; after a drain (pending == in_flight == 0) every
  /// identity must hold exactly.
  std::uint64_t reconcile_slack() const;

  /// reconcile_slack() == 0.
  bool reconciles() const { return reconcile_slack() == 0; }

  /// Human-readable one-epoch summary.
  std::string to_string() const;
};

/// Live registry of service counters; owned by the runtime, written by
/// submitters, dispatcher, planner and workers per the per-field
/// disciplines above.
class ServiceMetrics {
 public:
  ServiceMetrics(std::size_t workers, std::size_t classes);

  /// Grow the class table (control thread, before workers can see the
  /// new id). Never shrinks.
  void ensure_classes(std::size_t classes);

  std::size_t class_count() const { return classes_.size(); }
  std::size_t worker_count() const { return workers_.size(); }

  ServiceClassCounters& cls(std::size_t id) { return *classes_.at(id); }
  ServiceWorkerCounters& worker(std::size_t id) { return *workers_.at(id); }

  /// Record one completed task (worker thread): sojourn in seconds.
  void record_executed(std::size_t worker, std::size_t class_id,
                       double sojourn_s, bool failed);

  // Dispatcher-only gauge.
  void set_queue_depth(std::uint64_t depth);
  std::uint64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  std::uint64_t queue_depth_hwm() const {
    return depth_hwm_.load(std::memory_order_relaxed);
  }

  // Planner-side counters.
  std::atomic<std::uint64_t>& plan_publishes() { return plan_publishes_; }
  std::atomic<std::uint64_t>& plan_rejects() { return plan_rejects_; }
  std::atomic<std::uint64_t>& staleness_events() {
    return staleness_events_;
  }

  /// Cumulative snapshot of everything (any thread; live values).
  /// `pending` and `in_flight` are supplied by the runtime, which owns
  /// those queues.
  EpochReport snapshot(std::uint64_t epoch, double span_s,
                       std::uint64_t pending,
                       std::uint64_t in_flight) const;

  /// Delta view: cumulative `now` minus cumulative `prev` (per-epoch
  /// reporting). Gauges and high-water marks keep `now`'s values.
  static EpochReport delta(const EpochReport& now, const EpochReport& prev);

 private:
  std::vector<util::CachelinePadded<ServiceWorkerCounters>> workers_;
  // Stable addresses under growth: ensure_classes appends while workers
  // hold references to existing slots.
  std::vector<std::unique_ptr<ServiceClassCounters>> classes_;
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> depth_hwm_{0};
  std::atomic<std::uint64_t> plan_publishes_{0};
  std::atomic<std::uint64_t> plan_rejects_{0};
  std::atomic<std::uint64_t> staleness_events_{0};
};

/// Percentile (0..100) from a log2-us histogram, interpolated within the
/// winning bucket; 0 when the histogram is empty.
double sojourn_percentile_us(const std::uint64_t (&hist)[kExecBuckets],
                             double pct);

}  // namespace eewa::obs
