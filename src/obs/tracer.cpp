#include "obs/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace eewa::obs {

namespace {

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kTask: return "task";
    case EventKind::kSteal: return "steal";
    case EventKind::kRob: return "rob";
    case EventKind::kRung: return "rung";
    case EventKind::kPhase: return "phase";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

const char* phase_name(PhaseKind p) {
  switch (p) {
    case PhaseKind::kPrepare: return "prepare_batch";
    case PhaseKind::kProfile: return "profile_collect";
    case PhaseKind::kPlan: return "plan";
    case PhaseKind::kSearch: return "ktuple_search";
    case PhaseKind::kActuate: return "actuation";
    case PhaseKind::kReconcile: return "reconcile";
    case PhaseKind::kBatch: return "batch";
  }
  return "?";
}

EventTracer::EventTracer(std::size_t tracks, std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      tracks_(tracks == 0 ? 1 : tracks),
      track_names_(tracks == 0 ? 1 : tracks) {
  const std::size_t cap = capacity == 0 ? 1 : capacity;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    tracks_[i]->buf.resize(cap);
    track_names_[i] = "track " + std::to_string(i);
  }
}

void EventTracer::set_track_name(std::size_t track, std::string name) {
  track_names_.at(track) = std::move(name);
}

std::vector<TraceEvent> EventTracer::events(std::size_t track) const {
  const Track& t = *tracks_.at(track);
  const std::size_t cap = t.buf.size();
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(t.head, cap));
  std::vector<TraceEvent> out;
  out.reserve(n);
  const std::uint64_t first = t.head - n;
  for (std::uint64_t i = first; i < t.head; ++i) {
    out.push_back(t.buf[i % cap]);
  }
  return out;
}

std::size_t EventTracer::event_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const Track& t = *tracks_[i];
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(t.head, t.buf.size()));
  }
  return n;
}

std::uint64_t EventTracer::dropped() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks_) n += t->dropped;
  return n;
}

std::string EventTracer::chrome_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  char buf[512];
  auto emit = [&](const std::string& line) {
    if (!first) os << ",";
    first = false;
    os << "\n" << line;
  };
  // Thread-name metadata so Perfetto labels the tracks.
  for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
                  tid, json_escape(track_names_[tid]).c_str());
    emit(buf);
  }
  for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
    for (const TraceEvent& ev : events(tid)) {
      std::string name;
      std::string args;
      switch (ev.kind) {
        case EventKind::kTask:
          name = ev.a < class_names_.size()
                     ? json_escape(class_names_[ev.a])
                     : "class " + std::to_string(ev.a);
          std::snprintf(buf, sizeof(buf),
                        "{\"class\":%u,\"rung\":%u,\"failed\":%llu}", ev.a,
                        ev.b, static_cast<unsigned long long>(ev.c));
          args = buf;
          break;
        case EventKind::kSteal:
        case EventKind::kRob:
          name = kind_name(ev.kind);
          std::snprintf(buf, sizeof(buf),
                        "{\"group\":%u,\"victim\":%u}", ev.a, ev.b);
          args = buf;
          break;
        case EventKind::kRung:
          name = "rung";
          std::snprintf(buf, sizeof(buf), "{\"core\":%u,\"rung\":%u}",
                        ev.a, ev.b);
          args = buf;
          break;
        case EventKind::kPhase:
          name = phase_name(static_cast<PhaseKind>(ev.a));
          std::snprintf(buf, sizeof(buf), "{\"detail\":%llu}",
                        static_cast<unsigned long long>(ev.c));
          args = buf;
          break;
      }
      if (ev.dur_us >= 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                      "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%zu,"
                      "\"args\":%s}",
                      name.c_str(), kind_name(ev.kind), ev.ts_us,
                      ev.dur_us, tid, args.c_str());
      } else {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                      "\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%zu,"
                      "\"args\":%s}",
                      name.c_str(), kind_name(ev.kind), ev.ts_us, tid,
                      args.c_str());
      }
      emit(buf);
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
     << dropped() << "}}\n";
  return os.str();
}

std::string EventTracer::csv() const {
  std::ostringstream os;
  os << "track,ts_us,dur_us,kind,a,b,c\n";
  char buf[256];
  for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
    for (const TraceEvent& ev : events(tid)) {
      std::snprintf(buf, sizeof(buf), "%zu,%.3f,%.3f,%s,%u,%u,%llu\n",
                    tid, ev.ts_us, ev.dur_us, kind_name(ev.kind), ev.a,
                    ev.b, static_cast<unsigned long long>(ev.c));
      os << buf;
    }
  }
  return os.str();
}

}  // namespace eewa::obs
