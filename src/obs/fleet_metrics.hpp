// Fleet-level observability: per-machine and fleet-wide accounting for
// the fleet simulator (docs/fleet.md).
//
// Unlike the service metrics, everything here is plain values: the fleet
// simulator is single-threaded and deterministic, so a report is built
// once at the end of a run (or rebuilt mid-run) with no atomics. The
// reports carry enough redundancy for the fleet oracles to cross-check:
// router-side task counts against machine-side completion counters, and
// a full per-machine energy decomposition (cores / powered floor /
// S-state residency / park-wake transitions) whose pieces must re-sum to
// the fleet total with every simulated second accounted exactly once.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eewa::obs {

/// One S-state of the machine ladder, echoed into the report so a
/// FleetReport is self-describing (oracles and JSON consumers never need
/// the originating options to interpret residencies).
struct SleepStateInfo {
  std::string name;          ///< "s1" ... "off"
  double power_w = 0.0;      ///< draw while parked in this state
  double wake_latency_s = 0.0;  ///< park-to-first-instruction latency

  bool operator==(const SleepStateInfo&) const = default;
};

/// Everything the fleet knows about one machine after a run.
struct MachineReport {
  // Task accounting. `routed` is counted by the placement tier as tasks
  // are assigned; `completed` is the machine simulator's own completion
  // counter — the pair is the fleet-level differential.
  std::size_t routed = 0;
  std::size_t completed = 0;
  std::size_t batches = 0;

  // Power-state ledger. Every simulated second of the fleet horizon is
  // either powered (cores charged by the machine's EnergyAccount) or
  // parked in exactly one S-state.
  std::size_t parks = 0;
  std::size_t wakes = 0;
  std::size_t final_state = 0;  ///< 0 = powered, i = sleep state i-1
  double powered_s = 0.0;
  double wake_stall_s = 0.0;  ///< Σ wake latencies paid (inside powered_s)
  double first_start_s = -1.0;  ///< first batch start; -1 when no batch ran
  std::vector<double> sleep_residency_s;     ///< per ladder state
  std::vector<std::size_t> wakes_per_state;  ///< wakes out of each state

  // Independent re-derivation hook: the machine's EnergyAccount charges
  // every core for every powered second, so charged_core_s must equal
  // cores · powered_s.
  double charged_core_s = 0.0;

  // Energy decomposition, joules.
  double core_energy_j = 0.0;        ///< cores (incl. DVFS transitions)
  double floor_energy_j = 0.0;       ///< machine floor while powered
  double sleep_energy_j = 0.0;       ///< Σ residency · state power
  double transition_energy_j = 0.0;  ///< park + wake transitions

  // Scheduler counters, summed over the machine's batches.
  std::size_t steals = 0;
  std::size_t probes = 0;
  std::size_t dvfs_transitions = 0;

  double energy_j() const {
    return core_energy_j + floor_energy_j + sleep_energy_j +
           transition_energy_j;
  }

  bool operator==(const MachineReport&) const = default;
};

/// Whole-fleet outcome. operator== is exact (no tolerances): two runs of
/// the same seeded configuration must produce bitwise-identical reports.
struct FleetReport {
  std::size_t machines = 0;
  std::size_t cores_per_machine = 0;
  double epoch_s = 0.0;
  std::size_t epochs = 0;
  double horizon_s = 0.0;  ///< absolute end of the simulated run

  // Fleet-wide task conservation: offered == routed + shed, and after
  // the run drains, routed == completed (in_flight == 0).
  std::size_t offered = 0;
  std::size_t routed = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t in_flight = 0;
  double offered_work_s = 0.0;  ///< Σ task work at F0, core-seconds
  double shed_work_s = 0.0;

  std::size_t parks = 0;
  std::size_t wakes = 0;
  double powered_machine_s = 0.0;  ///< Σ per-machine powered_s
  double parked_machine_s = 0.0;   ///< Σ per-machine sleep residency
  double energy_j = 0.0;

  std::vector<SleepStateInfo> ladder;
  std::vector<MachineReport> per_machine;

  bool operator==(const FleetReport&) const = default;

  /// Human-readable multi-line summary (fleet totals plus a compact
  /// machine table; large fleets are elided to the busiest machines).
  std::string to_string() const;
};

}  // namespace eewa::obs
