#include "obs/service_metrics.hpp"

#include <algorithm>
#include <sstream>

namespace eewa::obs {

namespace {

std::uint64_t abs_diff(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : b - a;
}

}  // namespace

std::uint64_t EpochReport::reconcile_slack() const {
  // Identity 1: every offered task went exactly one way.
  const std::uint64_t routed = admitted + shed + deferred + pending;
  std::uint64_t slack = abs_diff(offered, routed);
  // Identity 2: admitted + spawned tasks are executed or still queued.
  const std::uint64_t settled = executed + in_flight;
  slack = std::max(slack, abs_diff(admitted + spawned, settled));
  // Identity 3 (the BatchReport invariant, extended): acquires ==
  // executed, up to tasks currently between acquire and completion —
  // those are part of in_flight, so cumulative acquires can only lead.
  const std::uint64_t acq = acquires();
  if (acq >= executed) {
    // Tasks between acquire and completion are still in flight.
    const std::uint64_t executing = acq - executed;
    slack = std::max(slack, executing > in_flight ? executing - in_flight
                                                  : 0);
  } else {
    slack = std::max(slack, executed - acq);
  }
  return slack;
}

std::string EpochReport::to_string() const {
  std::ostringstream os;
  os << "epoch " << epoch << ": offered=" << offered
     << " admitted=" << admitted << " shed=" << shed
     << " deferred=" << deferred << " spawned=" << spawned
     << " executed=" << executed << " failed=" << failed
     << " pending=" << pending << " in_flight=" << in_flight
     << " depth_hwm=" << queue_depth_hwm << " publishes=" << plan_publishes
     << " staleness=" << staleness_events << " p50=" << p50_sojourn_us
     << "us p99=" << p99_sojourn_us << "us";
  return os.str();
}

ServiceMetrics::ServiceMetrics(std::size_t workers, std::size_t classes)
    : workers_(workers) {
  ensure_classes(classes);
}

void ServiceMetrics::ensure_classes(std::size_t classes) {
  while (classes_.size() < classes) {
    classes_.push_back(std::make_unique<ServiceClassCounters>());
  }
}

void ServiceMetrics::record_executed(std::size_t worker,
                                     std::size_t class_id, double sojourn_s,
                                     bool failed) {
  auto& wc = *workers_[worker];
  wc.bump(wc.tasks);
  auto& bucket = wc.sojourn_hist[exec_bucket(sojourn_s)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  if (class_id < classes_.size()) {
    classes_[class_id]->executed.fetch_add(1, std::memory_order_relaxed);
    if (failed) {
      classes_[class_id]->failed.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ServiceMetrics::set_queue_depth(std::uint64_t depth) {
  queue_depth_.store(depth, std::memory_order_relaxed);
  if (depth > depth_hwm_.load(std::memory_order_relaxed)) {
    depth_hwm_.store(depth, std::memory_order_relaxed);
  }
}

EpochReport ServiceMetrics::snapshot(std::uint64_t epoch, double span_s,
                                     std::uint64_t pending,
                                     std::uint64_t in_flight) const {
  EpochReport r;
  r.epoch = epoch;
  r.span_s = span_s;
  r.pending = pending;
  r.in_flight = in_flight;
  std::uint64_t hist[kExecBuckets] = {};
  for (const auto& w : workers_) {
    r.executed += w->tasks.load(std::memory_order_relaxed);
    r.pops += w->pops.load(std::memory_order_relaxed);
    r.steals += w->steals.load(std::memory_order_relaxed);
    r.robs += w->robs.load(std::memory_order_relaxed);
    r.spawned += w->spawned.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kExecBuckets; ++b) {
      hist[b] += w->sojourn_hist[b].load(std::memory_order_relaxed);
    }
  }
  r.classes.resize(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const auto& cc = *classes_[c];
    auto& out = r.classes[c];
    out.offered = cc.offered.load(std::memory_order_relaxed);
    out.admitted = cc.admitted.load(std::memory_order_relaxed);
    out.shed = cc.shed.load(std::memory_order_relaxed);
    out.deferred = cc.deferred.load(std::memory_order_relaxed);
    out.executed = cc.executed.load(std::memory_order_relaxed);
    out.failed = cc.failed.load(std::memory_order_relaxed);
    r.offered += out.offered;
    r.admitted += out.admitted;
    r.shed += out.shed;
    r.deferred += out.deferred;
    r.failed += out.failed;
  }
  r.queue_depth_hwm = depth_hwm_.load(std::memory_order_relaxed);
  r.plan_publishes = plan_publishes_.load(std::memory_order_relaxed);
  r.plan_rejects = plan_rejects_.load(std::memory_order_relaxed);
  r.staleness_events = staleness_events_.load(std::memory_order_relaxed);
  r.p50_sojourn_us = sojourn_percentile_us(hist, 50.0);
  r.p99_sojourn_us = sojourn_percentile_us(hist, 99.0);
  return r;
}

EpochReport ServiceMetrics::delta(const EpochReport& now,
                                  const EpochReport& prev) {
  EpochReport d = now;
  d.span_s = now.span_s - prev.span_s;
  d.offered -= prev.offered;
  d.admitted -= prev.admitted;
  d.shed -= prev.shed;
  d.deferred -= prev.deferred;
  d.spawned -= prev.spawned;
  d.executed -= prev.executed;
  d.failed -= prev.failed;
  d.pops -= prev.pops;
  d.steals -= prev.steals;
  d.robs -= prev.robs;
  for (std::size_t c = 0; c < d.classes.size(); ++c) {
    if (c >= prev.classes.size()) break;
    d.classes[c].offered -= prev.classes[c].offered;
    d.classes[c].admitted -= prev.classes[c].admitted;
    d.classes[c].shed -= prev.classes[c].shed;
    d.classes[c].deferred -= prev.classes[c].deferred;
    d.classes[c].executed -= prev.classes[c].executed;
    d.classes[c].failed -= prev.classes[c].failed;
  }
  return d;
}

double sojourn_percentile_us(const std::uint64_t (&hist)[kExecBuckets],
                             double pct) {
  std::uint64_t total = 0;
  for (std::uint64_t c : hist) total += c;
  if (total == 0) return 0.0;
  const double target = pct / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kExecBuckets; ++b) {
    if (hist[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += hist[b];
    if (static_cast<double>(seen) >= target) {
      // Interpolate inside the winning log2 bucket.
      const double lo = exec_bucket_lo_s(b) * 1e6;
      const double hi = b + 1 < kExecBuckets
                            ? exec_bucket_lo_s(b + 1) * 1e6
                            : lo * 2.0;
      const double frac =
          (target - before) / static_cast<double>(hist[b]);
      return lo + frac * (hi - lo);
    }
  }
  return exec_bucket_lo_s(kExecBuckets - 1) * 1e6;
}

}  // namespace eewa::obs
