#include "obs/fleet_metrics.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <numeric>

namespace eewa::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string FleetReport::to_string() const {
  std::string out;
  appendf(out,
          "fleet: %zu machines x %zu cores, %zu epochs of %.4gs, horizon "
          "%.4gs\n",
          machines, cores_per_machine, epochs, epoch_s, horizon_s);
  appendf(out,
          "tasks: offered=%zu routed=%zu completed=%zu shed=%zu "
          "in_flight=%zu\n",
          offered, routed, completed, shed, in_flight);
  appendf(out,
          "power: energy=%.6g J, parks=%zu wakes=%zu, powered=%.4g "
          "machine-s, parked=%.4g machine-s\n",
          energy_j, parks, wakes, powered_machine_s, parked_machine_s);
  if (!ladder.empty()) {
    out += "ladder:";
    for (const auto& s : ladder) {
      appendf(out, " %s(%.4gW,%.4gs)", s.name.c_str(), s.power_w,
              s.wake_latency_s);
    }
    out += "\n";
  }
  // Compact per-machine table; for big fleets show the busiest few.
  std::vector<std::size_t> order(per_machine.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return per_machine[a].routed > per_machine[b].routed;
                   });
  const std::size_t shown = std::min<std::size_t>(order.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    const std::size_t m = order[i];
    const auto& r = per_machine[m];
    appendf(out,
            "  m%-3zu routed=%-8zu done=%-8zu batches=%-5zu parks=%zu "
            "wakes=%zu powered=%.4gs energy=%.5g J\n",
            m, r.routed, r.completed, r.batches, r.parks, r.wakes,
            r.powered_s, r.energy_j());
  }
  if (order.size() > shown) {
    appendf(out, "  ... %zu more machines\n", order.size() - shown);
  }
  return out;
}

}  // namespace eewa::obs
