// Per-worker scheduler counters (paper-facing observability). Every
// quantity EEWA's evaluation argues from — pops vs. steals vs.
// cross-group robs per c-group, failed sweeps, per-class execution-time
// distributions — is counted here, lock-free, by the single worker that
// owns the slot, and aggregated into a BatchReport at the batch barrier.
//
// The counters are always compiled in: they are plain increments on
// cacheline-isolated memory, cheap enough for the hot path (the event
// tracer in tracer.hpp is the gateable, higher-overhead layer).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/aligned.hpp"

namespace eewa::obs {

/// Number of log2 execution-time buckets (microseconds): bucket i counts
/// tasks with exec time in [2^i, 2^{i+1}) us; the last bucket absorbs
/// everything >= 2^{kExecBuckets-1} us (~134 s).
inline constexpr std::size_t kExecBuckets = 28;

/// Log2-of-microseconds bucket index for an execution time in seconds.
std::size_t exec_bucket(double exec_s);

/// Lower bound of bucket `i` in seconds.
double exec_bucket_lo_s(std::size_t i);

/// Online execution-time statistics for one task class.
struct ClassExecStats {
  std::uint64_t count = 0;   ///< tasks completed (including failed)
  std::uint64_t failed = 0;  ///< tasks that threw
  double total_s = 0.0;
  double min_s = 0.0;  ///< 0 until the first observation
  double max_s = 0.0;
  std::array<std::uint64_t, kExecBuckets> hist{};  ///< log2-us buckets

  void observe(double exec_s, bool task_failed);
  void merge(const ClassExecStats& other);
};

/// One worker's counters for the current batch. Single writer (the
/// owning worker); read only at the batch barrier.
struct WorkerCounters {
  std::uint64_t tasks = 0;          ///< tasks executed
  std::uint64_t spawns = 0;         ///< tasks spawned mid-batch
  std::uint64_t idle_sweeps = 0;    ///< full acquire sweeps that found nothing
  std::uint64_t failed_sweeps = 0;  ///< steal sweeps that probed and gave up
  std::uint64_t probes = 0;         ///< individual victim probes
  std::vector<std::uint64_t> pops;    ///< local deque pops, by c-group
  std::vector<std::uint64_t> steals;  ///< steals within own c-group, by group
  std::vector<std::uint64_t> robs;    ///< cross-group steals, by victim group
  std::vector<ClassExecStats> classes;  ///< by class id, grown on demand

  /// Zero everything and size the per-group vectors for `groups`.
  void reset(std::size_t groups);

  /// Class slot, grown on demand (worker-local, no locking needed).
  ClassExecStats& cls(std::size_t class_id);
};

/// Aggregate of all workers' counters for one batch.
struct BatchReport {
  std::size_t batch_index = 0;
  std::size_t groups = 0;
  std::uint64_t tasks = 0;
  std::uint64_t spawns = 0;
  std::uint64_t pops = 0;          ///< local deque pops (all groups)
  std::uint64_t local_steals = 0;  ///< steals within the thief's own group
  std::uint64_t cross_robs = 0;    ///< steals from another c-group
  std::uint64_t failed_sweeps = 0;
  std::uint64_t probes = 0;
  std::uint64_t idle_sweeps = 0;
  std::vector<std::uint64_t> pops_by_group;
  std::vector<std::uint64_t> steals_by_group;  ///< local, by group
  std::vector<std::uint64_t> robs_by_group;    ///< cross, by victim group
  std::vector<ClassExecStats> classes;         ///< by class id

  /// Every executed task was acquired exactly once; in a consistent
  /// report acquires() == tasks.
  std::uint64_t acquires() const { return pops + local_steals + cross_robs; }

  /// Multi-line human-readable summary. `class_names[i]` labels class i
  /// when provided (ids are printed otherwise).
  std::string to_string(
      const std::vector<std::string>& class_names = {}) const;

  /// Accumulate another report (for whole-run totals).
  void merge(const BatchReport& other);
};

/// Registry of per-worker counters with batch-barrier aggregation.
/// Thread contract: worker(i) is written only by worker i between
/// begin_batch() and finalize_batch(); both batch calls run on the
/// control thread while workers are parked.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t workers);

  std::size_t worker_count() const { return counters_.size(); }

  /// Reset all per-worker counters for a batch over `groups` c-groups.
  void begin_batch(std::size_t groups);

  /// Worker `id`'s counter slot (cacheline-isolated).
  WorkerCounters& worker(std::size_t id) { return *counters_[id]; }
  const WorkerCounters& worker(std::size_t id) const {
    return *counters_[id];
  }

  /// Aggregate all workers into a BatchReport, append it to reports(),
  /// and return it. Leaves the per-worker counters untouched (the next
  /// begin_batch resets them).
  const BatchReport& finalize_batch();

  /// All finalized batch reports, in order.
  const std::vector<BatchReport>& reports() const { return reports_; }

  /// Sum of all finalized reports (batch_index = number of batches).
  BatchReport totals() const;

 private:
  std::vector<util::CachelinePadded<WorkerCounters>> counters_;
  std::vector<BatchReport> reports_;
  std::size_t groups_ = 1;
  std::size_t next_batch_ = 0;
};

}  // namespace eewa::obs
