// The three invariant oracles of the fuzz harness.
//
// Each oracle takes a generated spec, runs the real code, and checks a
// catalogue of properties that must hold for EVERY input — agreement
// between independent implementations (differential), conservation laws
// and accounting identities (properties). An oracle returns on the first
// violated invariant with a message naming the invariant and the values
// involved; docs/testing.md lists the full catalogue.
#pragma once

#include <string>

#include "testing/scenario.hpp"

namespace eewa::testing {

/// Outcome of one oracle run. `ok == false` means an invariant failed;
/// `failure` names it.
struct CheckResult {
  bool ok = true;
  std::string failure;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
};

/// Search oracle: backtracking vs greedy vs exhaustive over one CC
/// table. Feasibility agreement, tuple validity (nondecreasing, every
/// rung feasible, Σ demand <= m), greedy-path equality, energy ordering
/// E(exhaustive) <= E(backtracking) <= E(greedy), and double-run
/// determinism — under both the proxy objective and (when
/// spec.use_model) a PowerModel objective.
CheckResult check_search(const TableSpec& spec);

/// Runtime oracle: drive rt::Runtime over a generated workload (spin
/// tasks, recursive spawns, injected failures) and check the obs-layer
/// conservation laws batch by batch: tasks == submitted + spawns,
/// acquires() == tasks, exact per-class counts, failed-task accounting,
/// and (single-worker runs) Eq.-1 profile means within tolerance of the
/// generating spec.
CheckResult check_runtime(const WorkloadSpec& spec);

/// Service oracle: drive rt::Runtime's open-loop service mode over a
/// generated arrival stream (steady/bursty, underload through sustained
/// overload) and check the overload conservation laws: every arrival is
/// admitted, shed or backpressured (offered == executed + shed +
/// deferred after a drain), no task is both shed and executed, shedding
/// engages only above the admission watermark, never-shed (sla 0)
/// classes and the block policy shed nothing, and the final report
/// reconciles exactly.
CheckResult check_service(const ServiceSpec& spec);

/// Energy oracle: simulate the same generated workload on sim::Machine
/// and check the energy accountant's identities: time == Σ batch spans +
/// overheads, Σ rung residency == cores · time, batch core energies sum
/// to the run's CPU energy, total == CPU + floor·time, the whole-machine
/// power envelope, and bit-exact double-run determinism including the
/// exported event trace.
CheckResult check_energy(const WorkloadSpec& spec);

/// Fleet oracle: run sim::Fleet over a generated fleet scenario twice
/// and check (1) bitwise double-run determinism of the FleetReport,
/// (2) fleet-wide task conservation — offered == routed + shed, routed
/// == completed after the drain, per-machine router counts match the
/// machines' own completion counters, and nothing is shed when no
/// backlog cap is set, (3) the energy identity — every simulated
/// machine-second is billed exactly once (powered_s + Σ S-state
/// residency == horizon, charged core-seconds == cores · powered_s)
/// and the per-machine decomposition (cores + floor + sleep +
/// transitions) re-sums to the fleet total, (4) power-state ledger
/// sanity — parks reconcile with wakes and the final state, wake
/// stalls equal Σ wakes-per-state · latency, no task ran on an
/// unpowered machine, and the reported ladder is strictly monotone in
/// both power and wake latency.
CheckResult check_fleet(const FleetSpec& spec);

/// Hetero oracle: build a typed CC table over a generated multi-type
/// topology and cross-check the typed planner end to end — topology
/// flattening (descending row speeds, row_of round-trips, contiguous
/// per-type core ranges), the typed CC identity CC[row][i] =
/// (α_i + (1-α_i)·row_slowdown(row)) · CC[0][i], searcher agreement
/// under per-type core capacities (backtracking vs greedy vs pruned,
/// with exhaustive ground truth when rows·k is small), energy ordering
/// under the typed estimate, double-run determinism, plan carving
/// (every core exactly once, each group inside its type's core range
/// and ladder), and two degenerate-equality laws: a single-type
/// scale-1 topology reproduces the homogeneous build bit for bit, and
/// memory_aware with all-zero alphas is bitwise identical to
/// memory_aware off.
CheckResult check_hetero(const HeteroSpec& spec);

}  // namespace eewa::testing
