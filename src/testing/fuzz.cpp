#include "testing/fuzz.hpp"

#include <algorithm>
#include <utility>

namespace eewa::testing {

const char* mode_name(FuzzMode mode) {
  switch (mode) {
    case FuzzMode::kSearch:
      return "search";
    case FuzzMode::kSearchLarge:
      return "search-large";
    case FuzzMode::kRuntime:
      return "runtime";
    case FuzzMode::kEnergy:
      return "energy";
    case FuzzMode::kService:
      return "service";
    case FuzzMode::kFleet:
      return "fleet";
    case FuzzMode::kHetero:
      return "hetero";
  }
  return "?";
}

std::string FuzzVerdict::repro_command() const {
  return std::string("fuzz_explorer --mode ") + mode_name(mode) +
         " --seed " + std::to_string(seed);
}

FuzzVerdict run_one(FuzzMode mode, std::uint64_t seed) {
  FuzzVerdict v;
  v.mode = mode;
  v.seed = seed;
  switch (mode) {
    case FuzzMode::kSearch: {
      const auto spec = TableSpec::random(seed);
      v.spec_summary = spec.summary();
      const auto r = check_search(spec);
      v.ok = r.ok;
      v.failure = r.failure;
      break;
    }
    case FuzzMode::kSearchLarge: {
      const auto spec = TableSpec::random_large(seed);
      v.spec_summary = spec.summary();
      const auto r = check_search(spec);
      v.ok = r.ok;
      v.failure = r.failure;
      break;
    }
    case FuzzMode::kRuntime: {
      const auto spec = WorkloadSpec::random_runtime(seed);
      v.spec_summary = spec.summary();
      const auto r = check_runtime(spec);
      v.ok = r.ok;
      v.failure = r.failure;
      break;
    }
    case FuzzMode::kEnergy: {
      const auto spec = WorkloadSpec::random_energy(seed);
      v.spec_summary = spec.summary();
      const auto r = check_energy(spec);
      v.ok = r.ok;
      v.failure = r.failure;
      break;
    }
    case FuzzMode::kService: {
      const auto spec = ServiceSpec::random(seed);
      v.spec_summary = spec.summary();
      const auto r = check_service(spec);
      v.ok = r.ok;
      v.failure = r.failure;
      break;
    }
    case FuzzMode::kFleet: {
      const auto spec = FleetSpec::random(seed);
      v.spec_summary = spec.summary();
      const auto r = check_fleet(spec);
      v.ok = r.ok;
      v.failure = r.failure;
      break;
    }
    case FuzzMode::kHetero: {
      const auto spec = HeteroSpec::random(seed);
      v.spec_summary = spec.summary();
      const auto r = check_hetero(spec);
      v.ok = r.ok;
      v.failure = r.failure;
      break;
    }
  }
  return v;
}

SweepResult run_sweep(FuzzMode mode, std::uint64_t base_seed,
                      std::size_t count, std::size_t max_failures) {
  SweepResult sweep;
  for (std::size_t i = 0; i < count; ++i) {
    auto v = run_one(mode, base_seed + i);
    ++sweep.ran;
    if (!v.ok) {
      ++sweep.failed;
      if (sweep.failures.size() < max_failures) {
        sweep.failures.push_back(std::move(v));
      }
    }
  }
  return sweep;
}

namespace {

/// Apply the first candidate mutation under which the case still fails;
/// repeat until no mutation helps. `mutants` yields the candidates for
/// a spec, simplest-first.
template <typename Spec, typename MutantsFn>
Spec shrink_greedy(Spec spec, const std::function<bool(const Spec&)>& fails,
                   MutantsFn mutants) {
  // Bounded: every accepted mutation strictly simplifies the spec, but
  // guard against cycles from ill-behaved predicates anyway.
  for (std::size_t round = 0; round < 256; ++round) {
    bool progressed = false;
    for (auto& cand : mutants(spec)) {
      if (fails(cand)) {
        spec = std::move(cand);
        progressed = true;
        break;
      }
    }
    if (!progressed) break;
  }
  return spec;
}

std::vector<TableSpec> table_mutants(const TableSpec& s) {
  std::vector<TableSpec> out;
  // Drop one class (column).
  const std::size_t k =
      s.from_matrix ? (s.matrix.empty() ? 0 : s.matrix[0].size())
                    : s.classes.size();
  if (k > 1) {
    for (std::size_t i = 0; i < k; ++i) {
      TableSpec t = s;
      if (t.from_matrix) {
        for (auto& row : t.matrix) row.erase(row.begin() + i);
      } else {
        t.classes.erase(t.classes.begin() + i);
        for (std::size_t c = 0; c < t.classes.size(); ++c) {
          t.classes[c].class_id = c;
        }
      }
      out.push_back(std::move(t));
    }
  }
  // Drop one rung (never rung 0: the ladder must keep its F0).
  if (s.ladder_ghz.size() > 1) {
    for (std::size_t j = s.ladder_ghz.size(); j-- > 1;) {
      TableSpec t = s;
      t.ladder_ghz.erase(t.ladder_ghz.begin() + j);
      if (t.from_matrix) t.matrix.erase(t.matrix.begin() + j);
      out.push_back(std::move(t));
    }
  }
  if (!s.from_matrix) {
    // Halve class counts.
    bool any = false;
    TableSpec t = s;
    for (auto& c : t.classes) {
      if (c.count > 1) {
        c.count /= 2;
        any = true;
      }
    }
    if (any) out.push_back(std::move(t));
    // Zero the memory-aware alphas.
    if (s.memory_aware) {
      TableSpec z = s;
      z.memory_aware = false;
      for (auto& c : z.classes) c.mean_alpha = 0.0;
      out.push_back(std::move(z));
    }
    // Relax T (a looser deadline is the simpler case).
    TableSpec relax = s;
    relax.ideal_time_s *= 2.0;
    out.push_back(std::move(relax));
  }
  if (s.cores > 1) {
    TableSpec t = s;
    t.cores /= 2;
    out.push_back(std::move(t));
  }
  if (s.use_model) {
    TableSpec t = s;
    t.use_model = false;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<WorkloadSpec> workload_mutants(const WorkloadSpec& s) {
  std::vector<WorkloadSpec> out;
  if (s.trace.classes.size() > 1) {
    for (std::size_t i = 0; i < s.trace.classes.size(); ++i) {
      WorkloadSpec t = s;
      t.trace.classes.erase(t.trace.classes.begin() + i);
      out.push_back(std::move(t));
    }
  }
  if (s.trace.batches > 1) {
    WorkloadSpec t = s;
    t.trace.batches /= 2;
    out.push_back(std::move(t));
  }
  {
    bool any = false;
    WorkloadSpec t = s;
    for (auto& c : t.trace.classes) {
      if (c.tasks_per_batch > 1) {
        c.tasks_per_batch /= 2;
        any = true;
      }
    }
    if (any) out.push_back(std::move(t));
  }
  if (s.cores > 1) {
    WorkloadSpec t = s;
    t.cores /= 2;
    out.push_back(std::move(t));
  }
  if (s.spawn_fanout > 0) {
    WorkloadSpec t = s;
    t.spawn_fanout = 0;
    out.push_back(std::move(t));
  }
  if (s.failing_tasks > 0) {
    WorkloadSpec t = s;
    t.failing_tasks = 0;
    out.push_back(std::move(t));
  }
  if (s.trace.release_window_s > 0.0 || s.trace.batch_jitter_cv > 0.0) {
    WorkloadSpec t = s;
    t.trace.release_window_s = 0.0;
    t.trace.batch_jitter_cv = 0.0;
    out.push_back(std::move(t));
  }
  {
    bool any = false;
    WorkloadSpec t = s;
    for (auto& c : t.trace.classes) {
      if (c.cv > 0.0 || c.mem_alpha > 0.0 || c.cmi > 0.0) {
        c.cv = c.mem_alpha = c.cmi = 0.0;
        any = true;
      }
    }
    if (any) out.push_back(std::move(t));
  }
  if (s.with_faults || s.idle_halt || s.sockets) {
    WorkloadSpec t = s;
    t.with_faults = t.idle_halt = t.sockets = false;
    out.push_back(std::move(t));
  }
  if (s.sim_policy != "cilk") {
    WorkloadSpec t = s;
    t.sim_policy = "cilk";
    out.push_back(std::move(t));
  }
  if (s.rt_kind != RtKind::kCilk) {
    WorkloadSpec t = s;
    t.rt_kind = RtKind::kCilk;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<ServiceSpec> service_mutants(const ServiceSpec& s) {
  std::vector<ServiceSpec> out;
  if (s.arrivals.classes.size() > 1) {
    for (std::size_t i = 0; i < s.arrivals.classes.size(); ++i) {
      ServiceSpec t = s;
      t.arrivals.classes.erase(t.arrivals.classes.begin() + i);
      out.push_back(std::move(t));
    }
  }
  if (s.arrivals.duration_s > 0.01) {
    ServiceSpec t = s;
    t.arrivals.duration_s /= 2.0;
    out.push_back(std::move(t));
  }
  if (s.arrivals.load > 0.5) {
    ServiceSpec t = s;
    t.arrivals.load /= 2.0;
    out.push_back(std::move(t));
  }
  if (s.arrivals.kind != trace::ArrivalKind::kSteady) {
    ServiceSpec t = s;
    t.arrivals.kind = trace::ArrivalKind::kSteady;
    out.push_back(std::move(t));
  }
  {
    bool any = false;
    ServiceSpec t = s;
    for (auto& c : t.arrivals.classes) {
      if (c.cv > 0.0 || c.cmi > 0.0) {
        c.cv = c.cmi = 0.0;
        any = true;
      }
    }
    if (any) out.push_back(std::move(t));
  }
  if (s.workers > 1) {
    ServiceSpec t = s;
    t.workers /= 2;
    t.arrivals.cores = t.workers;
    out.push_back(std::move(t));
  }
  if (s.policy != ShedPolicy::kBlock) {
    ServiceSpec t = s;
    t.policy = ShedPolicy::kBlock;
    out.push_back(std::move(t));
  }
  if (s.high_watermark > 0) {
    ServiceSpec t = s;
    t.high_watermark = 0;  // back to the runtime default
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<FleetSpec> fleet_mutants(const FleetSpec& s) {
  std::vector<FleetSpec> out;
  if (s.machines > 1) {
    FleetSpec t = s;
    t.machines = std::max<std::size_t>(1, t.machines / 2);
    t.arrivals.cores = t.machines * t.cores;
    out.push_back(std::move(t));
  }
  if (s.arrivals.classes.size() > 1) {
    for (std::size_t i = 0; i < s.arrivals.classes.size(); ++i) {
      FleetSpec t = s;
      t.arrivals.classes.erase(t.arrivals.classes.begin() + i);
      out.push_back(std::move(t));
    }
  }
  if (s.arrivals.duration_s > 0.01) {
    FleetSpec t = s;
    t.arrivals.duration_s /= 2.0;
    out.push_back(std::move(t));
  }
  if (s.arrivals.load > 0.25) {
    FleetSpec t = s;
    t.arrivals.load /= 2.0;
    out.push_back(std::move(t));
  }
  if (s.arrivals.kind != trace::ArrivalKind::kSteady) {
    FleetSpec t = s;
    t.arrivals.kind = trace::ArrivalKind::kSteady;
    out.push_back(std::move(t));
  }
  // Shallower ladder: drop the deepest state.
  if (s.ladder_power_w.size() > 1) {
    FleetSpec t = s;
    t.ladder_power_w.pop_back();
    t.ladder_wake_s.pop_back();
    if (t.initial_state > t.ladder_power_w.size()) {
      t.initial_state = t.ladder_power_w.size();
    }
    out.push_back(std::move(t));
  }
  if (s.cores > 1) {
    FleetSpec t = s;
    t.cores /= 2;
    t.arrivals.cores = t.machines * t.cores;
    out.push_back(std::move(t));
  }
  if (s.initial_state > 0) {
    FleetSpec t = s;
    t.initial_state = 0;  // warm start
    out.push_back(std::move(t));
  }
  if (s.threads != 1) {
    FleetSpec t = s;
    t.threads = 1;  // serial engine: simplest repro of a fleet failure
    out.push_back(std::move(t));
  }
  if (s.max_backlog_s > 0.0) {
    FleetSpec t = s;
    t.max_backlog_s = 0.0;  // no shedding
    out.push_back(std::move(t));
  }
  {
    bool any = false;
    FleetSpec t = s;
    for (auto& c : t.arrivals.classes) {
      if (c.cv > 0.0 || c.cmi > 0.0) {
        c.cv = c.cmi = 0.0;
        any = true;
      }
    }
    if (any) out.push_back(std::move(t));
  }
  if (s.policy != "cilk") {
    FleetSpec t = s;
    t.policy = "cilk";
    out.push_back(std::move(t));
  }
  if (s.placement != "round-robin") {
    FleetSpec t = s;
    t.placement = "round-robin";
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<HeteroSpec> hetero_mutants(const HeteroSpec& s) {
  std::vector<HeteroSpec> out;
  // Drop one class.
  if (s.classes.size() > 1) {
    for (std::size_t i = 0; i < s.classes.size(); ++i) {
      HeteroSpec t = s;
      t.classes.erase(t.classes.begin() + i);
      for (std::size_t c = 0; c < t.classes.size(); ++c) {
        t.classes[c].class_id = c;
      }
      out.push_back(std::move(t));
    }
  }
  // Drop one whole core type (a machine needs at least one).
  if (s.types.size() > 1) {
    for (std::size_t t0 = 0; t0 < s.types.size(); ++t0) {
      HeteroSpec t = s;
      t.types.erase(t.types.begin() + t0);
      out.push_back(std::move(t));
    }
  }
  // Drop the deepest rung of one type (its ladder must keep a rung).
  for (std::size_t t0 = 0; t0 < s.types.size(); ++t0) {
    if (s.types[t0].ladder_ghz.size() > 1) {
      HeteroSpec t = s;
      t.types[t0].ladder_ghz.pop_back();
      out.push_back(std::move(t));
    }
  }
  // Halve per-type core counts.
  {
    bool any = false;
    HeteroSpec t = s;
    for (auto& ts : t.types) {
      if (ts.count > 1) {
        ts.count /= 2;
        any = true;
      }
    }
    if (any) out.push_back(std::move(t));
  }
  // Flatten MIPS scales back to 1 (toward the homogeneous shape).
  {
    bool any = false;
    HeteroSpec t = s;
    for (auto& ts : t.types) {
      if (ts.mips_scale != 1.0) {
        ts.mips_scale = 1.0;
        any = true;
      }
    }
    if (any) out.push_back(std::move(t));
  }
  // Halve class counts.
  {
    bool any = false;
    HeteroSpec t = s;
    for (auto& c : t.classes) {
      if (c.count > 1) {
        c.count /= 2;
        any = true;
      }
    }
    if (any) out.push_back(std::move(t));
  }
  // Zero the memory-aware alphas.
  if (s.memory_aware) {
    HeteroSpec z = s;
    z.memory_aware = false;
    for (auto& c : z.classes) c.mean_alpha = 0.0;
    out.push_back(std::move(z));
  }
  // Relax T.
  {
    HeteroSpec relax = s;
    relax.ideal_time_s *= 2.0;
    out.push_back(std::move(relax));
  }
  // Drop the per-type power models (back to the speed proxy).
  if (s.use_models) {
    HeteroSpec t = s;
    t.use_models = false;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

TableSpec shrink_table(
    TableSpec spec,
    const std::function<bool(const TableSpec&)>& still_fails) {
  return shrink_greedy(std::move(spec), still_fails, table_mutants);
}

WorkloadSpec shrink_workload(
    WorkloadSpec spec,
    const std::function<bool(const WorkloadSpec&)>& still_fails) {
  return shrink_greedy(std::move(spec), still_fails, workload_mutants);
}

ServiceSpec shrink_service(
    ServiceSpec spec,
    const std::function<bool(const ServiceSpec&)>& still_fails) {
  return shrink_greedy(std::move(spec), still_fails, service_mutants);
}

FleetSpec shrink_fleet(
    FleetSpec spec,
    const std::function<bool(const FleetSpec&)>& still_fails) {
  return shrink_greedy(std::move(spec), still_fails, fleet_mutants);
}

HeteroSpec shrink_hetero(
    HeteroSpec spec,
    const std::function<bool(const HeteroSpec&)>& still_fails) {
  return shrink_greedy(std::move(spec), still_fails, hetero_mutants);
}

FuzzVerdict shrink(FuzzMode mode, std::uint64_t seed) {
  FuzzVerdict v = run_one(mode, seed);
  if (v.ok) return v;
  switch (mode) {
    case FuzzMode::kSearch: {
      const auto minimal = shrink_table(
          TableSpec::random(seed),
          [](const TableSpec& s) { return !check_search(s).ok; });
      v.shrunk_summary = minimal.summary();
      v.shrunk_failure = check_search(minimal).failure;
      break;
    }
    case FuzzMode::kSearchLarge: {
      const auto minimal = shrink_table(
          TableSpec::random_large(seed),
          [](const TableSpec& s) { return !check_search(s).ok; });
      v.shrunk_summary = minimal.summary();
      v.shrunk_failure = check_search(minimal).failure;
      break;
    }
    case FuzzMode::kRuntime: {
      const auto minimal = shrink_workload(
          WorkloadSpec::random_runtime(seed),
          [](const WorkloadSpec& s) { return !check_runtime(s).ok; });
      v.shrunk_summary = minimal.summary();
      v.shrunk_failure = check_runtime(minimal).failure;
      break;
    }
    case FuzzMode::kEnergy: {
      const auto minimal = shrink_workload(
          WorkloadSpec::random_energy(seed),
          [](const WorkloadSpec& s) { return !check_energy(s).ok; });
      v.shrunk_summary = minimal.summary();
      v.shrunk_failure = check_energy(minimal).failure;
      break;
    }
    case FuzzMode::kService: {
      const auto minimal = shrink_service(
          ServiceSpec::random(seed),
          [](const ServiceSpec& s) { return !check_service(s).ok; });
      v.shrunk_summary = minimal.summary();
      v.shrunk_failure = check_service(minimal).failure;
      break;
    }
    case FuzzMode::kFleet: {
      const auto minimal = shrink_fleet(
          FleetSpec::random(seed),
          [](const FleetSpec& s) { return !check_fleet(s).ok; });
      v.shrunk_summary = minimal.summary();
      v.shrunk_failure = check_fleet(minimal).failure;
      break;
    }
    case FuzzMode::kHetero: {
      const auto minimal = shrink_hetero(
          HeteroSpec::random(seed),
          [](const HeteroSpec& s) { return !check_hetero(s).ok; });
      v.shrunk_summary = minimal.summary();
      v.shrunk_failure = check_hetero(minimal).failure;
      break;
    }
  }
  return v;
}

}  // namespace eewa::testing
