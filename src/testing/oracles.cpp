#include "testing/oracles.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/frequency_plan.hpp"
#include "core/ktuple_search.hpp"
#include "dvfs/frequency_ladder.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "sim/fleet.hpp"
#include "sim/simulate.hpp"
#include "util/rng.hpp"

namespace eewa::testing {

namespace {

std::string fmtf(const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

std::string tuple_str(const std::vector<std::size_t>& t) {
  std::string out = "(";
  for (std::size_t i = 0; i < t.size(); ++i) {
    out += (i ? "," : "") + std::to_string(t[i]);
  }
  return out + ")";
}

bool close_rel(double a, double b, double rel, double abs = 1e-12) {
  return std::abs(a - b) <= abs + rel * std::max(std::abs(a), std::abs(b));
}

/// Independent re-validation of a found tuple: nondecreasing, every rung
/// feasible, Σ demand <= m. Deliberately re-derived here rather than
/// delegated wholesale to tuple_is_valid, so a bug in the production
/// checker cannot hide a bug in the searchers.
CheckResult validate_tuple(const core::CCTable& cc,
                           const core::SearchResult& res,
                           std::size_t cores, const char* who) {
  if (res.tuple.size() != cc.cols()) {
    return CheckResult::fail(
        fmtf("%s: tuple size %zu != classes %zu", who, res.tuple.size(),
             cc.cols()));
  }
  double used = 0.0;
  for (std::size_t i = 0; i < res.tuple.size(); ++i) {
    const std::size_t j = res.tuple[i];
    if (j >= cc.rows()) {
      return CheckResult::fail(
          fmtf("%s: a[%zu]=%zu out of %zu rungs", who, i, j, cc.rows()));
    }
    if (i > 0 && j < res.tuple[i - 1]) {
      return CheckResult::fail(
          fmtf("%s: tuple %s not nondecreasing at i=%zu", who,
               tuple_str(res.tuple).c_str(), i));
    }
    if (!cc.rung_feasible(j, i)) {
      return CheckResult::fail(
          fmtf("%s: a[%zu]=%zu fails rung_feasible", who, i, j));
    }
    used += cc.demand(j, i);
  }
  if (used > static_cast<double>(cores) + 1e-9) {
    return CheckResult::fail(
        fmtf("%s: demand %.9g exceeds m=%zu for tuple %s", who, used,
             cores, tuple_str(res.tuple).c_str()));
  }
  if (!core::tuple_is_valid(cc, res.tuple, cores)) {
    return CheckResult::fail(
        fmtf("%s: tuple_is_valid rejects %s", who,
             tuple_str(res.tuple).c_str()));
  }
  const auto expect_used =
      static_cast<std::size_t>(std::ceil(used - 1e-9));
  if (res.cores_used != expect_used) {
    return CheckResult::fail(
        fmtf("%s: cores_used=%zu but ceil(Σ demand)=%zu", who,
             res.cores_used, expect_used));
  }
  return CheckResult::pass();
}

}  // namespace

namespace {

/// Direct property checks on one built table, independent of any
/// searcher: admitted rungs must be able to finish a mean-sized task
/// within T (rung_feasible / demand consistency), and the proxy power's
/// implied slowdown must sit between every class's effective slowdown
/// and the ladder's true F0/Fj.
CheckResult check_table_properties(const TableSpec& spec,
                                   const core::CCTable& cc) {
  if (spec.from_matrix) return CheckResult::pass();
  const dvfs::FrequencyLadder ladder(spec.ladder_ghz);
  for (std::size_t j = 1; j < cc.rows(); ++j) {
    double max_eff = 0.0;
    bool usable = false;
    for (std::size_t i = 0; i < cc.cols(); ++i) {
      if (cc.at(0, i) <= 0.0) continue;
      const double eff = cc.at(j, i) / cc.at(0, i);
      max_eff = std::max(max_eff, eff);
      usable = true;
      const double mean = spec.classes[i].mean_workload;
      if (cc.rung_feasible(j, i) && mean > 0.0 &&
          mean * eff > spec.ideal_time_s * (1.0 + 1e-6)) {
        return CheckResult::fail(
            fmtf("rung_feasible admits (j=%zu, i=%zu) but a mean task "
                 "takes %.9g > T=%.9g — demand's rounds<1 fallback "
                 "would decide the ranking",
                 j, i, mean * eff, spec.ideal_time_s));
      }
    }
    if (!usable) continue;
    // Implied slowdown of the proxy power: P = (1/s*)³.
    const double p = core::proxy_rung_power(cc, j);
    if (!(p > 0.0)) {
      return CheckResult::fail(
          fmtf("proxy power at rung %zu is %.9g", j, p));
    }
    const double implied = 1.0 / std::cbrt(p);
    if (implied < max_eff * (1.0 - 1e-9)) {
      return CheckResult::fail(
          fmtf("proxy slowdown %.9g at rung %zu below the table's own "
               "worst-case column slowdown %.9g",
               implied, j, max_eff));
    }
    if (implied > ladder.slowdown(j) * (1.0 + 1e-9)) {
      return CheckResult::fail(
          fmtf("proxy slowdown %.9g at rung %zu exceeds the ladder's "
               "true F0/Fj %.9g",
               implied, j, ladder.slowdown(j)));
    }
  }
  return CheckResult::pass();
}

}  // namespace

CheckResult check_search(const TableSpec& spec) {
  const core::CCTable cc = spec.build();
  const std::size_t m = spec.cores;

  if (auto v = check_table_properties(spec, cc); !v.ok) return v;

  // Exhaustive enumeration is the ground truth but exponential in k;
  // the large-table family runs it only on its smallest shapes (the
  // r·k <= 25 gate keeps every TableSpec::random case covered) and
  // leans on backtracking as the complete-feasibility reference above
  // that.
  const bool small = cc.rows() * cc.cols() <= 25;

  // Budgeted: adversarial large tables make Algorithm 1 exponential.
  // The same budget drives the pruned searcher's internal incumbent, so
  // bt.aborted here iff the incumbent aborted there — comparisons below
  // only run when the descent provably completed.
  const auto bt =
      core::search_backtracking(cc, m, core::kIncumbentNodeBudget);
  const auto gr = core::search_greedy(cc, m);
  const auto pr = core::search_pruned(cc, m);
  const auto ex = small ? core::search_exhaustive(cc, m)
                        : core::SearchResult{};
  if (pr.aborted != bt.aborted) {
    return CheckResult::fail(
        fmtf("abort disagreement: pruned incumbent=%d backtracking=%d",
             pr.aborted ? 1 : 0, bt.aborted ? 1 : 0));
  }

  // Double-run determinism: the searchers are pure functions of
  // (table, m) — identical outcome, identical node count.
  struct Rerun {
    const core::SearchResult& first;
    core::SearchKind kind;
    bool run;
  };
  const Rerun reruns[] = {{bt, core::SearchKind::kBacktracking, true},
                          {gr, core::SearchKind::kGreedy, true},
                          {pr, core::SearchKind::kPruned, true},
                          {ex, core::SearchKind::kExhaustive, small}};
  for (const auto& r : reruns) {
    if (!r.run) continue;
    // Backtracking must rerun with the same budget (the default
    // dispatch is unbudgeted and can run away on adversarial tables).
    const auto again =
        r.kind == core::SearchKind::kBacktracking
            ? core::search_backtracking(cc, m, core::kIncumbentNodeBudget)
            : core::search_ktuple(cc, m, r.kind);
    if (again.found != r.first.found || again.tuple != r.first.tuple ||
        again.nodes_visited != r.first.nodes_visited) {
      return CheckResult::fail("searcher is nondeterministic across runs");
    }
  }

  // Feasibility agreement: backtracking is a complete search over
  // nondecreasing tuples; exhaustive and pruned cover the same space.
  // An aborted descent proves nothing about feasibility (found=false
  // means "gave up"), so bt-vs-others agreement is only checked when it
  // completed. Pruned's own answer stays exact either way.
  if (!bt.aborted) {
    if (small && ex.found != bt.found) {
      return CheckResult::fail(
          fmtf("feasibility disagreement: exhaustive=%d backtracking=%d",
               ex.found ? 1 : 0, bt.found ? 1 : 0));
    }
    if (pr.found != bt.found) {
      return CheckResult::fail(
          fmtf("feasibility disagreement: pruned=%d backtracking=%d",
               pr.found ? 1 : 0, bt.found ? 1 : 0));
    }
    if (gr.found && !bt.found) {
      return CheckResult::fail("greedy found a tuple backtracking missed");
    }
  }
  if (small && ex.found != pr.found) {
    return CheckResult::fail(
        fmtf("feasibility disagreement: exhaustive=%d pruned=%d",
             ex.found ? 1 : 0, pr.found ? 1 : 0));
  }

  struct Named {
    const core::SearchResult& res;
    const char* who;
  };
  const Named named[] = {{bt, "backtracking"},
                         {gr, "greedy"},
                         {pr, "pruned"},
                         {ex, "exhaustive"}};
  for (const auto& n : named) {
    if (!n.res.found) continue;
    if (auto v = validate_tuple(cc, n.res, m, n.who); !v.ok) return v;
  }

  if (!bt.aborted && gr.found && gr.tuple != bt.tuple) {
    // Greedy is backtracking's first descent; when it completes, the
    // two must have walked the identical path.
    return CheckResult::fail(
        fmtf("greedy tuple %s != backtracking tuple %s",
             tuple_str(gr.tuple).c_str(), tuple_str(bt.tuple).c_str()));
  }

  if (bt.found) {
    const double e_bt = core::tuple_energy_estimate(cc, bt.tuple, m);
    const double e_pr = core::tuple_energy_estimate(cc, pr.tuple, m);
    if (gr.found) {
      const double e_gr = core::tuple_energy_estimate(cc, gr.tuple, m);
      if (e_bt > e_gr * (1.0 + 1e-9) + 1e-12) {
        return CheckResult::fail(
            fmtf("E(backtracking)=%.9g beaten by E(greedy)=%.9g", e_bt,
                 e_gr));
      }
    }
    // Pruned is optimal: never beaten by Algorithm 1's descent, and on
    // an energy tie it must honor the fewest-cores rule against the
    // backtracking alternative it provably considered (the incumbent).
    if (e_pr > e_bt * (1.0 + 1e-9) + 1e-12) {
      return CheckResult::fail(
          fmtf("E(pruned)=%.9g worse than E(backtracking)=%.9g "
               "(tuples %s vs %s)",
               e_pr, e_bt, tuple_str(pr.tuple).c_str(),
               tuple_str(bt.tuple).c_str()));
    }
    if (std::abs(e_pr - e_bt) <= 1e-9 && pr.cores_used > bt.cores_used) {
      return CheckResult::fail(
          fmtf("tie-break violation: E(pruned)=E(backtracking)=%.9g but "
               "pruned uses %zu cores vs %zu",
               e_pr, pr.cores_used, bt.cores_used));
    }
    if (small) {
      const double e_ex = core::tuple_energy_estimate(cc, ex.tuple, m);
      if (e_ex > e_bt * (1.0 + 1e-9) + 1e-12) {
        return CheckResult::fail(
            fmtf("E(exhaustive)=%.9g worse than E(backtracking)=%.9g "
                 "(tuples %s vs %s)",
                 e_ex, e_bt, tuple_str(ex.tuple).c_str(),
                 tuple_str(bt.tuple).c_str()));
      }
      // The tentpole invariant: pruned matches exhaustive energy
      // exactly (up to the documented 1e-9 tie window).
      if (!close_rel(e_pr, e_ex, 1e-9, 1e-9)) {
        return CheckResult::fail(
            fmtf("E(pruned)=%.12g != E(exhaustive)=%.12g (tuples %s vs "
                 "%s)",
                 e_pr, e_ex, tuple_str(pr.tuple).c_str(),
                 tuple_str(ex.tuple).c_str()));
      }
    }
  }

  if (spec.use_model) {
    // Same properties under the real PowerModel objective.
    const auto model = spec.build_model();
    const auto prm = core::search_pruned(cc, m, &model);
    if (prm.found != pr.found) {
      // The objective never changes feasibility — same lattice, same
      // capacity constraint.
      return CheckResult::fail(
          "model-objective pruned disagrees on feasibility");
    }
    if (prm.found) {
      if (auto v = validate_tuple(cc, prm, m, "pruned(model)"); !v.ok) {
        return v;
      }
      if (bt.found) {
        const double e_prm =
            core::tuple_energy_estimate(cc, prm.tuple, m, &model);
        const double e_btm =
            core::tuple_energy_estimate(cc, bt.tuple, m, &model);
        if (e_prm > e_btm * (1.0 + 1e-9) + 1e-12) {
          return CheckResult::fail(
              fmtf("model E(pruned)=%.9g worse than E(backtracking)=%.9g",
                   e_prm, e_btm));
        }
      }
    }
    if (small) {
      const auto exm = core::search_exhaustive(cc, m, &model);
      if (exm.found != bt.found) {
        return CheckResult::fail(
            "model-objective exhaustive disagrees on feasibility");
      }
      if (exm.found) {
        if (auto v = validate_tuple(cc, exm, m, "exhaustive(model)");
            !v.ok) {
          return v;
        }
        const double e_exm =
            core::tuple_energy_estimate(cc, exm.tuple, m, &model);
        const double e_btm =
            core::tuple_energy_estimate(cc, bt.tuple, m, &model);
        if (e_exm > e_btm * (1.0 + 1e-9) + 1e-12) {
          return CheckResult::fail(
              fmtf("model E(exhaustive)=%.9g worse than E(backtracking)="
                   "%.9g",
                   e_exm, e_btm));
        }
        const double e_prm =
            core::tuple_energy_estimate(cc, prm.tuple, m, &model);
        if (!close_rel(e_prm, e_exm, 1e-9, 1e-9)) {
          return CheckResult::fail(
              fmtf("model E(pruned)=%.12g != E(exhaustive)=%.12g", e_prm,
                   e_exm));
        }
        const auto exm2 = core::search_exhaustive(cc, m, &model);
        if (exm2.tuple != exm.tuple) {
          return CheckResult::fail(
              "model-objective exhaustive is nondeterministic");
        }
      }
    }
  }

  return CheckResult::pass();
}

CheckResult check_runtime(const WorkloadSpec& spec) {
  const auto tr = spec.build_trace();

  rt::RuntimeOptions opt;
  opt.workers = spec.cores;
  opt.kind = spec.rt_kind == RtKind::kCilk    ? rt::SchedulerKind::kCilk
             : spec.rt_kind == RtKind::kCilkD ? rt::SchedulerKind::kCilkD
                                              : rt::SchedulerKind::kEewa;
  opt.enable_pmc = false;
  rt::Runtime run(opt);

  const auto child = run.handle("__spawned");
  const std::size_t fail_id = run.handle("__failing").id;

  std::size_t expected_total = 0;
  std::size_t expected_failed = 0;

  for (std::size_t b = 0; b < tr.batches.size(); ++b) {
    std::vector<rt::TaskDesc> descs;
    const std::size_t top_level = tr.batches[b].tasks.size();
    for (const auto& t : tr.batches[b].tasks) {
      const double work = t.work_s;
      const std::size_t fanout = spec.spawn_fanout;
      rt::Runtime* rt_ptr = &run;
      descs.push_back(rt::TaskDesc{
          tr.class_names[t.class_id], rt::TaskFn([work, fanout, rt_ptr,
                                                  child] {
            burn_for(work);
            for (std::size_t s = 0; s < fanout; ++s) {
              rt_ptr->spawn(child, rt::TaskFn([] { burn_for(5e-6); }));
            }
          })});
    }
    for (std::size_t f = 0; f < spec.failing_tasks; ++f) {
      descs.push_back(rt::TaskDesc{
          "__failing", rt::TaskFn([] {
            throw std::runtime_error("injected task failure");
          })});
    }
    const std::size_t submitted = descs.size();
    const std::size_t expected_spawns = top_level * spec.spawn_fanout;
    expected_total += submitted + expected_spawns;
    expected_failed += spec.failing_tasks;

    bool threw = false;
    try {
      const double makespan = run.run_batch(std::move(descs));
      if (!(makespan >= 0.0)) {
        return CheckResult::fail("run_batch returned negative makespan");
      }
    } catch (const std::runtime_error&) {
      threw = true;
    }
    if (threw != (spec.failing_tasks > 0)) {
      return CheckResult::fail(
          fmtf("batch %zu: rethrow mismatch (threw=%d, injected=%zu)", b,
               threw ? 1 : 0, spec.failing_tasks));
    }

    const auto& rep = run.last_batch_report();
    // Conservation: every executed task was either submitted at the
    // barrier or spawned mid-batch...
    if (rep.tasks != submitted + rep.spawns) {
      return CheckResult::fail(
          fmtf("batch %zu: tasks=%llu != submitted=%zu + spawns=%llu", b,
               static_cast<unsigned long long>(rep.tasks), submitted,
               static_cast<unsigned long long>(rep.spawns)));
    }
    if (rep.spawns != expected_spawns) {
      return CheckResult::fail(
          fmtf("batch %zu: spawns=%llu, expected %zu", b,
               static_cast<unsigned long long>(rep.spawns),
               expected_spawns));
    }
    // ...and acquired (popped, stolen or robbed) exactly once.
    if (rep.acquires() != rep.tasks) {
      return CheckResult::fail(
          fmtf("batch %zu: acquires()=%llu != tasks=%llu", b,
               static_cast<unsigned long long>(rep.acquires()),
               static_cast<unsigned long long>(rep.tasks)));
    }

    // Exact per-class execution counts.
    auto class_count = [&rep](std::size_t id) -> std::uint64_t {
      return id < rep.classes.size() ? rep.classes[id].count : 0;
    };
    for (std::size_t c = 0; c < tr.class_count(); ++c) {
      std::size_t expect = 0;
      for (const auto& t : tr.batches[b].tasks) {
        if (t.class_id == c) ++expect;
      }
      const std::size_t id = run.handle(tr.class_names[c]).id;
      if (class_count(id) != expect) {
        return CheckResult::fail(
            fmtf("batch %zu: class %s executed %llu tasks, expected %zu",
                 b, tr.class_names[c].c_str(),
                 static_cast<unsigned long long>(class_count(id)),
                 expect));
      }
    }
    if (class_count(child.id) != expected_spawns) {
      return CheckResult::fail(
          fmtf("batch %zu: spawned-child count %llu != %zu", b,
               static_cast<unsigned long long>(class_count(child.id)),
               expected_spawns));
    }
    const std::uint64_t failed_in_class =
        fail_id < rep.classes.size() ? rep.classes[fail_id].failed : 0;
    if (class_count(fail_id) != spec.failing_tasks ||
        failed_in_class != spec.failing_tasks) {
      return CheckResult::fail(
          fmtf("batch %zu: failing-class count=%llu failed=%llu, "
               "expected %zu",
               b, static_cast<unsigned long long>(class_count(fail_id)),
               static_cast<unsigned long long>(failed_in_class),
               spec.failing_tasks));
    }
  }

  if (run.tasks_run() != expected_total) {
    return CheckResult::fail(
        fmtf("tasks_run()=%zu != spawned-or-submitted total %zu",
             run.tasks_run(), expected_total));
  }
  if (run.failed_tasks() != expected_failed) {
    return CheckResult::fail(
        fmtf("failed_tasks()=%zu != injected %zu", run.failed_tasks(),
             expected_failed));
  }

  if (spec.cores == 1) {
    // With one worker the spin tasks time cleanly (no sibling-worker
    // preemption), so the Eq.-1 normalized profile means must land near
    // the generating spec's means: recorded w = exec · F_j/F_0, so the
    // mean sits in [spec_mean · rel(slowest), ~spec_mean] modulo jitter
    // and scheduling noise. The band is deliberately loose — it exists
    // to catch systematic normalization bugs (inverted Eq. 1, wrong
    // rung), not timer noise.
    const auto& reg = run.controller().registry();
    const double rel_slowest =
        opt.ladder.relative_speed(opt.ladder.slowest_index());
    for (std::size_t c = 0; c < tr.class_count(); ++c) {
      const auto& cs = spec.trace.classes[c];
      if (cs.tasks_per_batch * spec.trace.batches < 16) continue;
      if (cs.mean_work_s < 20e-6) continue;
      const std::size_t id = run.handle(tr.class_names[c]).id;
      const double mean = reg.mean_workload(id);
      const double lo = cs.mean_work_s * rel_slowest / 6.0;
      const double hi = cs.mean_work_s * 6.0;
      if (mean < lo || mean > hi) {
        return CheckResult::fail(
            fmtf("class %s: profile mean %.6g outside [%.6g, %.6g] "
                 "(spec mean %.6g)",
                 tr.class_names[c].c_str(), mean, lo, hi,
                 cs.mean_work_s));
      }
    }
  }

  return CheckResult::pass();
}

CheckResult check_service(const ServiceSpec& spec) {
  const auto arrivals = trace::generate_arrivals(spec.arrivals);
  if (arrivals.empty()) {
    return CheckResult::pass();  // an empty stream has nothing to violate
  }

  rt::RuntimeOptions opt;
  opt.workers = spec.workers;
  opt.kind = rt::SchedulerKind::kEewa;
  opt.enable_pmc = false;
  rt::Runtime run(opt);

  rt::ServiceOptions so;
  so.queue_capacity = spec.queue_capacity;
  so.high_watermark = spec.high_watermark;
  so.policy = spec.policy == ShedPolicy::kBlock
                  ? rt::AdmissionPolicy::kBlock
              : spec.policy == ShedPolicy::kShedLowestSla
                  ? rt::AdmissionPolicy::kShedLowestSla
                  : rt::AdmissionPolicy::kShedOldest;
  so.epoch_s = spec.epoch_s;
  for (const auto& c : spec.arrivals.classes) {
    so.classes.push_back({c.name, c.sla});
  }
  // Every arrival is tagged with its index; a task marks its slot when
  // it runs, the shed hook marks the other array. The two marks must
  // never meet on one tag — that is the heart of the overload oracle.
  std::vector<std::uint8_t> ran_tags(arrivals.size(), 0);
  std::vector<std::uint8_t> shed_tags(arrivals.size(), 0);
  so.shed_hook = [&shed_tags](std::size_t, std::uint64_t tag) {
    if (tag < shed_tags.size()) shed_tags[tag] = 1;
  };
  run.start_service(std::move(so));

  std::vector<rt::ClassHandle> handles;
  for (const auto& c : spec.arrivals.classes) {
    handles.push_back(run.handle(c.name));
  }

  std::size_t backpressured = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& a = arrivals[i];
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(a.time_s)));
    const double work = a.task.work_s;
    std::uint8_t* slot = &ran_tags[i];
    const auto res = run.submit(handles[a.task.class_id],
                                rt::TaskFn([slot, work] {
                                  *slot = 1;
                                  burn_for(work);
                                }),
                                i);
    if (res == rt::SubmitResult::kBackpressure) ++backpressured;
    if (res == rt::SubmitResult::kStopped) {
      return CheckResult::fail("submit returned kStopped while serving");
    }
  }
  if (!run.drain_service(60.0)) {
    return CheckResult::fail("drain_service timed out after the stream");
  }
  const obs::EpochReport report = run.stop_service();

  // Totals reconcile exactly once quiescent.
  if (report.offered != arrivals.size()) {
    return CheckResult::fail(
        fmtf("offered=%llu != arrivals %zu",
             static_cast<unsigned long long>(report.offered),
             arrivals.size()));
  }
  if (report.pending != 0 || report.in_flight != 0) {
    return CheckResult::fail(
        fmtf("drained run still has pending=%llu in_flight=%llu",
             static_cast<unsigned long long>(report.pending),
             static_cast<unsigned long long>(report.in_flight)));
  }
  if (report.reconcile_slack() != 0) {
    return CheckResult::fail("final report does not reconcile: " +
                             report.to_string());
  }
  if (report.deferred != backpressured) {
    return CheckResult::fail(
        fmtf("deferred=%llu != kBackpressure results %zu",
             static_cast<unsigned long long>(report.deferred),
             backpressured));
  }

  // Tag-level conservation: executed + shed + backpressured covers the
  // stream, and no tag is both shed and executed.
  std::size_t ran_n = 0, shed_n = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    ran_n += ran_tags[i];
    shed_n += shed_tags[i];
    if (ran_tags[i] && shed_tags[i]) {
      return CheckResult::fail(
          fmtf("tag %zu was both shed and executed", i));
    }
    if (!ran_tags[i] && !shed_tags[i]) {
      // Must have been backpressured; cross-checked in aggregate below.
      continue;
    }
  }
  if (ran_n != report.executed) {
    return CheckResult::fail(
        fmtf("executed tags %zu != report.executed %llu", ran_n,
             static_cast<unsigned long long>(report.executed)));
  }
  if (shed_n != report.shed) {
    return CheckResult::fail(
        fmtf("shed tags %zu != report.shed %llu (hook missed a shed?)",
             shed_n, static_cast<unsigned long long>(report.shed)));
  }
  if (ran_n + shed_n + backpressured != arrivals.size()) {
    return CheckResult::fail(
        fmtf("executed %zu + shed %zu + backpressured %zu != offered %zu",
             ran_n, shed_n, backpressured, arrivals.size()));
  }

  // Policy guarantees.
  if (spec.policy == ShedPolicy::kBlock && report.shed != 0) {
    return CheckResult::fail(
        fmtf("block policy shed %llu tasks",
             static_cast<unsigned long long>(report.shed)));
  }
  for (std::size_t k = 0; k < spec.arrivals.classes.size(); ++k) {
    const auto& snap = report.classes.at(handles[k].id);
    if (snap.offered != snap.admitted + snap.shed + snap.deferred) {
      return CheckResult::fail(
          fmtf("class %zu: offered %llu != admitted+shed+deferred", k,
               static_cast<unsigned long long>(snap.offered)));
    }
    if (spec.arrivals.classes[k].sla == 0 && snap.shed != 0) {
      return CheckResult::fail(
          fmtf("never-shed class %zu shed %llu tasks", k,
               static_cast<unsigned long long>(snap.shed)));
    }
  }

  // Shedding only engages above the watermark. The depth gauge is
  // sampled once per dispatcher pass, shortly after the shed decision
  // (which sees depth >= threshold >= watermark); completions during
  // that window can shrink it by at most a few tasks per worker.
  if (report.shed > 0) {
    const std::size_t watermark = spec.high_watermark > 0
                                      ? spec.high_watermark
                                      : spec.queue_capacity / 2;
    if (report.queue_depth_hwm + 2 * spec.workers + 8 < watermark) {
      return CheckResult::fail(
          fmtf("shed %llu tasks but depth high-water %llu never neared "
               "the watermark %zu",
               static_cast<unsigned long long>(report.shed),
               static_cast<unsigned long long>(report.queue_depth_hwm),
               watermark));
    }
  }

  // Per-epoch delta reports never overcount the cumulative totals.
  std::uint64_t epoch_exec = 0, epoch_shed = 0;
  for (const auto& r : run.epoch_reports()) {
    epoch_exec += r.executed;
    epoch_shed += r.shed;
  }
  if (epoch_exec > report.executed || epoch_shed > report.shed) {
    return CheckResult::fail(
        fmtf("epoch deltas overcount: Σexec=%llu vs %llu, Σshed=%llu vs "
             "%llu",
             static_cast<unsigned long long>(epoch_exec),
             static_cast<unsigned long long>(report.executed),
             static_cast<unsigned long long>(epoch_shed),
             static_cast<unsigned long long>(report.shed)));
  }

  return CheckResult::pass();
}

CheckResult check_energy(const WorkloadSpec& spec) {
  const auto tr = spec.build_trace();

  sim::SimOptions opt;
  opt.cores = spec.cores;
  // Fixed adjuster overhead: the run must be bit-exactly reproducible.
  opt.fixed_adjuster_overhead_s = 20e-6;
  opt.seed = util::mix64(spec.seed ^ 0x51);
  opt.idle_halt = spec.idle_halt;
  if (spec.sockets) opt.cores_per_socket = 4;
  if (spec.with_faults) {
    opt.faults.transient_failure_p = 0.2;
    opt.faults.drift_p = 0.1;
    opt.faults.seed = util::mix64(spec.seed ^ 0x52);
  }

  obs::EventTracer tracer1(spec.cores + 1);
  obs::EventTracer tracer2(spec.cores + 1);
  tracer1.set_enabled(true);
  tracer2.set_enabled(true);

  opt.tracer = &tracer1;
  const auto r1 = sim::simulate_named(tr, spec.sim_policy, opt);
  opt.tracer = &tracer2;
  const auto r2 = sim::simulate_named(tr, spec.sim_policy, opt);

  // Bit-exact determinism, including the exported event trace.
  if (r1.time_s != r2.time_s || r1.energy_j != r2.energy_j ||
      r1.cpu_energy_j != r2.cpu_energy_j || r1.steals != r2.steals ||
      r1.probes != r2.probes || r1.transitions != r2.transitions) {
    return CheckResult::fail(
        fmtf("simulation not deterministic: time %.17g vs %.17g, energy "
             "%.17g vs %.17g",
             r1.time_s, r2.time_s, r1.energy_j, r2.energy_j));
  }
  if (tracer1.chrome_json() != tracer2.chrome_json()) {
    return CheckResult::fail("event traces differ between identical runs");
  }

  if (!(r1.time_s >= 0.0) || !std::isfinite(r1.time_s)) {
    return CheckResult::fail(fmtf("non-finite time %.17g", r1.time_s));
  }
  if (r1.energy_j < 0.0 || r1.cpu_energy_j < 0.0 ||
      !std::isfinite(r1.energy_j)) {
    return CheckResult::fail(
        fmtf("negative or non-finite energy %.17g", r1.energy_j));
  }

  // Wall time is exactly the sum of batch spans plus overheads.
  double span_total = 0.0;
  double core_e_total = 0.0;
  std::size_t steals = 0, probes = 0, transitions = 0;
  for (std::size_t b = 0; b < r1.batches.size(); ++b) {
    const auto& bs = r1.batches[b];
    if (bs.span_s < 0.0 || bs.overhead_s < 0.0 || bs.core_energy_j < 0.0) {
      return CheckResult::fail(
          fmtf("batch %zu: negative span/overhead/energy", b));
    }
    std::size_t rung_cores = 0;
    for (std::size_t n : bs.cores_per_rung) rung_cores += n;
    if (rung_cores != spec.cores) {
      return CheckResult::fail(
          fmtf("batch %zu: cores_per_rung sums to %zu, cores=%zu", b,
               rung_cores, spec.cores));
    }
    span_total += bs.span_s + bs.overhead_s;
    core_e_total += bs.core_energy_j;
    steals += bs.steals;
    probes += bs.probes;
    transitions += bs.transitions;
  }
  if (!close_rel(r1.time_s, span_total, 1e-9)) {
    return CheckResult::fail(
        fmtf("time %.17g != Σ(span+overhead) %.17g", r1.time_s,
             span_total));
  }
  if (steals != r1.steals || probes != r1.probes ||
      transitions != r1.transitions) {
    return CheckResult::fail(
        "batch steal/probe/transition counters do not sum to the run "
        "totals");
  }
  if (!close_rel(core_e_total, r1.cpu_energy_j, 1e-6)) {
    return CheckResult::fail(
        fmtf("Σ batch core energy %.17g != cpu_energy %.17g",
             core_e_total, r1.cpu_energy_j));
  }

  // Every core is accounted for every simulated second, on some rung.
  double residency = 0.0;
  for (double r : r1.rung_residency_s) {
    if (r < 0.0) return CheckResult::fail("negative rung residency");
    residency += r;
  }
  const double core_seconds = static_cast<double>(spec.cores) * r1.time_s;
  if (!close_rel(residency, core_seconds, 1e-6)) {
    return CheckResult::fail(
        fmtf("Σ residency %.17g != cores·time %.17g", residency,
             core_seconds));
  }

  // Whole-machine power envelope: floor <= P <= all-active-at-F0, plus
  // the per-transition switching energy.
  const double hi =
      opt.power.machine_all_active_w(spec.cores, 0) * r1.time_s +
      static_cast<double>(r1.transitions) * opt.transition.energy_j;
  const double lo = opt.power.floor_w() * r1.time_s;
  if (r1.energy_j > hi * (1.0 + 1e-6) + 1e-12 ||
      r1.energy_j < lo * (1.0 - 1e-6) - 1e-12) {
    return CheckResult::fail(
        fmtf("energy %.9g outside envelope [%.9g, %.9g]", r1.energy_j,
             lo, hi));
  }
  // Total = CPU + machine floor over the whole wall time.
  const double expect_total =
      r1.cpu_energy_j + opt.power.floor_w() * r1.time_s;
  if (!close_rel(r1.energy_j, expect_total, 1e-9)) {
    return CheckResult::fail(
        fmtf("energy %.17g != cpu + floor·time %.17g", r1.energy_j,
             expect_total));
  }

  return CheckResult::pass();
}

namespace {

sim::FleetOptions fleet_options(const FleetSpec& spec) {
  sim::FleetOptions o;
  o.machines = spec.machines;
  o.machine.cores = spec.cores;
  o.machine.seed = util::mix64(spec.seed ^ 0xf1ee70ULL);
  o.ladder.clear();
  for (std::size_t k = 0; k < spec.ladder_power_w.size(); ++k) {
    o.ladder.push_back({"st" + std::to_string(k), spec.ladder_power_w[k],
                        spec.ladder_wake_s[k]});
  }
  o.epoch_s = spec.epoch_s;
  o.park_after_epochs = spec.park_after_epochs;
  o.deepen_after_epochs = spec.deepen_after_epochs;
  o.transition_energy_j = spec.transition_energy_j;
  o.policy = spec.policy;
  o.placement = spec.placement;
  o.max_backlog_s = spec.max_backlog_s;
  o.initial_state = spec.initial_state;
  o.threads = spec.threads;
  return o;
}

}  // namespace

CheckResult check_fleet(const FleetSpec& spec) {
  const sim::FleetOptions opts = fleet_options(spec);
  const obs::FleetReport a = sim::Fleet(opts, spec.arrivals).run();
  {
    const obs::FleetReport b = sim::Fleet(opts, spec.arrivals).run();
    if (!(a == b)) {
      return CheckResult::fail(
          "fleet determinism: two runs of the same spec differ");
    }
  }
  {
    // (1b) Serial-vs-parallel differential: every fuzz case also runs
    // on the other engine (serial cases on 2 threads, parallel cases on
    // the serial engine) and must reproduce the report bit for bit.
    sim::FleetOptions other = opts;
    other.threads = opts.threads > 1 ? 1 : 2;
    const obs::FleetReport c = sim::Fleet(other, spec.arrivals).run();
    if (!(a == c)) {
      return CheckResult::fail(
          fmtf("parallel engine diverged: threads=%zu vs threads=%zu "
               "reports differ",
               opts.threads, other.threads));
    }
  }

  // (2) Fleet-wide task conservation.
  if (a.offered != a.routed + a.shed) {
    return CheckResult::fail(fmtf("offered %zu != routed %zu + shed %zu",
                                  a.offered, a.routed, a.shed));
  }
  if (a.in_flight != 0 || a.routed != a.completed) {
    return CheckResult::fail(
        fmtf("drain left in_flight=%zu (routed %zu, completed %zu)",
             a.in_flight, a.routed, a.completed));
  }
  if (spec.max_backlog_s <= 0.0 && a.shed != 0) {
    return CheckResult::fail(
        fmtf("shed %zu tasks with no backlog cap set", a.shed));
  }
  if (a.per_machine.size() != a.machines || a.machines != spec.machines) {
    return CheckResult::fail(fmtf("machine count mismatch: %zu reports, "
                                  "%zu machines",
                                  a.per_machine.size(), a.machines));
  }

  // (4a) Ladder echo, strictly monotone both ways.
  if (a.ladder.size() != spec.ladder_power_w.size()) {
    return CheckResult::fail("ladder echo lost states");
  }
  for (std::size_t k = 1; k < a.ladder.size(); ++k) {
    if (!(a.ladder[k].power_w < a.ladder[k - 1].power_w) ||
        !(a.ladder[k].wake_latency_s > a.ladder[k - 1].wake_latency_s)) {
      return CheckResult::fail(
          fmtf("ladder not monotone at state %zu: %.9g W after %.9g W, "
               "%.9g s after %.9g s",
               k, a.ladder[k].power_w, a.ladder[k - 1].power_w,
               a.ladder[k].wake_latency_s, a.ladder[k - 1].wake_latency_s));
    }
  }

  const double cores = static_cast<double>(a.cores_per_machine);
  const double floor_w = opts.machine.power.floor_w();
  std::size_t sum_routed = 0, sum_completed = 0, sum_parks = 0,
              sum_wakes = 0;
  double sum_energy = 0.0, sum_powered = 0.0, sum_parked = 0.0;
  for (std::size_t i = 0; i < a.per_machine.size(); ++i) {
    const auto& m = a.per_machine[i];
    if (m.routed != m.completed) {
      return CheckResult::fail(
          fmtf("machine %zu: routed %zu != completed %zu after drain", i,
               m.routed, m.completed));
    }
    if (m.sleep_residency_s.size() != a.ladder.size() ||
        m.wakes_per_state.size() != a.ladder.size()) {
      return CheckResult::fail(fmtf("machine %zu: residency vectors do "
                                    "not match the ladder",
                                    i));
    }
    double parked = 0.0, sleep_j = 0.0, stall = 0.0;
    std::size_t wakes = 0;
    for (std::size_t k = 0; k < a.ladder.size(); ++k) {
      if (m.sleep_residency_s[k] < -1e-12) {
        return CheckResult::fail(fmtf(
            "machine %zu: negative residency %.9g in state %zu", i,
            m.sleep_residency_s[k], k));
      }
      parked += m.sleep_residency_s[k];
      sleep_j += m.sleep_residency_s[k] * a.ladder[k].power_w;
      stall += static_cast<double>(m.wakes_per_state[k]) *
               a.ladder[k].wake_latency_s;
      wakes += m.wakes_per_state[k];
    }
    // (3) Every machine-second billed exactly once.
    if (!close_rel(m.powered_s + parked, a.horizon_s, 1e-9, 1e-9)) {
      return CheckResult::fail(
          fmtf("machine %zu: powered %.9g + parked %.9g != horizon %.9g",
               i, m.powered_s, parked, a.horizon_s));
    }
    if (!close_rel(m.charged_core_s, cores * m.powered_s, 1e-9, 1e-9)) {
      return CheckResult::fail(
          fmtf("machine %zu: charged core-seconds %.9g != cores x "
               "powered %.9g — a park/wake cycle double-billed or "
               "skipped core time",
               i, m.charged_core_s, cores * m.powered_s));
    }
    // (4b) Power-state ledger.
    const std::size_t ends_parked = m.final_state > 0 ? 1 : 0;
    if (m.parks != m.wakes + ends_parked) {
      return CheckResult::fail(
          fmtf("machine %zu: parks %zu != wakes %zu + ends_parked %zu",
               i, m.parks, m.wakes, ends_parked));
    }
    if (wakes != m.wakes) {
      return CheckResult::fail(
          fmtf("machine %zu: Σ wakes_per_state %zu != wakes %zu", i,
               wakes, m.wakes));
    }
    if (!close_rel(m.wake_stall_s, stall, 1e-9, 1e-12)) {
      return CheckResult::fail(
          fmtf("machine %zu: wake stall %.9g != Σ wakes·latency %.9g", i,
               m.wake_stall_s, stall));
    }
    // No task ran on an unpowered machine: completions require batches,
    // batches require powered time at least as long as the stall.
    if (m.completed > 0 && (m.batches == 0 || m.powered_s <= 0.0)) {
      return CheckResult::fail(
          fmtf("machine %zu: %zu tasks completed with batches=%zu "
               "powered=%.9g",
               i, m.completed, m.batches, m.powered_s));
    }
    if ((m.first_start_s < 0.0) != (m.batches == 0)) {
      return CheckResult::fail(
          fmtf("machine %zu: first_start %.9g inconsistent with "
               "batches %zu",
               i, m.first_start_s, m.batches));
    }
    if (m.batches > a.epochs) {
      return CheckResult::fail(fmtf(
          "machine %zu: %zu batches over %zu epochs", i, m.batches,
          a.epochs));
    }
    // (3b) Per-machine energy decomposition.
    if (!close_rel(m.floor_energy_j, floor_w * m.powered_s, 1e-9, 1e-9)) {
      return CheckResult::fail(
          fmtf("machine %zu: floor energy %.9g != floor %.9g x powered "
               "%.9g",
               i, m.floor_energy_j, floor_w, m.powered_s));
    }
    if (!close_rel(m.sleep_energy_j, sleep_j, 1e-9, 1e-9)) {
      return CheckResult::fail(
          fmtf("machine %zu: sleep energy %.9g != Σ residency·power "
               "%.9g",
               i, m.sleep_energy_j, sleep_j));
    }
    const double trans = static_cast<double>(m.parks + m.wakes) *
                         spec.transition_energy_j;
    if (!close_rel(m.transition_energy_j, trans, 1e-9, 1e-12)) {
      return CheckResult::fail(
          fmtf("machine %zu: transition energy %.9g != (parks+wakes) x "
               "%.9g",
               i, m.transition_energy_j, spec.transition_energy_j));
    }
    sum_routed += m.routed;
    sum_completed += m.completed;
    sum_parks += m.parks;
    sum_wakes += m.wakes;
    sum_energy += m.energy_j();
    sum_powered += m.powered_s;
    sum_parked += parked;
  }

  if (sum_routed != a.routed || sum_completed != a.completed) {
    return CheckResult::fail(
        fmtf("per-machine sums (routed %zu, completed %zu) != fleet "
             "(%zu, %zu)",
             sum_routed, sum_completed, a.routed, a.completed));
  }
  if (sum_parks != a.parks || sum_wakes != a.wakes) {
    return CheckResult::fail(fmtf("park/wake sums (%zu, %zu) != fleet "
                                  "(%zu, %zu)",
                                  sum_parks, sum_wakes, a.parks, a.wakes));
  }
  if (!close_rel(sum_energy, a.energy_j, 1e-9, 1e-9)) {
    return CheckResult::fail(
        fmtf("Σ machine energy %.17g != fleet energy %.17g — "
             "double-charging across park/wake",
             sum_energy, a.energy_j));
  }
  if (!close_rel(sum_powered, a.powered_machine_s, 1e-9, 1e-9) ||
      !close_rel(sum_parked, a.parked_machine_s, 1e-9, 1e-9)) {
    return CheckResult::fail("powered/parked machine-second sums differ "
                             "from the fleet totals");
  }
  const double floor_time =
      static_cast<double>(a.epochs) * a.epoch_s;
  if (a.horizon_s + 1e-12 < floor_time) {
    return CheckResult::fail(fmtf(
        "horizon %.9g ends before the last epoch %.9g", a.horizon_s,
        floor_time));
  }
  return CheckResult::pass();
}

namespace {

/// Per-type capacity audit of a typed tuple — the constraint the global
/// validate_tuple cannot see: each class draws cores from the cluster
/// its row belongs to, so per-type fractional usage must fit that
/// type's own core count. Re-derived here, independent of
/// tuple_is_valid's own typed branch.
CheckResult validate_typed_tuple(const core::CCTable& cc,
                                 const core::SearchResult& res,
                                 const char* who) {
  const core::MachineTopology& topo = *cc.topology();
  std::vector<long double> used(topo.type_count(), 0.0L);
  for (std::size_t i = 0; i < res.tuple.size(); ++i) {
    used[topo.row_type(res.tuple[i])] += cc.demand(res.tuple[i], i);
  }
  for (std::size_t t = 0; t < used.size(); ++t) {
    if (used[t] > static_cast<long double>(topo.type(t).count) + 1e-9) {
      return CheckResult::fail(fmtf(
          "%s: type %zu usage %.9g exceeds its %zu cores for tuple %s",
          who, t, static_cast<double>(used[t]), topo.type(t).count,
          tuple_str(res.tuple).c_str()));
    }
  }
  return CheckResult::pass();
}

/// Structural checks on the generated topology: flattened rows descend
/// by effective speed, row_of round-trips, slowdowns are >= 1 with row 0
/// the exact reference, and per-type core-id ranges are contiguous.
CheckResult check_topology(const HeteroSpec& spec,
                           const core::MachineTopology& topo) {
  std::size_t expect_rows = 0;
  std::size_t expect_cores = 0;
  for (const auto& t : spec.types) {
    expect_rows += t.ladder_ghz.size();
    expect_cores += t.count;
  }
  if (topo.row_count() != expect_rows) {
    return CheckResult::fail(fmtf("topology has %zu rows, spec implies %zu",
                                  topo.row_count(), expect_rows));
  }
  if (topo.total_cores() != expect_cores) {
    return CheckResult::fail(fmtf("topology has %zu cores, spec says %zu",
                                  topo.total_cores(), expect_cores));
  }
  if (topo.row_slowdown(0) != 1.0) {
    return CheckResult::fail(
        fmtf("row 0 slowdown is %.17g, not exactly 1", topo.row_slowdown(0)));
  }
  for (std::size_t j = 0; j < topo.row_count(); ++j) {
    if (j > 0 && topo.row_speed(j) > topo.row_speed(j - 1) + 1e-15) {
      return CheckResult::fail(
          fmtf("row speeds not descending at row %zu: %.9g > %.9g", j,
               topo.row_speed(j), topo.row_speed(j - 1)));
    }
    if (topo.row_slowdown(j) + 1e-12 < 1.0) {
      return CheckResult::fail(
          fmtf("row %zu slowdown %.9g below 1", j, topo.row_slowdown(j)));
    }
    const std::size_t t = topo.row_type(j);
    const std::size_t rung = topo.row_rung(j);
    if (t >= topo.type_count() ||
        rung >= topo.type(t).ladder.size()) {
      return CheckResult::fail(
          fmtf("row %zu maps to out-of-range (type %zu, rung %zu)", j, t,
               rung));
    }
    if (topo.row_of(t, rung) != j) {
      return CheckResult::fail(
          fmtf("row_of(%zu, %zu) = %zu, expected %zu round-trip", t, rung,
               topo.row_of(t, rung), j));
    }
  }
  std::size_t next_core = 0;
  for (std::size_t t = 0; t < topo.type_count(); ++t) {
    if (topo.first_core(t) != next_core) {
      return CheckResult::fail(
          fmtf("type %zu first core %zu, expected contiguous %zu", t,
               topo.first_core(t), next_core));
    }
    for (std::size_t c = 0; c < topo.type(t).count; ++c) {
      if (topo.type_of_core(next_core + c) != t) {
        return CheckResult::fail(
            fmtf("core %zu owned by type %zu, expected %zu", next_core + c,
                 topo.type_of_core(next_core + c), t));
      }
    }
    const std::size_t slowest = topo.slowest_row_of_type(t);
    if (topo.row_type(slowest) != t ||
        topo.row_rung(slowest) != topo.type(t).ladder.size() - 1) {
      return CheckResult::fail(
          fmtf("slowest_row_of_type(%zu) = row %zu does not name the "
               "type's last rung",
               t, slowest));
    }
    next_core += topo.type(t).count;
  }
  return CheckResult::pass();
}

/// The typed plan carver's structural contract: every core in exactly
/// one group, every group inside its own type's contiguous core range
/// and ladder, every class mapped to a real group.
CheckResult check_typed_plan(const core::CCTable& cc,
                             const core::FrequencyPlan& plan,
                             std::size_t m) {
  const core::MachineTopology& topo = *cc.topology();
  const auto& layout = plan.layout;
  if (layout.total_cores() != m) {
    return CheckResult::fail(fmtf("plan covers %zu cores, machine has %zu",
                                  layout.total_cores(), m));
  }
  std::size_t covered = 0;
  for (std::size_t g = 0; g < layout.group_count(); ++g) {
    covered += layout.group(g).cores.size();
  }
  if (covered != m) {
    return CheckResult::fail(
        fmtf("plan groups cover %zu cores, expected every one of %zu",
             covered, m));
  }
  for (std::size_t c = 0; c < m; ++c) {
    if (!layout.core_assigned(c)) {
      return CheckResult::fail(fmtf("core %zu is in no c-group", c));
    }
  }
  if (plan.planned) {
    for (std::size_t g = 0; g < layout.group_count(); ++g) {
      const auto& grp = layout.group(g);
      if (grp.core_type >= topo.type_count()) {
        return CheckResult::fail(
            fmtf("group %zu names type %zu of %zu", g, grp.core_type,
                 topo.type_count()));
      }
      const auto& ct = topo.type(grp.core_type);
      if (grp.freq_index >= ct.ladder.size()) {
        return CheckResult::fail(
            fmtf("group %zu rung %zu past type %zu's %zu-rung ladder", g,
                 grp.freq_index, grp.core_type, ct.ladder.size()));
      }
      const std::size_t lo = topo.first_core(grp.core_type);
      for (std::size_t c : grp.cores) {
        if (c < lo || c >= lo + ct.count) {
          return CheckResult::fail(
              fmtf("group %zu (type %zu) claims core %zu outside "
                   "[%zu, %zu)",
                   g, grp.core_type, c, lo, lo + ct.count));
        }
      }
    }
  }
  if (layout.class_count() != cc.cols()) {
    return CheckResult::fail(fmtf("plan maps %zu classes, table has %zu",
                                  layout.class_count(), cc.cols()));
  }
  for (std::size_t i = 0; i < layout.class_count(); ++i) {
    if (layout.group_of_class(i) >= layout.group_count()) {
      return CheckResult::fail(
          fmtf("class %zu mapped to group %zu of %zu", i,
               layout.group_of_class(i), layout.group_count()));
    }
  }
  return CheckResult::pass();
}

}  // namespace

CheckResult check_hetero(const HeteroSpec& spec) {
  const core::MachineTopology topo = spec.build_topology();
  if (auto v = check_topology(spec, topo); !v.ok) return v;

  const core::CCTable cc = spec.build();
  const std::size_t m = spec.total_cores();
  if (cc.topology() == nullptr) {
    return CheckResult::fail("build_typed produced a table with no topology");
  }
  if (cc.rows() != topo.row_count() || cc.cols() != spec.classes.size()) {
    return CheckResult::fail(fmtf("typed table is %zux%zu, expected %zux%zu",
                                  cc.rows(), cc.cols(), topo.row_count(),
                                  spec.classes.size()));
  }

  // The typed CC identity (generalized Eq. 1): every row scales its
  // column base by that row's effective slowdown.
  for (std::size_t i = 0; i < cc.cols(); ++i) {
    const auto& c = spec.classes[i];
    const double base = c.total_workload() / spec.ideal_time_s;
    if (!close_rel(cc.at(0, i), base, 1e-9)) {
      return CheckResult::fail(
          fmtf("CC[0][%zu]=%.9g != n·w̄/T=%.9g", i, cc.at(0, i), base));
    }
    const double alpha = spec.memory_aware ? c.mean_alpha : 0.0;
    for (std::size_t j = 1; j < cc.rows(); ++j) {
      const double want =
          (alpha + (1.0 - alpha) * topo.row_slowdown(j)) * base;
      if (!close_rel(cc.at(j, i), want, 1e-9)) {
        return CheckResult::fail(
            fmtf("CC[%zu][%zu]=%.9g != s_eff·base=%.9g", j, i, cc.at(j, i),
                 want));
      }
    }
    // rung_feasible / demand consistency, as in the homogeneous oracle:
    // an admitted rung must let a mean-sized task finish within T.
    for (std::size_t j = 1; j < cc.rows(); ++j) {
      if (cc.at(0, i) <= 0.0) continue;
      const double eff = cc.at(j, i) / cc.at(0, i);
      if (cc.rung_feasible(j, i) && c.mean_workload > 0.0 &&
          c.mean_workload * eff > spec.ideal_time_s * (1.0 + 1e-6)) {
        return CheckResult::fail(
            fmtf("rung_feasible admits (row=%zu, i=%zu) but a mean task "
                 "takes %.9g > T=%.9g",
                 j, i, c.mean_workload * eff, spec.ideal_time_s));
      }
    }
  }

  // Searcher differential, as check_search runs it — same budget, same
  // small-table exhaustive gate — plus the per-type capacity audit.
  const bool small = cc.rows() * cc.cols() <= 25;
  const auto bt =
      core::search_backtracking(cc, m, core::kIncumbentNodeBudget);
  const auto gr = core::search_greedy(cc, m);
  const auto pr = core::search_pruned(cc, m);
  const auto ex = small ? core::search_exhaustive(cc, m)
                        : core::SearchResult{};
  if (pr.aborted != bt.aborted) {
    return CheckResult::fail(
        fmtf("abort disagreement: pruned incumbent=%d backtracking=%d",
             pr.aborted ? 1 : 0, bt.aborted ? 1 : 0));
  }

  struct Rerun {
    const core::SearchResult& first;
    core::SearchKind kind;
    bool run;
  };
  const Rerun reruns[] = {{bt, core::SearchKind::kBacktracking, true},
                          {gr, core::SearchKind::kGreedy, true},
                          {pr, core::SearchKind::kPruned, true},
                          {ex, core::SearchKind::kExhaustive, small}};
  for (const auto& r : reruns) {
    if (!r.run) continue;
    const auto again =
        r.kind == core::SearchKind::kBacktracking
            ? core::search_backtracking(cc, m, core::kIncumbentNodeBudget)
            : core::search_ktuple(cc, m, r.kind);
    if (again.found != r.first.found || again.tuple != r.first.tuple ||
        again.nodes_visited != r.first.nodes_visited) {
      return CheckResult::fail(
          "typed searcher is nondeterministic across runs");
    }
  }

  if (!bt.aborted) {
    if (small && ex.found != bt.found) {
      return CheckResult::fail(
          fmtf("feasibility disagreement: exhaustive=%d backtracking=%d",
               ex.found ? 1 : 0, bt.found ? 1 : 0));
    }
    if (pr.found != bt.found) {
      return CheckResult::fail(
          fmtf("feasibility disagreement: pruned=%d backtracking=%d",
               pr.found ? 1 : 0, bt.found ? 1 : 0));
    }
    if (gr.found && !bt.found) {
      return CheckResult::fail("greedy found a tuple backtracking missed");
    }
  }
  if (small && ex.found != pr.found) {
    return CheckResult::fail(
        fmtf("feasibility disagreement: exhaustive=%d pruned=%d",
             ex.found ? 1 : 0, pr.found ? 1 : 0));
  }

  struct Named {
    const core::SearchResult& res;
    const char* who;
  };
  const Named named[] = {{bt, "backtracking"},
                         {gr, "greedy"},
                         {pr, "pruned"},
                         {ex, "exhaustive"}};
  for (const auto& n : named) {
    if (!n.res.found) continue;
    if (auto v = validate_tuple(cc, n.res, m, n.who); !v.ok) return v;
    if (auto v = validate_typed_tuple(cc, n.res, n.who); !v.ok) return v;
  }

  if (!bt.aborted && gr.found && gr.tuple != bt.tuple) {
    return CheckResult::fail(
        fmtf("greedy tuple %s != backtracking tuple %s",
             tuple_str(gr.tuple).c_str(), tuple_str(bt.tuple).c_str()));
  }

  if (bt.found) {
    const double e_bt = core::tuple_energy_estimate(cc, bt.tuple, m);
    const double e_pr = core::tuple_energy_estimate(cc, pr.tuple, m);
    if (gr.found) {
      const double e_gr = core::tuple_energy_estimate(cc, gr.tuple, m);
      if (e_bt > e_gr * (1.0 + 1e-9) + 1e-12) {
        return CheckResult::fail(
            fmtf("E(backtracking)=%.9g beaten by E(greedy)=%.9g", e_bt,
                 e_gr));
      }
    }
    if (e_pr > e_bt * (1.0 + 1e-9) + 1e-12) {
      return CheckResult::fail(
          fmtf("E(pruned)=%.9g worse than E(backtracking)=%.9g "
               "(tuples %s vs %s)",
               e_pr, e_bt, tuple_str(pr.tuple).c_str(),
               tuple_str(bt.tuple).c_str()));
    }
    if (small) {
      const double e_ex = core::tuple_energy_estimate(cc, ex.tuple, m);
      if (e_ex > e_bt * (1.0 + 1e-9) + 1e-12) {
        return CheckResult::fail(
            fmtf("E(exhaustive)=%.9g worse than E(backtracking)=%.9g",
                 e_ex, e_bt));
      }
      // The tentpole invariant, typed: pruned matches exhaustive energy
      // under per-type capacities.
      if (!close_rel(e_pr, e_ex, 1e-9, 1e-9)) {
        return CheckResult::fail(
            fmtf("E(pruned)=%.12g != E(exhaustive)=%.12g (tuples %s vs %s)",
                 e_pr, e_ex, tuple_str(pr.tuple).c_str(),
                 tuple_str(ex.tuple).c_str()));
      }
    }
  }

  // Plan carving over the pruned result (and the uniform fallback when
  // the search failed).
  const auto plan = core::make_frequency_plan(
      cc, pr, m, dvfs::FrequencyLadder(spec.types[0].ladder_ghz),
      cc.cols());
  if (plan.planned != pr.found) {
    return CheckResult::fail(
        fmtf("plan.planned=%d but search found=%d", plan.planned ? 1 : 0,
             pr.found ? 1 : 0));
  }
  if (auto v = check_typed_plan(cc, plan, m); !v.ok) return v;

  // Degenerate-equality law 1: a single-type scale-1 topology is the
  // homogeneous machine, and build_typed must reproduce CCTable::build
  // bit for bit (same searcher feasibility follows from the identical
  // table + a capacity equal to the single type's count).
  if (spec.types.size() == 1 && spec.types[0].mips_scale == 1.0) {
    const auto hom = core::CCTable::build(
        spec.classes, dvfs::FrequencyLadder(spec.types[0].ladder_ghz),
        spec.ideal_time_s, spec.memory_aware);
    for (std::size_t j = 0; j < cc.rows(); ++j) {
      for (std::size_t i = 0; i < cc.cols(); ++i) {
        if (cc.at(j, i) != hom.at(j, i)) {
          return CheckResult::fail(
              fmtf("single-type typed CC[%zu][%zu]=%.17g != homogeneous "
                   "%.17g",
                   j, i, cc.at(j, i), hom.at(j, i)));
        }
      }
    }
    const auto pr_hom = core::search_pruned(hom, m);
    if (pr_hom.found != pr.found) {
      return CheckResult::fail(
          fmtf("single-type feasibility: typed pruned=%d homogeneous=%d",
               pr.found ? 1 : 0, pr_hom.found ? 1 : 0));
    }
    if (pr_hom.found &&
        !core::tuple_is_valid(cc, pr_hom.tuple, m)) {
      return CheckResult::fail(
          "homogeneous winner rejected by the typed validity check");
    }
  }

  // Degenerate-equality law 2 (the memory-aware identity): with every
  // alpha zeroed, memory_aware=true must be bitwise identical to
  // memory_aware=false — same table, same winning tuple.
  {
    auto zeroed = spec.classes;
    for (auto& c : zeroed) c.mean_alpha = 0.0;
    const auto on =
        core::CCTable::build_typed(zeroed, topo, spec.ideal_time_s, true);
    const auto off =
        core::CCTable::build_typed(zeroed, topo, spec.ideal_time_s, false);
    for (std::size_t j = 0; j < on.rows(); ++j) {
      for (std::size_t i = 0; i < on.cols(); ++i) {
        if (on.at(j, i) != off.at(j, i)) {
          return CheckResult::fail(
              fmtf("zero-alpha CC[%zu][%zu] differs: aware=%.17g "
                   "unaware=%.17g",
                   j, i, on.at(j, i), off.at(j, i)));
        }
      }
    }
    const auto pr_on = core::search_pruned(on, m);
    const auto pr_off = core::search_pruned(off, m);
    if (pr_on.found != pr_off.found || pr_on.tuple != pr_off.tuple) {
      return CheckResult::fail(
          "zero-alpha memory_aware flag changed the winning tuple");
    }
  }

  return CheckResult::pass();
}

}  // namespace eewa::testing
