#include "testing/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "dvfs/frequency_ladder.hpp"
#include "util/rng.hpp"

namespace eewa::testing {

namespace {

/// Random descending, distinct frequency ladder with r rungs.
std::vector<double> random_ladder(util::Xoshiro256& rng, std::size_t r) {
  std::vector<double> ghz(r);
  double f = rng.uniform(1.5, 3.5);
  for (std::size_t j = 0; j < r; ++j) {
    ghz[j] = f;
    f *= rng.uniform(0.55, 0.95);
  }
  return ghz;
}

void appendf(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

}  // namespace

TableSpec TableSpec::random(std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix64(seed ^ 0x7ab1e5eedULL));
  TableSpec spec;
  spec.seed = seed;

  // Degenerate shapes stay common: they are where table code breaks.
  const std::size_t r = rng.chance(0.15) ? 1 : 1 + rng.bounded(5);
  const std::size_t k = rng.chance(0.15) ? 1 : 1 + rng.bounded(5);
  spec.ladder_ghz = random_ladder(rng, r);
  spec.cores = 1 + rng.bounded(24);
  spec.use_model = rng.chance(0.5);
  spec.from_matrix = rng.chance(0.3);

  if (spec.from_matrix) {
    // Bare demand matrix; zero entries (idle classes) and entries above
    // m (individually infeasible columns) both appear.
    spec.matrix.assign(r, std::vector<double>(k, 0.0));
    for (std::size_t j = 0; j < r; ++j) {
      for (std::size_t i = 0; i < k; ++i) {
        if (rng.chance(0.15)) continue;  // leave a zero
        const double hi = rng.chance(0.1)
                              ? 2.0 * static_cast<double>(spec.cores)
                              : 0.75 * static_cast<double>(spec.cores);
        spec.matrix[j][i] = rng.uniform(0.0, hi);
      }
    }
    return spec;
  }

  spec.memory_aware = rng.chance(0.4);
  // Classes sorted by descending mean workload, heaviest first; zero
  // counts, zero means and missing max metadata all appear.
  double mean = rng.uniform(1e-4, 5e-2);
  for (std::size_t i = 0; i < k; ++i) {
    core::ClassProfile c;
    c.class_id = i;
    c.name = "TC" + std::to_string(i);
    c.count = rng.chance(0.1) ? 0 : rng.bounded(200);
    c.mean_workload = rng.chance(0.08) ? 0.0 : mean;
    c.max_workload =
        rng.chance(0.25) ? 0.0 : c.mean_workload * rng.uniform(1.0, 3.0);
    if (spec.memory_aware) c.mean_alpha = rng.uniform(0.0, 0.9);
    spec.classes.push_back(std::move(c));
    mean *= rng.uniform(0.2, 1.0);
  }
  // Zeroed means can break the descending order CCTable::build demands;
  // restore it and keep ids consistent with the final positions.
  std::stable_sort(spec.classes.begin(), spec.classes.end(),
                   [](const core::ClassProfile& a,
                      const core::ClassProfile& b) {
                     return a.mean_workload > b.mean_workload;
                   });
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    spec.classes[i].class_id = i;
  }
  // T scales with total demand per core; tight T (rungs infeasible, or
  // the whole table infeasible) is deliberately reachable.
  double total_w = 0.0;
  for (const auto& c : spec.classes) total_w += c.total_workload();
  const double base_t = total_w > 0.0
                            ? total_w / static_cast<double>(spec.cores)
                            : 1e-3;
  spec.ideal_time_s =
      base_t * (rng.chance(0.25) ? rng.uniform(0.2, 0.9)
                                 : rng.uniform(1.0, 4.0));
  return spec;
}

TableSpec TableSpec::random_large(std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix64(seed ^ 0x1a26e7ab1eULL));
  TableSpec spec;
  spec.seed = seed;

  // Production shapes: many rungs, many classes. Small ends of the
  // ranges stay reachable so a slice of every sweep is still cheap
  // enough for the exhaustive cross-check.
  const std::size_t r = 2 + rng.bounded(15);   // 2..16
  const std::size_t k = 8 + rng.bounded(249);  // 8..256
  spec.ladder_ghz = random_ladder(rng, r);
  const std::size_t core_choices[] = {16, 32, 64, 128, 256, 512};
  spec.cores = core_choices[rng.bounded(6)];
  spec.use_model = rng.chance(0.3);
  spec.memory_aware = rng.chance(0.4);

  // Heavy-tailed class mix: a few hot classes dominate, a long tail of
  // light ones follows — the service-mode profile shape.
  double mean = rng.uniform(1e-3, 5e-2);
  for (std::size_t i = 0; i < k; ++i) {
    core::ClassProfile c;
    c.class_id = i;
    c.name = "TC" + std::to_string(i);
    c.count = rng.chance(0.05) ? 0 : 1 + rng.bounded(400);
    c.mean_workload = rng.chance(0.03) ? 0.0 : mean;
    c.max_workload =
        rng.chance(0.15) ? 0.0 : c.mean_workload * rng.uniform(1.0, 3.0);
    if (spec.memory_aware) c.mean_alpha = rng.uniform(0.0, 0.9);
    spec.classes.push_back(std::move(c));
    mean *= rng.uniform(0.90, 1.0);
  }
  std::stable_sort(spec.classes.begin(), spec.classes.end(),
                   [](const core::ClassProfile& a,
                      const core::ClassProfile& b) {
                     return a.mean_workload > b.mean_workload;
                   });
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    spec.classes[i].class_id = i;
  }
  double total_w = 0.0;
  for (const auto& c : spec.classes) total_w += c.total_workload();
  const double base_t = total_w > 0.0
                            ? total_w / static_cast<double>(spec.cores)
                            : 1e-3;
  // Mostly loaded-but-feasible (where the search actually works for its
  // answer), sometimes slack, sometimes too tight to plan at all.
  const double load_draw = rng.uniform();
  spec.ideal_time_s = base_t * (load_draw < 0.15  ? rng.uniform(0.3, 0.95)
                                : load_draw < 0.7 ? rng.uniform(1.05, 1.6)
                                                  : rng.uniform(1.6, 6.0));
  return spec;
}

core::CCTable TableSpec::build() const {
  if (from_matrix) {
    return core::CCTable::from_matrix(matrix);
  }
  return core::CCTable::build(classes, dvfs::FrequencyLadder(ladder_ghz),
                              ideal_time_s, memory_aware);
}

energy::PowerModel TableSpec::build_model() const {
  dvfs::FrequencyLadder ladder(ladder_ghz);
  std::vector<double> volts(ladder.size());
  for (std::size_t j = 0; j < ladder.size(); ++j) {
    // Voltage tracks frequency, as real DVFS curves do.
    volts[j] = 0.8 + 0.5 * ladder.relative_speed(j);
  }
  return energy::PowerModel(ladder, std::move(volts),
                            /*dyn_coeff_w=*/2.0, /*core_static_w=*/1.0,
                            /*floor_w=*/0.0);
}

std::string TableSpec::summary() const {
  std::string out;
  appendf(out, "TableSpec seed=%llu cores=%zu use_model=%d",
          static_cast<unsigned long long>(seed), cores,
          use_model ? 1 : 0);
  out += " ladder=[";
  for (std::size_t j = 0; j < ladder_ghz.size(); ++j) {
    appendf(out, "%s%.4f", j ? ", " : "", ladder_ghz[j]);
  }
  out += "]";
  if (from_matrix) {
    out += " matrix=[";
    for (std::size_t j = 0; j < matrix.size(); ++j) {
      out += j ? "; [" : "[";
      for (std::size_t i = 0; i < matrix[j].size(); ++i) {
        appendf(out, "%s%.4f", i ? ", " : "", matrix[j][i]);
      }
      out += "]";
    }
    out += "]";
    return out;
  }
  appendf(out, " T=%.6g memory_aware=%d classes=[", ideal_time_s,
          memory_aware ? 1 : 0);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const auto& c = classes[i];
    appendf(out, "%s{n=%zu mean=%.6g max=%.6g alpha=%.3f}", i ? ", " : "",
            c.count, c.mean_workload, c.max_workload, c.mean_alpha);
  }
  out += "]";
  return out;
}

WorkloadSpec WorkloadSpec::random_runtime(std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix64(seed ^ 0x0f1ceeedULL));
  WorkloadSpec spec;
  spec.seed = seed;
  spec.cores = 1 + rng.bounded(4);  // rt workers
  const std::size_t k = 1 + rng.bounded(4);
  spec.trace.name = "fuzz_rt";
  spec.trace.seed = util::mix64(seed ^ 0x11);
  spec.trace.batches = 1 + rng.bounded(4);
  spec.trace.batch_jitter_cv = rng.uniform(0.0, 0.1);
  for (std::size_t i = 0; i < k; ++i) {
    trace::ClassSpec c;
    c.name = "rc" + std::to_string(i);
    c.tasks_per_batch = rng.chance(0.1) ? 0 : rng.bounded(40);
    c.mean_work_s = rng.uniform(20e-6, 120e-6);
    c.cv = rng.uniform(0.0, 0.5);
    spec.trace.classes.push_back(std::move(c));
  }
  spec.spawn_fanout = rng.bounded(4);
  spec.failing_tasks = rng.chance(0.25) ? 1 + rng.bounded(3) : 0;
  const double kind_draw = rng.uniform();
  spec.rt_kind = kind_draw < 0.6    ? RtKind::kEewa
                 : kind_draw < 0.8  ? RtKind::kCilk
                                    : RtKind::kCilkD;
  return spec;
}

WorkloadSpec WorkloadSpec::random_energy(std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix64(seed ^ 0xe4e26eedULL));
  WorkloadSpec spec;
  spec.seed = seed;
  const std::size_t core_choices[] = {1, 2, 4, 8, 16};
  spec.cores = core_choices[rng.bounded(5)];
  const std::size_t k = 1 + rng.bounded(4);
  spec.trace.name = "fuzz_sim";
  spec.trace.seed = util::mix64(seed ^ 0x22);
  spec.trace.batches = 1 + rng.bounded(5);
  spec.trace.batch_jitter_cv = rng.uniform(0.0, 0.15);
  if (rng.chance(0.3)) spec.trace.release_window_s = rng.uniform(0.0, 0.01);
  double mean = rng.uniform(1e-4, 2e-2);
  for (std::size_t i = 0; i < k; ++i) {
    trace::ClassSpec c;
    c.name = "sc" + std::to_string(i);
    c.tasks_per_batch = rng.chance(0.1) ? 0 : rng.bounded(60);
    c.mean_work_s = mean;
    c.cv = rng.uniform(0.0, 0.6);
    c.cmi = rng.chance(0.2) ? rng.uniform(0.0, 0.03) : 0.0;
    c.mem_alpha = rng.chance(0.25) ? rng.uniform(0.0, 0.8) : 0.0;
    spec.trace.classes.push_back(std::move(c));
    mean *= rng.uniform(0.3, 1.0);
  }
  const char* policies[] = {"cilk", "cilk-d", "sharing", "ondemand",
                            "eewa"};
  spec.sim_policy = policies[rng.bounded(5)];
  spec.idle_halt = rng.chance(0.25);
  spec.with_faults = rng.chance(0.25);
  spec.sockets = rng.chance(0.3);
  return spec;
}

trace::TaskTrace WorkloadSpec::build_trace() const {
  return trace::generate(trace);
}

std::string WorkloadSpec::summary() const {
  std::string out;
  const char* kind = rt_kind == RtKind::kCilk    ? "cilk"
                     : rt_kind == RtKind::kCilkD ? "cilk-d"
                                                 : "eewa";
  appendf(out,
          "WorkloadSpec seed=%llu cores=%zu batches=%zu jitter=%.3f "
          "release=%.4g fanout=%zu failing=%zu rt=%s sim=%s halt=%d "
          "faults=%d sockets=%d classes=[",
          static_cast<unsigned long long>(seed), cores, trace.batches,
          trace.batch_jitter_cv, trace.release_window_s, spawn_fanout,
          failing_tasks, kind, sim_policy.c_str(), idle_halt ? 1 : 0,
          with_faults ? 1 : 0, sockets ? 1 : 0);
  for (std::size_t i = 0; i < trace.classes.size(); ++i) {
    const auto& c = trace.classes[i];
    appendf(out, "%s{%s n=%zu mean=%.6g cv=%.2f alpha=%.2f}",
            i ? ", " : "", c.name.c_str(), c.tasks_per_batch,
            c.mean_work_s, c.cv, c.mem_alpha);
  }
  out += "]";
  return out;
}

ServiceSpec ServiceSpec::random(std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix64(seed ^ 0x5e41ceedULL));
  ServiceSpec spec;
  spec.seed = seed;
  spec.workers = 1 + rng.bounded(4);

  auto& arr = spec.arrivals;
  arr.name = "fuzz_service";
  arr.seed = util::mix64(seed ^ 0x33);
  arr.cores = spec.workers;
  arr.duration_s = rng.uniform(0.03, 0.08);
  // Underload through sustained overload; the >1 region is where the
  // admission path earns its keep, so it stays common.
  const double loads[] = {0.3, 0.7, 1.2, 2.0, 3.0};
  arr.load = loads[rng.bounded(5)];
  arr.kind = rng.chance(0.4) ? trace::ArrivalKind::kBursty
                             : trace::ArrivalKind::kSteady;
  arr.burst_factor = rng.uniform(1.5, 4.0);
  arr.burst_period_s = rng.uniform(0.01, 0.04);

  const std::size_t k = 1 + rng.bounded(3);
  const bool bimodal = k > 1 && rng.chance(0.4);
  for (std::size_t i = 0; i < k; ++i) {
    trace::ArrivalClassSpec c;
    c.name = "svc" + std::to_string(i);
    c.weight = rng.uniform(0.2, 1.0);
    // Bimodal mixes: a rare-heavy class next to common-light ones.
    c.mean_work_s = bimodal && i == 0 ? rng.uniform(200e-6, 500e-6)
                                      : rng.uniform(30e-6, 120e-6);
    if (bimodal && i == 0) c.weight *= 0.2;
    c.cv = rng.uniform(0.0, 0.5);
    c.cmi = rng.chance(0.2) ? rng.uniform(0.0, 0.03) : 0.0;
    // sla 0 (never shed) appears but is not universal, so both the
    // backpressure and the shed paths get exercised.
    c.sla = rng.chance(0.25) ? 0 : 1 + rng.bounded(3);
    arr.classes.push_back(std::move(c));
  }

  const std::size_t caps[] = {32, 64, 128, 256};
  spec.queue_capacity = caps[rng.bounded(4)];
  spec.high_watermark =
      rng.chance(0.5) ? 0 : spec.queue_capacity / (2 + rng.bounded(3));
  const double policy_draw = rng.uniform();
  spec.policy = policy_draw < 0.5   ? ShedPolicy::kShedLowestSla
                : policy_draw < 0.8 ? ShedPolicy::kShedOldest
                                    : ShedPolicy::kBlock;
  spec.epoch_s = rng.uniform(0.001, 0.004);
  return spec;
}

std::string ServiceSpec::summary() const {
  std::string out;
  const char* pol = policy == ShedPolicy::kBlock          ? "block"
                    : policy == ShedPolicy::kShedLowestSla ? "shed-sla"
                                                           : "shed-oldest";
  const char* kind =
      arrivals.kind == trace::ArrivalKind::kBursty ? "bursty" : "steady";
  appendf(out,
          "ServiceSpec seed=%llu workers=%zu cap=%zu hw=%zu policy=%s "
          "epoch=%.4g load=%.2f kind=%s burst={x%.2f %.3gs} dur=%.3g "
          "classes=[",
          static_cast<unsigned long long>(seed), workers, queue_capacity,
          high_watermark, pol, epoch_s, arrivals.load, kind,
          arrivals.burst_factor, arrivals.burst_period_s,
          arrivals.duration_s);
  for (std::size_t i = 0; i < arrivals.classes.size(); ++i) {
    const auto& c = arrivals.classes[i];
    appendf(out, "%s{%s w=%.2f mean=%.6g cv=%.2f sla=%zu}", i ? ", " : "",
            c.name.c_str(), c.weight, c.mean_work_s, c.cv, c.sla);
  }
  out += "]";
  return out;
}

FleetSpec FleetSpec::random(std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix64(seed ^ 0xf1ee7ULL));
  FleetSpec spec;
  spec.seed = seed;
  // One-machine fleets stay common: they anchor the fleet-vs-bare
  // differential and make shrunk repros readable.
  spec.machines = rng.chance(0.2) ? 1 : 2 + rng.bounded(5);
  spec.cores = 2 + rng.bounded(5);

  auto& arr = spec.arrivals;
  arr.name = "fuzz_fleet";
  arr.seed = util::mix64(seed ^ 0x44);
  arr.cores = spec.machines * spec.cores;  // fleet-wide capacity normalizer
  arr.duration_s = rng.uniform(0.04, 0.12);
  // Zero offered load is a legal fleet (everything parks); overload
  // exercises shedding when max_backlog_s is set.
  const double loads[] = {0.0, 0.3, 0.7, 1.2, 2.0};
  arr.load = loads[rng.bounded(5)];
  const double shape = rng.uniform();
  if (shape < 0.5) {
    arr.kind = trace::ArrivalKind::kSteady;
  } else if (shape < 0.8) {
    arr.kind = trace::ArrivalKind::kBursty;
    arr.burst_factor = rng.uniform(1.5, 4.0);
    arr.burst_period_s = rng.uniform(0.01, 0.04);
  } else {
    // Burst-then-idle: one on-phase covering the first half of the
    // run, then silence — machines must drain, park and deepen.
    arr.kind = trace::ArrivalKind::kBursty;
    arr.burst_factor = rng.uniform(2.0, 4.0);
    arr.burst_period_s = arr.duration_s;
  }
  const std::size_t k = 1 + rng.bounded(3);
  for (std::size_t i = 0; i < k; ++i) {
    trace::ArrivalClassSpec c;
    c.name = "flt" + std::to_string(i);
    c.weight = rng.uniform(0.2, 1.0);
    c.mean_work_s = rng.uniform(30e-6, 150e-6);
    c.cv = rng.uniform(0.0, 0.6);
    c.cmi = rng.chance(0.2) ? rng.uniform(0.0, 0.03) : 0.0;
    arr.classes.push_back(std::move(c));
  }

  // Random ladder, monotone by construction: powers decay by a factor
  // per rung, latencies grow by one.
  const std::size_t states = 1 + rng.bounded(5);
  double p = rng.uniform(60.0, 120.0);
  double w = rng.uniform(0.2e-3, 2e-3);
  for (std::size_t s = 0; s < states; ++s) {
    spec.ladder_power_w.push_back(p);
    spec.ladder_wake_s.push_back(w);
    p *= rng.uniform(0.2, 0.8);
    w *= rng.uniform(3.0, 10.0);
  }
  if (states > 1 && rng.chance(0.5)) {
    spec.ladder_power_w.back() = 0.0;  // a true OFF bottom rung
  }

  spec.epoch_s = rng.uniform(0.004, 0.02);
  spec.park_after_epochs = 1 + rng.bounded(3);
  spec.deepen_after_epochs = 1 + rng.bounded(3);
  spec.transition_energy_j = rng.chance(0.2) ? 0.0 : rng.uniform(0.5, 3.0);

  const double pol = rng.uniform();
  spec.policy = pol < 0.4   ? "eewa"
                : pol < 0.6 ? "cilk"
                : pol < 0.75 ? "cilk-d"
                : pol < 0.9 ? "ondemand"
                            : "sharing";
  const double plc = rng.uniform();
  spec.placement = plc < 0.4   ? "least-loaded"
                   : plc < 0.75 ? "pack"
                                : "round-robin";
  spec.max_backlog_s = rng.chance(0.6) ? 0.0 : rng.uniform(0.005, 0.05);
  // Cold starts, up to all-OFF (deepest rung).
  spec.initial_state =
      rng.chance(0.7) ? 0 : 1 + rng.bounded(spec.ladder_power_w.size());
  // Drawn last so the thread knob perturbs no earlier field: every
  // historical seed keeps its shape, half the corpus now runs the
  // parallel engine (whose report must match the serial one bitwise —
  // check_fleet runs the differential on every case).
  spec.threads = rng.chance(0.5) ? 1 : 2 + rng.bounded(4);
  return spec;
}

std::string FleetSpec::summary() const {
  std::string out;
  const char* kind =
      arrivals.kind == trace::ArrivalKind::kBursty ? "bursty" : "steady";
  appendf(out,
          "FleetSpec seed=%llu machines=%zu cores=%zu threads=%zu "
          "policy=%s placement=%s epoch=%.4g park_after=%zu "
          "deepen_after=%zu tej=%.3g max_backlog=%.4g init_state=%zu "
          "load=%.2f kind=%s burst={x%.2f %.3gs} dur=%.3g ladder=[",
          static_cast<unsigned long long>(seed), machines, cores, threads,
          policy.c_str(), placement.c_str(), epoch_s, park_after_epochs,
          deepen_after_epochs, transition_energy_j, max_backlog_s,
          initial_state, arrivals.load, kind, arrivals.burst_factor,
          arrivals.burst_period_s, arrivals.duration_s);
  for (std::size_t i = 0; i < ladder_power_w.size(); ++i) {
    appendf(out, "%s{%.4gW %.4gs}", i ? ", " : "", ladder_power_w[i],
            ladder_wake_s[i]);
  }
  out += "] classes=[";
  for (std::size_t i = 0; i < arrivals.classes.size(); ++i) {
    const auto& c = arrivals.classes[i];
    appendf(out, "%s{%s w=%.2f mean=%.6g cv=%.2f}", i ? ", " : "",
            c.name.c_str(), c.weight, c.mean_work_s, c.cv);
  }
  out += "]";
  return out;
}

HeteroSpec HeteroSpec::random(std::uint64_t seed) {
  util::Xoshiro256 rng(util::mix64(seed ^ 0x4e7e60eedULL));
  HeteroSpec spec;
  spec.seed = seed;

  // Single-type machines stay common: they anchor the typed-vs-
  // homogeneous differential and make shrunk repros readable.
  const std::size_t nt = rng.chance(0.35) ? 1 : 2 + rng.bounded(2);
  for (std::size_t t = 0; t < nt; ++t) {
    TypeSpec ts;
    const std::size_t r = rng.chance(0.15) ? 1 : 1 + rng.bounded(4);
    ts.ladder_ghz = random_ladder(rng, r);
    // Exact 1.0 stays common — with one type it is the degenerate shape
    // the typed build must reproduce bit for bit.
    ts.mips_scale = rng.chance(0.3) ? 1.0 : rng.uniform(0.3, 1.5);
    ts.count = 1 + rng.bounded(8);
    spec.types.push_back(std::move(ts));
  }
  spec.use_models = rng.chance(0.5);
  spec.memory_aware = rng.chance(0.4);

  // Classes as in TableSpec::random: descending means, zero counts,
  // zero means and missing max metadata all appear.
  const std::size_t k = rng.chance(0.15) ? 1 : 1 + rng.bounded(4);
  double mean = rng.uniform(1e-4, 5e-2);
  for (std::size_t i = 0; i < k; ++i) {
    core::ClassProfile c;
    c.class_id = i;
    c.name = "TC" + std::to_string(i);
    c.count = rng.chance(0.1) ? 0 : rng.bounded(200);
    c.mean_workload = rng.chance(0.08) ? 0.0 : mean;
    c.max_workload =
        rng.chance(0.25) ? 0.0 : c.mean_workload * rng.uniform(1.0, 3.0);
    if (spec.memory_aware) c.mean_alpha = rng.uniform(0.0, 0.9);
    spec.classes.push_back(std::move(c));
    mean *= rng.uniform(0.2, 1.0);
  }
  std::stable_sort(spec.classes.begin(), spec.classes.end(),
                   [](const core::ClassProfile& a,
                      const core::ClassProfile& b) {
                     return a.mean_workload > b.mean_workload;
                   });
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    spec.classes[i].class_id = i;
  }
  double total_w = 0.0;
  for (const auto& c : spec.classes) total_w += c.total_workload();
  const double base_t =
      total_w > 0.0 ? total_w / static_cast<double>(spec.total_cores())
                    : 1e-3;
  spec.ideal_time_s =
      base_t * (rng.chance(0.25) ? rng.uniform(0.2, 0.9)
                                 : rng.uniform(1.0, 4.0));
  return spec;
}

std::size_t HeteroSpec::total_cores() const {
  std::size_t m = 0;
  for (const auto& t : types) m += t.count;
  return m;
}

core::MachineTopology HeteroSpec::build_topology() const {
  std::vector<core::CoreType> out;
  for (std::size_t t = 0; t < types.size(); ++t) {
    const TypeSpec& ts = types[t];
    core::CoreType ct;
    ct.name = "T" + std::to_string(t);
    ct.ladder = dvfs::FrequencyLadder(ts.ladder_ghz);
    ct.mips_scale.assign(ts.ladder_ghz.size(), ts.mips_scale);
    ct.count = ts.count;
    if (use_models) {
      // Same voltage curve as TableSpec::build_model, per type ladder;
      // the MIPS scale also scales power, so LITTLE cores are cheap.
      std::vector<double> volts(ct.ladder.size());
      for (std::size_t j = 0; j < ct.ladder.size(); ++j) {
        volts[j] = 0.8 + 0.5 * ct.ladder.relative_speed(j);
      }
      ct.model = std::make_shared<const energy::PowerModel>(
          ct.ladder, std::move(volts),
          /*dyn_coeff_w=*/2.0 * ts.mips_scale,
          /*core_static_w=*/1.0 * ts.mips_scale, /*floor_w=*/0.0);
    }
    out.push_back(std::move(ct));
  }
  return core::MachineTopology(std::move(out));
}

core::CCTable HeteroSpec::build() const {
  return core::CCTable::build_typed(classes, build_topology(),
                                    ideal_time_s, memory_aware);
}

std::string HeteroSpec::summary() const {
  std::string out;
  appendf(out, "HeteroSpec seed=%llu models=%d T=%.6g memory_aware=%d "
          "types=[",
          static_cast<unsigned long long>(seed), use_models ? 1 : 0,
          ideal_time_s, memory_aware ? 1 : 0);
  for (std::size_t t = 0; t < types.size(); ++t) {
    const auto& ts = types[t];
    appendf(out, "%s{n=%zu scale=%.3f ladder=[", t ? ", " : "", ts.count,
            ts.mips_scale);
    for (std::size_t j = 0; j < ts.ladder_ghz.size(); ++j) {
      appendf(out, "%s%.4f", j ? ", " : "", ts.ladder_ghz[j]);
    }
    out += "]}";
  }
  out += "] classes=[";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const auto& c = classes[i];
    appendf(out, "%s{n=%zu mean=%.6g max=%.6g alpha=%.3f}", i ? ", " : "",
            c.count, c.mean_workload, c.max_workload, c.mean_alpha);
  }
  out += "]";
  return out;
}

void burn_for(double seconds) {
  using Clock = std::chrono::steady_clock;
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  while (Clock::now() < until) {
    // spin
  }
}

}  // namespace eewa::testing
