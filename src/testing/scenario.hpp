// Seeded scenario generation for the property/differential fuzz harness.
//
// Every fuzz case is a pure function of one 64-bit seed: the seed expands
// (through the repo's own Xoshiro256) into either a TableSpec (a CC table
// plus search configuration, for the k-tuple search oracle) or a
// WorkloadSpec (a synthetic task trace plus machine/runtime
// configuration, for the runtime and energy oracles). Specs — not the
// built objects — are the unit the shrinker mutates, so a failing case
// can be bisected down to a minimal repro and printed in a form a human
// can reconstruct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cc_table.hpp"
#include "core/task_class.hpp"
#include "energy/power_model.hpp"
#include "trace/arrivals.hpp"
#include "trace/synthetic.hpp"
#include "trace/task_trace.hpp"

namespace eewa::testing {

/// A generated CC-table scenario for the search oracle. Two shapes:
/// `from_matrix` cases are bare demand matrices (no timing info, every
/// rung feasible); build cases go through CCTable::build with a random
/// ladder, class mix, T and optional memory-aware alphas, exercising
/// rung_feasible / demand.
struct TableSpec {
  std::uint64_t seed = 0;
  bool from_matrix = false;
  std::vector<double> ladder_ghz;           ///< descending, distinct
  std::vector<std::vector<double>> matrix;  ///< from_matrix path: r x k
  std::vector<core::ClassProfile> classes;  ///< build path: sorted desc
  double ideal_time_s = 1.0;                ///< T (build path)
  bool memory_aware = false;
  std::size_t cores = 16;  ///< m
  bool use_model = false;  ///< also run the PowerModel-objective search

  /// Deterministic expansion of a seed, including degenerate shapes
  /// (k=1, r=1, zero-demand classes, missing max metadata, tight T).
  static TableSpec random(std::uint64_t seed);

  /// Production-scale expansion of a seed: r up to 16 rungs, k up to 256
  /// classes with a heavy-tailed workload mix, core counts up to 512,
  /// load from slack to (occasionally) infeasible. These tables are far
  /// beyond exhaustive enumeration — the oracle checks the pruned search
  /// against backtracking on them, and against exhaustive only when
  /// r·k is small enough.
  static TableSpec random_large(std::uint64_t seed);

  /// Build the CC table this spec describes.
  core::CCTable build() const;

  /// Deterministic power model over ladder_ghz (voltage tracks f).
  energy::PowerModel build_model() const;

  /// Human-readable dump, complete enough to reconstruct the case.
  std::string summary() const;
};

/// Which rt::Runtime scheduler a runtime-oracle case drives.
enum class RtKind { kCilk, kCilkD, kEewa };

/// A generated workload scenario for the runtime and energy oracles.
struct WorkloadSpec {
  std::uint64_t seed = 0;
  trace::SyntheticSpec trace;  ///< classes, batches, jitter, releases
  std::size_t cores = 4;       ///< sim cores / runtime workers
  std::size_t spawn_fanout = 0;   ///< rt: children spawned per task
  std::size_t failing_tasks = 0;  ///< rt: throwing tasks per batch
  RtKind rt_kind = RtKind::kEewa;
  std::string sim_policy = "eewa";  ///< simulate_named policy
  bool idle_halt = false;           ///< sim: halt instead of spin
  bool with_faults = false;         ///< sim: seeded DVFS faults
  bool sockets = false;             ///< sim: 4-core sockets topology

  /// Runtime-oracle shape: small real-time workloads (spin tasks),
  /// recursive spawns, injected failures.
  static WorkloadSpec random_runtime(std::uint64_t seed);

  /// Energy-oracle shape: simulated workloads across all policies,
  /// release windows, idle-halt and fault injection.
  static WorkloadSpec random_energy(std::uint64_t seed);

  /// Generate the task trace (deterministic in trace.seed).
  trace::TaskTrace build_trace() const;

  /// Human-readable dump, complete enough to reconstruct the case.
  std::string summary() const;
};

/// Admission policy of a service-oracle case (mirrors
/// rt::AdmissionPolicy without pulling runtime headers into the spec
/// layer).
enum class ShedPolicy { kBlock, kShedLowestSla, kShedOldest };

/// A generated open-loop service scenario for the service oracle:
/// an arrival stream (steady or bursty, underload through sustained
/// overload, bimodal class mixes) plus the runtime's service
/// configuration. The oracle tracks every arrival by tag and checks the
/// overload conservation laws (docs/service_mode.md).
struct ServiceSpec {
  std::uint64_t seed = 0;
  trace::ArrivalSpec arrivals;
  std::size_t workers = 2;
  std::size_t queue_capacity = 256;
  std::size_t high_watermark = 0;  ///< 0 = runtime default (capacity/2)
  ShedPolicy policy = ShedPolicy::kShedLowestSla;
  double epoch_s = 0.002;

  /// Deterministic expansion of a seed; overload (load > 1) and bursty
  /// shapes stay common — they are what the admission path exists for.
  static ServiceSpec random(std::uint64_t seed);

  /// Human-readable dump, complete enough to reconstruct the case.
  std::string summary() const;
};

/// A generated fleet scenario for the fleet oracle: machine count and
/// size, a sleep-state ladder, consolidation cadence, per-machine
/// scheduling policy, placement policy, and an arrival stream. The
/// degenerate shapes stay common: one machine, all-OFF cold start, zero
/// arrivals, and burst-then-idle (a single on-phase followed by
/// silence, the shape that exercises park-deepen-wake the hardest).
/// Plain data only — the oracle layer builds the sim::FleetOptions.
struct FleetSpec {
  std::uint64_t seed = 0;
  std::size_t machines = 4;
  std::size_t cores = 4;  ///< per machine
  trace::ArrivalSpec arrivals;
  std::vector<double> ladder_power_w;  ///< strictly decreasing
  std::vector<double> ladder_wake_s;   ///< strictly increasing
  double epoch_s = 0.01;
  std::size_t park_after_epochs = 2;
  std::size_t deepen_after_epochs = 2;
  double transition_energy_j = 1.0;
  std::string policy = "eewa";
  std::string placement = "least-loaded";
  double max_backlog_s = 0.0;     ///< 0 = never shed
  std::size_t initial_state = 0;  ///< 0 = powered, i = ladder[i-1]
  std::size_t threads = 1;        ///< fleet engine threads (1 = serial)

  /// Deterministic expansion of a seed, degenerate shapes included.
  static FleetSpec random(std::uint64_t seed);

  /// Human-readable dump, complete enough to reconstruct the case.
  std::string summary() const;
};

/// A generated heterogeneous-machine scenario for the hetero oracle: a
/// typed topology (one to three core types, each with its own frequency
/// ladder, MIPS scale and core count, optionally per-type power models)
/// plus a class mix and ideal time — TableSpec's role, for typed tables.
/// The single-type mips_scale=1 degenerate shape stays common: it is
/// where the typed planner must agree with the homogeneous build bit
/// for bit.
struct HeteroSpec {
  std::uint64_t seed = 0;

  /// One core type of the generated machine.
  struct TypeSpec {
    std::vector<double> ladder_ghz;  ///< descending, distinct
    double mips_scale = 1.0;         ///< uniform across the type's rungs
    std::size_t count = 1;           ///< cores of this type
  };
  std::vector<TypeSpec> types;

  std::vector<core::ClassProfile> classes;  ///< sorted desc by mean
  double ideal_time_s = 1.0;
  bool memory_aware = false;
  bool use_models = false;  ///< attach per-type power models

  /// Deterministic expansion of a seed. Shapes bias small (most cases
  /// stay under the rows·k <= 25 exhaustive gate, so the typed pruned
  /// searcher is checked against ground truth), but multi-type tables
  /// past the gate appear too.
  static HeteroSpec random(std::uint64_t seed);

  /// Σ per-type counts — the machine size m.
  std::size_t total_cores() const;

  /// Build the typed machine this spec describes.
  core::MachineTopology build_topology() const;

  /// CCTable::build_typed over build_topology().
  core::CCTable build() const;

  /// Human-readable dump, complete enough to reconstruct the case.
  std::string summary() const;
};

/// Busy-spin for `seconds` of wall time — the runtime-oracle task body.
void burn_for(double seconds);

}  // namespace eewa::testing
