// Seeded fuzz driver over the three oracles: single-case runs, seed
// sweeps, and spec-level shrinking of failing cases.
//
// Reproducibility contract: a case is a pure function of (mode, seed),
// so `fuzz_explorer --mode M --seed N` regenerates the identical
// workload and verdict anywhere. Shrinking mutates the *spec* (drop a
// class, drop a rung, halve counts, ...) rather than the built objects,
// keeping every intermediate candidate printable and re-runnable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testing/oracles.hpp"
#include "testing/scenario.hpp"

namespace eewa::testing {

/// Which oracle a case runs through. kSearchLarge feeds the search
/// oracle production-scale tables (r up to 16, k up to 256) where
/// exhaustive enumeration is impossible — the pruned searcher is held
/// to backtracking's feasibility/tie-break rules there, and to
/// exhaustive energy only on the family's smallest shapes.
enum class FuzzMode {
  kSearch,
  kSearchLarge,
  kRuntime,
  kEnergy,
  kService,
  kFleet,
  kHetero,
};

/// CLI-facing name of a mode ("search", "search-large", "runtime",
/// "energy", "service", "fleet", "hetero").
const char* mode_name(FuzzMode mode);

/// Verdict of one fuzz case.
struct FuzzVerdict {
  FuzzMode mode = FuzzMode::kSearch;
  std::uint64_t seed = 0;
  bool ok = true;
  std::string failure;       ///< first violated invariant (empty when ok)
  std::string spec_summary;  ///< the generated spec, reconstructable
  /// Shrunk spec (set by shrink(); empty otherwise). The shrunk case
  /// fails some invariant with as few classes/rungs/batches/tasks as
  /// the greedy bisection could reach.
  std::string shrunk_summary;
  std::string shrunk_failure;

  /// The command regenerating this case.
  std::string repro_command() const;
};

/// Run one seeded case through its oracle.
FuzzVerdict run_one(FuzzMode mode, std::uint64_t seed);

/// Outcome of a seed sweep.
struct SweepResult {
  std::size_t ran = 0;
  std::size_t failed = 0;
  std::vector<FuzzVerdict> failures;  ///< capped at max_failures
};

/// Run `count` consecutive seeds [base_seed, base_seed + count) through
/// one oracle, collecting up to `max_failures` failing verdicts.
SweepResult run_sweep(FuzzMode mode, std::uint64_t base_seed,
                      std::size_t count, std::size_t max_failures = 8);

/// Greedily shrink a failing table spec: keep applying the first
/// mutation (drop class, drop rung, halve counts, zero alphas, halve
/// cores, relax T, drop model) for which `still_fails` holds, until
/// none does. `still_fails` decides what counts as failing — the fuzz
/// driver passes the oracle, tests can pass synthetic predicates.
TableSpec shrink_table(TableSpec spec,
                       const std::function<bool(const TableSpec&)>&
                           still_fails);

/// Same idea for workload specs (drop class, halve batches/tasks/cores,
/// zero jitter/releases/fanout/failures, simplify policy and machine).
WorkloadSpec shrink_workload(WorkloadSpec spec,
                             const std::function<bool(const WorkloadSpec&)>&
                                 still_fails);

/// Same idea for service specs (drop class, lower load, shorten the
/// stream, steady shape, block policy, fewer workers).
ServiceSpec shrink_service(ServiceSpec spec,
                           const std::function<bool(const ServiceSpec&)>&
                               still_fails);

/// Same idea for fleet specs (fewer machines, shorter stream, lower
/// load, steady shape, shallower ladder, simpler policy and placement,
/// warm start, no backlog cap).
FleetSpec shrink_fleet(FleetSpec spec,
                       const std::function<bool(const FleetSpec&)>&
                           still_fails);

/// Same idea for hetero specs (drop class, drop a whole core type, drop
/// a rung of one type, halve per-type counts, flatten MIPS scales to 1,
/// zero alphas, relax T, drop the power models).
HeteroSpec shrink_hetero(HeteroSpec spec,
                         const std::function<bool(const HeteroSpec&)>&
                             still_fails);

/// Run one case and, if it fails, bisect it to a minimal repro (fills
/// shrunk_summary / shrunk_failure on the verdict).
FuzzVerdict shrink(FuzzMode mode, std::uint64_t seed);

}  // namespace eewa::testing
