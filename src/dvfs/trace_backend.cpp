#include "dvfs/trace_backend.hpp"

#include <stdexcept>

namespace eewa::dvfs {

TraceBackend::TraceBackend(FrequencyLadder ladder, std::size_t cores,
                           std::size_t initial_index)
    : ladder_(std::move(ladder)),
      start_(std::chrono::steady_clock::now()),
      current_(cores, initial_index) {
  if (cores == 0) {
    throw std::invalid_argument("TraceBackend: need at least one core");
  }
  if (initial_index >= ladder_.size()) {
    throw std::invalid_argument("TraceBackend: initial rung out of range");
  }
}

double TraceBackend::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

bool TraceBackend::set_frequency(std::size_t core, std::size_t freq_index) {
  if (core >= current_.size() || freq_index >= ladder_.size()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (current_[core] == freq_index) return true;
  current_[core] = freq_index;
  log_.push_back(Transition{now_s(), core, freq_index});
  return true;
}

std::size_t TraceBackend::frequency_index(std::size_t core) const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.at(core);
}

std::size_t TraceBackend::transition_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

std::vector<Transition> TraceBackend::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

}  // namespace eewa::dvfs
