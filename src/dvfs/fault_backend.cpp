#include "dvfs/fault_backend.hpp"

#include <algorithm>

namespace eewa::dvfs {

FaultInjectingBackend::FaultInjectingBackend(DvfsBackend& inner,
                                             FaultSpec spec)
    : inner_(inner), spec_(std::move(spec)), rng_(spec_.seed) {}

bool FaultInjectingBackend::chance(double p) {
  if (p <= 0.0) return false;
  const double u = static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
  return u < p;
}

bool FaultInjectingBackend::set_frequency(std::size_t core,
                                          std::size_t freq_index) {
  ++writes_;
  if (spec_.is_stuck(core)) {
    ++stuck_rejections_;
    return false;
  }
  if (chance(spec_.transient_failure_p)) {
    ++transient_failures_;
    return false;
  }
  std::size_t target = freq_index;
  if (chance(spec_.drift_p)) {
    // Land one rung slower; the write still reports success, so only a
    // readback catches it (exactly how cpufreq policy clamps behave).
    const std::size_t drifted =
        std::min(freq_index + 1, inner_.ladder().size() - 1);
    if (drifted != target) {
      target = drifted;
      ++drifts_;
    }
  }
  const bool ok = inner_.set_frequency(core, target);
  if (ok) modeled_latency_s_ += spec_.extra_latency_s;
  return ok;
}

}  // namespace eewa::dvfs
