// The set of operating frequencies a core can run at (paper notation:
// F_0 > F_1 > ... > F_{r-1}). Index 0 is always the fastest frequency.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eewa::dvfs {

/// An immutable, strictly-descending list of core frequencies in GHz.
class FrequencyLadder {
 public:
  /// Construct from frequencies in GHz. They are sorted into descending
  /// order; duplicates and non-positive values throw std::invalid_argument.
  explicit FrequencyLadder(std::vector<double> ghz);

  /// Number of rungs, r.
  std::size_t size() const { return ghz_.size(); }

  /// Frequency at rung j in GHz (F_j; descending in j).
  double ghz(std::size_t j) const { return ghz_.at(j); }

  /// Fastest frequency F_0.
  double fastest() const { return ghz_.front(); }

  /// Slowest frequency F_{r-1}.
  double slowest() const { return ghz_.back(); }

  /// Index of the slowest rung (r - 1).
  std::size_t slowest_index() const { return ghz_.size() - 1; }

  /// Speed ratio F_0 / F_j (>= 1). The CC table scales core counts by this.
  double slowdown(std::size_t j) const { return ghz_.front() / ghz_.at(j); }

  /// Relative speed F_j / F_0 (<= 1).
  double relative_speed(std::size_t j) const {
    return ghz_.at(j) / ghz_.front();
  }

  /// Rung whose frequency equals `ghz` within a small tolerance;
  /// throws std::out_of_range when absent.
  std::size_t index_of(double ghz) const;

  /// Rung of the slowest frequency that is >= `ghz` (clamped to rung 0).
  std::size_t nearest_at_least(double ghz) const;

  /// All rungs in GHz, descending.
  const std::vector<double>& all() const { return ghz_; }

  /// Human-readable form, e.g. "[2.5, 1.8, 1.3, 0.8] GHz".
  std::string to_string() const;

  bool operator==(const FrequencyLadder&) const = default;

  /// The evaluation platform of the paper: AMD Opteron 8380's four
  /// P-states (2.5, 1.8, 1.3, 0.8 GHz).
  static FrequencyLadder opteron8380();

  /// An r-rung ladder linearly spaced in [lo_ghz, hi_ghz] (for sweeps).
  static FrequencyLadder linear(double lo_ghz, double hi_ghz, std::size_t r);

 private:
  std::vector<double> ghz_;
};

}  // namespace eewa::dvfs
