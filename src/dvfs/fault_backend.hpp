// Fault injection for DVFS actuation. Real /sys cpufreq trees fail
// transiently all the time (governor races, offline CPUs, permission
// flaps), so the actuation path must survive writes that bounce, cores
// that never switch, and cores that land one rung off. FaultSpec
// describes those failure modes; FaultInjectingBackend decorates any
// DvfsBackend with them, seeded so every test run is reproducible. The
// simulator's Machine consumes the same FaultSpec for its request_rung
// hook, so the retry/reconcile/degrade ladder is exercised identically
// against real backends and simulated cores.
#pragma once

#include <cstdint>
#include <vector>

#include "dvfs/dvfs_backend.hpp"
#include "util/rng.hpp"

namespace eewa::dvfs {

/// Seeded, deterministic failure modes for frequency writes.
struct FaultSpec {
  /// Probability that a write bounces (returns false, core unchanged).
  double transient_failure_p = 0.0;
  /// Probability that a "successful" write lands one rung slower than
  /// requested (the caller only notices on readback).
  double drift_p = 0.0;
  /// Cores that never leave their current rung (every write fails).
  std::vector<std::size_t> stuck_cores;
  /// Seed of the fault stream (independent of scheduling randomness).
  std::uint64_t seed = 0x5eedULL;
  /// Modeled per-transition stall accumulated by the decorator (the
  /// simulator charges its own TransitionModel instead).
  double extra_latency_s = 0.0;

  bool enabled() const {
    return transient_failure_p > 0.0 || drift_p > 0.0 ||
           !stuck_cores.empty();
  }

  bool is_stuck(std::size_t core) const {
    for (std::size_t s : stuck_cores) {
      if (s == core) return true;
    }
    return false;
  }
};

/// Decorator injecting FaultSpec failures into any DvfsBackend.
class FaultInjectingBackend : public DvfsBackend {
 public:
  /// `inner` must outlive this decorator.
  FaultInjectingBackend(DvfsBackend& inner, FaultSpec spec);

  const FrequencyLadder& ladder() const override { return inner_.ladder(); }
  std::size_t core_count() const override { return inner_.core_count(); }
  bool set_frequency(std::size_t core, std::size_t freq_index) override;
  std::size_t frequency_index(std::size_t core) const override {
    return inner_.frequency_index(core);
  }
  bool is_live() const override { return inner_.is_live(); }
  std::size_t transition_count() const override {
    return inner_.transition_count();
  }

  const FaultSpec& spec() const { return spec_; }

  /// Injection counters (writes attempted through the decorator).
  std::size_t writes() const { return writes_; }
  std::size_t transient_failures() const { return transient_failures_; }
  std::size_t stuck_rejections() const { return stuck_rejections_; }
  std::size_t drifts() const { return drifts_; }
  /// Total modeled transition stall (extra_latency_s per applied write).
  double modeled_latency_s() const { return modeled_latency_s_; }

 private:
  bool chance(double p);

  DvfsBackend& inner_;
  FaultSpec spec_;
  util::SplitMix64 rng_;
  std::size_t writes_ = 0;
  std::size_t transient_failures_ = 0;
  std::size_t stuck_rejections_ = 0;
  std::size_t drifts_ = 0;
  double modeled_latency_s_ = 0.0;
};

}  // namespace eewa::dvfs
