#include "dvfs/cgroup.hpp"

#include <map>
#include <numeric>
#include <stdexcept>

namespace eewa::dvfs {

CGroupLayout::CGroupLayout(std::vector<CGroup> groups,
                           std::vector<std::size_t> class_to_group,
                           std::size_t total_cores)
    : groups_(std::move(groups)),
      class_to_group_(std::move(class_to_group)),
      core_group_(total_cores, npos),
      total_cores_(total_cores) {
  if (groups_.empty()) {
    throw std::invalid_argument("CGroupLayout: need at least one c-group");
  }
  // Rung indices order groups only within one core type (each cluster
  // has its own ladder); across types the planner's global effective-
  // speed order decides. Homogeneous layouts (all core_type 0) keep the
  // historical strictly-increasing-freq_index contract verbatim.
  std::map<std::size_t, std::size_t> last_freq_of_type;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const auto it = last_freq_of_type.find(groups_[g].core_type);
    if (it != last_freq_of_type.end() &&
        groups_[g].freq_index <= it->second) {
      throw std::invalid_argument(
          "CGroupLayout: groups must be ordered fastest-first with "
          "strictly increasing freq_index");
    }
    last_freq_of_type[groups_[g].core_type] = groups_[g].freq_index;
    for (std::size_t c : groups_[g].cores) {
      if (c >= total_cores_) {
        throw std::invalid_argument("CGroupLayout: core id out of range");
      }
      if (core_group_[c] != npos) {
        throw std::invalid_argument("CGroupLayout: core in two groups");
      }
      core_group_[c] = g;
    }
  }
  for (std::size_t k = 0; k < class_to_group_.size(); ++k) {
    if (class_to_group_[k] >= groups_.size()) {
      throw std::invalid_argument("CGroupLayout: class mapped to no group");
    }
  }
}

std::size_t CGroupLayout::group_of_core(std::size_t c) const {
  const std::size_t g = core_group_.at(c);
  if (g == npos) {
    throw std::out_of_range("CGroupLayout: core not in any c-group");
  }
  return g;
}

bool CGroupLayout::core_assigned(std::size_t c) const {
  return c < core_group_.size() && core_group_[c] != npos;
}

std::vector<std::size_t> CGroupLayout::cores_per_rung(
    std::size_t ladder_size) const {
  std::vector<std::size_t> counts(ladder_size, 0);
  for (const auto& g : groups_) {
    counts.at(g.freq_index) += g.cores.size();
  }
  return counts;
}

CGroupLayout CGroupLayout::uniform(std::size_t cores, std::size_t classes,
                                   std::size_t freq_index) {
  CGroup g;
  g.freq_index = freq_index;
  g.cores.resize(cores);
  std::iota(g.cores.begin(), g.cores.end(), 0);
  return CGroupLayout({std::move(g)},
                      std::vector<std::size_t>(classes, 0), cores);
}

std::string CGroupLayout::to_string() const {
  std::string out;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (g) out += ' ';
    out += "G" + std::to_string(g) + "@";
    if (groups_[g].core_type != 0) {
      out += "T" + std::to_string(groups_[g].core_type);
    }
    out += "F" + std::to_string(groups_[g].freq_index) + ":{";
    for (std::size_t i = 0; i < groups_[g].cores.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(groups_[g].cores[i]);
    }
    out += '}';
  }
  return out;
}

}  // namespace eewa::dvfs
