// C-groups (paper §III): a c-group is the set of cores operating at one
// frequency. A CGroupLayout is the complete grouping the frequency
// adjuster produces for a batch, plus the task-class → c-group allocation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dvfs/frequency_ladder.hpp"

namespace eewa::dvfs {

/// One c-group: every core in `cores` runs at ladder rung `freq_index`.
/// On heterogeneous machines a c-group additionally belongs to one core
/// type (its cluster): `freq_index` then indexes that type's own ladder.
/// Homogeneous layouts leave core_type at 0 and behave exactly as before.
struct CGroup {
  std::size_t freq_index = 0;
  std::size_t core_type = 0;
  std::vector<std::size_t> cores;
};

/// The grouping of all m cores into u c-groups, ordered fastest-first
/// (group 0 has the lowest freq_index, i.e. the highest frequency), plus
/// the allocation of task classes to groups.
class CGroupLayout {
 public:
  CGroupLayout() = default;

  /// Construct from groups (must cover each core at most once, be
  /// non-empty, and be ordered by strictly increasing freq_index *within
  /// each core_type* — two clusters each own an independent ladder, so
  /// rung indices only totally order groups of the same type) and the
  /// mapping class index -> group index. All-type-0 layouts get exactly
  /// the historical strictly-increasing validation. Throws
  /// std::invalid_argument on violation.
  CGroupLayout(std::vector<CGroup> groups,
               std::vector<std::size_t> class_to_group,
               std::size_t total_cores);

  /// Number of c-groups, u.
  std::size_t group_count() const { return groups_.size(); }

  /// Group g (0 = fastest).
  const CGroup& group(std::size_t g) const { return groups_.at(g); }

  /// All groups, fastest first.
  const std::vector<CGroup>& groups() const { return groups_; }

  /// Total number of cores in the machine (groups may not cover all of
  /// them only if a group list was legitimately partial — the EEWA planner
  /// always covers every core).
  std::size_t total_cores() const { return total_cores_; }

  /// Group index that core `c` belongs to; throws if the core is in no
  /// group.
  std::size_t group_of_core(std::size_t c) const;

  /// True if core `c` belongs to some group.
  bool core_assigned(std::size_t c) const;

  /// Group index that task class `k` is allocated to.
  std::size_t group_of_class(std::size_t k) const {
    return class_to_group_.at(k);
  }

  /// Number of task classes mapped.
  std::size_t class_count() const { return class_to_group_.size(); }

  /// Ladder rung of group g.
  std::size_t freq_index(std::size_t g) const {
    return groups_.at(g).freq_index;
  }

  /// Cores-per-rung view: counts[j] = number of cores at ladder rung j.
  std::vector<std::size_t> cores_per_rung(std::size_t ladder_size) const;

  /// Single-group layout: all cores at `freq_index`, all classes to it.
  static CGroupLayout uniform(std::size_t cores, std::size_t classes,
                              std::size_t freq_index = 0);

  /// Human-readable summary, e.g. "G0@F1:{0..9} G1@F2:{10..15}".
  std::string to_string() const;

 private:
  std::vector<CGroup> groups_;
  std::vector<std::size_t> class_to_group_;
  std::vector<std::size_t> core_group_;  // per-core group or npos
  std::size_t total_cores_ = 0;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace eewa::dvfs
