#include "dvfs/sysfs_backend.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

namespace eewa::dvfs {

namespace fs = std::filesystem;

std::optional<std::string> SysfsBackend::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool SysfsBackend::write_file(const std::string& path,
                              const std::string& value) {
  std::ofstream out(path);
  if (!out) return false;
  out << value;
  out.flush();
  return static_cast<bool>(out);
}

std::string SysfsBackend::cpufreq_path(std::size_t core,
                                       const std::string& file) const {
  return root_ + "/cpu" + std::to_string(core) + "/cpufreq/" + file;
}

std::optional<SysfsBackend> SysfsBackend::probe(const std::string& root) {
  // Count consecutive cpuN directories that expose cpufreq.
  std::size_t cores = 0;
  while (fs::exists(root + "/cpu" + std::to_string(cores) + "/cpufreq")) {
    ++cores;
  }
  if (cores == 0) return std::nullopt;

  const auto avail =
      read_file(root + "/cpu0/cpufreq/scaling_available_frequencies");
  if (!avail) return std::nullopt;
  std::vector<std::uint64_t> khz;
  std::istringstream ss(*avail);
  std::uint64_t f;
  while (ss >> f) khz.push_back(f);
  std::sort(khz.begin(), khz.end(), std::greater<>());
  khz.erase(std::unique(khz.begin(), khz.end()), khz.end());
  if (khz.empty()) return std::nullopt;

  // Try to select the userspace governor everywhere.
  bool userspace = true;
  for (std::size_t c = 0; c < cores; ++c) {
    const std::string gov =
        root + "/cpu" + std::to_string(c) + "/cpufreq/scaling_governor";
    if (!write_file(gov, "userspace")) {
      userspace = false;
      break;
    }
  }
  return SysfsBackend(root, cores, std::move(khz), userspace);
}

SysfsBackend::SysfsBackend(std::string root, std::size_t cores,
                           std::vector<std::uint64_t> khz, bool userspace)
    : root_(std::move(root)),
      cores_(cores),
      khz_(std::move(khz)),
      ladder_([&] {
        std::vector<double> ghz;
        ghz.reserve(khz_.size());
        for (auto k : khz_) ghz.push_back(static_cast<double>(k) / 1e6);
        return FrequencyLadder(std::move(ghz));
      }()),
      userspace_(userspace),
      current_(cores, 0) {}

bool SysfsBackend::set_frequency(std::size_t core, std::size_t freq_index) {
  if (core >= cores_ || freq_index >= khz_.size()) return false;
  const std::string value = std::to_string(khz_[freq_index]);
  bool ok;
  if (userspace_) {
    ok = write_file(cpufreq_path(core, "scaling_setspeed"), value);
  } else {
    // Clamp the max frequency; with the ondemand/schedutil governor and a
    // busy core this pins the effective frequency to the requested rung.
    ok = write_file(cpufreq_path(core, "scaling_max_freq"), value);
  }
  if (ok && current_[core] != freq_index) {
    current_[core] = freq_index;
    ++transitions_;
  }
  return ok;
}

std::size_t SysfsBackend::frequency_index(std::size_t core) const {
  return current_.at(core);
}

}  // namespace eewa::dvfs
