#include "dvfs/sysfs_backend.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

namespace eewa::dvfs {

namespace fs = std::filesystem;

namespace {

std::string trim(std::string s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(s.back())) s.pop_back();
  std::size_t i = 0;
  while (i < s.size() && is_space(s[i])) ++i;
  return s.substr(i);
}

}  // namespace

std::optional<std::string> SysfsBackend::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool SysfsBackend::write_file(const std::string& path,
                              const std::string& value) {
  std::ofstream out(path);
  if (!out) return false;
  out << value;
  out.flush();
  return static_cast<bool>(out);
}

std::string SysfsBackend::cpufreq_path(std::size_t core,
                                       const std::string& file) const {
  return root_ + "/cpu" + std::to_string(cpu_ids_.at(core)) + "/cpufreq/" +
         file;
}

std::optional<SysfsBackend> SysfsBackend::probe(const std::string& root) {
  // Enumerate cpuN directories exposing cpufreq. Offline or hotplugged
  // CPUs leave holes in the numbering, so scan the directory instead of
  // counting consecutively from cpu0.
  std::vector<std::size_t> cpu_ids;
  std::error_code ec;
  for (fs::directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= 3 || name.compare(0, 3, "cpu") != 0) continue;
    const std::string digits = name.substr(3);
    if (!std::all_of(digits.begin(), digits.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        })) {
      continue;  // cpuidle, cpufreq, ...
    }
    std::error_code sub_ec;
    if (!fs::exists(it->path() / "cpufreq", sub_ec)) continue;
    cpu_ids.push_back(std::stoul(digits));
  }
  if (cpu_ids.empty()) return std::nullopt;
  std::sort(cpu_ids.begin(), cpu_ids.end());

  const auto avail =
      read_file(root + "/cpu" + std::to_string(cpu_ids.front()) +
                "/cpufreq/scaling_available_frequencies");
  if (!avail) return std::nullopt;
  std::vector<std::uint64_t> khz;
  std::istringstream ss(*avail);
  std::uint64_t f;
  while (ss >> f) khz.push_back(f);
  std::sort(khz.begin(), khz.end(), std::greater<>());
  khz.erase(std::unique(khz.begin(), khz.end()), khz.end());
  if (khz.empty()) return std::nullopt;

  // Capture every core's original governor and max-frequency clamp
  // before touching anything, so restore() can undo the takeover.
  std::vector<SavedCoreState> saved;
  saved.reserve(cpu_ids.size());
  for (std::size_t id : cpu_ids) {
    const std::string base = root + "/cpu" + std::to_string(id) + "/cpufreq/";
    SavedCoreState state;
    state.governor = trim(read_file(base + "scaling_governor").value_or(""));
    state.max_freq = trim(read_file(base + "scaling_max_freq").value_or(""));
    saved.push_back(std::move(state));
  }

  // Try to select the userspace governor everywhere.
  bool userspace = true;
  for (std::size_t id : cpu_ids) {
    const std::string gov =
        root + "/cpu" + std::to_string(id) + "/cpufreq/scaling_governor";
    if (!write_file(gov, "userspace")) {
      userspace = false;
      break;
    }
  }
  return SysfsBackend(root, std::move(cpu_ids), std::move(saved),
                      std::move(khz), userspace);
}

SysfsBackend::SysfsBackend(std::string root, std::vector<std::size_t> cpu_ids,
                           std::vector<SavedCoreState> saved,
                           std::vector<std::uint64_t> khz, bool userspace)
    : root_(std::move(root)),
      cpu_ids_(std::move(cpu_ids)),
      saved_(std::move(saved)),
      khz_(std::move(khz)),
      ladder_([&] {
        std::vector<double> ghz;
        ghz.reserve(khz_.size());
        for (auto k : khz_) ghz.push_back(static_cast<double>(k) / 1e6);
        return FrequencyLadder(std::move(ghz));
      }()),
      userspace_(userspace),
      current_(cpu_ids_.size(), 0) {}

SysfsBackend::SysfsBackend(SysfsBackend&& other) noexcept
    : root_(std::move(other.root_)),
      cpu_ids_(std::move(other.cpu_ids_)),
      saved_(std::move(other.saved_)),
      khz_(std::move(other.khz_)),
      ladder_(std::move(other.ladder_)),
      userspace_(other.userspace_),
      current_(std::move(other.current_)),
      transitions_(other.transitions_) {
  // The moved-from backend must not restore the tree on destruction.
  other.saved_.clear();
}

SysfsBackend& SysfsBackend::operator=(SysfsBackend&& other) noexcept {
  if (this != &other) {
    restore();  // put the tree we managed so far back first
    root_ = std::move(other.root_);
    cpu_ids_ = std::move(other.cpu_ids_);
    saved_ = std::move(other.saved_);
    khz_ = std::move(other.khz_);
    ladder_ = std::move(other.ladder_);
    userspace_ = other.userspace_;
    current_ = std::move(other.current_);
    transitions_ = other.transitions_;
    other.saved_.clear();
  }
  return *this;
}

SysfsBackend::~SysfsBackend() { restore(); }

void SysfsBackend::restore() {
  for (std::size_t core = 0; core < saved_.size(); ++core) {
    const SavedCoreState& state = saved_[core];
    if (!state.governor.empty()) {
      write_file(cpufreq_path(core, "scaling_governor"), state.governor);
    }
    if (!state.max_freq.empty()) {
      write_file(cpufreq_path(core, "scaling_max_freq"), state.max_freq);
    }
  }
  saved_.clear();
}

bool SysfsBackend::set_frequency(std::size_t core, std::size_t freq_index) {
  if (core >= cpu_ids_.size() || freq_index >= khz_.size()) return false;
  const std::string value = std::to_string(khz_[freq_index]);
  bool ok;
  if (userspace_) {
    ok = write_file(cpufreq_path(core, "scaling_setspeed"), value);
  } else {
    // Clamp the max frequency; with the ondemand/schedutil governor and a
    // busy core this pins the effective frequency to the requested rung.
    ok = write_file(cpufreq_path(core, "scaling_max_freq"), value);
  }
  if (ok && current_[core] != freq_index) {
    current_[core] = freq_index;
    ++transitions_;
  }
  return ok;
}

std::size_t SysfsBackend::frequency_index(std::size_t core) const {
  return current_.at(core);
}

}  // namespace eewa::dvfs
