// A DVFS backend that records every transition with a timestamp instead of
// touching hardware. Used (a) on machines without cpufreq (this repo's CI
// container) so the ModelMeter can integrate energy from the recorded
// frequency trace, and (b) in tests to assert the controller's requests.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "dvfs/dvfs_backend.hpp"

namespace eewa::dvfs {

/// One recorded transition.
struct Transition {
  double time_s;           ///< seconds since backend construction
  std::size_t core;        ///< core id
  std::size_t freq_index;  ///< new ladder rung
};

/// Recording backend; thread-safe.
class TraceBackend : public DvfsBackend {
 public:
  /// All cores start at rung `initial_index` (default 0 = fastest).
  TraceBackend(FrequencyLadder ladder, std::size_t cores,
               std::size_t initial_index = 0);

  const FrequencyLadder& ladder() const override { return ladder_; }
  std::size_t core_count() const override { return current_.size(); }
  bool set_frequency(std::size_t core, std::size_t freq_index) override;
  std::size_t frequency_index(std::size_t core) const override;
  bool is_live() const override { return false; }
  std::size_t transition_count() const override;

  /// Snapshot of all recorded transitions, in request order.
  std::vector<Transition> transitions() const;

  /// Seconds elapsed since construction (the trace's time base).
  double now_s() const;

 private:
  FrequencyLadder ladder_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::vector<std::size_t> current_;
  std::vector<Transition> log_;
};

}  // namespace eewa::dvfs
