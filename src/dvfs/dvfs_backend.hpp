// Abstract DVFS control. The EEWA controller only speaks this interface,
// so the same scheduler code drives real Linux cpufreq on hardware, the
// recording TraceBackend in containers, and the simulator's cores.
#pragma once

#include <cstddef>

#include "dvfs/frequency_ladder.hpp"

namespace eewa::dvfs {

/// Per-core frequency control over a fixed ladder.
class DvfsBackend {
 public:
  virtual ~DvfsBackend() = default;

  /// The ladder this backend operates on.
  virtual const FrequencyLadder& ladder() const = 0;

  /// Number of cores under control.
  virtual std::size_t core_count() const = 0;

  /// Request core `core` to run at ladder rung `freq_index`.
  /// Returns false if the request could not be applied.
  virtual bool set_frequency(std::size_t core, std::size_t freq_index) = 0;

  /// Current rung of `core` (last successfully requested).
  virtual std::size_t frequency_index(std::size_t core) const = 0;

  /// True if requests actually reach hardware (or a live simulation);
  /// false for inert recording backends.
  virtual bool is_live() const = 0;

  /// Total number of frequency transitions applied (requests that changed
  /// a core's rung). Used for the overhead accounting.
  virtual std::size_t transition_count() const = 0;

  /// Set every core to rung `freq_index`; returns the number of cores
  /// successfully set.
  std::size_t set_all(std::size_t freq_index);
};

inline std::size_t DvfsBackend::set_all(std::size_t freq_index) {
  std::size_t ok = 0;
  for (std::size_t c = 0; c < core_count(); ++c) {
    if (set_frequency(c, freq_index)) ++ok;
  }
  return ok;
}

}  // namespace eewa::dvfs
