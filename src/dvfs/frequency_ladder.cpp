#include "dvfs/frequency_ladder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>

namespace eewa::dvfs {

FrequencyLadder::FrequencyLadder(std::vector<double> ghz)
    : ghz_(std::move(ghz)) {
  if (ghz_.empty()) {
    throw std::invalid_argument("FrequencyLadder: at least one frequency");
  }
  std::sort(ghz_.begin(), ghz_.end(), std::greater<>());
  for (std::size_t i = 0; i < ghz_.size(); ++i) {
    if (ghz_[i] <= 0.0) {
      throw std::invalid_argument("FrequencyLadder: frequencies must be > 0");
    }
    if (i > 0 && ghz_[i] == ghz_[i - 1]) {
      throw std::invalid_argument("FrequencyLadder: duplicate frequency");
    }
  }
}

std::size_t FrequencyLadder::index_of(double ghz) const {
  for (std::size_t j = 0; j < ghz_.size(); ++j) {
    if (std::abs(ghz_[j] - ghz) < 1e-9) return j;
  }
  throw std::out_of_range("FrequencyLadder: no such frequency");
}

std::size_t FrequencyLadder::nearest_at_least(double ghz) const {
  // Rungs are descending; pick the last rung still >= ghz.
  std::size_t best = 0;
  for (std::size_t j = 0; j < ghz_.size(); ++j) {
    if (ghz_[j] + 1e-12 >= ghz) best = j;
  }
  return best;
}

std::string FrequencyLadder::to_string() const {
  std::string out = "[";
  char buf[32];
  for (std::size_t j = 0; j < ghz_.size(); ++j) {
    std::snprintf(buf, sizeof(buf), "%s%.3g", j ? ", " : "", ghz_[j]);
    out += buf;
  }
  out += "] GHz";
  return out;
}

FrequencyLadder FrequencyLadder::opteron8380() {
  return FrequencyLadder({2.5, 1.8, 1.3, 0.8});
}

FrequencyLadder FrequencyLadder::linear(double lo_ghz, double hi_ghz,
                                        std::size_t r) {
  if (r == 0 || lo_ghz <= 0.0 || hi_ghz <= lo_ghz) {
    throw std::invalid_argument("FrequencyLadder::linear: bad parameters");
  }
  std::vector<double> f;
  if (r == 1) {
    f.push_back(hi_ghz);
  } else {
    for (std::size_t j = 0; j < r; ++j) {
      f.push_back(lo_ghz + (hi_ghz - lo_ghz) * static_cast<double>(j) /
                               static_cast<double>(r - 1));
    }
  }
  return FrequencyLadder(std::move(f));
}

}  // namespace eewa::dvfs
