// Linux cpufreq backend. Drives real per-core DVFS through
// /sys/devices/system/cpu/cpuN/cpufreq using the `userspace` governor
// (falling back to clamping scaling_max_freq when userspace is
// unavailable). The sysfs root is injectable so tests run against a fake
// tree and the code path is fully exercised without hardware.
//
// Robustness notes: probe() tolerates holes in the cpuN numbering
// (offline/hotplugged CPUs), saves each core's original governor and
// max-frequency clamp, and restore() (also run by the destructor) puts
// them back, so a finished or crashed run never leaves the machine
// pinned to `userspace` at a low rung.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dvfs/dvfs_backend.hpp"

namespace eewa::dvfs {

/// Real-hardware DVFS through the Linux cpufreq sysfs interface.
class SysfsBackend : public DvfsBackend {
 public:
  /// Probe `root` (default "/sys/devices/system/cpu"). Returns nullopt when
  /// the tree is missing, has no cpufreq nodes, or exposes no frequencies.
  /// cpuN directories need not be consecutive; cores are indexed in
  /// ascending cpu-id order.
  static std::optional<SysfsBackend> probe(
      const std::string& root = "/sys/devices/system/cpu");

  ~SysfsBackend() override;
  SysfsBackend(SysfsBackend&& other) noexcept;
  SysfsBackend& operator=(SysfsBackend&& other) noexcept;
  SysfsBackend(const SysfsBackend&) = delete;
  SysfsBackend& operator=(const SysfsBackend&) = delete;

  const FrequencyLadder& ladder() const override { return ladder_; }
  std::size_t core_count() const override { return cpu_ids_.size(); }
  bool set_frequency(std::size_t core, std::size_t freq_index) override;
  std::size_t frequency_index(std::size_t core) const override;
  bool is_live() const override { return true; }
  std::size_t transition_count() const override { return transitions_; }

  /// Frequency in kHz for ladder rung j (as exposed by the kernel).
  std::uint64_t khz(std::size_t j) const { return khz_.at(j); }

  /// True if the `userspace` governor could be selected for all cores;
  /// false means the scaling_max_freq clamp fallback is in use.
  bool userspace_governor() const { return userspace_; }

  /// Kernel cpu id behind logical core index `core` (ids can have holes).
  std::size_t cpu_id(std::size_t core) const { return cpu_ids_.at(core); }

  /// Write back every core's original scaling_governor and
  /// scaling_max_freq as captured at probe(). Idempotent; also invoked
  /// from the destructor.
  void restore();

 private:
  /// Original per-core cpufreq settings captured before probe() touches
  /// the tree (empty fields were unreadable and are left alone).
  struct SavedCoreState {
    std::string governor;
    std::string max_freq;
  };

  SysfsBackend(std::string root, std::vector<std::size_t> cpu_ids,
               std::vector<SavedCoreState> saved,
               std::vector<std::uint64_t> khz, bool userspace);

  std::string cpufreq_path(std::size_t core, const std::string& file) const;
  static std::optional<std::string> read_file(const std::string& path);
  static bool write_file(const std::string& path, const std::string& value);

  std::string root_;
  std::vector<std::size_t> cpu_ids_;  // ascending kernel cpu ids
  std::vector<SavedCoreState> saved_;
  std::vector<std::uint64_t> khz_;  // descending, parallel to ladder_
  FrequencyLadder ladder_;
  bool userspace_;
  std::vector<std::size_t> current_;
  std::size_t transitions_ = 0;
};

}  // namespace eewa::dvfs
