// Cost model for a DVFS frequency transition. P-state switches on the
// paper's Opteron platform stall the core for tens of microseconds while
// the PLL relocks; the simulator charges this per transition.
#pragma once

namespace eewa::dvfs {

/// Per-transition costs applied by the simulator (and reported by the
/// runtime's overhead accounting).
struct TransitionModel {
  /// Core-stall time per frequency change, seconds. ~50 us is typical for
  /// the AMD K10 generation the paper evaluates on.
  double latency_s = 50e-6;

  /// Extra energy per transition in joules (voltage regulator switching);
  /// small, but nonzero so excessive switching is visibly penalized.
  double energy_j = 1e-4;

  /// A model with free transitions (for ablations).
  static TransitionModel free() { return TransitionModel{0.0, 0.0}; }
};

}  // namespace eewa::dvfs
