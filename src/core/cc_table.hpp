// The Core-Count table (paper Table I). CC[j][i] is the number of cores
// at frequency F_j needed to finish all tasks of class TC_i within the
// ideal iteration time T:
//
//   CC[0][i] = n_i · w_i / T          (w normalized to F_0)
//   CC[j][i] = (F_0 / F_j) · CC[0][i]
//
// Columns are ordered by descending mean per-task workload, as the search
// constraint a_i <= a_j (i < j) requires.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/core_type.hpp"
#include "core/task_class.hpp"
#include "dvfs/frequency_ladder.hpp"

namespace eewa::core {

/// Immutable r×k core-count matrix plus the class metadata of its columns.
class CCTable {
 public:
  /// Build from per-class profiles (must already be sorted by descending
  /// mean workload — TaskClassRegistry::iteration_profile() returns this
  /// order) and the ideal iteration time T (> 0).
  ///
  /// With `memory_aware` set (the paper's §IV-D future-work extension),
  /// each class scales by its *effective* slowdown
  ///   s_eff(j) = α + (1 - α) · F0/Fj
  /// instead of the CPU-bound F0/Fj: memory-stalled classes lose little
  /// time at lower frequency, so they need fewer extra cores there and
  /// the planner can downclock them aggressively. The downstream
  /// feasibility/packing bounds recover s_eff from the table ratios, so
  /// they stay correct automatically.
  static CCTable build(std::vector<ClassProfile> classes,
                       const dvfs::FrequencyLadder& ladder,
                       double ideal_time_s, bool memory_aware = false);

  /// Heterogeneous build: rows are the topology's flattened (type, rung)
  /// pairs in descending effective-speed order, and each row scales by
  /// that row's effective slowdown
  ///   s_eff(row) = α + (1 - α) · row_slowdown(row)
  /// (row_slowdown generalizes F0/Fj to speed(row 0)/speed(row)). The
  /// table keeps a copy of the topology; searchers and the plan carver
  /// detect it via topology() and enforce per-type core capacities.
  static CCTable build_typed(std::vector<ClassProfile> classes,
                             const MachineTopology& topology,
                             double ideal_time_s, bool memory_aware = false);

  /// Build directly from a dense matrix (tests / worked examples). `cc`
  /// is row-major r×k. When explicit class metadata is passed, it must
  /// be sorted by descending mean workload, exactly as build() enforces
  /// — search_pruned's dominance tables assume that order. Bare matrices
  /// (no classes) are taken positionally, as given.
  static CCTable from_matrix(std::vector<std::vector<double>> rows,
                             std::vector<ClassProfile> classes = {});

  /// Rows r (frequency rungs).
  std::size_t rows() const { return r_; }

  /// Columns k (task classes).
  std::size_t cols() const { return k_; }

  /// Fractional core count CC[j][i].
  double at(std::size_t j, std::size_t i) const;

  /// Integral core count: ceil(CC[j][i]), never less than 1 for a class
  /// with work (a class needs at least one core).
  std::size_t ceil_at(std::size_t j, std::size_t i) const;

  /// True when class i's tasks can individually finish within T at rung
  /// j (critical-path guard): max_workload_i · F0/Fj <= T. Always true
  /// for bare matrices (no timing metadata) — the paper's formula alone.
  bool rung_feasible(std::size_t j, std::size_t i) const;

  /// Cores class i needs at rung j, combining the paper's aggregate
  /// formula with a task-packing lower bound: tasks are indivisible, so
  /// c cores can finish at most c·floor(T / (w̄·F0/Fj)) tasks within T.
  /// Reduces to ceil_at for fine-grained tasks and for bare matrices.
  std::size_t cores_needed(std::size_t j, std::size_t i) const;

  /// Fractional core demand of class i at rung j: the paper's CC[j][i]
  /// raised to the task-packing lower bound n/floor(T/(w̄·F0/Fj)) when
  /// tasks are coarse. The search sums these fractional demands against
  /// the core budget (as Algorithm 1 does with raw CC values); the plan
  /// then carves integral cores by largest remainder.
  double demand(std::size_t j, std::size_t i) const;

  /// Column metadata (empty when built from a bare matrix).
  const std::vector<ClassProfile>& classes() const { return classes_; }

  /// Ideal iteration time used for the build (0 for bare matrices).
  double ideal_time_s() const { return ideal_time_s_; }

  /// Topology behind a build_typed() table; nullptr for homogeneous
  /// tables. Rows of a typed table are topology()->row_count() flattened
  /// (type, rung) pairs.
  const MachineTopology* topology() const { return topology_.get(); }

  /// Render like the paper's Table I.
  std::string to_string() const;

 private:
  CCTable(std::size_t r, std::size_t k, std::vector<double> data,
          std::vector<ClassProfile> classes, double ideal_time_s);

  std::size_t r_ = 0;
  std::size_t k_ = 0;
  std::vector<double> data_;  // row-major
  std::vector<ClassProfile> classes_;
  double ideal_time_s_ = 0.0;
  std::shared_ptr<const MachineTopology> topology_;
};

}  // namespace eewa::core
