// Offline profiles (paper §IV-D, last paragraph): applications that do
// not launch tasks in batches can be profiled offline; the saved profile
// then drives the workload-aware frequency adjuster on later runs.
// These helpers serialize iteration profiles to/from CSV.
#pragma once

#include <string>
#include <vector>

#include "core/task_class.hpp"

namespace eewa::core {

/// CSV with one row per class:
/// class_id,name,count,mean_workload,max_workload,mean_alpha
std::string profile_to_csv(const std::vector<ClassProfile>& profile);

/// Parse profile_to_csv output; rows come back sorted by descending
/// mean workload (the adjuster's required order). Throws
/// std::invalid_argument on malformed input.
std::vector<ClassProfile> profile_from_csv(const std::string& csv);

}  // namespace eewa::core
