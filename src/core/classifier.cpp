#include "core/classifier.hpp"

#include <cstdint>

namespace eewa::core {

void BoundednessClassifier::record(std::uint64_t cache_misses,
                                   std::uint64_t instructions) {
  const double cmi =
      instructions == 0
          ? 0.0
          : static_cast<double>(cache_misses) /
                static_cast<double>(instructions);
  record_cmi(cmi);
}

void BoundednessClassifier::record_cmi(double cmi) {
  ++total_;
  if (cmi > task_threshold_) ++memory_bound_;
}

double BoundednessClassifier::memory_bound_fraction() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(memory_bound_) / static_cast<double>(total_);
}

void BoundednessClassifier::reset() {
  total_ = 0;
  memory_bound_ = 0;
}

}  // namespace eewa::core
