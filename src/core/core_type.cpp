#include "core/core_type.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace eewa::core {

MachineTopology::MachineTopology(std::vector<CoreType> types)
    : types_(std::move(types)) {
  if (types_.empty()) {
    throw std::invalid_argument("MachineTopology: need at least one type");
  }
  const bool with_models = types_.front().model != nullptr;
  first_core_.reserve(types_.size());
  row_of_.resize(types_.size());
  for (std::size_t t = 0; t < types_.size(); ++t) {
    const CoreType& ct = types_[t];
    if (ct.count == 0) {
      throw std::invalid_argument("MachineTopology: type with zero cores");
    }
    if (ct.mips_scale.size() != ct.ladder.size()) {
      throw std::invalid_argument(
          "MachineTopology: mips_scale must be ladder-parallel");
    }
    for (double s : ct.mips_scale) {
      if (!(s > 0.0)) {
        throw std::invalid_argument(
            "MachineTopology: mips_scale entries must be positive");
      }
    }
    for (std::size_t j = 1; j < ct.ladder.size(); ++j) {
      if (!(ct.ladder.ghz(j) * ct.mips_scale[j] <
            ct.ladder.ghz(j - 1) * ct.mips_scale[j - 1])) {
        throw std::invalid_argument(
            "MachineTopology: effective speed (ghz * mips) must be "
            "strictly decreasing across a type's rungs");
      }
    }
    if ((ct.model != nullptr) != with_models) {
      throw std::invalid_argument(
          "MachineTopology: power models are all-or-none across types");
    }
    if (ct.model != nullptr &&
        ct.model->ladder().size() != ct.ladder.size()) {
      throw std::invalid_argument(
          "MachineTopology: a type's power model must cover its ladder");
    }
    first_core_.push_back(total_cores_);
    total_cores_ += ct.count;
  }

  // Flatten every (type, rung) pair and sort by descending effective
  // speed; equal speeds keep declaration order (lower type index first)
  // so the layout is deterministic.
  struct Row {
    std::size_t t, j;
    double speed;
  };
  std::vector<Row> rows;
  for (std::size_t t = 0; t < types_.size(); ++t) {
    for (std::size_t j = 0; j < types_[t].ladder.size(); ++j) {
      rows.push_back(
          Row{t, j, types_[t].ladder.ghz(j) * types_[t].mips_scale[j]});
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.speed > b.speed; });
  row_type_.reserve(rows.size());
  row_rung_.reserve(rows.size());
  row_speed_.reserve(rows.size());
  for (std::size_t t = 0; t < types_.size(); ++t) {
    row_of_[t].assign(types_[t].ladder.size(), 0);
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    row_type_.push_back(rows[r].t);
    row_rung_.push_back(rows[r].j);
    row_speed_.push_back(rows[r].speed);
    row_of_[rows[r].t][rows[r].j] = r;
  }
}

std::size_t MachineTopology::type_of_core(std::size_t core) const {
  if (core >= total_cores_) {
    throw std::out_of_range("MachineTopology: core id out of range");
  }
  std::size_t t = types_.size() - 1;
  while (first_core_[t] > core) --t;
  return t;
}

std::size_t MachineTopology::row_of(std::size_t t, std::size_t rung) const {
  return row_of_.at(t).at(rung);
}

std::size_t MachineTopology::slowest_row_of_type(std::size_t t) const {
  return row_of_.at(t).back();
}

std::size_t MachineTopology::max_rungs() const {
  std::size_t r = 0;
  for (const auto& t : types_) r = std::max(r, t.ladder.size());
  return r;
}

bool MachineTopology::uniform_rung_count() const {
  for (const auto& t : types_) {
    if (t.ladder.size() != types_.front().ladder.size()) return false;
  }
  return true;
}

double MachineTopology::row_active_w(std::size_t row) const {
  if (has_power_models()) {
    return types_[row_type_.at(row)].model->core_power_w(row_rung_[row],
                                                         /*active=*/true);
  }
  const double rel = row_speed_.at(row) / row_speed_.front();
  return rel * rel * rel;
}

double MachineTopology::row_idle_w(std::size_t row) const {
  if (has_power_models()) {
    return types_[row_type_.at(row)].model->core_power_w(row_rung_[row],
                                                         /*active=*/false);
  }
  return row_active_w(row);
}

std::string MachineTopology::to_string() const {
  std::string out;
  for (std::size_t t = 0; t < types_.size(); ++t) {
    if (t > 0) out += " + ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%zux ", types_[t].count);
    out += types_[t].name + " " + buf + types_[t].ladder.to_string();
  }
  return out;
}

MachineTopology MachineTopology::big_little() {
  CoreType big;
  big.name = "big";
  big.ladder = dvfs::FrequencyLadder::opteron8380();
  big.mips_scale = {1.0, 1.0, 1.0, 1.0};
  big.model = std::make_shared<energy::PowerModel>(
      energy::PowerModel::opteron8380_server());
  big.count = 4;

  CoreType little;
  little.name = "LITTLE";
  little.ladder = dvfs::FrequencyLadder({1.6, 1.2, 0.9, 0.6});
  little.mips_scale = {0.6, 0.6, 0.6, 0.6};
  // Embedded-class silicon: wide V range, small static share, no extra
  // machine floor (the big cluster's model already carries the floor).
  little.model = std::make_shared<energy::PowerModel>(
      little.ladder, std::vector<double>{1.00, 0.90, 0.82, 0.75},
      /*dyn_coeff_w=*/1.8, /*core_static_w=*/0.4, /*floor_w=*/0.0,
      /*halt_fraction=*/0.08);
  little.count = 4;

  return MachineTopology({std::move(big), std::move(little)});
}

MachineTopology MachineTopology::homogeneous(
    std::string name, dvfs::FrequencyLadder ladder, std::size_t cores,
    std::shared_ptr<const energy::PowerModel> model) {
  CoreType ct;
  ct.name = std::move(name);
  ct.mips_scale.assign(ladder.size(), 1.0);
  ct.ladder = std::move(ladder);
  ct.model = std::move(model);
  ct.count = cores;
  return MachineTopology({std::move(ct)});
}

}  // namespace eewa::core
