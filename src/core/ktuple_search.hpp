// k-tuple search over the CC table (paper Algorithm 1). The tuple
// (a_0..a_{k-1}) assigns each task class a frequency rung such that
//   (1) Σ_i ceil(CC[a_i][i]) <= m          (capacity),
//   (2) the search prefers the slowest feasible rungs (energy),
//   (3) a_i <= a_j for i < j               (heavier classes run faster).
//
// Besides the paper's backtracking algorithm we implement an exhaustive
// optimal search (minimizing modeled batch energy) and a no-backtracking
// greedy descent, both for the ablation benches.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/cc_table.hpp"
#include "energy/power_model.hpp"

namespace eewa::core {

/// Which searcher to run.
enum class SearchKind { kBacktracking, kExhaustive, kGreedy, kPruned };

/// Result of a k-tuple search.
struct SearchResult {
  bool found = false;
  std::vector<std::size_t> tuple;  ///< a[i]: rung for CC column i
  std::size_t cores_used = 0;      ///< Σ ceil(CC[a_i][i])
  std::size_t nodes_visited = 0;   ///< Select() calls (search effort)
  double elapsed_us = 0.0;         ///< wall time of the search
  /// A node budget stopped the search before it covered the space:
  /// found=false then means "gave up", not "proved infeasible". Never
  /// set by search_pruned itself (its feasibility answer is exact) —
  /// there it reports that the *incumbent* descent gave up, so optimality
  /// relative to backtracking is no longer guaranteed.
  bool aborted = false;
};

/// Node budget adversarial tables are cut off at: Algorithm 1's
/// backtracking is exponential in the worst case (a maze-like capacity
/// cliff at k=256 can visit billions of nodes), so the pruned searcher's
/// incumbent descent and the differential oracle both stop after this
/// many Select() calls. Sized so an aborting descent costs ~100us — a
/// small slice of the pruned searcher's sub-millisecond plan budget at
/// production scale — while a clean descent (~k selects) never comes
/// close. The oracle's reference backtracking run uses the same constant
/// so abort parity between the two stays a checkable invariant.
inline constexpr std::size_t kIncumbentNodeBudget = 4'096;

/// Estimated relative batch energy of a tuple: claimed cores spin/work at
/// their rung for the whole iteration, unclaimed cores are parked at the
/// slowest rung. Power comes from `model` when given, else from a cubic
/// (f/F0)³ proxy. Lower is better; units are arbitrary (watt-like).
double tuple_energy_estimate(const CCTable& cc,
                             const std::vector<std::size_t>& tuple,
                             std::size_t total_cores,
                             const energy::PowerModel* model = nullptr);

/// The cubic proxy power tuple_energy_estimate uses for one active core
/// at rung j when no PowerModel is supplied: (F_j/F_0)³, with F_0/F_j
/// recovered from the table's own columns (the largest per-class
/// slowdown — the least memory-bound class — is the tightest lower
/// bound available). Exposed for the fuzz harness's power-consistency
/// oracle.
double proxy_rung_power(const CCTable& cc, std::size_t j);

/// Paper Algorithm 1: depth-first descent from the slowest rungs with
/// backtracking. Near-optimal and fast on real tables, but exponential
/// in the worst case; a nonzero `node_budget` bounds the descent (the
/// result is marked aborted when the budget ran out).
SearchResult search_backtracking(const CCTable& cc, std::size_t total_cores,
                                 std::size_t node_budget = 0);

/// Exhaustive enumeration of all feasible nondecreasing tuples; returns
/// the one minimizing tuple_energy_estimate, with a deterministic
/// tie-break (fewest cores used, then the lexicographically greater —
/// slower — tuple) so equal-energy instances reproduce the same winner.
/// Exponential in k — only for small instances / ablation.
SearchResult search_exhaustive(const CCTable& cc, std::size_t total_cores,
                               const energy::PowerModel* model = nullptr);

/// First-descent greedy (backtracking with backtracking disabled).
SearchResult search_greedy(const CCTable& cc, std::size_t total_cores);

/// Energy-optimal search that scales to production tables (r=16, k=256):
/// a dynamic program over the nondecreasing-tuple lattice. States are
/// (class boundary, last rung) pairs carrying Pareto frontiers of
/// (cores used, energy so far); three exact reductions keep the
/// frontiers small:
///
///   - admissible lower bounds: for every (remaining classes, minimum
///     rung) pair the cheapest possible remaining energy and demand are
///     precomputed (each class independently at its best rung — a
///     relaxation, so never an overestimate) and any partial tuple whose
///     optimistic completion cannot beat the incumbent (or fit the core
///     budget) is cut;
///   - incumbent seeding: Algorithm 1's backtracking solution primes the
///     upper bound before the sweep starts, and a near-free scalar beam
///     pilot pass tightens it further (so the main sweep only ever
///     explores the near-optimal band, even when the descent aborted);
///   - dominance: a partial tuple ending at the same rung that uses no
///     fewer cores and no less energy than another is dropped (its
///     completion set is a subset, so it cannot produce a better plan).
///
/// Returns the same minimum-energy result as search_exhaustive, with the
/// same documented tie-break (fewest cores used, then the
/// lexicographically greater — slower — tuple); within the 1e-9 energy
/// tie window the two may pick different representatives of an
/// equal-energy set.
///
/// Worst-case guardrails (adversarial tables only — neither binds at
/// r·k <= 25, so the exhaustive-equality contract above is unconditional
/// there): frontiers wider than an internal cap are thinned to a
/// deterministic evenly-spaced subset that always keeps both endpoints,
/// and the incumbent descent stops at kIncumbentNodeBudget nodes. The
/// feasibility answer stays exact either way (the minimum-demand chain
/// survives thinning), and the result is never worse than the incumbent
/// whenever that descent completed (the incumbent tuple re-enters the
/// final selection).
SearchResult search_pruned(const CCTable& cc, std::size_t total_cores,
                           const energy::PowerModel* model = nullptr);

/// Incremental re-planning entry point: keep `prefix` (rungs for CC
/// columns [0, prefix.size())) verbatim and search only the remaining
/// suffix of the lattice — classes [prefix.size(), k) at rungs >=
/// prefix.back(), against the capacity left over after the prefix's
/// demand. The winning suffix is spliced onto the prefix. The result is
/// optimal (kPruned/kExhaustive) or first-descent (kBacktracking/
/// kGreedy) *conditioned on the prefix*; a full search may beat it by
/// revising prefix rungs. Returns found=false when the prefix itself is
/// invalid under `cc` (rung infeasible, nonmonotone, or over capacity) —
/// callers fall back to a full search.
SearchResult search_suffix(const CCTable& cc, std::size_t total_cores,
                           SearchKind kind,
                           const std::vector<std::size_t>& prefix,
                           const energy::PowerModel* model = nullptr);

/// Dispatch on kind.
SearchResult search_ktuple(const CCTable& cc, std::size_t total_cores,
                           SearchKind kind,
                           const energy::PowerModel* model = nullptr);

/// Validity check used by tests: nondecreasing + capacity.
bool tuple_is_valid(const CCTable& cc, const std::vector<std::size_t>& tuple,
                    std::size_t total_cores);

}  // namespace eewa::core
