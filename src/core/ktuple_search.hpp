// k-tuple search over the CC table (paper Algorithm 1). The tuple
// (a_0..a_{k-1}) assigns each task class a frequency rung such that
//   (1) Σ_i ceil(CC[a_i][i]) <= m          (capacity),
//   (2) the search prefers the slowest feasible rungs (energy),
//   (3) a_i <= a_j for i < j               (heavier classes run faster).
//
// Besides the paper's backtracking algorithm we implement an exhaustive
// optimal search (minimizing modeled batch energy) and a no-backtracking
// greedy descent, both for the ablation benches.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/cc_table.hpp"
#include "energy/power_model.hpp"

namespace eewa::core {

/// Which searcher to run.
enum class SearchKind { kBacktracking, kExhaustive, kGreedy };

/// Result of a k-tuple search.
struct SearchResult {
  bool found = false;
  std::vector<std::size_t> tuple;  ///< a[i]: rung for CC column i
  std::size_t cores_used = 0;      ///< Σ ceil(CC[a_i][i])
  std::size_t nodes_visited = 0;   ///< Select() calls (search effort)
  double elapsed_us = 0.0;         ///< wall time of the search
};

/// Estimated relative batch energy of a tuple: claimed cores spin/work at
/// their rung for the whole iteration, unclaimed cores are parked at the
/// slowest rung. Power comes from `model` when given, else from a cubic
/// (f/F0)³ proxy. Lower is better; units are arbitrary (watt-like).
double tuple_energy_estimate(const CCTable& cc,
                             const std::vector<std::size_t>& tuple,
                             std::size_t total_cores,
                             const energy::PowerModel* model = nullptr);

/// The cubic proxy power tuple_energy_estimate uses for one active core
/// at rung j when no PowerModel is supplied: (F_j/F_0)³, with F_0/F_j
/// recovered from the table's own columns (the largest per-class
/// slowdown — the least memory-bound class — is the tightest lower
/// bound available). Exposed for the fuzz harness's power-consistency
/// oracle.
double proxy_rung_power(const CCTable& cc, std::size_t j);

/// Paper Algorithm 1: depth-first descent from the slowest rungs with
/// backtracking. Near-optimal, O(k·r²) worst case.
SearchResult search_backtracking(const CCTable& cc, std::size_t total_cores);

/// Exhaustive enumeration of all feasible nondecreasing tuples; returns
/// the one minimizing tuple_energy_estimate, with a deterministic
/// tie-break (fewest cores used, then the lexicographically greater —
/// slower — tuple) so equal-energy instances reproduce the same winner.
/// Exponential in k — only for small instances / ablation.
SearchResult search_exhaustive(const CCTable& cc, std::size_t total_cores,
                               const energy::PowerModel* model = nullptr);

/// First-descent greedy (backtracking with backtracking disabled).
SearchResult search_greedy(const CCTable& cc, std::size_t total_cores);

/// Dispatch on kind.
SearchResult search_ktuple(const CCTable& cc, std::size_t total_cores,
                           SearchKind kind,
                           const energy::PowerModel* model = nullptr);

/// Validity check used by tests: nondecreasing + capacity.
bool tuple_is_valid(const CCTable& cc, const std::vector<std::size_t>& tuple,
                    std::size_t total_cores);

}  // namespace eewa::core
