// Fault-tolerant DVFS actuation. EewaController::apply() fire-and-forgets
// frequency writes, but Eq. 1 normalization and the CC table are only
// valid when each core really runs at its assigned rung. The
// ActuationSupervisor closes that loop: retry failed writes with
// exponential backoff, read back the achieved rung of every core, and —
// when a core cannot reach its target — reconcile the frequency plan so
// c-groups, class allocation and preference lists describe the machine
// as it actually is rather than as intended.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/frequency_plan.hpp"
#include "dvfs/dvfs_backend.hpp"

namespace eewa::core {

/// Retry/backoff configuration for one plan actuation.
struct ActuationOptions {
  /// Write attempts per core (1 initial + max_attempts-1 retries).
  std::size_t max_attempts = 4;
  /// First retry delay; doubles (backoff_multiplier) per further retry.
  double backoff_base_s = 100e-6;
  double backoff_multiplier = 2.0;
  /// Sleep for real between retries (hardware backends); when false the
  /// backoff is only modeled and reported in ActuationOutcome.
  bool sleep_on_backoff = false;
};

/// What one supervised actuation achieved.
struct ActuationOutcome {
  std::vector<std::size_t> target;    ///< per-core intended rung
  std::vector<std::size_t> achieved;  ///< per-core readback after retries
  std::vector<std::size_t> failed_cores;  ///< achieved != target
  std::size_t writes = 0;
  std::size_t retries = 0;
  std::size_t write_failures = 0;  ///< bounced writes + readback misses
  double backoff_s = 0.0;          ///< total (modeled) backoff time

  bool ok() const { return failed_cores.empty(); }
};

/// Cumulative fault-tolerance counters, queryable from the controller.
struct HealthReport {
  std::size_t writes = 0;
  std::size_t retries = 0;
  std::size_t write_failures = 0;
  std::size_t failed_cores = 0;  ///< per-batch cores that missed target
  std::size_t reconciliations = 0;
  std::size_t stuck_cores = 0;  ///< cores currently flagged stuck
  std::size_t degradations = 0;
  std::size_t makespan_blowups = 0;
  std::size_t task_exceptions = 0;
  bool degraded = false;

  /// One-line human-readable summary.
  std::string to_string() const;
};

/// Applies a FrequencyPlan to a backend with per-core retry + readback.
class ActuationSupervisor {
 public:
  explicit ActuationSupervisor(ActuationOptions options = {})
      : options_(options) {}

  /// Drive every core of `plan` to its rung. A core counts as actuated
  /// when readback matches the target, even if the write itself bounced
  /// (the core may already sit at the rung).
  ActuationOutcome apply(const FrequencyPlan& plan,
                         dvfs::DvfsBackend& backend) const;

  const ActuationOptions& options() const { return options_; }

 private:
  ActuationOptions options_;
};

/// Rebuild `intended` around the rungs the hardware actually reached:
/// cores are regrouped by achieved rung (fastest first) and every task
/// class moves to the group whose rung is nearest its intended one
/// (ties prefer the faster group). Cores beyond achieved.size() keep
/// their intended rung. The result always passes CGroupLayout
/// validation.
FrequencyPlan reconcile_plan(const FrequencyPlan& intended,
                             const std::vector<std::size_t>& achieved);

}  // namespace eewa::core
