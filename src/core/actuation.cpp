#include "core/actuation.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

namespace eewa::core {

std::string HealthReport::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "writes=%zu retries=%zu write_failures=%zu failed_cores=%zu "
                "reconciliations=%zu stuck_cores=%zu degradations=%zu "
                "makespan_blowups=%zu task_exceptions=%zu degraded=%s",
                writes, retries, write_failures, failed_cores,
                reconciliations, stuck_cores, degradations, makespan_blowups,
                task_exceptions, degraded ? "yes" : "no");
  return buf;
}

ActuationOutcome ActuationSupervisor::apply(const FrequencyPlan& plan,
                                            dvfs::DvfsBackend& backend) const {
  const std::size_t n = backend.core_count();
  ActuationOutcome out;
  out.target.assign(n, 0);
  std::vector<bool> wanted(n, false);
  for (const auto& g : plan.layout.groups()) {
    for (std::size_t c : g.cores) {
      if (c < n) {
        out.target[c] = g.freq_index;
        wanted[c] = true;
      }
    }
  }

  const std::size_t attempts = std::max<std::size_t>(1, options_.max_attempts);
  for (std::size_t c = 0; c < n; ++c) {
    if (!wanted[c]) continue;
    double backoff = options_.backoff_base_s;
    bool landed = false;
    for (std::size_t attempt = 0; attempt < attempts && !landed; ++attempt) {
      if (attempt > 0) {
        ++out.retries;
        out.backoff_s += backoff;
        if (options_.sleep_on_backoff) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(backoff));
        }
        backoff *= options_.backoff_multiplier;
      }
      ++out.writes;
      (void)backend.set_frequency(c, out.target[c]);
      // Readback is the truth: a bounced write on a core already at the
      // rung is fine; a "successful" write that drifted is not.
      landed = backend.frequency_index(c) == out.target[c];
      if (!landed) ++out.write_failures;
    }
    if (!landed) out.failed_cores.push_back(c);
  }

  out.achieved.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    out.achieved[c] = backend.frequency_index(c);
  }
  return out;
}

FrequencyPlan reconcile_plan(const FrequencyPlan& intended,
                             const std::vector<std::size_t>& achieved) {
  const std::size_t total = intended.layout.total_cores();

  // Regroup: cores the backend reports on go by achieved rung; cores the
  // backend does not cover keep the plan's intent. On heterogeneous
  // machines each cluster owns an independent ladder, so rungs are only
  // comparable within a core type: groups are keyed by (type, rung) and
  // a core's type is whatever the intended layout assigned it (the
  // hardware cannot move a core between clusters).
  std::vector<std::size_t> type_of_core(total, 0);
  for (const auto& g : intended.layout.groups()) {
    for (std::size_t c : g.cores) {
      if (c < total) type_of_core[c] = g.core_type;
    }
  }
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
      by_key;  // (type, rung) -> cores
  for (std::size_t c = 0; c < achieved.size() && c < total; ++c) {
    by_key[{type_of_core[c], achieved[c]}].push_back(c);
  }
  for (const auto& g : intended.layout.groups()) {
    for (std::size_t c : g.cores) {
      if (c >= achieved.size() && c < total) {
        by_key[{g.core_type, g.freq_index}].push_back(c);
      }
    }
  }

  std::vector<dvfs::CGroup> groups;
  std::vector<std::pair<std::size_t, std::size_t>> group_key;
  for (auto& [key, cores] : by_key) {
    std::sort(cores.begin(), cores.end());
    group_key.push_back(key);
    groups.push_back(dvfs::CGroup{
        .freq_index = key.second, .core_type = key.first,
        .cores = std::move(cores)});
  }

  // Every class moves to the group (of its intended type) whose rung is
  // nearest its intended one; ties go to the faster group so no class
  // loses feasibility.
  std::vector<std::size_t> class_to_group(intended.layout.class_count(), 0);
  for (std::size_t k = 0; k < class_to_group.size(); ++k) {
    const auto& home =
        intended.layout.group(intended.layout.group_of_class(k));
    const std::size_t want = home.freq_index;
    std::size_t best = 0;
    std::size_t best_dist = static_cast<std::size_t>(-1);
    for (std::size_t g = 0; g < group_key.size(); ++g) {
      if (group_key[g].first != home.core_type) continue;
      const std::size_t rung = group_key[g].second;
      const std::size_t dist = rung > want ? rung - want : want - rung;
      if (dist < best_dist) {
        best_dist = dist;
        best = g;
      }
    }
    class_to_group[k] = best;
  }

  FrequencyPlan plan;
  plan.planned = intended.planned;
  plan.tuple = intended.tuple;
  plan.claimed_cores = intended.claimed_cores;
  plan.layout = dvfs::CGroupLayout(std::move(groups),
                                   std::move(class_to_group), total);
  return plan;
}

}  // namespace eewa::core
