#include "core/frequency_plan.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace eewa::core {

FrequencyPlan uniform_plan(std::size_t total_cores,
                           std::size_t registry_class_count) {
  FrequencyPlan plan;
  plan.planned = false;
  plan.layout = dvfs::CGroupLayout::uniform(total_cores, registry_class_count,
                                            /*freq_index=*/0);
  plan.claimed_cores = total_cores;
  return plan;
}

FrequencyPlan make_frequency_plan(const CCTable& cc, const SearchResult& sr,
                                  std::size_t total_cores,
                                  const dvfs::FrequencyLadder& ladder,
                                  std::size_t registry_class_count,
                                  LeftoverPolicy policy) {
  if (!sr.found) {
    return uniform_plan(total_cores, registry_class_count);
  }
  if (sr.tuple.size() != cc.cols()) {
    throw std::invalid_argument("make_frequency_plan: tuple/table mismatch");
  }

  // Fractional core demand per rung (matching the search's capacity
  // accounting), then integral carving: floor each rung's demand (at
  // least one core per selected rung) and hand out the remaining cores
  // by largest remainder until every rung's demand is covered.
  std::map<std::size_t, double> demand_per_rung;  // rung -> demand
  for (std::size_t i = 0; i < sr.tuple.size(); ++i) {
    demand_per_rung[sr.tuple[i]] += cc.demand(sr.tuple[i], i);
  }
  double total_demand = 0.0;
  for (const auto& [rung, d] : demand_per_rung) total_demand += d;
  if (total_demand > static_cast<double>(total_cores) + 1e-6) {
    // A found tuple always fits; guard against inconsistent inputs.
    throw std::invalid_argument("make_frequency_plan: tuple over capacity");
  }

  // On machines with fewer cores than selected rungs, fold the slowest
  // rungs into the next-faster one (never slower, so feasibility is
  // preserved); the remap below keeps the class mapping consistent.
  std::map<std::size_t, std::size_t> rung_remap;  // selected -> effective
  while (demand_per_rung.size() > total_cores) {
    const auto last = std::prev(demand_per_rung.end());
    const auto prev = std::prev(last);
    prev->second += last->second;
    rung_remap[last->first] = prev->first;
    demand_per_rung.erase(last);
  }
  auto effective_rung = [&](std::size_t rung) {
    while (true) {
      const auto it = rung_remap.find(rung);
      if (it == rung_remap.end()) return rung;
      rung = it->second;
    }
  };

  std::map<std::size_t, std::size_t> cores_per_rung;
  std::size_t claimed = 0;
  for (const auto& [rung, d] : demand_per_rung) {
    const auto base =
        std::max<std::size_t>(1, static_cast<std::size_t>(d));
    cores_per_rung[rung] = base;
    claimed += base;
  }
  // The one-core-per-rung minimum can still overshoot; shed cores from
  // the most over-provisioned rungs (never below 1).
  while (claimed > total_cores) {
    std::size_t worst_rung = 0;
    double worst_excess = -1e18;
    for (const auto& [rung, n] : cores_per_rung) {
      if (n <= 1) continue;
      const double excess =
          static_cast<double>(n) - demand_per_rung.at(rung);
      if (excess > worst_excess) {
        worst_excess = excess;
        worst_rung = rung;
      }
    }
    if (worst_excess == -1e18) {
      throw std::logic_error(
          "make_frequency_plan: more selected c-groups than cores");
    }
    --cores_per_rung[worst_rung];
    --claimed;
  }

  // Largest-remainder top-up, fastest rung first on ties, while cores
  // remain and some rung is still short of its demand.
  while (claimed < total_cores) {
    std::size_t best_rung = 0;
    double best_deficit = 1e-9;
    for (const auto& [rung, d] : demand_per_rung) {
      const double deficit =
          d - static_cast<double>(cores_per_rung[rung]);
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best_rung = rung;
      }
    }
    if (best_deficit <= 1e-9) break;  // everyone covered
    ++cores_per_rung[best_rung];
    ++claimed;
  }
  const std::size_t leftovers = total_cores - claimed;

  // Place leftovers.
  if (leftovers > 0) {
    if (policy == LeftoverPolicy::kParkAtSlowest) {
      cores_per_rung[ladder.slowest_index()] += leftovers;
    } else {
      cores_per_rung.rbegin()->second += leftovers;  // slowest selected
    }
  }

  // Carve core ids in rung order (fastest rung gets the lowest ids; ids
  // are logical worker indices, so the carving is arbitrary but stable).
  std::vector<dvfs::CGroup> groups;
  std::map<std::size_t, std::size_t> rung_to_group;
  std::size_t next_core = 0;
  for (const auto& [rung, n] : cores_per_rung) {
    dvfs::CGroup g;
    g.freq_index = rung;
    for (std::size_t c = 0; c < n; ++c) g.cores.push_back(next_core++);
    rung_to_group[rung] = groups.size();
    groups.push_back(std::move(g));
  }

  // Class-id → group mapping; unseen classes go to the fastest group (0).
  std::vector<std::size_t> class_to_group(registry_class_count, 0);
  for (std::size_t i = 0; i < sr.tuple.size(); ++i) {
    const std::size_t id = cc.classes().at(i).class_id;
    if (id >= class_to_group.size()) {
      throw std::invalid_argument(
          "make_frequency_plan: class id outside registry");
    }
    class_to_group[id] = rung_to_group.at(effective_rung(sr.tuple[i]));
  }

  FrequencyPlan plan;
  plan.planned = true;
  plan.layout = dvfs::CGroupLayout(std::move(groups),
                                   std::move(class_to_group), total_cores);
  plan.tuple = sr.tuple;
  plan.claimed_cores = claimed;
  return plan;
}

}  // namespace eewa::core
