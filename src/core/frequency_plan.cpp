#include "core/frequency_plan.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace eewa::core {

FrequencyPlan uniform_plan(std::size_t total_cores,
                           std::size_t registry_class_count) {
  FrequencyPlan plan;
  plan.planned = false;
  plan.layout = dvfs::CGroupLayout::uniform(total_cores, registry_class_count,
                                            /*freq_index=*/0);
  plan.claimed_cores = total_cores;
  return plan;
}

namespace {

/// Typed carving: the tuple's entries are flattened topology rows, and
/// every core type carves its own core-id range with the same
/// fold/shed/largest-remainder algorithm the homogeneous path uses —
/// folds stay within the type (into the next-faster row of the same
/// cluster), leftovers of a type park on that type's own slowest rung,
/// and a type no class selected parks entirely. Groups are emitted in
/// global row order, so group 0 is the globally fastest populated row.
FrequencyPlan make_typed_plan(const CCTable& cc,
                              const MachineTopology& topo,
                              const SearchResult& sr,
                              std::size_t total_cores,
                              std::size_t registry_class_count,
                              LeftoverPolicy policy) {
  if (total_cores != topo.total_cores()) {
    throw std::invalid_argument(
        "make_frequency_plan: core count does not match the topology");
  }

  std::map<std::size_t, double> demand_per_row;  // flattened row -> demand
  for (std::size_t i = 0; i < sr.tuple.size(); ++i) {
    demand_per_row[sr.tuple[i]] += cc.demand(sr.tuple[i], i);
  }
  double total_demand = 0.0;
  for (const auto& [row, d] : demand_per_row) total_demand += d;
  if (total_demand > static_cast<double>(total_cores) + 1e-6) {
    throw std::invalid_argument("make_frequency_plan: tuple over capacity");
  }

  std::map<std::size_t, std::size_t> row_remap;  // selected -> effective
  auto effective_row = [&](std::size_t row) {
    while (true) {
      const auto it = row_remap.find(row);
      if (it == row_remap.end()) return row;
      row = it->second;
    }
  };

  // cores_per_row, filled type by type.
  std::map<std::size_t, std::size_t> cores_per_row;
  std::size_t claimed = 0;
  for (std::size_t t = 0; t < topo.type_count(); ++t) {
    const std::size_t mt = topo.type(t).count;
    // This type's selected rows, ascending row index. Within a type,
    // global row order is ascending rung order (effective speed is
    // strictly decreasing across a type's rungs), so `rows_t` is
    // fastest-first and folding the back entry folds the slowest.
    std::vector<std::size_t> rows_t;
    for (const auto& [row, d] : demand_per_row) {
      if (topo.row_type(row) == t) rows_t.push_back(row);
    }
    // Fold surplus rows into the next-faster row of the same type
    // (never slower, so feasibility is preserved).
    while (rows_t.size() > mt) {
      const std::size_t victim = rows_t.back();
      rows_t.pop_back();
      const std::size_t into = rows_t.back();
      demand_per_row[into] += demand_per_row[victim];
      demand_per_row.erase(victim);
      row_remap[victim] = into;
    }
    if (rows_t.empty()) {
      // No class touches this cluster: park all its cores at its
      // slowest rung (under either leftover policy — there is no
      // selected group of this type to join).
      cores_per_row[topo.slowest_row_of_type(t)] += mt;
      continue;
    }
    std::size_t claimed_t = 0;
    for (std::size_t row : rows_t) {
      const auto base = std::max<std::size_t>(
          1, static_cast<std::size_t>(demand_per_row.at(row)));
      cores_per_row[row] = base;
      claimed_t += base;
    }
    while (claimed_t > mt) {
      std::size_t worst_row = 0;
      double worst_excess = -1e18;
      for (std::size_t row : rows_t) {
        if (cores_per_row[row] <= 1) continue;
        const double excess = static_cast<double>(cores_per_row[row]) -
                              demand_per_row.at(row);
        if (excess > worst_excess) {
          worst_excess = excess;
          worst_row = row;
        }
      }
      if (worst_excess == -1e18) {
        throw std::logic_error(
            "make_frequency_plan: more selected c-groups than cores");
      }
      --cores_per_row[worst_row];
      --claimed_t;
    }
    while (claimed_t < mt) {
      std::size_t best_row = 0;
      double best_deficit = 1e-9;
      for (std::size_t row : rows_t) {
        const double deficit = demand_per_row.at(row) -
                               static_cast<double>(cores_per_row[row]);
        if (deficit > best_deficit) {
          best_deficit = deficit;
          best_row = row;
        }
      }
      if (best_deficit <= 1e-9) break;  // everyone covered
      ++cores_per_row[best_row];
      ++claimed_t;
    }
    const std::size_t leftovers_t = mt - claimed_t;
    if (leftovers_t > 0) {
      if (policy == LeftoverPolicy::kParkAtSlowest) {
        cores_per_row[topo.slowest_row_of_type(t)] += leftovers_t;
      } else {
        cores_per_row[rows_t.back()] += leftovers_t;  // slowest selected
      }
    }
    claimed += claimed_t;
  }

  // Emit groups in global row order (fastest populated row first). Each
  // type hands out its own contiguous core-id range.
  std::vector<std::size_t> next_core(topo.type_count());
  for (std::size_t t = 0; t < topo.type_count(); ++t) {
    next_core[t] = topo.first_core(t);
  }
  std::vector<dvfs::CGroup> groups;
  std::map<std::size_t, std::size_t> row_to_group;
  for (const auto& [row, n] : cores_per_row) {
    if (n == 0) continue;
    const std::size_t t = topo.row_type(row);
    dvfs::CGroup g;
    g.freq_index = topo.row_rung(row);
    g.core_type = t;
    for (std::size_t c = 0; c < n; ++c) g.cores.push_back(next_core[t]++);
    row_to_group[row] = groups.size();
    groups.push_back(std::move(g));
  }

  std::vector<std::size_t> class_to_group(registry_class_count, 0);
  for (std::size_t i = 0; i < sr.tuple.size(); ++i) {
    const std::size_t id = cc.classes().at(i).class_id;
    if (id >= class_to_group.size()) {
      throw std::invalid_argument(
          "make_frequency_plan: class id outside registry");
    }
    class_to_group[id] = row_to_group.at(effective_row(sr.tuple[i]));
  }

  FrequencyPlan plan;
  plan.planned = true;
  plan.layout = dvfs::CGroupLayout(std::move(groups),
                                   std::move(class_to_group), total_cores);
  plan.tuple = sr.tuple;
  plan.claimed_cores = claimed;
  return plan;
}

}  // namespace

FrequencyPlan make_frequency_plan(const CCTable& cc, const SearchResult& sr,
                                  std::size_t total_cores,
                                  const dvfs::FrequencyLadder& ladder,
                                  std::size_t registry_class_count,
                                  LeftoverPolicy policy) {
  if (!sr.found) {
    return uniform_plan(total_cores, registry_class_count);
  }
  if (sr.tuple.size() != cc.cols()) {
    throw std::invalid_argument("make_frequency_plan: tuple/table mismatch");
  }
  if (const MachineTopology* topo = cc.topology()) {
    // Typed tables carve per core type; `ladder` is ignored (each type
    // brings its own).
    return make_typed_plan(cc, *topo, sr, total_cores,
                           registry_class_count, policy);
  }

  // Fractional core demand per rung (matching the search's capacity
  // accounting), then integral carving: floor each rung's demand (at
  // least one core per selected rung) and hand out the remaining cores
  // by largest remainder until every rung's demand is covered.
  std::map<std::size_t, double> demand_per_rung;  // rung -> demand
  for (std::size_t i = 0; i < sr.tuple.size(); ++i) {
    demand_per_rung[sr.tuple[i]] += cc.demand(sr.tuple[i], i);
  }
  double total_demand = 0.0;
  for (const auto& [rung, d] : demand_per_rung) total_demand += d;
  if (total_demand > static_cast<double>(total_cores) + 1e-6) {
    // A found tuple always fits; guard against inconsistent inputs.
    throw std::invalid_argument("make_frequency_plan: tuple over capacity");
  }

  // On machines with fewer cores than selected rungs, fold the slowest
  // rungs into the next-faster one (never slower, so feasibility is
  // preserved); the remap below keeps the class mapping consistent.
  std::map<std::size_t, std::size_t> rung_remap;  // selected -> effective
  while (demand_per_rung.size() > total_cores) {
    const auto last = std::prev(demand_per_rung.end());
    const auto prev = std::prev(last);
    prev->second += last->second;
    rung_remap[last->first] = prev->first;
    demand_per_rung.erase(last);
  }
  auto effective_rung = [&](std::size_t rung) {
    while (true) {
      const auto it = rung_remap.find(rung);
      if (it == rung_remap.end()) return rung;
      rung = it->second;
    }
  };

  std::map<std::size_t, std::size_t> cores_per_rung;
  std::size_t claimed = 0;
  for (const auto& [rung, d] : demand_per_rung) {
    const auto base =
        std::max<std::size_t>(1, static_cast<std::size_t>(d));
    cores_per_rung[rung] = base;
    claimed += base;
  }
  // The one-core-per-rung minimum can still overshoot; shed cores from
  // the most over-provisioned rungs (never below 1).
  while (claimed > total_cores) {
    std::size_t worst_rung = 0;
    double worst_excess = -1e18;
    for (const auto& [rung, n] : cores_per_rung) {
      if (n <= 1) continue;
      const double excess =
          static_cast<double>(n) - demand_per_rung.at(rung);
      if (excess > worst_excess) {
        worst_excess = excess;
        worst_rung = rung;
      }
    }
    if (worst_excess == -1e18) {
      throw std::logic_error(
          "make_frequency_plan: more selected c-groups than cores");
    }
    --cores_per_rung[worst_rung];
    --claimed;
  }

  // Largest-remainder top-up, fastest rung first on ties, while cores
  // remain and some rung is still short of its demand.
  while (claimed < total_cores) {
    std::size_t best_rung = 0;
    double best_deficit = 1e-9;
    for (const auto& [rung, d] : demand_per_rung) {
      const double deficit =
          d - static_cast<double>(cores_per_rung[rung]);
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best_rung = rung;
      }
    }
    if (best_deficit <= 1e-9) break;  // everyone covered
    ++cores_per_rung[best_rung];
    ++claimed;
  }
  const std::size_t leftovers = total_cores - claimed;

  // Place leftovers.
  if (leftovers > 0) {
    if (policy == LeftoverPolicy::kParkAtSlowest) {
      cores_per_rung[ladder.slowest_index()] += leftovers;
    } else {
      cores_per_rung.rbegin()->second += leftovers;  // slowest selected
    }
  }

  // Carve core ids in rung order (fastest rung gets the lowest ids; ids
  // are logical worker indices, so the carving is arbitrary but stable).
  std::vector<dvfs::CGroup> groups;
  std::map<std::size_t, std::size_t> rung_to_group;
  std::size_t next_core = 0;
  for (const auto& [rung, n] : cores_per_rung) {
    dvfs::CGroup g;
    g.freq_index = rung;
    for (std::size_t c = 0; c < n; ++c) g.cores.push_back(next_core++);
    rung_to_group[rung] = groups.size();
    groups.push_back(std::move(g));
  }

  // Class-id → group mapping; unseen classes go to the fastest group (0).
  std::vector<std::size_t> class_to_group(registry_class_count, 0);
  for (std::size_t i = 0; i < sr.tuple.size(); ++i) {
    const std::size_t id = cc.classes().at(i).class_id;
    if (id >= class_to_group.size()) {
      throw std::invalid_argument(
          "make_frequency_plan: class id outside registry");
    }
    class_to_group[id] = rung_to_group.at(effective_rung(sr.tuple[i]));
  }

  FrequencyPlan plan;
  plan.planned = true;
  plan.layout = dvfs::CGroupLayout(std::move(groups),
                                   std::move(class_to_group), total_cores);
  plan.tuple = sr.tuple;
  plan.claimed_cores = claimed;
  return plan;
}

}  // namespace eewa::core
