// The EEWA batch state machine (paper Fig. 2):
//
//   batch 0: all cores at F_0; profile tasks; makespan becomes the ideal
//            iteration time T; cache-miss counters feed the CPU/memory-
//            bound gate.
//   batch d (d >= 1): at the end of batch d-1 the workload-aware
//            frequency adjuster produced a plan; cores run at the plan's
//            rungs, task classes go to their c-groups, idle cores steal
//            by preference list. Profiling continues so each batch's end
//            replans for the next.
//
// The controller is the single integration point shared by the real
// thread runtime and the simulator. It is not thread-safe: producers
// aggregate observations and feed them from one thread (the runtime
// merges per-worker profiles at the batch barrier; the simulator is
// single-threaded by construction).
#pragma once

#include <cstddef>
#include <string_view>

#include <vector>

#include "core/actuation.hpp"
#include "core/adjuster.hpp"
#include "core/classifier.hpp"
#include "core/frequency_plan.hpp"
#include "core/preference_list.hpp"
#include "core/task_class.hpp"
#include "dvfs/dvfs_backend.hpp"
#include "dvfs/frequency_ladder.hpp"
#include "obs/tracer.hpp"

namespace eewa::core {

/// How the ideal iteration time T evolves.
enum class IdealTimeMode {
  /// The paper's rule: T is the first batch's makespan, forever.
  kFirstBatch,
  /// Extension: T ratchets down to the best makespan seen so far — a
  /// batch that finished faster proves the tighter target feasible, so
  /// an unluckily slow measurement batch cannot inflate T permanently.
  kRollingMin,
};

/// Batch watchdog thresholds. The watchdog tracks consecutive actuation
/// failures, makespan blowups versus the ideal time T, and task
/// exceptions; past a threshold it trips a degraded mode — all cores
/// forced to F0 with plain work-stealing, the same safe configuration
/// as the §IV-D memory gate — instead of keeping a plan the hardware
/// demonstrably cannot run.
struct WatchdogOptions {
  bool enabled = true;
  /// Consecutive batches with >= 1 core missing its rung before degrade.
  std::size_t max_consecutive_actuation_failures = 3;
  /// A batch slower than blowup_factor * T counts as a blowup strike.
  double makespan_blowup_factor = 4.0;
  std::size_t max_consecutive_blowups = 3;
  /// Cumulative task exceptions before degrade.
  std::size_t max_task_exceptions = 64;
  /// Consecutive per-core actuation failures before the core is
  /// reported stuck in HealthReport.
  std::size_t stuck_core_threshold = 2;
};

/// Controller configuration.
struct ControllerOptions {
  AdjusterOptions adjuster;
  IdealTimeMode ideal_time = IdealTimeMode::kFirstBatch;
  /// §IV-D gate: when most of a batch's tasks are memory-bound, keep
  /// plain work-stealing at F0. The verdict is re-evaluated every batch
  /// (counters are cheap and phases change): a contrary verdict must
  /// persist memory_gate_hysteresis consecutive batches before the mode
  /// flips, so one noisy batch cannot bounce the gate.
  bool memory_gate_enabled = true;
  double task_cmi_threshold = 0.01;
  double app_memory_fraction = 0.5;
  std::size_t memory_gate_hysteresis = 2;
  /// Retry/backoff policy for apply_supervised().
  ActuationOptions actuation;
  WatchdogOptions watchdog;
  /// Skip the Algorithm 1 backtracking search and keep the previous
  /// k-tuple when the workload profile is statistically unchanged: same
  /// set of active classes, every class's mean and max workload within
  /// plan_reuse_tolerance (relative) of the values the current plan was
  /// searched from, and the ideal time T unmoved. The search is a pure
  /// function of (profile, T), so an unchanged profile would reproduce
  /// the same plan anyway — reuse only cuts the end-of-batch overhead.
  bool plan_reuse_enabled = true;
  double plan_reuse_tolerance = 0.01;
  /// When full reuse fails but a prefix of the CC column order is still
  /// statistically unchanged (same classes in the same sorted positions,
  /// mean/max drift within plan_reuse_tolerance), keep that prefix's
  /// rungs verbatim and re-search only the suffix
  /// (Adjuster::adjust_incremental). Any order change — a drifted class
  /// merging into another c-group, a new class, a vanished class — cuts
  /// the stable prefix at that point, so the cached suffix beyond it is
  /// discarded rather than trusted.
  bool incremental_replan_enabled = true;
};

/// Drives EEWA across batches.
class EewaController {
 public:
  EewaController(dvfs::FrequencyLadder ladder, std::size_t total_cores,
                 ControllerOptions options = {});

  /// Intern a task-class (function) name; ids are stable for the run.
  std::size_t class_id(std::string_view name) {
    return registry_.intern(name);
  }

  /// Begin the next batch (clears per-iteration profile counts).
  void begin_batch();

  /// Record one completed task: its class, measured execution time, and
  /// the ladder rung of the core that executed it (for Eq. 1
  /// normalization). `cmi` is the cache-miss intensity when available;
  /// `alpha` the memory-stall fraction estimate (0 when unknown — pass
  /// estimate_alpha_from_cmi(cmi) when only counters are available).
  /// On heterogeneous machines (AdjusterOptions::topology set),
  /// `core_type` names the executing core's cluster so normalization
  /// uses that type's effective slowdown at `rung`.
  void record_task(std::size_t class_id, double exec_time_s,
                   std::size_t rung, double cmi = 0.0, double alpha = 0.0,
                   std::size_t core_type = 0);

  /// End the batch that just ran (its makespan in seconds) and compute
  /// the plan for the next batch. Returns that plan.
  const FrequencyPlan& end_batch(double batch_makespan_s);

  /// The plan the *next* batch should run under.
  const FrequencyPlan& plan() const { return plan_; }

  /// Preference lists matching plan().layout.
  const PreferenceTable& preferences() const { return prefs_; }

  /// C-group the given class's tasks should be pushed to under plan().
  /// Unknown/unplanned classes go to the fastest group (0).
  std::size_t group_of_class(std::size_t class_id) const;

  /// Apply plan() to a DVFS backend; returns cores successfully set.
  /// Raw fire-and-forget path — prefer apply_supervised() anywhere the
  /// writes can fail.
  std::size_t apply(dvfs::DvfsBackend& backend) const;

  /// Fault-tolerant actuation of plan(): retry each core's write with
  /// exponential backoff, read back achieved rungs, and on failure
  /// reconcile the plan (cores regroup by achieved rung, classes and
  /// preference lists follow) so profiling normalization and stealing
  /// order stay consistent with reality. Feeds the watchdog: enough
  /// consecutive failed actuations trip degraded mode.
  const ActuationOutcome& apply_supervised(dvfs::DvfsBackend& backend);

  /// Report task exceptions observed in the running batch; enough of
  /// them trip the watchdog into degraded mode.
  void note_task_failures(std::size_t count);

  /// Fault-tolerance counters (retries, reconciliations, degradations).
  const HealthReport& health() const { return health_; }

  /// Outcome of the most recent apply_supervised().
  const ActuationOutcome& last_actuation() const { return last_outcome_; }

  /// True when the watchdog tripped: all cores forced to F0, plain
  /// work-stealing (the §IV-D memory-gate configuration) until the run
  /// ends.
  bool degraded() const { return degraded_; }

  /// Ideal iteration time T (0 until the first batch completes).
  double ideal_time_s() const { return ideal_time_s_; }

  /// Number of completed batches.
  std::size_t batches_completed() const { return batches_; }

  /// True when the §IV-D gate is tripped: EEWA runs plain work-stealing
  /// at F0. Re-evaluated every batch (with hysteresis), so a workload
  /// whose memory-bound phase ends resumes planning.
  bool memory_bound_mode() const { return memory_bound_mode_; }

  /// Times the §IV-D gate changed its verdict after batch 0 (a phase
  /// change survived the hysteresis window in either direction).
  std::size_t memory_gate_flips() const { return gate_flips_; }

  /// Diagnostics from the most recent adjustment.
  const SearchResult& last_search() const { return last_.search; }
  const Adjustment& last_adjustment() const { return last_; }

  /// Batches whose plan was reused without re-running the search
  /// (profile drift below plan_reuse_tolerance).
  std::size_t plans_reused() const { return plans_reused_; }

  /// Batches re-planned incrementally: a stable prefix of the class
  /// order kept its rungs and only the suffix was re-searched.
  std::size_t plans_incremental() const { return plans_incremental_; }

  /// Total microseconds spent in the adjuster so far (Table III metric).
  double adjust_overhead_us() const { return overhead_us_; }

  /// Attach an event tracer; controller phases (plan, k-tuple search,
  /// actuation, reconciliation) are emitted on `control_track`. Pass
  /// nullptr to detach. Timestamps come from the tracer's own clock, so
  /// only attach from hosts living on the same timeline as the other
  /// tracks (the real runtime — never the simulator, whose tracks carry
  /// simulated time).
  void set_tracer(obs::EventTracer* tracer, std::size_t control_track) {
    tracer_ = tracer;
    control_track_ = control_track;
  }

  const dvfs::FrequencyLadder& ladder() const { return adjuster_.ladder(); }
  std::size_t total_cores() const { return adjuster_.total_cores(); }
  const TaskClassRegistry& registry() const { return registry_; }

 private:
  void degrade(dvfs::DvfsBackend* backend);
  bool plan_reusable_for(const std::vector<ClassProfile>& profile) const;
  /// Longest prefix of `profile` whose classes sit in the same sorted
  /// positions as the plan basis with mean/max drift within tolerance.
  /// 0 when there is no basis tuple or T moved.
  std::size_t stable_prefix_len(
      const std::vector<ClassProfile>& profile) const;
  void save_plan_basis(const std::vector<ClassProfile>& profile);

  Adjuster adjuster_;
  ControllerOptions options_;
  TaskClassRegistry registry_;
  BoundednessClassifier classifier_;
  FrequencyPlan plan_;
  PreferenceTable prefs_;
  Adjustment last_;
  double ideal_time_s_ = 0.0;
  std::size_t batches_ = 0;
  bool memory_bound_mode_ = false;
  std::size_t gate_contrary_streak_ = 0;
  std::size_t gate_flips_ = 0;
  double overhead_us_ = 0.0;
  obs::EventTracer* tracer_ = nullptr;
  std::size_t control_track_ = 0;

  // Plan-reuse state: the per-class mean and max workloads (by class
  // id; NaN = inactive), the sorted class order and k-tuple the current
  // plan was searched from, and the ideal time at that search.
  // Invalidated whenever the plan stops matching its search inputs
  // (reconciliation, degrade, memory gate).
  std::vector<double> plan_basis_means_;
  std::vector<double> plan_basis_max_;
  std::vector<std::size_t> plan_basis_order_;  ///< class ids, CC column order
  std::vector<std::size_t> plan_basis_tuple_;  ///< empty when search failed
  double plan_basis_ideal_s_ = 0.0;
  bool plan_basis_valid_ = false;
  std::size_t plans_reused_ = 0;
  std::size_t plans_incremental_ = 0;

  // Fault-tolerance state.
  ActuationOutcome last_outcome_;
  HealthReport health_;
  std::vector<std::size_t> core_failure_streak_;
  std::size_t consecutive_actuation_failures_ = 0;
  std::size_t consecutive_blowups_ = 0;
  bool degraded_ = false;
};

}  // namespace eewa::core
