// Read-lock-free string interning for the spawn hot path.
//
// EEWA identifies task classes by function name, so every by-name spawn
// performs a name -> id lookup. Guarding the TaskClassRegistry's map
// with a mutex serializes all workers through one lock for what is, in
// steady state, a read of an append-only mapping. InternTable keeps an
// immutable open-addressed snapshot behind an atomic pointer: readers
// load-acquire the snapshot and probe with zero synchronization beyond
// that one load; writers (rare — a class is interned once per run) take
// a mutex, rebuild a bigger snapshot, and publish it with a release
// store. Retired snapshots are kept alive until destruction so a reader
// holding a stale snapshot never touches freed memory (the same
// retirement scheme as the Chase-Lev deque's grown rings), and the
// interned strings themselves are append-only and never move.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eewa::core {

/// Concurrent append-only name -> id map. Lookups are wait-free after
/// one atomic load; insertions are mutex-serialized and expected rare.
/// Ids are assigned by the caller (see intern()'s make_id callback) so
/// the table can mirror an external authority such as the controller's
/// TaskClassRegistry without double bookkeeping.
class InternTable {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  InternTable();
  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;
  ~InternTable();

  /// Lock-free lookup; npos when the name has never been interned.
  std::size_t find(std::string_view name) const noexcept;

  /// Id for `name`, inserting on first sight. `make_id` is invoked under
  /// the writer mutex exactly once per new name and supplies the id to
  /// publish (e.g. by interning into the authoritative registry).
  template <typename MakeId>
  std::size_t intern(std::string_view name, MakeId&& make_id) {
    if (const std::size_t id = find(name); id != npos) return id;
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check: another writer may have published it while we waited.
    if (const std::size_t id = find(name); id != npos) return id;
    return insert_locked(name, make_id());
  }

  /// Number of interned names.
  std::size_t size() const noexcept;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    const std::string* name = nullptr;  ///< null = empty slot
    std::size_t id = 0;
  };

  struct Snapshot {
    std::vector<Entry> slots;  ///< power-of-two open addressing
    std::size_t mask = 0;
    std::size_t count = 0;
  };

  static std::uint64_t hash_name(std::string_view name) noexcept;
  std::size_t insert_locked(std::string_view name, std::size_t id);

  std::atomic<const Snapshot*> snapshot_;
  std::mutex mu_;
  // Writer-owned: interned strings (stable addresses, append-only) and
  // retired snapshots readers may still be probing.
  std::vector<std::unique_ptr<std::string>> names_;
  std::vector<std::unique_ptr<const Snapshot>> retired_;
};

}  // namespace eewa::core
