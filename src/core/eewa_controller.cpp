#include "core/eewa_controller.hpp"

#include <chrono>

namespace eewa::core {

EewaController::EewaController(dvfs::FrequencyLadder ladder,
                               std::size_t total_cores,
                               ControllerOptions options)
    : adjuster_(std::move(ladder), total_cores, options.adjuster),
      options_(options),
      classifier_(options.task_cmi_threshold, options.app_memory_fraction),
      plan_(uniform_plan(total_cores, 0)),
      prefs_(plan_.layout) {}

void EewaController::begin_batch() { registry_.begin_iteration(); }

void EewaController::record_task(std::size_t class_id, double exec_time_s,
                                 std::size_t rung, double cmi,
                                 double alpha) {
  // Eq. 1 normalization, generalized for memory stalls: only the
  // frequency-scaled fraction of the time shrinks at F0.
  const double slowdown = ladder().slowdown(rung);
  const double eff = alpha + (1.0 - alpha) * slowdown;
  registry_.record(class_id, exec_time_s / eff, alpha);
  // Counters are only sampled during the measurement batch (§IV-D).
  if (batches_ == 0 && options_.memory_gate_enabled) {
    classifier_.record_cmi(cmi);
  }
}

const FrequencyPlan& EewaController::end_batch(double batch_makespan_s) {
  const auto t0 = std::chrono::steady_clock::now();
  if (batches_ > 0 && options_.ideal_time == IdealTimeMode::kRollingMin &&
      batch_makespan_s > 0.0 && batch_makespan_s < ideal_time_s_) {
    ideal_time_s_ = batch_makespan_s;
  }
  if (batches_ == 0) {
    ideal_time_s_ = batch_makespan_s;
    // Memory-bound applications fall back to plain work-stealing
    // (§IV-D) — unless the memory-aware planning extension is on, in
    // which case the corrected CC model handles them.
    if (options_.memory_gate_enabled && !options_.adjuster.memory_aware &&
        classifier_.application_memory_bound()) {
      memory_bound_mode_ = true;
    }
  }
  ++batches_;

  if (memory_bound_mode_) {
    plan_ = uniform_plan(total_cores(), registry_.class_count());
  } else {
    last_ = adjuster_.adjust(registry_.iteration_profile(),
                             registry_.class_count(), ideal_time_s_);
    plan_ = last_.plan;
  }
  prefs_ = PreferenceTable(plan_.layout);
  // The whole end-of-batch pipeline (profile sort, CC build, search, plan,
  // preference lists) is the adjuster overhead Table III reports.
  overhead_us_ += std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return plan_;
}

std::size_t EewaController::group_of_class(std::size_t class_id) const {
  if (class_id >= plan_.layout.class_count()) return 0;
  return plan_.layout.group_of_class(class_id);
}

std::size_t EewaController::apply(dvfs::DvfsBackend& backend) const {
  std::size_t ok = 0;
  for (const auto& g : plan_.layout.groups()) {
    for (std::size_t c : g.cores) {
      if (c < backend.core_count() &&
          backend.set_frequency(c, g.freq_index)) {
        ++ok;
      }
    }
  }
  return ok;
}

}  // namespace eewa::core
