#include "core/eewa_controller.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace eewa::core {

namespace {
constexpr double kInactive = std::numeric_limits<double>::quiet_NaN();
}  // namespace

EewaController::EewaController(dvfs::FrequencyLadder ladder,
                               std::size_t total_cores,
                               ControllerOptions options)
    : adjuster_(std::move(ladder), total_cores, options.adjuster),
      options_(options),
      classifier_(options.task_cmi_threshold, options.app_memory_fraction),
      plan_(uniform_plan(total_cores, 0)),
      prefs_(plan_.layout) {}

void EewaController::begin_batch() {
  registry_.begin_iteration();
  // The boundedness verdict is per batch: clear the counter samples so
  // end_batch judges the batch that is about to run, not the whole run
  // (a workload whose memory-bound phase ends must be able to flip the
  // gate back).
  classifier_.reset();
}

void EewaController::record_task(std::size_t class_id, double exec_time_s,
                                 std::size_t rung, double cmi, double alpha,
                                 std::size_t core_type) {
  // Eq. 1 normalization, generalized for memory stalls: only the
  // frequency-scaled fraction of the time shrinks at F0. On typed
  // machines the slowdown is relative to the globally fastest row, so
  // workloads recorded on different clusters stay comparable.
  const MachineTopology* topo = options_.adjuster.topology.get();
  const double slowdown =
      topo != nullptr ? topo->row_slowdown(topo->row_of(core_type, rung))
                      : ladder().slowdown(rung);
  const double eff = alpha + (1.0 - alpha) * slowdown;
  registry_.record(class_id, exec_time_s / eff, alpha);
  // Counters are sampled every batch so the §IV-D gate can track phase
  // changes, not just the measurement batch's verdict.
  if (options_.memory_gate_enabled) {
    classifier_.record_cmi(cmi);
  }
}

const FrequencyPlan& EewaController::end_batch(double batch_makespan_s) {
  const auto t0 = std::chrono::steady_clock::now();
  // Watchdog: a batch that blows past the ideal time by the configured
  // factor is a strike; enough consecutive strikes degrade the run.
  if (options_.watchdog.enabled && batches_ > 0 && ideal_time_s_ > 0.0 &&
      batch_makespan_s >
          options_.watchdog.makespan_blowup_factor * ideal_time_s_) {
    ++health_.makespan_blowups;
    if (++consecutive_blowups_ >= options_.watchdog.max_consecutive_blowups &&
        !degraded_) {
      degrade(nullptr);
    }
  } else {
    consecutive_blowups_ = 0;
  }
  if (batches_ > 0 && options_.ideal_time == IdealTimeMode::kRollingMin &&
      batch_makespan_s > 0.0 && batch_makespan_s < ideal_time_s_) {
    ideal_time_s_ = batch_makespan_s;
  }
  const bool gate_active =
      options_.memory_gate_enabled && !options_.adjuster.memory_aware;
  if (batches_ == 0) {
    ideal_time_s_ = batch_makespan_s;
    // Memory-bound applications fall back to plain work-stealing
    // (§IV-D) — unless the memory-aware planning extension is on, in
    // which case the corrected CC model handles them.
    if (gate_active && classifier_.application_memory_bound()) {
      memory_bound_mode_ = true;
    }
  } else if (gate_active && classifier_.task_count() > 0) {
    // Re-judge the gate on this batch's counters. A verdict contrary to
    // the current mode must persist memory_gate_hysteresis consecutive
    // batches before the mode flips; batches with no samples neither
    // extend nor break the streak.
    const bool verdict = classifier_.application_memory_bound();
    if (verdict != memory_bound_mode_) {
      if (++gate_contrary_streak_ >=
          std::max<std::size_t>(1, options_.memory_gate_hysteresis)) {
        memory_bound_mode_ = verdict;
        gate_contrary_streak_ = 0;
        ++gate_flips_;
        // Either direction invalidates the plan basis: entering the
        // gate discards the plan; leaving it means the uniform plan was
        // never searched from a profile.
        plan_basis_valid_ = false;
      }
    } else {
      gate_contrary_streak_ = 0;
    }
  }
  ++batches_;

  bool searched = false;
  if (memory_bound_mode_ || degraded_) {
    plan_ = uniform_plan(total_cores(), registry_.class_count());
    prefs_ = PreferenceTable(plan_.layout);
    plan_basis_valid_ = false;
  } else {
    const auto profile = registry_.iteration_profile();
    if (options_.plan_reuse_enabled && plan_reusable_for(profile)) {
      // Profile statistically unchanged since the current plan's search:
      // Algorithm 1 would reproduce the same k-tuple, so keep the plan
      // (and its preference lists) and skip the backtracking entirely.
      ++plans_reused_;
    } else {
      searched = true;
      const std::size_t keep =
          options_.plan_reuse_enabled && options_.incremental_replan_enabled
              ? stable_prefix_len(profile)
              : 0;
      if (keep > 0) {
        // Only a suffix of the class order drifted: pin the stable
        // prefix's rungs and re-search the rest of the lattice. The
        // adjuster re-validates the prefix against the fresh CC table
        // and falls back to a full search if a spike broke it.
        const std::vector<std::size_t> prefix(
            plan_basis_tuple_.begin(),
            plan_basis_tuple_.begin() + static_cast<std::ptrdiff_t>(keep));
        last_ = adjuster_.adjust_incremental(
            profile, registry_.class_count(), ideal_time_s_, prefix);
        if (last_.incremental) ++plans_incremental_;
      } else {
        last_ = adjuster_.adjust(profile, registry_.class_count(),
                                 ideal_time_s_);
      }
      plan_ = last_.plan;
      prefs_ = PreferenceTable(plan_.layout);
      save_plan_basis(profile);
    }
  }
  // The whole end-of-batch pipeline (profile sort, CC build, search, plan,
  // preference lists) is the adjuster overhead Table III reports.
  const double pipeline_us = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
  overhead_us_ += pipeline_us;
  if (tracer_ != nullptr && tracer_->enabled()) {
    const double end_us = tracer_->now_us();
    tracer_->phase(control_track_, end_us - pipeline_us, pipeline_us,
                   obs::PhaseKind::kPlan, registry_.class_count());
    if (searched) {
      // The k-tuple search nests inside the plan span; it ends when the
      // pipeline hands the plan over, so anchor it at the tail.
      const double search_us =
          std::min(last_.search.elapsed_us, pipeline_us);
      tracer_->phase(control_track_, end_us - search_us, search_us,
                     obs::PhaseKind::kSearch, last_.search.nodes_visited);
    }
  }
  return plan_;
}

namespace {

/// Relative drift check shared by full reuse and the stable-prefix
/// scan. A zero basis only passes when the fresh value is zero too.
bool within_tolerance(double fresh, double basis, double tol) {
  return std::abs(fresh - basis) <= tol * basis;
}

}  // namespace

bool EewaController::plan_reusable_for(
    const std::vector<ClassProfile>& profile) const {
  if (!plan_basis_valid_ || profile.empty()) return false;
  // T moved (kRollingMin ratchet): the search target changed even if the
  // per-class means did not.
  if (ideal_time_s_ != plan_basis_ideal_s_) return false;
  // Same set of active classes, every mean AND max within tolerance.
  // The max matters because rung feasibility is gated on the heaviest
  // task (critical path): a single workload spike can invalidate the
  // cached tuple even when the class mean barely moves.
  std::size_t active_seen = 0;
  for (const auto& c : profile) {
    if (c.class_id >= plan_basis_means_.size()) return false;  // new class
    const double basis = plan_basis_means_[c.class_id];
    if (std::isnan(basis)) return false;  // class was inactive at search
    ++active_seen;
    if (!within_tolerance(c.mean_workload, basis,
                          options_.plan_reuse_tolerance)) {
      return false;
    }
    if (!within_tolerance(c.max_workload, plan_basis_max_[c.class_id],
                          options_.plan_reuse_tolerance)) {
      return false;
    }
  }
  std::size_t basis_active = 0;
  for (const double m : plan_basis_means_) {
    if (!std::isnan(m)) ++basis_active;
  }
  return active_seen == basis_active;  // no class went quiet
}

std::size_t EewaController::stable_prefix_len(
    const std::vector<ClassProfile>& profile) const {
  if (!plan_basis_valid_ || plan_basis_tuple_.empty()) return 0;
  if (ideal_time_s_ != plan_basis_ideal_s_) return 0;
  const std::size_t limit =
      std::min(profile.size(), plan_basis_order_.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& c = profile[i];
    // Any mismatch cuts the prefix here: a class that drifted, swapped
    // sorted position, appeared, or vanished changes every CC column
    // from this point on, so the cached rungs past it are meaningless.
    if (c.class_id != plan_basis_order_[i]) return i;
    if (!within_tolerance(c.mean_workload, plan_basis_means_[c.class_id],
                          options_.plan_reuse_tolerance) ||
        !within_tolerance(c.max_workload, plan_basis_max_[c.class_id],
                          options_.plan_reuse_tolerance)) {
      return i;
    }
  }
  return limit;
}

void EewaController::save_plan_basis(
    const std::vector<ClassProfile>& profile) {
  plan_basis_means_.assign(registry_.class_count(), kInactive);
  plan_basis_max_.assign(registry_.class_count(), kInactive);
  plan_basis_order_.clear();
  plan_basis_order_.reserve(profile.size());
  for (const auto& c : profile) {
    plan_basis_means_[c.class_id] = c.mean_workload;
    plan_basis_max_[c.class_id] = c.max_workload;
    plan_basis_order_.push_back(c.class_id);
  }
  // The tuple is only a valid incremental basis when the search that
  // produced the running plan actually succeeded on this profile.
  plan_basis_tuple_ = last_.attempted && last_.search.found &&
                              last_.search.tuple.size() == profile.size()
                          ? last_.search.tuple
                          : std::vector<std::size_t>{};
  plan_basis_ideal_s_ = ideal_time_s_;
  plan_basis_valid_ = !profile.empty();
}

std::size_t EewaController::group_of_class(std::size_t class_id) const {
  if (class_id >= plan_.layout.class_count()) return 0;
  return plan_.layout.group_of_class(class_id);
}

std::size_t EewaController::apply(dvfs::DvfsBackend& backend) const {
  std::size_t ok = 0;
  for (const auto& g : plan_.layout.groups()) {
    for (std::size_t c : g.cores) {
      if (c < backend.core_count() &&
          backend.set_frequency(c, g.freq_index)) {
        ++ok;
      }
    }
  }
  return ok;
}

const ActuationOutcome& EewaController::apply_supervised(
    dvfs::DvfsBackend& backend) {
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  const double actuate_ts = tracing ? tracer_->now_us() : 0.0;
  ActuationSupervisor supervisor(options_.actuation);
  last_outcome_ = supervisor.apply(plan_, backend);
  if (tracing) {
    tracer_->phase(control_track_, actuate_ts,
                   tracer_->now_us() - actuate_ts, obs::PhaseKind::kActuate,
                   last_outcome_.writes);
  }
  health_.writes += last_outcome_.writes;
  health_.retries += last_outcome_.retries;
  health_.write_failures += last_outcome_.write_failures;

  // Per-core failure streaks: a core that misses its rung in
  // stuck_core_threshold consecutive actuations is reported stuck.
  if (core_failure_streak_.size() < backend.core_count()) {
    core_failure_streak_.resize(backend.core_count(), 0);
  }
  std::vector<bool> failed(core_failure_streak_.size(), false);
  for (std::size_t c : last_outcome_.failed_cores) {
    if (c < failed.size()) failed[c] = true;
  }
  health_.stuck_cores = 0;
  for (std::size_t c = 0; c < core_failure_streak_.size(); ++c) {
    core_failure_streak_[c] = failed[c] ? core_failure_streak_[c] + 1 : 0;
    if (core_failure_streak_[c] >= options_.watchdog.stuck_core_threshold) {
      ++health_.stuck_cores;
    }
  }

  if (!last_outcome_.ok()) {
    health_.failed_cores += last_outcome_.failed_cores.size();
    ++consecutive_actuation_failures_;
    // Reconcile: regroup the plan around what the hardware reached, so
    // Eq. 1 normalization and the stealing order match reality.
    plan_ = reconcile_plan(plan_, last_outcome_.achieved);
    prefs_ = PreferenceTable(plan_.layout);
    // The running plan no longer matches its search inputs; the next
    // end_batch must re-search rather than reuse.
    plan_basis_valid_ = false;
    ++health_.reconciliations;
    if (tracing) {
      tracer_->phase(control_track_, tracer_->now_us(), -1.0,
                     obs::PhaseKind::kReconcile,
                     last_outcome_.failed_cores.size());
    }
    if (options_.watchdog.enabled && !degraded_ &&
        consecutive_actuation_failures_ >=
            options_.watchdog.max_consecutive_actuation_failures) {
      degrade(&backend);
    }
  } else {
    consecutive_actuation_failures_ = 0;
  }
  health_.degraded = degraded_;
  return last_outcome_;
}

void EewaController::note_task_failures(std::size_t count) {
  if (count == 0) return;
  health_.task_exceptions += count;
  if (options_.watchdog.enabled && !degraded_ &&
      health_.task_exceptions >= options_.watchdog.max_task_exceptions) {
    degrade(nullptr);
    health_.degraded = true;
  }
}

void EewaController::degrade(dvfs::DvfsBackend* backend) {
  degraded_ = true;
  ++health_.degradations;
  health_.degraded = true;
  plan_basis_valid_ = false;
  plan_ = uniform_plan(total_cores(), registry_.class_count());
  if (backend != nullptr) {
    // Best-effort push to the safe all-F0 configuration; cores that
    // still cannot switch are reconciled around one more time.
    ActuationSupervisor supervisor(options_.actuation);
    const auto out = supervisor.apply(plan_, *backend);
    health_.writes += out.writes;
    health_.retries += out.retries;
    health_.write_failures += out.write_failures;
    if (!out.ok()) {
      plan_ = reconcile_plan(plan_, out.achieved);
      ++health_.reconciliations;
    }
  }
  prefs_ = PreferenceTable(plan_.layout);
}

}  // namespace eewa::core
