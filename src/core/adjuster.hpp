// The workload-aware frequency adjuster (paper §III-A): the end-of-batch
// pipeline  profile → CC table → k-tuple search → frequency plan.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/cc_table.hpp"
#include "core/core_type.hpp"
#include "core/frequency_plan.hpp"
#include "core/ktuple_search.hpp"
#include "core/task_class.hpp"
#include "dvfs/frequency_ladder.hpp"
#include "energy/power_model.hpp"

namespace eewa::core {

/// Adjuster configuration.
struct AdjusterOptions {
  SearchKind search = SearchKind::kBacktracking;
  LeftoverPolicy leftover = LeftoverPolicy::kParkAtSlowest;
  /// Optional power model for the exhaustive search objective.
  const energy::PowerModel* model = nullptr;
  /// Plan against T·(1 - time_margin): slack for the inter-batch
  /// workload drift the paper acknowledges (§II-A). 0 = plan with no
  /// safety margin, exactly the paper's formula.
  double time_margin = 0.15;
  /// Plan memory-bound classes with the effective-slowdown CC model
  /// (paper §IV-D future work) instead of the CPU-bound formula; also
  /// keeps the controller planning (rather than falling back to plain
  /// work-stealing) for memory-bound applications.
  bool memory_aware = false;
  /// Heterogeneous machine description. When set, the pipeline builds
  /// per-core-type CC columns (CCTable::build_typed), the search runs
  /// with per-type capacity, and the plan carves each cluster's own
  /// core-id range; `ladder` then only describes the reference (type 0)
  /// cluster for callers that still need a ladder. The topology's total
  /// core count must equal the adjuster's.
  std::shared_ptr<const MachineTopology> topology;
};

/// One adjustment outcome: the plan plus search diagnostics.
struct Adjustment {
  FrequencyPlan plan;
  SearchResult search;
  CCTable cc = CCTable::from_matrix({{0.0}});  // replaced on success
  bool attempted = false;  ///< false when there was nothing to plan from
  /// True when the plan came from a suffix search spliced onto a kept
  /// prefix (adjust_incremental's fast path) rather than a full search.
  bool incremental = false;
};

/// Stateless adjuster: pure function of the iteration profile.
class Adjuster {
 public:
  Adjuster(dvfs::FrequencyLadder ladder, std::size_t total_cores,
           AdjusterOptions options = {});

  /// Run the full pipeline. `classes` must be sorted by descending mean
  /// workload (TaskClassRegistry::iteration_profile() order);
  /// `registry_class_count` sizes the class-id → group map;
  /// `ideal_time_s` is the target iteration time T.
  Adjustment adjust(std::vector<ClassProfile> classes,
                    std::size_t registry_class_count,
                    double ideal_time_s) const;

  /// Incremental re-planning: like adjust(), but classes
  /// [0, prefix_rungs.size()) keep their previous rungs verbatim and
  /// only the remaining suffix of the lattice is searched
  /// (search_suffix). Falls back to the full search — and reports
  /// incremental=false — when the prefix is invalid under the fresh
  /// table (a workload spike broke its feasibility) or the suffix search
  /// finds nothing. The caller is responsible for only pinning classes
  /// whose profile is statistically unchanged; the result is optimal
  /// conditioned on that prefix.
  Adjustment adjust_incremental(std::vector<ClassProfile> classes,
                                std::size_t registry_class_count,
                                double ideal_time_s,
                                const std::vector<std::size_t>& prefix_rungs)
      const;

  const dvfs::FrequencyLadder& ladder() const { return ladder_; }
  std::size_t total_cores() const { return total_cores_; }
  const AdjusterOptions& options() const { return options_; }

 private:
  dvfs::FrequencyLadder ladder_;
  std::size_t total_cores_;
  AdjusterOptions options_;
};

}  // namespace eewa::core
