// Preference lists (paper §III-B, Fig. 5): a core in c-group G_i steals
// in the order {G_i, G_{i+1}, ..., G_{u-1}, G_{i-1}, ..., G_0} — the
// rob-the-weaker-first principle: exhaust your own group, then help the
// slower groups, and only then take work away from faster groups.
#pragma once

#include <cstddef>
#include <vector>

#include "dvfs/cgroup.hpp"

namespace eewa::core {

/// The steal order for a core in group `own` of `u` c-groups.
std::vector<std::size_t> preference_list(std::size_t own, std::size_t u);

/// Preference lists for all groups of a layout, rebuilt per batch since
/// the set of c-groups changes between batches.
class PreferenceTable {
 public:
  PreferenceTable() = default;

  /// Build lists for every group of the layout.
  explicit PreferenceTable(const dvfs::CGroupLayout& layout);

  /// Steal order for a core in group g.
  const std::vector<std::size_t>& for_group(std::size_t g) const {
    return lists_.at(g);
  }

  std::size_t group_count() const { return lists_.size(); }

 private:
  std::vector<std::vector<std::size_t>> lists_;
};

}  // namespace eewa::core
