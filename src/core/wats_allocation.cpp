#include "core/wats_allocation.hpp"

#include <stdexcept>

namespace eewa::core {

std::vector<std::size_t> allocate_classes_proportional(
    const std::vector<ClassProfile>& profile,
    const std::vector<double>& group_capacity,
    std::size_t registry_class_count) {
  if (group_capacity.empty()) {
    throw std::invalid_argument(
        "allocate_classes_proportional: need at least one group");
  }
  std::vector<std::size_t> class_to_group(registry_class_count, 0);
  if (profile.empty()) return class_to_group;

  double total_work = 0.0;
  for (const auto& p : profile) total_work += p.total_workload();
  double total_capacity = 0.0;
  for (double c : group_capacity) total_capacity += c;
  if (total_work <= 0.0 || total_capacity <= 0.0) return class_to_group;

  std::size_t g = 0;
  double assigned = 0.0;  // work assigned to the current group
  for (const auto& p : profile) {
    if (p.class_id < registry_class_count) {
      class_to_group[p.class_id] = g;
    }
    assigned += p.total_workload();
    // Move to the next group once this one's fair share is (nearly)
    // covered — the 0.95 slack keeps a class that lands a hair under the
    // boundary from dragging every later class onto the fast group.
    while (g + 1 < group_capacity.size() &&
           assigned >=
               0.95 * total_work * group_capacity[g] / total_capacity) {
      assigned -= total_work * group_capacity[g] / total_capacity;
      ++g;
    }
  }
  return class_to_group;
}

}  // namespace eewa::core
