// CPU- vs memory-bound classification (paper §IV-D): during the first
// batch EEWA also samples cache misses and retired instructions per task;
// a task whose miss intensity (misses per instruction) exceeds a threshold
// is memory-bound, and if most tasks are memory-bound the whole
// application is treated as memory-bound and EEWA falls back to plain
// work-stealing at F0.
#pragma once

#include <cstddef>
#include <cstdint>

namespace eewa::core {

/// Rough memory-stall-fraction estimate from a cache-miss intensity:
/// linear in the miss rate up to a saturation point (~one miss per 25
/// instructions ≈ fully stall-bound on the paper's class of hardware).
/// Used when only PMC counters, not direct stall measurements, exist.
/// Hardened against adversarial counter readings: NaN or non-positive
/// CMI clamps to 0, +inf (and any over-saturated value) to 1, and a
/// degenerate saturation point saturates immediately — the result is
/// always a valid stall fraction in [0, 1], monotone in cmi.
inline double estimate_alpha_from_cmi(double cmi,
                                      double saturation_cmi = 0.04) {
  if (!(cmi > 0.0)) return 0.0;             // covers NaN and <= 0
  if (!(saturation_cmi > 0.0)) return 1.0;  // degenerate saturation
  const double alpha = cmi / saturation_cmi;
  return alpha >= 1.0 ? 1.0 : alpha;        // covers +inf and NaN ratios
}

/// Streaming cache-miss-intensity classifier.
class BoundednessClassifier {
 public:
  /// `task_cmi_threshold`: misses/instruction above which a task is
  /// memory-bound (paper: "a given threshold"; 0.01 — one miss per 100
  /// instructions — is the conventional knee).
  /// `app_fraction_threshold`: fraction of memory-bound tasks above which
  /// the application is memory-bound.
  explicit BoundednessClassifier(double task_cmi_threshold = 0.01,
                                 double app_fraction_threshold = 0.5)
      : task_threshold_(task_cmi_threshold),
        app_threshold_(app_fraction_threshold) {}

  /// Record one task's counters.
  void record(std::uint64_t cache_misses, std::uint64_t instructions);

  /// Record a precomputed miss intensity.
  void record_cmi(double cmi);

  std::size_t task_count() const { return total_; }
  std::size_t memory_bound_count() const { return memory_bound_; }

  /// Fraction of recorded tasks classified memory-bound (0 when empty).
  double memory_bound_fraction() const;

  /// True when the application should be treated as memory-bound.
  bool application_memory_bound() const {
    return total_ > 0 && memory_bound_fraction() > app_threshold_;
  }

  void reset();

  double task_threshold() const { return task_threshold_; }

 private:
  double task_threshold_;
  double app_threshold_;
  std::size_t total_ = 0;
  std::size_t memory_bound_ = 0;
};

}  // namespace eewa::core
