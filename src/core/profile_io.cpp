#include "core/profile_io.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace eewa::core {

std::string profile_to_csv(const std::vector<ClassProfile>& profile) {
  util::CsvWriter csv;
  csv.row({"class_id", "name", "count", "mean_workload", "max_workload",
           "mean_alpha"});
  for (const auto& p : profile) {
    csv.row_values(p.class_id, p.name, p.count, p.mean_workload,
                   p.max_workload, p.mean_alpha);
  }
  return csv.str();
}

std::vector<ClassProfile> profile_from_csv(const std::string& csv) {
  std::vector<ClassProfile> out;
  std::istringstream lines(csv);
  std::string line;
  bool header = true;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (header) {
      if (line.rfind("class_id,", 0) != 0) {
        throw std::invalid_argument("profile_from_csv: missing header");
      }
      header = false;
      continue;
    }
    std::istringstream cells(line);
    std::string id_s, name, count_s, mean_s, max_s, alpha_s;
    if (!std::getline(cells, id_s, ',') || !std::getline(cells, name, ',') ||
        !std::getline(cells, count_s, ',') ||
        !std::getline(cells, mean_s, ',') ||
        !std::getline(cells, max_s, ',') || !std::getline(cells, alpha_s)) {
      throw std::invalid_argument("profile_from_csv: short row");
    }
    ClassProfile p;
    try {
      p.class_id = std::stoul(id_s);
      p.name = name;
      p.count = std::stoul(count_s);
      p.mean_workload = std::stod(mean_s);
      p.max_workload = std::stod(max_s);
      p.mean_alpha = std::stod(alpha_s);
    } catch (const std::exception&) {
      throw std::invalid_argument("profile_from_csv: bad number");
    }
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const ClassProfile& a, const ClassProfile& b) {
              if (a.mean_workload != b.mean_workload) {
                return a.mean_workload > b.mean_workload;
              }
              return a.class_id < b.class_id;
            });
  return out;
}

}  // namespace eewa::core
