#include "core/cc_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace eewa::core {

CCTable::CCTable(std::size_t r, std::size_t k, std::vector<double> data,
                 std::vector<ClassProfile> classes, double ideal_time_s)
    : r_(r),
      k_(k),
      data_(std::move(data)),
      classes_(std::move(classes)),
      ideal_time_s_(ideal_time_s) {}

CCTable CCTable::build(std::vector<ClassProfile> classes,
                       const dvfs::FrequencyLadder& ladder,
                       double ideal_time_s, bool memory_aware) {
  if (classes.empty()) {
    throw std::invalid_argument("CCTable: no task classes");
  }
  if (ideal_time_s <= 0.0) {
    throw std::invalid_argument("CCTable: ideal time must be > 0");
  }
  for (std::size_t i = 1; i < classes.size(); ++i) {
    if (classes[i].mean_workload > classes[i - 1].mean_workload) {
      throw std::invalid_argument(
          "CCTable: classes must be sorted by descending mean workload");
    }
  }
  const std::size_t r = ladder.size();
  const std::size_t k = classes.size();
  std::vector<double> data(r * k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const double base = classes[i].total_workload() / ideal_time_s;
    const double alpha = memory_aware ? classes[i].mean_alpha : 0.0;
    for (std::size_t j = 0; j < r; ++j) {
      const double eff_slowdown =
          alpha + (1.0 - alpha) * ladder.slowdown(j);
      data[j * k + i] = eff_slowdown * base;
    }
  }
  return CCTable(r, k, std::move(data), std::move(classes), ideal_time_s);
}

CCTable CCTable::build_typed(std::vector<ClassProfile> classes,
                             const MachineTopology& topology,
                             double ideal_time_s, bool memory_aware) {
  if (classes.empty()) {
    throw std::invalid_argument("CCTable: no task classes");
  }
  if (ideal_time_s <= 0.0) {
    throw std::invalid_argument("CCTable: ideal time must be > 0");
  }
  for (std::size_t i = 1; i < classes.size(); ++i) {
    if (classes[i].mean_workload > classes[i - 1].mean_workload) {
      throw std::invalid_argument(
          "CCTable: classes must be sorted by descending mean workload");
    }
  }
  const std::size_t r = topology.row_count();
  const std::size_t k = classes.size();
  std::vector<double> data(r * k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const double base = classes[i].total_workload() / ideal_time_s;
    const double alpha = memory_aware ? classes[i].mean_alpha : 0.0;
    for (std::size_t j = 0; j < r; ++j) {
      const double eff_slowdown =
          alpha + (1.0 - alpha) * topology.row_slowdown(j);
      data[j * k + i] = eff_slowdown * base;
    }
  }
  CCTable table(r, k, std::move(data), std::move(classes), ideal_time_s);
  table.topology_ = std::make_shared<const MachineTopology>(topology);
  return table;
}

CCTable CCTable::from_matrix(std::vector<std::vector<double>> rows,
                             std::vector<ClassProfile> classes) {
  if (rows.empty() || rows[0].empty()) {
    throw std::invalid_argument("CCTable: empty matrix");
  }
  const std::size_t r = rows.size();
  const std::size_t k = rows[0].size();
  std::vector<double> data;
  data.reserve(r * k);
  for (const auto& row : rows) {
    if (row.size() != k) {
      throw std::invalid_argument("CCTable: ragged matrix");
    }
    data.insert(data.end(), row.begin(), row.end());
  }
  if (classes.empty()) {
    for (std::size_t i = 0; i < k; ++i) {
      classes.push_back(
          ClassProfile{i, "TC" + std::to_string(i), 1, 0.0});
    }
  } else if (classes.size() != k) {
    throw std::invalid_argument("CCTable: classes/columns mismatch");
  } else {
    // Explicit metadata gets the same ordering contract as build():
    // search_pruned's dominance and lower-bound tables assume columns
    // descend by mean workload. Bare matrices stay positional.
    for (std::size_t i = 1; i < k; ++i) {
      if (classes[i].mean_workload > classes[i - 1].mean_workload) {
        throw std::invalid_argument(
            "CCTable: classes must be sorted by descending mean workload");
      }
    }
  }
  return CCTable(r, k, std::move(data), std::move(classes), 0.0);
}

double CCTable::at(std::size_t j, std::size_t i) const {
  if (j >= r_ || i >= k_) {
    throw std::out_of_range("CCTable: index out of range");
  }
  return data_[j * k_ + i];
}

std::size_t CCTable::ceil_at(std::size_t j, std::size_t i) const {
  const double v = at(j, i);
  if (v <= 0.0) return 0;
  const auto c = static_cast<std::size_t>(std::ceil(v - 1e-9));
  return c == 0 ? 1 : c;
}

bool CCTable::rung_feasible(std::size_t j, std::size_t i) const {
  if (j == 0) return true;  // F0 cannot be beaten; never reject it
  if (ideal_time_s_ <= 0.0) return true;  // bare matrix: no timing info
  const ClassProfile& c = classes_.at(i);
  if (at(0, i) <= 0.0) return true;
  // Guard on the larger of the observed max and the mean. Profiles with
  // missing max metadata (max == 0) — or a cumulative mean above the
  // per-iteration max — must not admit rungs where demand() finds that
  // even a mean-sized task misses T: for j > 0 the two predicates have
  // to agree, or exhaustive search ranks tuples by the rounds < 1
  // fallback demand of rungs this function was supposed to reject.
  const double critical = std::max(c.max_workload, c.mean_workload);
  if (critical <= 0.0) return true;
  const double slowdown = at(j, i) / at(0, i);  // = effective F0/Fj
  return critical * slowdown <= ideal_time_s_ * (1.0 + 1e-9);
}

double CCTable::demand(std::size_t j, std::size_t i) const {
  const double base = at(j, i);
  if (ideal_time_s_ <= 0.0) return base;
  const ClassProfile& c = classes_.at(i);
  if (c.count == 0 || c.mean_workload <= 0.0 || at(0, i) <= 0.0) {
    return base;
  }
  const double slowdown = at(j, i) / at(0, i);
  const double task_time = c.mean_workload * slowdown;
  const double rounds = std::floor(ideal_time_s_ / task_time + 1e-9);
  if (rounds < 1.0) {
    // Even one mean-sized task misses T. rung_feasible rejects every
    // such rung for j > 0 (it guards on max(max, mean) workload), so
    // the searchers never rank tuples by this value; it remains
    // reachable only at F0 and for callers that skip the filter, where
    // one core per task is the sane answer.
    return std::max(base, static_cast<double>(c.count));
  }
  return std::max(base, static_cast<double>(c.count) / rounds);
}

std::size_t CCTable::cores_needed(std::size_t j, std::size_t i) const {
  const double d = demand(j, i);
  if (d <= 0.0) return 0;
  const auto c = static_cast<std::size_t>(std::ceil(d - 1e-9));
  return c == 0 ? 1 : c;
}

std::string CCTable::to_string() const {
  std::string out = "      ";
  char buf[64];
  for (std::size_t i = 0; i < k_; ++i) {
    std::snprintf(buf, sizeof(buf), " %10s", classes_[i].name.c_str());
    out += buf;
  }
  out += '\n';
  for (std::size_t j = 0; j < r_; ++j) {
    std::snprintf(buf, sizeof(buf), "F%-5zu", j);
    out += buf;
    for (std::size_t i = 0; i < k_; ++i) {
      std::snprintf(buf, sizeof(buf), " %10.3f", at(j, i));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace eewa::core
