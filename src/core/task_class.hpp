// Task classes (paper §III-A-1): completed tasks are grouped by function
// name into TC(f, n, w̄) with an online mean of their normalized workloads.
// Workload normalization is Eq. 1: w = t · F_i / F_0 for a task that ran
// for t seconds on a core at frequency F_i.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dvfs/frequency_ladder.hpp"

namespace eewa::core {

/// Eq. 1: normalize an observed execution time to the fastest frequency.
/// `t_seconds` was measured on a core at ladder rung `rung`.
inline double normalized_workload(double t_seconds, std::size_t rung,
                                  const dvfs::FrequencyLadder& ladder) {
  return t_seconds * ladder.relative_speed(rung);
}

/// Snapshot of one task class for a completed iteration.
struct ClassProfile {
  std::size_t class_id = 0;      ///< stable registry id
  std::string name;              ///< function name f
  std::size_t count = 0;         ///< n: tasks completed this iteration
  double mean_workload = 0.0;    ///< w̄: mean normalized workload (seconds at F0)
  double max_workload = 0.0;     ///< heaviest single task this iteration
  /// Mean memory-stall fraction: the share of a task's execution that
  /// does not scale with frequency, exec(f) = w·(α + (1-α)·F0/f).
  /// 0 = perfectly CPU-bound (the paper's model); estimated online for
  /// the memory-aware planning extension (paper §IV-D future work).
  double mean_alpha = 0.0;

  /// Total normalized work of the class this iteration, n · w̄.
  double total_workload() const {
    return static_cast<double>(count) * mean_workload;
  }
};

/// Interns class names and maintains the per-class online statistics.
///
/// Counts are per-iteration (reset by begin_iteration); the mean workload
/// follows the paper's cumulative update TC(f, n+1, (n·w + w_γ)/(n+1)) so
/// knowledge persists across iterations.
class TaskClassRegistry {
 public:
  /// Get (or create) the stable id for a class name.
  std::size_t intern(std::string_view name);

  /// Id for a name that must already exist; throws std::out_of_range.
  std::size_t id_of(std::string_view name) const;

  /// True if the name has been interned.
  bool contains(std::string_view name) const;

  /// Record one completed task of class `id` with normalized workload
  /// `w` and (optionally) its memory-stall fraction in [0, 1].
  void record(std::size_t id, double w, double alpha = 0.0);

  /// Start a new iteration: zero per-iteration counts, keep means.
  void begin_iteration();

  /// Number of distinct classes ever seen.
  std::size_t class_count() const { return stats_.size(); }

  const std::string& name(std::size_t id) const { return stats_.at(id).name; }

  /// Tasks of class `id` completed in the current iteration.
  std::size_t iteration_count(std::size_t id) const {
    return stats_.at(id).iter_count;
  }

  /// Cumulative tasks of class `id` across all iterations.
  std::size_t total_count(std::size_t id) const {
    return stats_.at(id).total_count;
  }

  /// Cumulative mean normalized workload of class `id`.
  double mean_workload(std::size_t id) const { return stats_.at(id).mean_w; }

  /// Heaviest normalized workload of class `id` this iteration.
  double max_workload(std::size_t id) const { return stats_.at(id).iter_max_w; }

  /// Cumulative mean memory-stall fraction of class `id`.
  double mean_alpha(std::size_t id) const { return stats_.at(id).mean_alpha; }

  /// Profiles of classes active this iteration, sorted by mean workload
  /// descending (the CC-table column order the paper requires).
  std::vector<ClassProfile> iteration_profile() const;

 private:
  struct Stats {
    std::string name;
    std::size_t iter_count = 0;
    std::size_t total_count = 0;
    double mean_w = 0.0;
    double iter_max_w = 0.0;
    double mean_alpha = 0.0;
  };

  // Transparent hashing: lookups probe with the string_view directly
  // instead of materializing a std::string per call (intern() sits under
  // the runtime's by-name spawn path).
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, std::size_t, NameHash, std::equal_to<>>
      ids_;
  std::vector<Stats> stats_;
};

}  // namespace eewa::core
