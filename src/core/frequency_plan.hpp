// Turning a k-tuple into a concrete frequency configuration: carve the m
// cores into c-groups (one per distinct rung in the tuple), allocate task
// classes to their groups, and decide what to do with cores the tuple did
// not claim.
//
// The paper's Fig. 8 shows unclaimed cores running at the lowest ladder
// frequency (SHA-1: 5 cores at 2.5 GHz, 11 at 0.8 GHz), so the default
// leftover policy parks them in a c-group at F_{r-1}; they still steal
// work through the preference lists. JoinSlowest is kept for ablations.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cc_table.hpp"
#include "core/ktuple_search.hpp"
#include "dvfs/cgroup.hpp"
#include "dvfs/frequency_ladder.hpp"

namespace eewa::core {

/// What to do with cores no class claimed.
enum class LeftoverPolicy {
  kParkAtSlowest,  ///< new/merged c-group at the ladder's slowest rung
  kJoinSlowest,    ///< add them to the slowest *selected* c-group
};

/// A complete frequency configuration for one batch.
struct FrequencyPlan {
  /// True when a k-tuple was found and applied; false means the fallback
  /// uniform-F0 configuration is in use.
  bool planned = false;

  /// The c-groups (fastest first) and the class-id → group mapping. The
  /// mapping is indexed by *registry class id* and classes unseen this
  /// iteration map to group 0 (fastest), per the paper's rule for tasks
  /// with no known class.
  dvfs::CGroupLayout layout;

  /// The winning tuple (empty when !planned).
  std::vector<std::size_t> tuple;

  /// Cores claimed by classes (rest were handled by the leftover policy).
  std::size_t claimed_cores = 0;
};

/// Build the plan for `total_cores` cores from a search result.
/// `registry_class_count` sizes the class-id → group mapping (ids not in
/// the CC table map to group 0). If the search failed, returns the
/// uniform-F0 fallback plan.
///
/// Typed tables (cc.topology() != nullptr) carve per core type: tuple
/// entries are flattened (type, rung) rows, each type's cores are carved
/// within its own contiguous core-id range, folds stay inside the type,
/// leftovers of a type park at that type's slowest rung, and a type no
/// class selected parks entirely. `ladder` is ignored on that path. The
/// uniform fallback needs no typed variant: rung 0 is every type's
/// fastest rung, so the all-cores group at freq_index 0 is correct on
/// any topology.
FrequencyPlan make_frequency_plan(const CCTable& cc, const SearchResult& sr,
                                  std::size_t total_cores,
                                  const dvfs::FrequencyLadder& ladder,
                                  std::size_t registry_class_count,
                                  LeftoverPolicy policy =
                                      LeftoverPolicy::kParkAtSlowest);

/// The fallback plan: every core at F_0, every class to group 0.
FrequencyPlan uniform_plan(std::size_t total_cores,
                           std::size_t registry_class_count);

}  // namespace eewa::core
