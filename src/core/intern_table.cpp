#include "core/intern_table.hpp"

namespace eewa::core {

namespace {
constexpr std::size_t kInitialSlots = 16;  // power of two
}  // namespace

InternTable::InternTable() {
  auto snap = std::make_unique<Snapshot>();
  snap->slots.resize(kInitialSlots);
  snap->mask = kInitialSlots - 1;
  snapshot_.store(snap.get(), std::memory_order_release);
  retired_.push_back(std::move(snap));
}

InternTable::~InternTable() = default;

std::uint64_t InternTable::hash_name(std::string_view name) noexcept {
  // FNV-1a; class names are short (function identifiers), so a simple
  // byte hash beats anything with setup cost.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h | 1u;  // never 0: hash 0 would alias the empty-slot marker
}

std::size_t InternTable::find(std::string_view name) const noexcept {
  const std::uint64_t h = hash_name(name);
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  for (std::size_t i = h & snap->mask;; i = (i + 1) & snap->mask) {
    const Entry& e = snap->slots[i];
    if (e.name == nullptr) return npos;  // empty slot ends the probe
    if (e.hash == h && *e.name == name) return e.id;
  }
}

std::size_t InternTable::size() const noexcept {
  return snapshot_.load(std::memory_order_acquire)->count;
}

std::size_t InternTable::insert_locked(std::string_view name,
                                       std::size_t id) {
  const Snapshot* old = snapshot_.load(std::memory_order_relaxed);
  // Rebuild into a fresh snapshot at < 50% load so reader probes stay
  // short; the old snapshot is retired, never mutated, and outlives any
  // reader that loaded it before the publish below.
  std::size_t cap = kInitialSlots;
  while (cap < 2 * (old->count + 1)) cap <<= 1;
  auto next = std::make_unique<Snapshot>();
  next->slots.resize(cap);
  next->mask = cap - 1;
  next->count = old->count + 1;

  names_.push_back(std::make_unique<std::string>(name));
  auto place = [&next](const Entry& e) {
    for (std::size_t i = e.hash & next->mask;; i = (i + 1) & next->mask) {
      if (next->slots[i].name == nullptr) {
        next->slots[i] = e;
        return;
      }
    }
  };
  for (const Entry& e : old->slots) {
    if (e.name != nullptr) place(e);
  }
  place(Entry{hash_name(name), names_.back().get(), id});

  snapshot_.store(next.get(), std::memory_order_release);
  retired_.push_back(std::move(next));
  return id;
}

}  // namespace eewa::core
