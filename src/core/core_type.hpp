// Heterogeneous machine description: a machine is a list of typed core
// groups (big.LITTLE clusters, mixed x86/ARM parts), each with its own
// frequency ladder, per-rung MIPS scale and optional power model.
//
// The planner consumes the topology through its *flattened rows*: every
// (type, rung) pair, sorted by descending effective speed
// (ghz · mips_scale). Row 0 is the globally fastest operating point; all
// workloads are normalized to it, so `row_slowdown(j)` generalizes the
// homogeneous ladder's F0/Fj and the CC table's per-row effective
// slowdown becomes `alpha + (1 - alpha) * row_slowdown(j)`.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dvfs/frequency_ladder.hpp"
#include "energy/power_model.hpp"

namespace eewa::core {

/// One homogeneous cluster of cores inside a heterogeneous machine.
struct CoreType {
  std::string name;
  dvfs::FrequencyLadder ladder = dvfs::FrequencyLadder({1.0});
  /// Per-rung throughput multiplier relative to a 1-GHz reference core
  /// (parallel to the ladder). Effective speed at rung j is
  /// `ladder.ghz(j) * mips_scale[j]`; a LITTLE core with mips_scale < 1
  /// does less work per cycle than a big core at the same frequency.
  std::vector<double> mips_scale;
  /// Optional per-core power model (ladder-parallel). Either every type
  /// in a topology has one or none does.
  std::shared_ptr<const energy::PowerModel> model;
  /// Number of cores of this type in the machine.
  std::size_t count = 0;
};

/// An immutable machine made of typed core groups. Core ids are
/// contiguous per type, in declaration order: type 0 owns
/// [0, count_0), type 1 owns [count_0, count_0 + count_1), and so on.
class MachineTopology {
 public:
  /// Validates and flattens. Throws std::invalid_argument when: there
  /// are no types; a type has zero cores, an empty/mismatched
  /// mips_scale, or a non-positive scale; a type's effective speed is
  /// not strictly decreasing across its rungs; some types carry power
  /// models and others do not; or a model's ladder size differs from
  /// its type's.
  explicit MachineTopology(std::vector<CoreType> types);

  std::size_t type_count() const { return types_.size(); }
  const CoreType& type(std::size_t t) const { return types_.at(t); }
  std::size_t total_cores() const { return total_cores_; }

  /// Type owning core id `core`.
  std::size_t type_of_core(std::size_t core) const;

  /// First core id of type t (cores of a type are contiguous).
  std::size_t first_core(std::size_t t) const { return first_core_.at(t); }

  // ---- Flattened (type, rung) rows, descending effective speed ----

  /// Number of rows = Σ_t ladder_t.size().
  std::size_t row_count() const { return row_type_.size(); }
  std::size_t row_type(std::size_t row) const { return row_type_.at(row); }
  std::size_t row_rung(std::size_t row) const { return row_rung_.at(row); }

  /// Effective speed of a row: ghz(rung) · mips_scale[rung].
  double row_speed(std::size_t row) const { return row_speed_.at(row); }

  /// Generalized F0/Fj: row_speed(0) / row_speed(row) (>= 1).
  double row_slowdown(std::size_t row) const {
    return row_speed_.front() / row_speed_.at(row);
  }

  /// Flattened row of (type t, rung j).
  std::size_t row_of(std::size_t t, std::size_t rung) const;

  /// Row of type t's slowest rung (its largest row index).
  std::size_t slowest_row_of_type(std::size_t t) const;

  /// Slowdown of core `core` running at its type's rung `rung`,
  /// relative to the globally fastest row.
  double core_slowdown(std::size_t core, std::size_t rung) const {
    return row_slowdown(row_of(type_of_core(core), rung));
  }

  /// Relative speed of core `core` at rung `rung` vs the fastest row.
  double core_relative_speed(std::size_t core, std::size_t rung) const {
    return 1.0 / core_slowdown(core, rung);
  }

  /// Largest per-type ladder size.
  std::size_t max_rungs() const;

  /// True when every type has the same number of rungs (required by
  /// sim::Machine, whose per-core rung state is ladder-indexed).
  bool uniform_rung_count() const;

  /// True when every type carries a power model (all-or-none invariant).
  bool has_power_models() const { return types_.front().model != nullptr; }

  /// Active power of one core on `row`. With models: the type model's
  /// core_power_w(rung, true). Without: a cubic proxy
  /// (row_speed(row)/row_speed(0))^3 in arbitrary units — same family
  /// as the homogeneous search proxy, comparable across types only
  /// through the shared speed reference.
  double row_active_w(std::size_t row) const;

  /// Idle (halted) power of one core on `row`; proxy topologies fall
  /// back to active power (spinning, as the homogeneous proxy assumes).
  double row_idle_w(std::size_t row) const;

  /// Power of a leftover core parked on `row`: idle when models exist,
  /// active (spinning) under the proxy.
  double row_park_w(std::size_t row) const {
    return has_power_models() ? row_idle_w(row) : row_active_w(row);
  }

  /// "big.LITTLE[4+4]: big 4x[2.5, 1.8, 1.3, 0.8] GHz ..." summary.
  std::string to_string() const;

  /// 4 Opteron-class big cores (the paper's ladder + server power
  /// model) plus 4 LITTLE cores on a lower ladder with mips_scale 0.6
  /// and an embedded-class power model. Uniform 4-rung ladders, so it
  /// drops straight into sim::Machine.
  static MachineTopology big_little();

  /// Homogeneous topology wrapping one type (mips_scale = 1) — the
  /// degenerate case the typed planner must agree with build() on.
  static MachineTopology homogeneous(std::string name,
                                     dvfs::FrequencyLadder ladder,
                                     std::size_t cores,
                                     std::shared_ptr<const energy::PowerModel>
                                         model = nullptr);

 private:
  std::vector<CoreType> types_;
  std::vector<std::size_t> first_core_;
  std::size_t total_cores_ = 0;
  std::vector<std::size_t> row_type_;
  std::vector<std::size_t> row_rung_;
  std::vector<double> row_speed_;
  // row_of_[t][j] = flattened row of (t, j).
  std::vector<std::vector<std::size_t>> row_of_;
};

}  // namespace eewa::core
