#include "core/preference_list.hpp"

#include <stdexcept>

namespace eewa::core {

std::vector<std::size_t> preference_list(std::size_t own, std::size_t u) {
  if (own >= u) {
    throw std::invalid_argument("preference_list: group out of range");
  }
  std::vector<std::size_t> order;
  order.reserve(u);
  for (std::size_t g = own; g < u; ++g) order.push_back(g);
  for (std::size_t g = own; g-- > 0;) order.push_back(g);
  return order;
}

PreferenceTable::PreferenceTable(const dvfs::CGroupLayout& layout) {
  const std::size_t u = layout.group_count();
  lists_.reserve(u);
  for (std::size_t g = 0; g < u; ++g) {
    lists_.push_back(preference_list(g, u));
  }
}

}  // namespace eewa::core
