// WATS-style class allocation (Chen et al., IPDPS'12): given per-class
// workload profiles ranked heaviest-first and fixed core groups ranked
// fastest-first, pack classes into groups proportionally to each group's
// computational capacity so heavy classes land on fast cores. Shared by
// the simulator's WatsPolicy and the real runtime's kWats mode.
#pragma once

#include <cstddef>
#include <vector>

#include "core/task_class.hpp"

namespace eewa::core {

/// `profile` must be sorted by descending mean workload (the
/// TaskClassRegistry::iteration_profile() order); `group_capacity[g]` is
/// the relative compute capacity of group g (e.g. core count × relative
/// speed), fastest group first. Returns a class-id → group mapping sized
/// `registry_class_count` (classes absent from the profile map to group
/// 0).
std::vector<std::size_t> allocate_classes_proportional(
    const std::vector<ClassProfile>& profile,
    const std::vector<double>& group_capacity,
    std::size_t registry_class_count);

}  // namespace eewa::core
