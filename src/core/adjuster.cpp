#include "core/adjuster.hpp"

#include <algorithm>
#include <stdexcept>

namespace eewa::core {

Adjuster::Adjuster(dvfs::FrequencyLadder ladder, std::size_t total_cores,
                   AdjusterOptions options)
    : ladder_(std::move(ladder)), total_cores_(total_cores),
      options_(options) {
  if (total_cores_ == 0) {
    throw std::invalid_argument("Adjuster: need at least one core");
  }
  if (options_.topology != nullptr &&
      options_.topology->total_cores() != total_cores_) {
    throw std::invalid_argument(
        "Adjuster: topology core count does not match total_cores");
  }
}

Adjustment Adjuster::adjust(std::vector<ClassProfile> classes,
                            std::size_t registry_class_count,
                            double ideal_time_s) const {
  Adjustment out;
  if (classes.empty() || ideal_time_s <= 0.0) {
    out.plan = uniform_plan(total_cores_, registry_class_count);
    return out;
  }
  out.attempted = true;
  const double margin = std::clamp(options_.time_margin, 0.0, 0.9);
  out.cc = options_.topology != nullptr
               ? CCTable::build_typed(std::move(classes), *options_.topology,
                                      ideal_time_s * (1.0 - margin),
                                      options_.memory_aware)
               : CCTable::build(std::move(classes), ladder_,
                                ideal_time_s * (1.0 - margin),
                                options_.memory_aware);
  out.search =
      search_ktuple(out.cc, total_cores_, options_.search, options_.model);
  out.plan = make_frequency_plan(out.cc, out.search, total_cores_, ladder_,
                                 registry_class_count, options_.leftover);
  return out;
}

Adjustment Adjuster::adjust_incremental(
    std::vector<ClassProfile> classes, std::size_t registry_class_count,
    double ideal_time_s,
    const std::vector<std::size_t>& prefix_rungs) const {
  Adjustment out;
  if (classes.empty() || ideal_time_s <= 0.0) {
    out.plan = uniform_plan(total_cores_, registry_class_count);
    return out;
  }
  out.attempted = true;
  const double margin = std::clamp(options_.time_margin, 0.0, 0.9);
  out.cc = options_.topology != nullptr
               ? CCTable::build_typed(std::move(classes), *options_.topology,
                                      ideal_time_s * (1.0 - margin),
                                      options_.memory_aware)
               : CCTable::build(std::move(classes), ladder_,
                                ideal_time_s * (1.0 - margin),
                                options_.memory_aware);
  if (!prefix_rungs.empty() && prefix_rungs.size() <= out.cc.cols()) {
    out.search = search_suffix(out.cc, total_cores_, options_.search,
                               prefix_rungs, options_.model);
    out.incremental = out.search.found;
  }
  if (!out.incremental) {
    // The kept prefix no longer fits the fresh table (a workload spike
    // broke its rung feasibility or capacity) — search from scratch.
    out.search = search_ktuple(out.cc, total_cores_, options_.search,
                               options_.model);
  }
  out.plan = make_frequency_plan(out.cc, out.search, total_cores_, ladder_,
                                 registry_class_count, options_.leftover);
  return out;
}

}  // namespace eewa::core
