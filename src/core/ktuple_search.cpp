#include "core/ktuple_search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

namespace eewa::core {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

constexpr double kEps = 1e-9;

/// Power of one active core at rung j under the model or a cubic proxy
/// (P ∝ f·V² with V roughly ∝ f). Without a model the slowdown F_0/F_j
/// is recovered from the CC table itself. A single column is not
/// enough: it may be zero (idle class) and, with per-class memory-aware
/// alphas, CC[j][i]/CC[0][i] = α_i + (1-α_i)·F_0/F_j understates the
/// true slowdown for any α_i > 0. Scan every usable column and keep the
/// largest ratio — the least memory-bound class, the tightest lower
/// bound on the true F_0/F_j.
double rung_power(const CCTable& cc, std::size_t j,
                  const energy::PowerModel* model) {
  // Typed tables carry their own per-type power models (or proxy) inside
  // the topology; a caller-supplied homogeneous model cannot price rows
  // of different core types and is ignored.
  if (const MachineTopology* topo = cc.topology()) {
    return topo->row_active_w(j);
  }
  if (model != nullptr) return model->core_power_w(j, /*active=*/true);
  double slowdown = 0.0;
  for (std::size_t i = 0; i < cc.cols(); ++i) {
    if (cc.at(j, i) > 0.0 && cc.at(0, i) > 0.0) {
      slowdown = std::max(slowdown, cc.at(j, i) / cc.at(0, i));
    }
  }
  const double rel = slowdown > 0.0
                         ? 1.0 / slowdown
                         : 1.0 / (1.0 + static_cast<double>(j));
  return rel * rel * rel;
}

/// Power of one leftover (unassigned) core parked at rung j. With a model
/// these cores sit idle/halted, exactly as EnergyAccount bills them; the
/// proxy path keeps the cubic active estimate (it has no idle curve).
double leftover_power(const CCTable& cc, std::size_t j,
                      const energy::PowerModel* model) {
  if (model != nullptr) return model->core_power_w(j, /*active=*/false);
  return rung_power(cc, j, nullptr);
}

}  // namespace

double proxy_rung_power(const CCTable& cc, std::size_t j) {
  return rung_power(cc, j, nullptr);
}

double tuple_energy_estimate(const CCTable& cc,
                             const std::vector<std::size_t>& tuple,
                             std::size_t total_cores,
                             const energy::PowerModel* model) {
  if (const MachineTopology* topo = cc.topology()) {
    // Typed tables: leftovers park per type, each at its own type's
    // slowest rung — a LITTLE core cannot be parked on the big cluster's
    // ladder. Accumulation order (classes, then types, ascending) is a
    // contract: the pruned searcher's final evaluation reproduces it
    // bit for bit.
    const std::size_t nt = topo->type_count();
    std::vector<long double> used_t(nt, 0.0L);
    long double e = 0.0L;
    for (std::size_t i = 0; i < tuple.size(); ++i) {
      const double n = cc.demand(tuple[i], i);
      used_t[topo->row_type(tuple[i])] += n;
      e += static_cast<long double>(n) * topo->row_active_w(tuple[i]);
    }
    for (std::size_t t = 0; t < nt; ++t) {
      const auto cnt = static_cast<long double>(topo->type(t).count);
      if (cnt > used_t[t]) {
        e += (cnt - used_t[t]) *
             static_cast<long double>(
                 topo->row_park_w(topo->slowest_row_of_type(t)));
      }
    }
    return static_cast<double>(e);
  }
  // Widened accumulators: at k=256 a plain double running sum makes the
  // result depend on column order at the 1e-16 scale, which is enough to
  // flip the 1e-9 tie window between otherwise identical searches.
  long double used = 0.0L;
  long double e = 0.0L;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    const double n = cc.demand(tuple[i], i);
    used += n;
    e += static_cast<long double>(n) * rung_power(cc, tuple[i], model);
  }
  const long double leftovers =
      static_cast<long double>(total_cores) > used
          ? static_cast<long double>(total_cores) - used
          : 0.0L;
  const std::size_t slowest = cc.rows() - 1;
  e += leftovers * leftover_power(cc, slowest, model);
  return static_cast<double>(e);
}

bool tuple_is_valid(const CCTable& cc, const std::vector<std::size_t>& tuple,
                    std::size_t total_cores) {
  if (tuple.size() != cc.cols()) return false;
  const MachineTopology* topo = cc.topology();
  std::vector<long double> used_t(topo != nullptr ? topo->type_count() : 0,
                                  0.0L);
  long double used = 0.0L;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i] >= cc.rows()) return false;
    if (i > 0 && tuple[i] < tuple[i - 1]) return false;
    if (!cc.rung_feasible(tuple[i], i)) return false;
    const double need = cc.demand(tuple[i], i);
    used += need;
    if (topo != nullptr) used_t[topo->row_type(tuple[i])] += need;
  }
  if (topo != nullptr) {
    // Rows of a typed table draw from per-type core pools; the total
    // budget alone would let a tuple stack every class on one cluster.
    for (std::size_t t = 0; t < used_t.size(); ++t) {
      if (used_t[t] >
          static_cast<long double>(topo->type(t).count) + kEps) {
        return false;
      }
    }
  }
  return used <= static_cast<long double>(total_cores) + kEps;
}

namespace {

/// Shared state for the recursive searchers (Algorithm 1's a[], c_n).
/// Capacity is accounted in fractional core demands, as the paper's
/// Σ CC[a_i][i] <= m constraint does.
struct Backtracker {
  const CCTable& cc;
  double total_cores;
  bool allow_backtrack;
  std::vector<std::size_t> a;
  // Widened: c_n is repeatedly incremented and decremented along the
  // descent; at k=256 double round-off would accumulate into the 1e-9
  // capacity epsilon.
  long double c_n = 0.0L;
  std::size_t nodes = 0;
  std::size_t node_budget = 0;  ///< 0 = unlimited
  bool aborted = false;
  // Suffix mode: classes [0, start_class) are pinned (already in `a`,
  // their demand in c_n) and the descent begins at start_class with
  // rungs >= lo0.
  std::size_t start_class = 0;
  std::size_t lo0 = 0;
  // Typed tables: per-type fractional usage against per-type capacity
  // (rows of a typed table draw from distinct core pools).
  const MachineTopology* topo = nullptr;
  std::vector<long double> tused;

  Backtracker(const CCTable& cc_in, std::size_t m, bool backtrack)
      : cc(cc_in),
        total_cores(static_cast<double>(m)),
        allow_backtrack(backtrack),
        a(cc_in.cols(), 0),
        topo(cc_in.topology()) {
    if (topo != nullptr) tused.assign(topo->type_count(), 0.0L);
  }

  // Algorithm 1, Select(i, j), plus the critical-path guard: a rung at
  // which even one of the class's tasks would overrun T is rejected.
  bool select(std::size_t i, std::size_t j) {
    if (node_budget != 0 && nodes >= node_budget) {
      aborted = true;
      return false;
    }
    ++nodes;
    if (!cc.rung_feasible(j, i)) return false;
    const double need = cc.demand(j, i);
    if (need + c_n > total_cores + kEps) return false;
    if (topo != nullptr) {
      const std::size_t t = topo->row_type(j);
      if (need + tused[t] >
          static_cast<long double>(topo->type(t).count) + kEps) {
        return false;
      }
      tused[t] += need;
    }
    a[i] = j;
    c_n += need;
    return true;
  }

  // Algorithm 1, SearchTuple(i).
  bool search(std::size_t i) {
    if (i >= cc.cols()) return true;
    const std::size_t lo = i == start_class ? lo0 : a[i - 1];
    for (std::size_t j = cc.rows(); j-- > lo;) {
      if (select(i, j)) {
        if (search(i + 1)) return true;
        const double need = cc.demand(a[i], i);
        c_n -= need;
        if (topo != nullptr) tused[topo->row_type(a[i])] -= need;
        if (!allow_backtrack) return false;
      }
      if (aborted) return false;
      if (j == lo) break;  // size_t guard for the descending loop
    }
    return false;
  }
};

/// A validated prefix's resource usage: total fractional demand plus,
/// for typed tables, the per-type split.
struct PrefixUse {
  long double total = 0.0L;
  std::vector<long double> per_type;  // empty for homogeneous tables
};

/// Shared prefix audit for the suffix searchers: rungs in range,
/// nondecreasing, individually feasible, within capacity (total and,
/// for typed tables, per type). Returns the prefix's demand, or nullopt
/// when the prefix cannot stand under `cc`.
std::optional<PrefixUse> prefix_demand(
    const CCTable& cc, std::size_t total_cores,
    const std::vector<std::size_t>& prefix) {
  if (prefix.size() > cc.cols()) return std::nullopt;
  const MachineTopology* topo = cc.topology();
  PrefixUse use;
  if (topo != nullptr) use.per_type.assign(topo->type_count(), 0.0L);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i] >= cc.rows()) return std::nullopt;
    if (i > 0 && prefix[i] < prefix[i - 1]) return std::nullopt;
    if (!cc.rung_feasible(prefix[i], i)) return std::nullopt;
    const double need = cc.demand(prefix[i], i);
    use.total += need;
    if (topo != nullptr) use.per_type[topo->row_type(prefix[i])] += need;
  }
  if (use.total > static_cast<long double>(total_cores) + kEps) {
    return std::nullopt;
  }
  if (topo != nullptr) {
    for (std::size_t t = 0; t < use.per_type.size(); ++t) {
      if (use.per_type[t] >
          static_cast<long double>(topo->type(t).count) + kEps) {
        return std::nullopt;
      }
    }
  }
  return use;
}

SearchResult run_descent(const CCTable& cc, std::size_t total_cores,
                         bool allow_backtrack,
                         const std::vector<std::size_t>* prefix = nullptr,
                         std::size_t node_budget = 0) {
  const auto start = Clock::now();
  Backtracker bt(cc, total_cores, allow_backtrack);
  bt.node_budget = node_budget;
  SearchResult res;
  if (prefix != nullptr) {
    const auto used0 = prefix_demand(cc, total_cores, *prefix);
    if (!used0) {
      res.elapsed_us = elapsed_us_since(start);
      return res;
    }
    std::copy(prefix->begin(), prefix->end(), bt.a.begin());
    bt.c_n = used0->total;
    if (bt.topo != nullptr) bt.tused = used0->per_type;
    bt.start_class = prefix->size();
    bt.lo0 = prefix->empty() ? 0 : prefix->back();
  }
  res.found = bt.search(bt.start_class);
  res.nodes_visited = bt.nodes;
  res.aborted = bt.aborted;
  if (res.found) {
    res.tuple = bt.a;
    res.cores_used = static_cast<std::size_t>(
        std::ceil(static_cast<double>(bt.c_n) - kEps));
  }
  res.elapsed_us = elapsed_us_since(start);
  return res;
}

}  // namespace

SearchResult search_backtracking(const CCTable& cc, std::size_t total_cores,
                                 std::size_t node_budget) {
  return run_descent(cc, total_cores, /*allow_backtrack=*/true, nullptr,
                     node_budget);
}

SearchResult search_greedy(const CCTable& cc, std::size_t total_cores) {
  return run_descent(cc, total_cores, /*allow_backtrack=*/false);
}

namespace {

SearchResult exhaustive_core(const CCTable& cc, std::size_t total_cores,
                             const energy::PowerModel* model,
                             const std::vector<std::size_t>* prefix) {
  const auto start = Clock::now();
  SearchResult best;
  double best_e = std::numeric_limits<double>::infinity();
  double best_used = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> a(cc.cols(), 0);
  std::size_t nodes = 0;
  const MachineTopology* topo = cc.topology();
  std::vector<long double> tused(topo != nullptr ? topo->type_count() : 0,
                                 0.0L);

  std::size_t i0 = 0;
  std::size_t lo_init = 0;
  long double used0 = 0.0L;
  if (prefix != nullptr) {
    const auto pd = prefix_demand(cc, total_cores, *prefix);
    if (!pd) {
      best.elapsed_us = elapsed_us_since(start);
      return best;
    }
    std::copy(prefix->begin(), prefix->end(), a.begin());
    i0 = prefix->size();
    lo_init = prefix->empty() ? 0 : prefix->back();
    used0 = pd->total;
    if (topo != nullptr) tused = pd->per_type;
  }

  // Enumerate all nondecreasing tuples; prune on capacity as we go.
  // Ties on energy break deterministically — fewest cores, then the
  // lexicographically greater (slower) tuple — so differential runs
  // reproduce the same winner regardless of enumeration quirks.
  auto rec = [&](auto&& self, std::size_t i, std::size_t lo,
                 long double used) -> void {
    if (i == cc.cols()) {
      const double e = tuple_energy_estimate(cc, a, total_cores, model);
      const double used_d = static_cast<double>(used);
      bool better = e < best_e - kEps;
      if (!better && e <= best_e + kEps) {
        if (used_d < best_used - kEps) {
          better = true;
        } else if (used_d <= best_used + kEps) {
          better = best.found && a > best.tuple;
        }
      }
      if (better) {
        best_e = std::min(best_e, e);
        best_used = used_d;
        best.found = true;
        best.tuple = a;
        best.cores_used =
            static_cast<std::size_t>(std::ceil(used_d - kEps));
      }
      return;
    }
    for (std::size_t j = lo; j < cc.rows(); ++j) {
      ++nodes;
      if (!cc.rung_feasible(j, i)) continue;
      const double need = cc.demand(j, i);
      if (used + need > static_cast<long double>(total_cores) + kEps) {
        continue;
      }
      if (topo != nullptr) {
        const std::size_t t = topo->row_type(j);
        if (tused[t] + need >
            static_cast<long double>(topo->type(t).count) + kEps) {
          continue;
        }
        a[i] = j;
        tused[t] += need;
        self(self, i + 1, j, used + need);
        tused[t] -= need;
        continue;
      }
      a[i] = j;
      self(self, i + 1, j, used + need);
    }
  };
  rec(rec, i0, lo_init, used0);

  best.nodes_visited = nodes;
  best.elapsed_us = elapsed_us_since(start);
  return best;
}

/// The pruned searcher's DP state: a partial tuple summarized by its
/// fractional core usage, its adjusted energy, and the arena node from
/// which the actual rung assignment can be reconstructed.
struct PrunedState {
  long double used = 0.0L;
  long double cost = 0.0L;
  std::uint32_t node = 0;
};

constexpr std::uint32_t kNoNode = 0xffffffffu;

/// Parent-pointer arena entry: one (rung chosen, predecessor) link.
struct PrunedNode {
  std::uint32_t parent = kNoNode;
  std::uint32_t rung = 0;
};

SearchResult pruned_typed_core(const CCTable& cc, std::size_t total_cores,
                               const std::vector<std::size_t>* prefix);

SearchResult pruned_core(const CCTable& cc, std::size_t total_cores,
                         const energy::PowerModel* model,
                         const std::vector<std::size_t>* prefix) {
  if (cc.topology() != nullptr) {
    // Typed tables need multi-dimensional (per-type) capacity state; the
    // homogeneous DP below stays untouched so its results are bit-stable.
    return pruned_typed_core(cc, total_cores, prefix);
  }
  const auto start = Clock::now();
  SearchResult res;
  const std::size_t r = cc.rows();
  const std::size_t k = cc.cols();
  const long double cap = static_cast<long double>(total_cores);
  const long double inf = std::numeric_limits<long double>::infinity();

  std::size_t kp = 0;
  std::size_t j0 = 0;
  long double used0 = 0.0L;
  if (prefix != nullptr) {
    const auto pd = prefix_demand(cc, total_cores, *prefix);
    if (!pd) {
      res.elapsed_us = elapsed_us_since(start);
      return res;
    }
    kp = prefix->size();
    j0 = prefix->empty() ? 0 : prefix->back();
    used0 = pd->total;
  }

  // Precompute per-rung powers and the per-(class, rung) demand/cost
  // tables once: rung_power's proxy path scans every column, so calling
  // it inside the sweep would cost O(k) per extension.
  const double p_left = leftover_power(cc, r - 1, model);
  std::vector<double> p(r);
  for (std::size_t j = 0; j < r; ++j) p[j] = rung_power(cc, j, model);

  // The energy of a full tuple decomposes as
  //   E = m·p_left + Σ_i d_i(a_i)·(p(a_i) - p_left)       (feasible Σd <= m)
  // so the DP minimizes the per-class adjusted cost d·(p - p_left); the
  // constant m·p_left drops out of every comparison.
  std::vector<char> feas(k * r, 0);
  std::vector<double> dem(k * r, 0.0);
  std::vector<long double> cost(k * r, 0.0L);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      if (!cc.rung_feasible(j, i)) continue;
      feas[i * r + j] = 1;
      dem[i * r + j] = cc.demand(j, i);
      cost[i * r + j] = static_cast<long double>(dem[i * r + j]) *
                        (static_cast<long double>(p[j]) - p_left);
    }
  }

  // Admissible suffix lower bounds. bestC/bestD relax the chain
  // constraint to "rung >= j" per class independently (the energy curve
  // d·(p - p_left) is evaluated rung by rung, so convexity is not even
  // needed — the pointwise minimum is exact for the relaxation); lbC/lbD
  // suffix-sum them so lb[i][j] bounds any completion of classes [i, k)
  // at rungs >= j from below.
  std::vector<long double> lbC((k + 1) * r, 0.0L);
  std::vector<long double> lbD((k + 1) * r, 0.0L);
  for (std::size_t i = k; i-- > kp;) {
    long double bc = inf;
    long double bd = inf;
    for (std::size_t j = r; j-- > 0;) {
      if (feas[i * r + j]) {
        bc = std::min(bc, cost[i * r + j]);
        bd = std::min(bd, static_cast<long double>(dem[i * r + j]));
      }
      lbC[i * r + j] = bc + lbC[(i + 1) * r + j];
      lbD[i * r + j] = bd + lbD[(i + 1) * r + j];
    }
  }

  // Incumbent: Algorithm 1's backtracking descent primes the bound. Its
  // solution is feasible, so the optimum's adjusted cost cannot exceed
  // the incumbent's; anything provably above it (outside the tie
  // window) is dead. Budgeted: adversarial tables make the descent
  // exponential; the DP is complete on its own, an aborted incumbent
  // only weakens the pruning.
  long double ub = inf;
  const auto seed = run_descent(cc, total_cores, /*allow_backtrack=*/true,
                                prefix, kIncumbentNodeBudget);
  res.nodes_visited += seed.nodes_visited;
  res.aborted = seed.aborted;
  if (seed.found) {
    long double c = 0.0L;
    for (std::size_t i = kp; i < k; ++i) {
      c += cost[i * r + seed.tuple[i]];
    }
    ub = c;
  }

  std::vector<PrunedNode> arena;
  arena.reserve(1024);
  std::vector<std::size_t> scratch_a;
  std::vector<std::size_t> scratch_b;

  // Reconstruct the suffix rungs of a state into `out` (indices kp..k
  // of the eventual tuple, most recent class last). `depth` is how many
  // classes the chain covers.
  const auto reconstruct = [&](std::uint32_t node, std::size_t depth,
                               std::vector<std::size_t>& out) {
    out.assign(depth, 0);
    std::size_t at = depth;
    for (std::uint32_t n = node; n != kNoNode; n = arena[n].parent) {
      out[--at] = arena[n].rung;
    }
  };

  // True when the chain ending at `na` is lexicographically greater than
  // the one at `nb` (both cover `depth` classes). Only consulted on
  // exact (used, cost) ties, where the documented tie-break wants the
  // slower prefix kept: equal prefixes share their completion set, so
  // the lex-greater prefix yields the lex-greater final tuple.
  const auto lex_greater = [&](std::uint32_t na, std::uint32_t nb,
                               std::size_t depth) {
    reconstruct(na, depth, scratch_a);
    reconstruct(nb, depth, scratch_b);
    return scratch_a > scratch_b;
  };

  // Insert into a frontier kept sorted by used ascending / cost strictly
  // descending (a proper Pareto front). A state no cheaper on both axes
  // than an existing one is dropped; on an exact (used, cost) tie the
  // lex-greater chain survives, matching the documented tie-break.
  const auto pareto_insert = [&](std::vector<PrunedState>& front,
                                 const PrunedState& s, std::size_t depth) {
    auto it = std::lower_bound(
        front.begin(), front.end(), s,
        [](const PrunedState& a, const PrunedState& b) {
          return a.used < b.used;
        });
    if (it != front.begin() && (it - 1)->cost <= s.cost) {
      return;  // dominated by a strictly-fewer-cores state
    }
    if (it != front.end() && it->used == s.used) {
      if (it->cost < s.cost) return;  // dominated at equal cores
      if (it->cost == s.cost) {
        if (lex_greater(s.node, it->node, depth)) it->node = s.node;
        return;
      }
      *it = s;  // s dominates the equal-cores entry in place
    } else {
      it = front.insert(it, s);
    }
    // Drop the following entries s now dominates (more cores, no less
    // cost). Exact-cost twins at higher used lose the fewest-cores tie.
    auto tail = it + 1;
    auto last = tail;
    while (last != front.end() && last->cost >= s.cost) ++last;
    front.erase(tail, last);
  };

  // Worst-case width guardrail: degenerate tables can make a frontier's
  // true Pareto front exponentially wide. Fronts past cap_w·2 are
  // thinned to an evenly-spaced cap_w-subset keeping both endpoints —
  // the min-demand end preserves exact feasibility, the min-cost end the
  // cheapest-energy candidate; the optimal chain between them can only
  // be lost on tables far beyond the exhaustive gate (the full-width cap
  // cannot bind at r·k <= 25, whose fronts stay tiny).
  constexpr std::size_t kFrontierCap = 64;
  const auto thin = [](std::vector<PrunedState>& front, std::size_t cap_w) {
    if (front.size() <= 2 * cap_w) return;
    // In place: slot t reads from an index >= t, so writing front-to-back
    // never clobbers an unread source.
    const std::size_t n = front.size();
    for (std::size_t t = 0; t < cap_w; ++t) {
      front[t] = front[t * (n - 1) / (cap_w - 1)];
    }
    front.resize(cap_w);
  };

  std::size_t nodes = res.nodes_visited;

  // One sweep over the lattice at frontier width `cap_w`, pruning
  // against the adjusted-cost upper bound `bound`. Returns the final
  // frontiers indexed by last rung (only rungs >= j0 are reachable).
  const auto sweep = [&](std::size_t cap_w, long double bound) {
    std::vector<std::vector<PrunedState>> cur(r), nxt(r);
    cur[j0].push_back(PrunedState{used0, 0.0L, kNoNode});
    std::vector<PrunedState> acc;
    for (std::size_t i = kp; i < k; ++i) {
      acc.clear();
      const std::size_t depth = i + 1 - kp;
      for (std::size_t j = j0; j < r; ++j) {
        // All states ending at rungs <= j are extendable at rung j; once
        // extended they all end at j, so merging them into one running
        // Pareto accumulator is exact.
        for (const auto& s : cur[j]) pareto_insert(acc, s, depth - 1);
        thin(acc, cap_w);
        nxt[j].clear();
        if (!feas[i * r + j]) continue;
        const long double dij = dem[i * r + j];
        const long double cij = cost[i * r + j];
        const long double lb_d = lbD[(i + 1) * r + j];
        const long double lb_c = lbC[(i + 1) * r + j];
        for (const auto& s : acc) {
          ++nodes;
          const long double u = s.used + dij;
          if (u + lb_d > cap + kEps) continue;  // cannot fit even optimistically
          const long double c = s.cost + cij;
          if (c + lb_c > bound + 2 * kEps) continue;  // outside the tie window
          const auto node = static_cast<std::uint32_t>(arena.size());
          arena.push_back(PrunedNode{s.node, static_cast<std::uint32_t>(j)});
          pareto_insert(nxt[j], PrunedState{u, c, node}, depth);
        }
        thin(nxt[j], cap_w);
      }
      cur.swap(nxt);
    }
    return cur;
  };

  // Pilot pass: a scalar two-chain beam over the same lattice — per last
  // rung only the minimum-demand and minimum-cost chains survive, plain
  // scalars with no frontier machinery, so the whole pass is O(k·r)
  // arithmetic. The min-demand chain is an exact DP (the true
  // minimum-demand chain is preserved — the same argument that makes
  // frontier thinning feasibility-safe), so the pilot completes whenever
  // the table is feasible and its completion cost is a valid — usually
  // tight — upper bound that collapses the main pass's frontiers to the
  // near-optimal band. Without it, a table whose incumbent descent
  // aborted would run the main pass against ub = inf and visit orders of
  // magnitude more states.
  std::vector<PrunedState> pilot_done;
  {
    const PrunedState none{inf, inf, kNoNode};
    std::vector<PrunedState> curU(r, none), curC(r, none);
    std::vector<PrunedState> nxtU(r, none), nxtC(r, none);
    curU[j0] = curC[j0] = PrunedState{used0, 0.0L, kNoNode};
    for (std::size_t i = kp; i < k; ++i) {
      PrunedState accU = none;  // min used over chains ending at rungs <= j
      PrunedState accC = none;  // min cost over the same set
      for (std::size_t j = j0; j < r; ++j) {
        if (curU[j].used < accU.used) accU = curU[j];
        if (curC[j].used < accU.used) accU = curC[j];
        if (curC[j].cost < accC.cost) accC = curC[j];
        if (curU[j].cost < accC.cost) accC = curU[j];
        nxtU[j] = nxtC[j] = none;
        if (!feas[i * r + j]) continue;
        const long double dij = dem[i * r + j];
        const long double cij = cost[i * r + j];
        const long double lb_d = lbD[(i + 1) * r + j];
        if (accU.used < inf && accU.used + dij + lb_d <= cap + kEps) {
          const auto node = static_cast<std::uint32_t>(arena.size());
          arena.push_back(
              PrunedNode{accU.node, static_cast<std::uint32_t>(j)});
          nxtU[j] = PrunedState{accU.used + dij, accU.cost + cij, node};
        }
        if (accC.used < inf && accC.used + dij + lb_d <= cap + kEps) {
          const auto node = static_cast<std::uint32_t>(arena.size());
          arena.push_back(
              PrunedNode{accC.node, static_cast<std::uint32_t>(j)});
          nxtC[j] = PrunedState{accC.used + dij, accC.cost + cij, node};
        }
      }
      curU.swap(nxtU);
      curC.swap(nxtC);
    }
    for (std::size_t j = j0; j < r; ++j) {
      if (curU[j].used < inf) {
        ub = std::min(ub, curU[j].cost);
        pilot_done.push_back(curU[j]);
      }
      if (curC[j].used < inf) {
        ub = std::min(ub, curC[j].cost);
        pilot_done.push_back(curC[j]);
      }
    }
  }
  // Main-pass width: full (never binds at r·k <= 25, where exhaustive
  // equality is the contract; past that, natural fronts stay narrow up
  // to a few hundred lattice cells) in the exactness regime, a narrow
  // beam at production scale where the contract is feasibility
  // exactness, determinism and never-worse-than-backtracking — there the
  // sweep must fit a sub-millisecond plan budget (docs/performance.md).
  const std::size_t main_cap = (r - j0) * (k - kp) <= 256 ? kFrontierCap : 6;
  const auto cur = sweep(main_cap, ub);

  // Final selection: evaluate the surviving completions with the exact
  // energy estimator and the exhaustive searcher's tie-break, so the two
  // searchers agree on the winner. The evaluation reuses the precomputed
  // p[]/dem[] tables but accumulates in the same order and width as
  // tuple_energy_estimate, so the result is bit-identical to it —
  // calling the estimator here would cost O(k^2) per candidate (the
  // modelless rung_power scans every column).
  const auto eval_energy = [&](const std::vector<std::size_t>& t,
                               long double* used_out) {
    long double used = 0.0L;
    long double e = 0.0L;
    for (std::size_t i = 0; i < k; ++i) {
      const double n = dem[i * r + t[i]];
      used += n;
      e += static_cast<long double>(n) * p[t[i]];
    }
    if (cap > used) e += (cap - used) * static_cast<long double>(p_left);
    *used_out = used;
    return static_cast<double>(e);
  };

  double best_e = std::numeric_limits<double>::infinity();
  double best_used = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> a(k, 0);
  if (prefix != nullptr) std::copy(prefix->begin(), prefix->end(), a.begin());
  if (seed.found) {
    // The incumbent competes directly, so the result is never worse than
    // a completed backtracking descent even if frontier thinning dropped
    // the optimal DP chain on an adversarial table.
    long double u = 0.0L;
    best_e = eval_energy(seed.tuple, &u);
    best_used = static_cast<double>(u);
    res.found = true;
    res.tuple = seed.tuple;
    res.cores_used = static_cast<std::size_t>(
        std::ceil(static_cast<double>(u) - kEps));
  }
  const auto consider = [&](const PrunedState& s) {
    reconstruct(s.node, k - kp, scratch_a);
    std::copy(scratch_a.begin(), scratch_a.end(), a.begin() + kp);
    long double u = 0.0L;
    const double e = eval_energy(a, &u);
    const double used_d = static_cast<double>(u);
    bool better = e < best_e - kEps;
    if (!better && e <= best_e + kEps) {
      if (used_d < best_used - kEps) {
        better = true;
      } else if (used_d <= best_used + kEps) {
        better = res.found && a > res.tuple;
      }
    }
    if (better) {
      best_e = std::min(best_e, e);
      best_used = used_d;
      res.found = true;
      res.tuple = a;
      res.cores_used = static_cast<std::size_t>(std::ceil(used_d - kEps));
    }
  };
  // The pilot's completions compete too: a tight pilot bound plus
  // narrow-beam thinning can starve the main sweep on an adversarial
  // table (the min-demand chain dies on the cost bound, the min-cost
  // chain in thinning), and the pilot chain is exactly the feasible
  // completion that proves found-ness there.
  for (const auto& s : pilot_done) consider(s);
  for (std::size_t j = j0; j < r; ++j) {
    for (const auto& s : cur[j]) consider(s);
  }
  res.nodes_visited = nodes;
  res.elapsed_us = elapsed_us_since(start);
  return res;
}

/// Typed DP state: a partial tuple summarized by its per-type fractional
/// usage (capacity is a vector on typed tables), the total, its adjusted
/// cost, and the arena node for chain reconstruction.
struct TypedState {
  std::vector<long double> used;
  long double total = 0.0L;
  long double cost = 0.0L;
  std::uint32_t node = kNoNode;
};

/// search_pruned on a typed table. Same DP skeleton as the homogeneous
/// pruned_core — adjusted-cost decomposition, admissible suffix lower
/// bounds, dominance, budgeted incumbent, capped deterministic frontiers
/// — with three typed differences:
///
///   - capacity (and thus dominance) is per core type: a state is
///     dominated only when it is no cheaper on *every* type's usage and
///     on cost, so fronts are genuine multi-dimensional Pareto sets kept
///     by linear scan;
///   - the energy decomposition parks each type's leftovers at that
///     type's own slowest rung: E = Σ_t m_t·park_t + Σ_i d_i·(p(a_i) −
///     park_type(a_i)), and the constant Σ_t m_t·park_t drops out;
///   - the scalar two-chain pilot (whose min-demand chain is only exact
///     for one-dimensional capacity) is replaced by an unbudgeted greedy
///     descent, run only when the incumbent aborted, as the extra
///     found-ness/upper-bound candidate.
///
/// Contract: exhaustive-equal whenever no guardrail binds (in particular
/// the whole r·k <= 25 exhaustive gate), deterministic everywhere, and
/// never worse than a completed incumbent descent (the incumbent tuple
/// re-enters the final selection). On adversarial typed tables past the
/// exactness regime, found-ness relies on the incumbent/greedy descent
/// or a thinned chain surviving — thinning keeps the min-total-demand
/// endpoint, which is no longer a per-type feasibility proof.
SearchResult pruned_typed_core(const CCTable& cc, std::size_t total_cores,
                               const std::vector<std::size_t>* prefix) {
  const auto start = Clock::now();
  SearchResult res;
  const MachineTopology& topo = *cc.topology();
  const std::size_t r = cc.rows();
  const std::size_t k = cc.cols();
  const std::size_t nt = topo.type_count();
  const long double cap = static_cast<long double>(total_cores);
  const long double inf = std::numeric_limits<long double>::infinity();

  std::vector<long double> tcap(nt);
  for (std::size_t t = 0; t < nt; ++t) {
    tcap[t] = static_cast<long double>(topo.type(t).count);
  }
  std::vector<std::size_t> rtype(r);
  for (std::size_t j = 0; j < r; ++j) rtype[j] = topo.row_type(j);
  std::vector<double> park(nt);
  for (std::size_t t = 0; t < nt; ++t) {
    park[t] = topo.row_park_w(topo.slowest_row_of_type(t));
  }
  std::vector<double> p(r);
  for (std::size_t j = 0; j < r; ++j) p[j] = topo.row_active_w(j);

  std::size_t kp = 0;
  std::size_t j0 = 0;
  TypedState root;
  root.used.assign(nt, 0.0L);
  if (prefix != nullptr) {
    const auto pd = prefix_demand(cc, total_cores, *prefix);
    if (!pd) {
      res.elapsed_us = elapsed_us_since(start);
      return res;
    }
    kp = prefix->size();
    j0 = prefix->empty() ? 0 : prefix->back();
    root.total = pd->total;
    root.used = pd->per_type;
  }

  std::vector<char> feas(k * r, 0);
  std::vector<double> dem(k * r, 0.0);
  std::vector<long double> cost(k * r, 0.0L);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      if (!cc.rung_feasible(j, i)) continue;
      feas[i * r + j] = 1;
      dem[i * r + j] = cc.demand(j, i);
      cost[i * r + j] = static_cast<long double>(dem[i * r + j]) *
                        (static_cast<long double>(p[j]) -
                         static_cast<long double>(park[rtype[j]]));
    }
  }

  // Admissible suffix lower bounds, exactly as in the homogeneous DP:
  // pointwise minima per class at rungs >= j, suffix-summed. lbD bounds
  // only the *total* demand — admissible for the per-type constraint
  // too, since Σ_t used_t <= Σ_t m_t = m must hold regardless of split.
  std::vector<long double> lbC((k + 1) * r, 0.0L);
  std::vector<long double> lbD((k + 1) * r, 0.0L);
  for (std::size_t i = k; i-- > kp;) {
    long double bc = inf;
    long double bd = inf;
    for (std::size_t j = r; j-- > 0;) {
      if (feas[i * r + j]) {
        bc = std::min(bc, cost[i * r + j]);
        bd = std::min(bd, static_cast<long double>(dem[i * r + j]));
      }
      lbC[i * r + j] = bc + lbC[(i + 1) * r + j];
      lbD[i * r + j] = bd + lbD[(i + 1) * r + j];
    }
  }

  // Incumbent: budgeted typed backtracking (the Backtracker enforces
  // per-type capacity on typed tables). Abort parity with the oracle's
  // reference descent is preserved through res.aborted.
  long double ub = inf;
  const auto seed = run_descent(cc, total_cores, /*allow_backtrack=*/true,
                                prefix, kIncumbentNodeBudget);
  res.nodes_visited += seed.nodes_visited;
  res.aborted = seed.aborted;
  const auto chain_cost = [&](const std::vector<std::size_t>& t) {
    long double c = 0.0L;
    for (std::size_t i = kp; i < k; ++i) c += cost[i * r + t[i]];
    return c;
  };
  if (seed.found) ub = chain_cost(seed.tuple);
  // When the incumbent gave up, an unbudgeted greedy descent (<= k·r
  // selects, no backtracking) stands in as the found-ness and
  // upper-bound candidate the homogeneous pilot provides.
  SearchResult greedy_seed;
  if (seed.aborted) {
    greedy_seed = run_descent(cc, total_cores, /*allow_backtrack=*/false,
                              prefix);
    res.nodes_visited += greedy_seed.nodes_visited;
    if (greedy_seed.found) {
      ub = std::min(ub, chain_cost(greedy_seed.tuple));
    }
  }

  std::vector<PrunedNode> arena;
  arena.reserve(1024);
  std::vector<std::size_t> scratch_a;
  std::vector<std::size_t> scratch_b;
  const auto reconstruct = [&](std::uint32_t node, std::size_t depth,
                               std::vector<std::size_t>& out) {
    out.assign(depth, 0);
    std::size_t at = depth;
    for (std::uint32_t n = node; n != kNoNode; n = arena[n].parent) {
      out[--at] = arena[n].rung;
    }
  };
  const auto lex_greater = [&](std::uint32_t na, std::uint32_t nb,
                               std::size_t depth) {
    reconstruct(na, depth, scratch_a);
    reconstruct(nb, depth, scratch_b);
    return scratch_a > scratch_b;
  };

  // Multi-dimensional dominance: a state is dropped only when another is
  // no worse on cost and on every type's usage. Linear scan keeps the
  // front in deterministic insertion order; on an exact all-axes tie the
  // lex-greater chain survives, matching the documented tie-break.
  const auto dominates = [nt](const TypedState& a, const TypedState& b) {
    if (a.cost > b.cost) return false;
    for (std::size_t t = 0; t < nt; ++t) {
      if (a.used[t] > b.used[t]) return false;
    }
    return true;
  };
  const auto pareto_insert = [&](std::vector<TypedState>& front,
                                 const TypedState& s, std::size_t depth) {
    for (auto& e : front) {
      if (dominates(e, s)) {
        if (e.cost == s.cost && e.used == s.used &&
            lex_greater(s.node, e.node, depth)) {
          e.node = s.node;
        }
        return;
      }
    }
    std::size_t w = 0;
    for (std::size_t i = 0; i < front.size(); ++i) {
      if (!dominates(s, front[i])) {
        if (w != i) front[w] = std::move(front[i]);
        ++w;
      }
    }
    front.resize(w);
    front.push_back(s);
  };

  // Deterministic thinning past 2·cap_w: order by (total demand asc,
  // cost desc) — stable, so insertion order breaks exact ties — and keep
  // an evenly spaced subset including both endpoints. The min-total
  // endpoint is the best single feasibility witness available, though
  // with per-type capacity it is no longer an exactness proof.
  const auto thin = [](std::vector<TypedState>& front, std::size_t cap_w) {
    if (front.size() <= 2 * cap_w) return;
    std::stable_sort(front.begin(), front.end(),
                     [](const TypedState& a, const TypedState& b) {
                       if (a.total != b.total) return a.total < b.total;
                       return a.cost > b.cost;
                     });
    const std::size_t n = front.size();
    for (std::size_t t = 0; t < cap_w; ++t) {
      front[t] = front[t * (n - 1) / (cap_w - 1)];
    }
    front.resize(cap_w);
  };

  std::size_t nodes = res.nodes_visited;
  constexpr std::size_t kFrontierCap = 64;  // as in the homogeneous DP
  const std::size_t main_cap =
      (r - j0) * (k - kp) <= 256 ? kFrontierCap : 6;

  std::vector<std::vector<TypedState>> cur(r), nxt(r);
  cur[j0].push_back(root);
  std::vector<TypedState> acc;
  for (std::size_t i = kp; i < k; ++i) {
    acc.clear();
    const std::size_t depth = i + 1 - kp;
    for (std::size_t j = j0; j < r; ++j) {
      for (const auto& s : cur[j]) pareto_insert(acc, s, depth - 1);
      thin(acc, main_cap);
      nxt[j].clear();
      if (!feas[i * r + j]) continue;
      const long double dij = dem[i * r + j];
      const long double cij = cost[i * r + j];
      const long double lb_d = lbD[(i + 1) * r + j];
      const long double lb_c = lbC[(i + 1) * r + j];
      const std::size_t tj = rtype[j];
      for (const auto& s : acc) {
        ++nodes;
        const long double u = s.total + dij;
        if (u + lb_d > cap + kEps) continue;
        if (s.used[tj] + dij > tcap[tj] + kEps) continue;
        const long double c = s.cost + cij;
        if (c + lb_c > ub + 2 * kEps) continue;
        const auto node = static_cast<std::uint32_t>(arena.size());
        arena.push_back(PrunedNode{s.node, static_cast<std::uint32_t>(j)});
        TypedState ns = s;
        ns.used[tj] += dij;
        ns.total = u;
        ns.cost = c;
        ns.node = node;
        pareto_insert(nxt[j], ns, depth);
      }
      thin(nxt[j], main_cap);
    }
    cur.swap(nxt);
  }

  // Final selection: bit-identical to the typed tuple_energy_estimate
  // (same accumulation order and widths), with the exhaustive tie-break.
  const auto eval_energy = [&](const std::vector<std::size_t>& t,
                               long double* used_out) {
    std::vector<long double> used_t(nt, 0.0L);
    long double used = 0.0L;
    long double e = 0.0L;
    for (std::size_t i = 0; i < k; ++i) {
      const double n = dem[i * r + t[i]];
      used += n;
      used_t[rtype[t[i]]] += n;
      e += static_cast<long double>(n) * p[t[i]];
    }
    for (std::size_t t2 = 0; t2 < nt; ++t2) {
      if (tcap[t2] > used_t[t2]) {
        e += (tcap[t2] - used_t[t2]) * static_cast<long double>(park[t2]);
      }
    }
    *used_out = used;
    return static_cast<double>(e);
  };

  double best_e = std::numeric_limits<double>::infinity();
  double best_used = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> a(k, 0);
  if (prefix != nullptr) std::copy(prefix->begin(), prefix->end(), a.begin());
  const auto consider_tuple = [&](const std::vector<std::size_t>& t) {
    long double u = 0.0L;
    const double e = eval_energy(t, &u);
    const double used_d = static_cast<double>(u);
    bool better = e < best_e - kEps;
    if (!better && e <= best_e + kEps) {
      if (used_d < best_used - kEps) {
        better = true;
      } else if (used_d <= best_used + kEps) {
        better = res.found && t > res.tuple;
      }
    }
    if (better) {
      best_e = std::min(best_e, e);
      best_used = used_d;
      res.found = true;
      res.tuple = t;
      res.cores_used = static_cast<std::size_t>(std::ceil(used_d - kEps));
    }
  };
  if (seed.found) consider_tuple(seed.tuple);
  if (greedy_seed.found) consider_tuple(greedy_seed.tuple);
  for (std::size_t j = j0; j < r; ++j) {
    for (const auto& s : cur[j]) {
      reconstruct(s.node, k - kp, scratch_a);
      std::copy(scratch_a.begin(), scratch_a.end(), a.begin() + kp);
      consider_tuple(a);
    }
  }
  res.nodes_visited = nodes;
  res.elapsed_us = elapsed_us_since(start);
  return res;
}

}  // namespace

SearchResult search_exhaustive(const CCTable& cc, std::size_t total_cores,
                               const energy::PowerModel* model) {
  return exhaustive_core(cc, total_cores, model, nullptr);
}

SearchResult search_pruned(const CCTable& cc, std::size_t total_cores,
                           const energy::PowerModel* model) {
  return pruned_core(cc, total_cores, model, nullptr);
}

SearchResult search_suffix(const CCTable& cc, std::size_t total_cores,
                           SearchKind kind,
                           const std::vector<std::size_t>& prefix,
                           const energy::PowerModel* model) {
  switch (kind) {
    case SearchKind::kBacktracking:
      return run_descent(cc, total_cores, /*allow_backtrack=*/true, &prefix);
    case SearchKind::kExhaustive:
      return exhaustive_core(cc, total_cores, model, &prefix);
    case SearchKind::kGreedy:
      return run_descent(cc, total_cores, /*allow_backtrack=*/false, &prefix);
    case SearchKind::kPruned:
      return pruned_core(cc, total_cores, model, &prefix);
  }
  return {};
}

SearchResult search_ktuple(const CCTable& cc, std::size_t total_cores,
                           SearchKind kind, const energy::PowerModel* model) {
  switch (kind) {
    case SearchKind::kBacktracking:
      return search_backtracking(cc, total_cores);
    case SearchKind::kExhaustive:
      return search_exhaustive(cc, total_cores, model);
    case SearchKind::kGreedy:
      return search_greedy(cc, total_cores);
    case SearchKind::kPruned:
      return search_pruned(cc, total_cores, model);
  }
  return {};
}

}  // namespace eewa::core
