#include "core/ktuple_search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace eewa::core {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

constexpr double kEps = 1e-9;

/// Power of one active core at rung j under the model or a cubic proxy
/// (P ∝ f·V² with V roughly ∝ f). Without a model the slowdown F_0/F_j
/// is recovered from the CC table itself. A single column is not
/// enough: it may be zero (idle class) and, with per-class memory-aware
/// alphas, CC[j][i]/CC[0][i] = α_i + (1-α_i)·F_0/F_j understates the
/// true slowdown for any α_i > 0. Scan every usable column and keep the
/// largest ratio — the least memory-bound class, the tightest lower
/// bound on the true F_0/F_j.
double rung_power(const CCTable& cc, std::size_t j,
                  const energy::PowerModel* model) {
  if (model != nullptr) return model->core_power_w(j, /*active=*/true);
  double slowdown = 0.0;
  for (std::size_t i = 0; i < cc.cols(); ++i) {
    if (cc.at(j, i) > 0.0 && cc.at(0, i) > 0.0) {
      slowdown = std::max(slowdown, cc.at(j, i) / cc.at(0, i));
    }
  }
  const double rel = slowdown > 0.0
                         ? 1.0 / slowdown
                         : 1.0 / (1.0 + static_cast<double>(j));
  return rel * rel * rel;
}

/// Power of one leftover (unassigned) core parked at rung j. With a model
/// these cores sit idle/halted, exactly as EnergyAccount bills them; the
/// proxy path keeps the cubic active estimate (it has no idle curve).
double leftover_power(const CCTable& cc, std::size_t j,
                      const energy::PowerModel* model) {
  if (model != nullptr) return model->core_power_w(j, /*active=*/false);
  return rung_power(cc, j, nullptr);
}

}  // namespace

double proxy_rung_power(const CCTable& cc, std::size_t j) {
  return rung_power(cc, j, nullptr);
}

double tuple_energy_estimate(const CCTable& cc,
                             const std::vector<std::size_t>& tuple,
                             std::size_t total_cores,
                             const energy::PowerModel* model) {
  double used = 0.0;
  double e = 0.0;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    const double n = cc.demand(tuple[i], i);
    used += n;
    e += n * rung_power(cc, tuple[i], model);
  }
  const double leftovers =
      static_cast<double>(total_cores) > used
          ? static_cast<double>(total_cores) - used
          : 0.0;
  const std::size_t slowest = cc.rows() - 1;
  e += leftovers * leftover_power(cc, slowest, model);
  return e;
}

bool tuple_is_valid(const CCTable& cc, const std::vector<std::size_t>& tuple,
                    std::size_t total_cores) {
  if (tuple.size() != cc.cols()) return false;
  double used = 0.0;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i] >= cc.rows()) return false;
    if (i > 0 && tuple[i] < tuple[i - 1]) return false;
    if (!cc.rung_feasible(tuple[i], i)) return false;
    used += cc.demand(tuple[i], i);
  }
  return used <= static_cast<double>(total_cores) + kEps;
}

namespace {

/// Shared state for the recursive searchers (Algorithm 1's a[], c_n).
/// Capacity is accounted in fractional core demands, as the paper's
/// Σ CC[a_i][i] <= m constraint does.
struct Backtracker {
  const CCTable& cc;
  double total_cores;
  bool allow_backtrack;
  std::vector<std::size_t> a;
  double c_n = 0.0;
  std::size_t nodes = 0;

  Backtracker(const CCTable& cc_in, std::size_t m, bool backtrack)
      : cc(cc_in),
        total_cores(static_cast<double>(m)),
        allow_backtrack(backtrack),
        a(cc_in.cols(), 0) {}

  // Algorithm 1, Select(i, j), plus the critical-path guard: a rung at
  // which even one of the class's tasks would overrun T is rejected.
  bool select(std::size_t i, std::size_t j) {
    ++nodes;
    if (!cc.rung_feasible(j, i)) return false;
    const double need = cc.demand(j, i);
    if (need + c_n <= total_cores + kEps) {
      a[i] = j;
      c_n += need;
      return true;
    }
    return false;
  }

  // Algorithm 1, SearchTuple(i).
  bool search(std::size_t i) {
    if (i >= cc.cols()) return true;
    const std::size_t lo = i == 0 ? 0 : a[i - 1];
    for (std::size_t j = cc.rows(); j-- > lo;) {
      if (select(i, j)) {
        if (search(i + 1)) return true;
        c_n -= cc.demand(a[i], i);
        if (!allow_backtrack) return false;
      }
      if (j == lo) break;  // size_t guard for the descending loop
    }
    return false;
  }
};

SearchResult run_descent(const CCTable& cc, std::size_t total_cores,
                         bool allow_backtrack) {
  const auto start = Clock::now();
  Backtracker bt(cc, total_cores, allow_backtrack);
  SearchResult res;
  res.found = bt.search(0);
  res.nodes_visited = bt.nodes;
  if (res.found) {
    res.tuple = bt.a;
    res.cores_used =
        static_cast<std::size_t>(std::ceil(bt.c_n - kEps));
  }
  res.elapsed_us = elapsed_us_since(start);
  return res;
}

}  // namespace

SearchResult search_backtracking(const CCTable& cc, std::size_t total_cores) {
  return run_descent(cc, total_cores, /*allow_backtrack=*/true);
}

SearchResult search_greedy(const CCTable& cc, std::size_t total_cores) {
  return run_descent(cc, total_cores, /*allow_backtrack=*/false);
}

SearchResult search_exhaustive(const CCTable& cc, std::size_t total_cores,
                               const energy::PowerModel* model) {
  const auto start = Clock::now();
  SearchResult best;
  double best_e = std::numeric_limits<double>::infinity();
  double best_used = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> a(cc.cols(), 0);
  std::size_t nodes = 0;

  // Enumerate all nondecreasing tuples; prune on capacity as we go.
  // Ties on energy break deterministically — fewest cores, then the
  // lexicographically greater (slower) tuple — so differential runs
  // reproduce the same winner regardless of enumeration quirks.
  auto rec = [&](auto&& self, std::size_t i, std::size_t lo,
                 double used) -> void {
    if (i == cc.cols()) {
      const double e = tuple_energy_estimate(cc, a, total_cores, model);
      bool better = e < best_e - kEps;
      if (!better && e <= best_e + kEps) {
        if (used < best_used - kEps) {
          better = true;
        } else if (used <= best_used + kEps) {
          better = best.found && a > best.tuple;
        }
      }
      if (better) {
        best_e = std::min(best_e, e);
        best_used = used;
        best.found = true;
        best.tuple = a;
        best.cores_used =
            static_cast<std::size_t>(std::ceil(used - kEps));
      }
      return;
    }
    for (std::size_t j = lo; j < cc.rows(); ++j) {
      ++nodes;
      if (!cc.rung_feasible(j, i)) continue;
      const double need = cc.demand(j, i);
      if (used + need > static_cast<double>(total_cores) + kEps) continue;
      a[i] = j;
      self(self, i + 1, j, used + need);
    }
  };
  rec(rec, 0, 0, 0.0);

  best.nodes_visited = nodes;
  best.elapsed_us = elapsed_us_since(start);
  return best;
}

SearchResult search_ktuple(const CCTable& cc, std::size_t total_cores,
                           SearchKind kind, const energy::PowerModel* model) {
  switch (kind) {
    case SearchKind::kBacktracking:
      return search_backtracking(cc, total_cores);
    case SearchKind::kExhaustive:
      return search_exhaustive(cc, total_cores, model);
    case SearchKind::kGreedy:
      return search_greedy(cc, total_cores);
  }
  return {};
}

}  // namespace eewa::core
