#include "core/task_class.hpp"

#include <algorithm>
#include <stdexcept>

namespace eewa::core {

std::size_t TaskClassRegistry::intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const std::size_t id = stats_.size();
  stats_.push_back(Stats{std::string(name), 0, 0, 0.0});
  ids_.emplace(std::string(name), id);
  return id;
}

std::size_t TaskClassRegistry::id_of(std::string_view name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    throw std::out_of_range("TaskClassRegistry: unknown class name");
  }
  return it->second;
}

bool TaskClassRegistry::contains(std::string_view name) const {
  return ids_.find(name) != ids_.end();
}

void TaskClassRegistry::record(std::size_t id, double w, double alpha) {
  if (w < 0.0) {
    throw std::invalid_argument("TaskClassRegistry: negative workload");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("TaskClassRegistry: alpha outside [0,1]");
  }
  Stats& s = stats_.at(id);
  // TC(f, n, w̄) -> TC(f, n+1, (n·w̄ + w)/(n+1)) over the cumulative count.
  const auto n = static_cast<double>(s.total_count);
  s.mean_w = (n * s.mean_w + w) / (n + 1.0);
  s.mean_alpha = (n * s.mean_alpha + alpha) / (n + 1.0);
  s.iter_max_w = std::max(s.iter_max_w, w);
  ++s.total_count;
  ++s.iter_count;
}

void TaskClassRegistry::begin_iteration() {
  for (auto& s : stats_) {
    s.iter_count = 0;
    s.iter_max_w = 0.0;
  }
}

std::vector<ClassProfile> TaskClassRegistry::iteration_profile() const {
  std::vector<ClassProfile> out;
  for (std::size_t id = 0; id < stats_.size(); ++id) {
    const Stats& s = stats_[id];
    if (s.iter_count == 0) continue;
    out.push_back(ClassProfile{id, s.name, s.iter_count, s.mean_w,
                               s.iter_max_w, s.mean_alpha});
  }
  std::sort(out.begin(), out.end(),
            [](const ClassProfile& a, const ClassProfile& b) {
              if (a.mean_workload != b.mean_workload) {
                return a.mean_workload > b.mean_workload;
              }
              return a.class_id < b.class_id;  // deterministic tie-break
            });
  return out;
}

}  // namespace eewa::core
