// Minimal CSV writer for exporting experiment series (one file per figure).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace eewa::util {

/// Streams rows of a CSV file. Values containing commas, quotes or newlines
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Open `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Build rows in memory instead (use str() to retrieve).
  CsvWriter();

  /// Write a full row of string cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: write a row of heterogeneous printable values.
  template <typename... Ts>
  void row_values(const Ts&... vals) {
    std::vector<std::string> cells;
    (cells.push_back(to_cell(vals)), ...);
    row(cells);
  }

  /// In-memory contents (only meaningful for the default constructor).
  std::string str() const { return buffer_.str(); }

  /// Number of rows written.
  std::size_t rows_written() const { return rows_; }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    os.precision(12);  // keep floats round-trippable through import
    os << v;
    return os.str();
  }

  static std::string escape(const std::string& cell);

  std::ofstream file_;
  std::ostringstream buffer_;
  bool to_file_ = false;
  std::size_t rows_ = 0;
};

}  // namespace eewa::util
