#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace eewa::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and bins >= 1");
  }
}

void Histogram::add(double x) { add(x, 1.0); }

void Histogram::add(double x, double weight) {
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / bin_width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i + 1);
}

double Histogram::fraction(std::size_t i) const {
  return total_ == 0.0 ? 0.0 : counts_[i] / total_;
}

std::string Histogram::ascii(std::size_t width) const {
  double max_count = 0.0;
  for (double c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len =
        max_count == 0.0
            ? 0
            : static_cast<int>(counts_[i] / max_count *
                               static_cast<double>(width));
    std::snprintf(buf, sizeof(buf), "[%10.3g, %10.3g) %10.3g |", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += buf;
    out.append(static_cast<std::size_t>(bar_len), '#');
    out += '\n';
  }
  return out;
}

}  // namespace eewa::util
