#include "util/cpu_affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace eewa::util {

std::size_t hardware_cpu_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_current_thread(std::size_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % hardware_cpu_count(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace eewa::util
