#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>

namespace eewa::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::str() const {
  std::size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(headers_);
  for (const auto& r : rows_) measure(r);

  auto render = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      line += "| ";
      line += cell;
      line.append(widths[i] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string sep;
  for (std::size_t i = 0; i < ncols; ++i) {
    sep += "+";
    sep.append(widths[i] + 2, '-');
  }
  sep += "+\n";

  std::string out = sep + render(headers_) + sep;
  for (const auto& r : rows_) out += render(r);
  out += sep;
  return out;
}

}  // namespace eewa::util
