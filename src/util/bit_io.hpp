// Bit-level I/O over byte buffers. Shared by the entropy coders in the
// workload kernels (Huffman, DMC's arithmetic coder, LZW's variable-width
// codes, the JPEG-style encoder).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace eewa::util {

/// Appends bits MSB-first into a growable byte buffer.
class BitWriter {
 public:
  /// Write the `count` low bits of `bits`, most significant first.
  /// count must be <= 57 (so the accumulator never overflows).
  void write(std::uint64_t bits, unsigned count);

  /// Write a single bit (0 or 1).
  void write_bit(unsigned bit) { write(bit & 1u, 1); }

  /// Flush any partial byte (zero-padded) and return the buffer.
  /// The writer remains usable (further writes start a fresh byte).
  std::vector<std::uint8_t> take();

  /// Bits written so far (excluding flush padding).
  std::size_t bit_count() const { return bytes_.size() * 8 + nbits_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;  // pending bits, left-aligned count in nbits_
  unsigned nbits_ = 0;
};

/// Reads bits MSB-first from a byte buffer.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `count` bits (<= 57). Reading past the end yields zero bits.
  std::uint64_t read(unsigned count);

  /// Read a single bit.
  unsigned read_bit() { return static_cast<unsigned>(read(1)); }

  /// Bits consumed so far.
  std::size_t bit_position() const { return bit_pos_; }

  /// True when all bits (including padding) are consumed.
  bool exhausted() const { return bit_pos_ >= data_.size() * 8; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t bit_pos_ = 0;
};

}  // namespace eewa::util
