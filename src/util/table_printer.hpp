// Aligned ASCII tables for the benchmark harnesses. Every bench binary
// prints the same rows/series the paper's table or figure reports, and this
// is the shared formatter.
#pragma once

#include <string>
#include <type_traits>
#include <vector>

namespace eewa::util {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Create a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; the number of cells should match the header count
  /// (short rows are padded, long rows extend the table).
  void add_row(std::vector<std::string> cells);

  /// Convenience: append a row of heterogeneous printable values.
  template <typename... Ts>
  void add(const Ts&... vals) {
    std::vector<std::string> cells;
    (cells.push_back(format_cell(vals)), ...);
    add_row(std::move(cells));
  }

  /// Render the table (header, separator, rows).
  std::string str() const;

  /// Format a double with the given number of decimals.
  static std::string fixed(double v, int decimals = 2);

 private:
  template <typename T>
  static std::string format_cell(const T& v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

template <typename T>
std::string TablePrinter::format_cell(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v;
  } else if constexpr (std::is_convertible_v<T, const char*>) {
    return std::string(v);
  } else if constexpr (std::is_floating_point_v<T>) {
    return fixed(static_cast<double>(v), 3);
  } else {
    return std::to_string(v);
  }
}

}  // namespace eewa::util
