// Fixed-bin histogram used for workload-distribution reporting and for the
// frequency-residency displays in the benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eewa::util {

/// A histogram with uniform bins over [lo, hi). Out-of-range observations
/// are clamped into the first/last bin and counted separately.
class Histogram {
 public:
  /// Construct with `bins` uniform bins over [lo, hi). Requires lo < hi and
  /// bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Record one observation.
  void add(double x);

  /// Record an observation with a weight (e.g. time-weighted residency).
  void add(double x, double weight);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// Fraction of the total weight that fell into bin i (0 if empty).
  double fraction(std::size_t i) const;

  /// Render a simple ASCII bar chart, one line per bin.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<double> counts_;
  double total_ = 0.0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace eewa::util
