#include "util/csv.hpp"

#include <stdexcept>

namespace eewa::util {

CsvWriter::CsvWriter(const std::string& path) : to_file_(true) {
  file_.open(path);
  if (!file_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::CsvWriter() = default;

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += escape(cells[i]);
  }
  line += '\n';
  if (to_file_) {
    file_ << line;
  } else {
    buffer_ << line;
  }
  ++rows_;
}

}  // namespace eewa::util
