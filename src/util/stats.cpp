#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace eewa::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) *
             static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> v = values;
  std::sort(v.begin(), v.end());
  RunningStats rs;
  for (double x : v) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = v.front();
  s.max = v.back();
  s.p25 = percentile_sorted(v, 0.25);
  s.median = percentile_sorted(v, 0.50);
  s.p75 = percentile_sorted(v, 0.75);
  s.p95 = percentile_sorted(v, 0.95);
  s.p99 = percentile_sorted(v, 0.99);
  return s;
}

}  // namespace eewa::util
