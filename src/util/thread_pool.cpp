#include "util/thread_pool.hpp"

#include <stdexcept>

namespace eewa::util {

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  if (threads > kMaxThreads) {
    throw std::invalid_argument("ThreadPool: " + std::to_string(threads) +
                                " threads is not a plausible request");
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_items(std::size_t n, Thunk thunk, void* ctx) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Degenerate single-thread pool: a plain loop, exceptions propagate
    // directly — bit-for-bit the serial engine.
    for (std::size_t i = 0; i < n; ++i) thunk(ctx, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    thunk_ = thunk;
    ctx_ = ctx;
    n_ = n;
    cursor_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = workers_.size();
    ++generation_;  // publishes the job to sleeping workers
  }
  start_cv_.notify_all();

  // The caller is a full participant; once it runs dry every remaining
  // item is in flight on a worker and the quiescence wait below is the
  // epoch barrier. Waiting for *workers idle* (not just items done)
  // also guarantees no straggler can observe the next job's cursor with
  // this job's thunk — jobs never overlap.
  work();

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  thunk_ = nullptr;
  ctx_ = nullptr;
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::work() {
  for (std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
       i < n_; i = cursor_.fetch_add(1, std::memory_order_relaxed)) {
    if (abort_.load(std::memory_order_relaxed)) continue;  // drain claims
    try {
      thunk_(ctx_, i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      abort_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    work();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace eewa::util
