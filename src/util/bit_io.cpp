#include "util/bit_io.hpp"

#include <cassert>

namespace eewa::util {

void BitWriter::write(std::uint64_t bits, unsigned count) {
  assert(count <= 57);
  if (count == 0) return;
  bits &= (count == 64) ? ~0ULL : ((1ULL << count) - 1);
  acc_ = (acc_ << count) | bits;
  nbits_ += count;
  while (nbits_ >= 8) {
    nbits_ -= 8;
    bytes_.push_back(static_cast<std::uint8_t>((acc_ >> nbits_) & 0xffu));
  }
}

std::vector<std::uint8_t> BitWriter::take() {
  if (nbits_ > 0) {
    bytes_.push_back(
        static_cast<std::uint8_t>((acc_ << (8 - nbits_)) & 0xffu));
    nbits_ = 0;
  }
  acc_ = 0;
  std::vector<std::uint8_t> out;
  out.swap(bytes_);
  return out;
}

std::uint64_t BitReader::read(unsigned count) {
  assert(count <= 57);
  std::uint64_t out = 0;
  for (unsigned i = 0; i < count; ++i) {
    const std::size_t byte = bit_pos_ >> 3;
    unsigned bit = 0;
    if (byte < data_.size()) {
      bit = (data_[byte] >> (7 - (bit_pos_ & 7))) & 1u;
    }
    out = (out << 1) | bit;
    ++bit_pos_;
  }
  return out;
}

}  // namespace eewa::util
