// A winner (tournament) tree over N keyed slots: O(log N) point update,
// O(1) argmin/argmax query, ties always to the lowest index.
//
// Built for the fleet placement tier, where every arriving task needs
// "the machine minimizing cost C" over M machines and only the picked
// machine's key changes afterwards — a linear rescan is O(M) per
// arrival, this is O(log M). The tie rule matters for determinism: a
// left child beats an equal right child at every internal node, so the
// overall winner is the *lowest-index* extremal slot, exactly what a
// first-strictly-better linear scan returns. Slots can be disabled
// (no key); a disabled slot never wins, and a tree with every slot
// disabled reports no winner.
#pragma once

#include <cstddef>
#include <vector>

namespace eewa::util {

/// Compare is a strict "better than" predicate on keys: std::less for
/// an argmin tree, std::greater for an argmax tree. Equal keys are
/// "not better", which is what gives the lowest-index tie rule.
template <typename Key, typename Compare>
class TournamentTree {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  TournamentTree() = default;

  /// Reset to `n` slots, all disabled. O(n), allocates only when `n`
  /// grows past any previous size.
  void reset(std::size_t n) {
    n_ = n;
    cap_ = 1;
    while (cap_ < n_) cap_ <<= 1;
    keys_.assign(n_, Key{});
    enabled_.assign(n_, 0);
    win_.assign(2 * cap_, kNone);
  }

  std::size_t size() const { return n_; }

  /// Set slot i's key and enable it, then repair the path to the root.
  void update(std::size_t i, const Key& k) {
    keys_[i] = k;
    enabled_[i] = 1;
    repair(i);
  }

  /// Disable slot i (it holds no key and cannot win).
  void disable(std::size_t i) {
    enabled_[i] = 0;
    repair(i);
  }

  bool contains(std::size_t i) const { return enabled_[i] != 0; }
  const Key& key(std::size_t i) const { return keys_[i]; }

  /// Index of the best enabled slot, or kNone when every slot is
  /// disabled (or the tree is empty).
  std::size_t winner() const { return cap_ == 0 ? kNone : win_[1]; }

 private:
  /// Winner of two slot indices under the tie-to-left rule.
  std::size_t merge(std::size_t a, std::size_t b) const {
    if (a == kNone) return b;
    if (b == kNone) return a;
    return cmp_(keys_[b], keys_[a]) ? b : a;
  }

  void repair(std::size_t i) {
    std::size_t node = cap_ + i;
    win_[node] = enabled_[i] ? i : kNone;
    for (node >>= 1; node >= 1; node >>= 1) {
      win_[node] = merge(win_[2 * node], win_[2 * node + 1]);
    }
  }

  std::size_t n_ = 0;
  std::size_t cap_ = 0;  ///< leaf capacity, power of two
  std::vector<Key> keys_;
  std::vector<char> enabled_;
  std::vector<std::size_t> win_;  ///< win_[1] is the root
  [[no_unique_address]] Compare cmp_{};
};

}  // namespace eewa::util
