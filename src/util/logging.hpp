// Leveled logging. Kept deliberately tiny: the runtime's hot paths never
// log; logging is for harness progress and diagnostics.
#pragma once

#include <cstdio>
#include <string>

namespace eewa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global minimum level (default kInfo). Not thread-safe; set once
/// at startup.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Log a preformatted message at `level` to stderr with a level prefix.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string format(const char* fmt, Args... args) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}
inline std::string format(const char* fmt) { return fmt; }
}  // namespace detail

#define EEWA_LOG(level, ...)                                              \
  do {                                                                    \
    if (static_cast<int>(level) >=                                        \
        static_cast<int>(::eewa::util::log_level())) {                    \
      ::eewa::util::log_message(level,                                    \
                                ::eewa::util::detail::format(__VA_ARGS__)); \
    }                                                                     \
  } while (0)

#define EEWA_DEBUG(...) EEWA_LOG(::eewa::util::LogLevel::kDebug, __VA_ARGS__)
#define EEWA_INFO(...) EEWA_LOG(::eewa::util::LogLevel::kInfo, __VA_ARGS__)
#define EEWA_WARN(...) EEWA_LOG(::eewa::util::LogLevel::kWarn, __VA_ARGS__)
#define EEWA_ERROR(...) EEWA_LOG(::eewa::util::LogLevel::kError, __VA_ARGS__)

}  // namespace eewa::util
