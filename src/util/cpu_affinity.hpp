// Thread pinning for the real-thread runtime. On machines with fewer
// hardware CPUs than workers (like CI containers), pinning degrades to a
// no-op rather than failing.
#pragma once

#include <cstddef>

namespace eewa::util {

/// Number of online hardware CPUs (at least 1).
std::size_t hardware_cpu_count();

/// Pin the calling thread to `cpu` (mod the hardware CPU count).
/// Returns true on success; false when affinity is unsupported or denied.
bool pin_current_thread(std::size_t cpu);

}  // namespace eewa::util
