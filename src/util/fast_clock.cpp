#include "util/fast_clock.hpp"

#include <thread>

namespace eewa::util {
namespace {

double calibrate() noexcept {
#if defined(__x86_64__)
  using Clock = std::chrono::steady_clock;
  // Two-point sample against steady_clock over a ~2ms window. Invariant
  // TSCs tick at a fixed rate, so a short window calibrates to well under
  // 1% — plenty for Eq. 1 workload means, which feed a relative search.
  const auto wall0 = Clock::now();
  const std::uint64_t tsc0 = FastClock::ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto wall1 = Clock::now();
  const std::uint64_t tsc1 = FastClock::ticks();
  const double elapsed_s = std::chrono::duration<double>(wall1 - wall0).count();
  const std::uint64_t dticks = tsc1 - tsc0;
  if (dticks == 0 || elapsed_s <= 0.0) {
    return 1e-9;  // degenerate environment: assume ~1GHz rather than div/0
  }
  return elapsed_s / static_cast<double>(dticks);
#else
  using Period = std::chrono::steady_clock::period;
  return static_cast<double>(Period::num) / static_cast<double>(Period::den);
#endif
}

}  // namespace

double FastClock::seconds_per_tick() noexcept {
  static const double period = calibrate();
  return period;
}

}  // namespace eewa::util
