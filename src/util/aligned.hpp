// Cache-line isolation for per-worker mutable state (avoids false sharing
// between worker counters, deque tops, and the energy accounting cells).
#pragma once

#include <cstddef>
#include <new>

namespace eewa::util {

// A fixed 64-byte line rather than std::hardware_destructive_
// interference_size: the constant is ABI-stable across translation
// units and compiler flags (GCC warns that the std value is not), and
// 64 is right for every x86-64 and most AArch64 parts.
inline constexpr std::size_t kCacheLine = 64;

/// Wraps a value so each instance occupies its own cache line(s).
template <typename T>
struct alignas(kCacheLine) CachelinePadded {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace eewa::util
