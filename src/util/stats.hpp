// Streaming and batch statistics used by the profiler, the simulator and
// the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace eewa::util {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Number of observations added so far.
  std::size_t count() const { return n_; }

  /// Mean of observations (0 if empty).
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 if fewer than 2 observations).
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv() const;

  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  /// Reset to the empty state.
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary of a sample: percentiles computed on a sorted copy.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Compute a Summary over the given values (copied and sorted internally).
Summary summarize(const std::vector<double>& values);

/// Linear-interpolated percentile of a *sorted* sample, q in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace eewa::util
