// Cheap per-task interval timing for the scheduler hot path.
//
// The runtime timestamps every task twice (start/stop) to feed Eq. 1
// profiling; at microsecond task grain, two std::chrono::steady_clock
// reads (~30-45ns each on a container without fast vDSO paths) are a
// measurable share of the per-task budget. On x86-64 with an invariant
// TSC, FastClock reads the timestamp counter (~8ns) and converts with a
// period calibrated once against steady_clock; elsewhere it degrades to
// steady_clock transparently. Use it for *intervals* only — ticks are
// not comparable across processes, and the calibration absorbs the
// unknown TSC frequency, not wall-clock epoch.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace eewa::util {

class FastClock {
 public:
  /// Opaque monotonically increasing tick count.
  static std::uint64_t ticks() noexcept {
#if defined(__x86_64__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }

  /// Seconds represented by a tick delta.
  static double to_seconds(std::uint64_t dt) noexcept {
    return static_cast<double>(dt) * seconds_per_tick();
  }

  /// Seconds elapsed since an earlier ticks() sample.
  static double seconds_since(std::uint64_t t0) noexcept {
    return to_seconds(ticks() - t0);
  }

  /// Calibrated tick period. First call (per process) blocks for the
  /// calibration window (~2ms); the runtime triggers it at construction
  /// so no task measurement pays for it.
  static double seconds_per_tick() noexcept;
};

}  // namespace eewa::util
