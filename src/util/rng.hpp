// Deterministic pseudo-random number generation for experiments and tests.
//
// All randomness in this codebase flows through these generators so that
// every experiment is reproducible from a single seed. We provide
// SplitMix64 (for seeding) and Xoshiro256** (the workhorse), plus the
// distributions the workload generators need.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <vector>

namespace eewa::util {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used to expand one seed
/// into the state of larger generators and for cheap stateless hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a 64-bit value; handy for hashing (seed, index) pairs.
inline std::uint64_t mix64(std::uint64_t x) {
  SplitMix64 sm(x);
  return sm.next();
}

/// Map a raw 64-bit draw to a uniform index in [0, n) \ {self}.
/// Drawing over n-1 slots and shifting past `self` keeps every other
/// index equally likely; the naive "redraw == self ? self+1 : draw"
/// remap would give index self+1 double weight. n <= 1 returns 0.
inline std::size_t uniform_excluding(std::uint64_t draw, std::size_t self,
                                     std::size_t n) {
  if (n <= 1) return 0;
  const auto v = static_cast<std::size_t>(draw % (n - 1));
  return v + static_cast<std::size_t>(v >= self);
}

/// Xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it can also drive <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t bounded(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponential with given mean (> 0).
  double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; simple and branch-light).
  double normal() {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal parameterized by the mean/cv of the *resulting* distribution.
  /// cv = stddev/mean of the log-normal variate.
  double lognormal_mean_cv(double mean, double cv) {
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s) sampler over ranks {1..n} using inverse-CDF on a precomputed
/// table. Deterministic for a given (n, s).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Sample a rank in [0, n).
  std::size_t sample(Xoshiro256& rng) const {
    const double u = rng.uniform();
    std::size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace eewa::util
