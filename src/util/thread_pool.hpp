// A persistent worker pool for deterministic data-parallel loops.
//
// Built for the fleet simulator's epoch loop: the pool is spawned once
// per run, each epoch issues one parallel_for over the machine indices,
// and the caller thread participates so `threads == 1` degenerates to a
// plain loop with no cross-thread handoff. Work items are claimed from
// a shared atomic cursor, so the *assignment* of items to threads is
// nondeterministic — callers get determinism by keeping every item's
// work independent (no shared mutable state) and merging results in
// item-index order afterwards, never by relying on execution order.
//
// parallel_for is allocation-free in steady state (the callable is
// passed by reference through a type-erased thunk, never copied into a
// std::function), and the first exception thrown by any item is
// captured and rethrown on the calling thread after the barrier.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <type_traits>
#include <thread>
#include <vector>

namespace eewa::util {

/// Worker threads available on this host (never 0).
std::size_t hardware_threads();

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining thread);
  /// `threads == 0` means hardware_threads(). Throws
  /// std::invalid_argument on an absurd request (> kMaxThreads), which
  /// in practice catches unit confusion at call sites.
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers. Must not be called while a parallel_for is live.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute work (workers + the caller).
  std::size_t size() const { return workers_.size() + 1; }

  /// Guard against nonsense like passing a byte count as a thread count.
  static constexpr std::size_t kMaxThreads = 1024;

  /// Run fn(i) for every i in [0, n), distributing items over all
  /// threads; the caller participates and the call returns only after
  /// every item completed (an epoch barrier). If any fn(i) throws, the
  /// remaining items are abandoned and the first captured exception is
  /// rethrown here. Not reentrant: one parallel_for at a time.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    run_items(n,
              [](void* ctx, std::size_t i) {
                (*static_cast<std::remove_reference_t<Fn>*>(ctx))(i);
              },
              const_cast<void*>(
                  static_cast<const void*>(std::addressof(fn))));
  }

 private:
  using Thunk = void (*)(void* ctx, std::size_t item);

  void run_items(std::size_t n, Thunk thunk, void* ctx);
  void work();
  void worker_loop();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumped per parallel_for, under mu_
  std::size_t active_ = 0;        ///< workers inside the current job
  bool stop_ = false;

  // Current job. Written under mu_ before the generation bump; workers
  // read it only after observing the new generation under mu_, and the
  // caller waits for every worker to leave the job before the next one
  // is published — so these plain fields never race.
  Thunk thunk_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<bool> abort_{false};
  std::exception_ptr error_;  ///< first failure, under mu_
};

}  // namespace eewa::util
