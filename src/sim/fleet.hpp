// Fleet-scale simulation: N machines, an S-state ladder, a placement
// tier, and a consolidation loop (docs/fleet.md).
//
// The paper optimizes energy *inside* one machine; the same workload-
// aware idea one level up is deciding which machines run at all. A
// Fleet drives N independent sim::Machine instances (each running its
// own per-machine scheduling policy — EEWA, Cilk, ...) from one seeded
// open-loop arrival stream:
//
//   arrivals ── placement tier ──> machine batches (one per epoch)
//                                  │
//   consolidation loop <───────────┘  idle machines drain, park, and
//                                     sink down the S-state ladder
//
// Time advances in fixed epochs. Within an epoch, arrivals are routed
// task-by-task against live per-machine backlog views; at the epoch
// boundary each machine with staged work runs them as one batch (its
// policy sees exactly the release-timed open-loop batch it would see
// standalone), and machines that stayed idle long enough are parked.
// Parked machines pay the S-state power of their current ladder rung
// and a wake latency to come back; the fleet accounts those intervals,
// the machines' own EnergyAccounts cover every powered second — each
// simulated second is billed exactly once, which the fleet oracles
// (testing/oracles.hpp) re-derive and check.
//
// Everything is deterministic in the seeds: same FleetOptions + same
// ArrivalSpec => bitwise-identical FleetReport — at every
// FleetOptions::threads setting. The parallel engine keeps routing
// serial, runs the per-machine epoch work concurrently (machines share
// no mutable state), and merges results in machine-index order; see
// docs/fleet.md "Threading".
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "obs/fleet_metrics.hpp"
#include "sim/machine.hpp"
#include "sim/policies.hpp"
#include "trace/arrivals.hpp"

namespace eewa::sim {

/// One rung of the machine sleep ladder. Deeper states draw less and
/// wake slower; the ladder must be strictly decreasing in power and
/// strictly increasing in wake latency.
struct SleepState {
  std::string name;
  double power_w = 0.0;
  double wake_latency_s = 0.0;
};

/// The default ladder: suspend-to-idle through mechanical off, powers
/// scaled to sit under the Opteron server's 150 W machine floor
/// (energy/power_model.hpp), latencies spanning the four decades between
/// a clock-gate and a cold boot.
std::vector<SleepState> default_sleep_ladder();

/// Fleet configuration.
struct FleetOptions {
  std::size_t machines = 64;
  /// Per-machine simulator options. The per-machine RNG seed is derived
  /// from this seed and the machine index (see Fleet::machine_options);
  /// keep_batch_stats is forced off and a fixed adjuster overhead is
  /// substituted when unset, so fleet runs stay bounded in memory and
  /// bit-exact.
  SimOptions machine{};
  std::vector<SleepState> ladder = default_sleep_ladder();
  /// Energy of one park or wake transition (flushing caches, fencing
  /// devices, restoring context), charged per transition.
  double transition_energy_j = 2.0;

  /// Routing/consolidation cadence. Arrivals inside an epoch are routed
  /// against views refreshed at the epoch start.
  double epoch_s = 0.02;
  /// Consecutive fully-idle epochs before a machine parks into ladder[0].
  std::size_t park_after_epochs = 2;
  /// Parked epochs before sinking one ladder rung deeper (deepening is
  /// free; only park and wake pay transition_energy_j).
  std::size_t deepen_after_epochs = 2;

  /// Per-machine scheduling policy name (see make_policy).
  std::string policy = "eewa";
  /// Placement policy name (see make_placement).
  std::string placement = "least-loaded";
  /// Pack policy fill line (per-core backlog seconds); 0 = auto
  /// (2 x epoch_s).
  double pack_fill_s = 0.0;

  /// When > 0, a task routed to a machine whose per-core backlog
  /// exceeds this is shed instead of queued (open-loop overload guard);
  /// 0 = never shed.
  double max_backlog_s = 0.0;

  /// Initial machine power state: 0 = powered, i = parked in
  /// ladder[i-1] at t = 0 (the all-OFF cold-start shape). The initial
  /// park is counted in the park/transition ledgers.
  std::size_t initial_state = 0;

  /// Worker threads for the per-machine epoch work: 1 = the serial
  /// engine (default), 0 = one per hardware thread, N = exactly N
  /// (values past util::ThreadPool::kMaxThreads are rejected). The
  /// FleetReport is bit-identical for every value: routing stays
  /// serial, machine epochs share no mutable state (each sim::Machine
  /// owns its RNG and accounts), and results merge in machine-index
  /// order — see docs/fleet.md.
  std::size_t threads = 1;
};

/// The fleet simulator. Single-shot: construct, run() once.
class Fleet {
 public:
  /// Validates options (throws std::invalid_argument on a malformed
  /// ladder, zero machines, non-positive epoch, unknown policy names).
  Fleet(FleetOptions opts, trace::ArrivalSpec arrivals);

  /// Run the whole stream to drain and return the report.
  obs::FleetReport run();

  /// The exact SimOptions machine `idx` runs with: the fleet's
  /// per-machine options plus the derived seed, keep_batch_stats off,
  /// and a fixed adjuster overhead when none was set. Exposed so the
  /// single-machine differential test can run a bare simulate() under
  /// bitwise-identical conditions.
  static SimOptions machine_options(const FleetOptions& opts,
                                    std::size_t idx);

 private:
  FleetOptions opts_;
  trace::ArrivalSpec spec_;
};

}  // namespace eewa::sim
