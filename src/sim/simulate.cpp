#include "sim/simulate.hpp"

#include <stdexcept>

namespace eewa::sim {

SimResult simulate(const trace::TaskTrace& trace, Policy& policy,
                   const SimOptions& options) {
  trace.validate();
  Machine machine(options);
  double t = 0.0;
  for (const auto& batch : trace.batches) {
    t = machine.run_batch(policy, batch, t);
  }
  return machine.finish(t, policy.name(), trace.name);
}

SimResult simulate_named(const trace::TaskTrace& trace,
                         const std::string& policy_name,
                         const SimOptions& options) {
  if (policy_name == "cilk") {
    CilkPolicy p;
    return simulate(trace, p, options);
  }
  if (policy_name == "cilk-d") {
    CilkDPolicy p;
    return simulate(trace, p, options);
  }
  if (policy_name == "sharing") {
    SharingPolicy p;
    return simulate(trace, p, options);
  }
  if (policy_name == "ondemand") {
    OndemandPolicy p;
    return simulate(trace, p, options);
  }
  if (policy_name == "eewa") {
    EewaPolicy p(trace.class_names);
    return simulate(trace, p, options);
  }
  throw std::invalid_argument("simulate_named: unknown policy " +
                              policy_name);
}

}  // namespace eewa::sim
