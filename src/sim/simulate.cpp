#include "sim/simulate.hpp"

#include <stdexcept>

namespace eewa::sim {

SimResult simulate(const trace::TaskTrace& trace, Policy& policy,
                   const SimOptions& options) {
  trace.validate();
  Machine machine(options);
  double t = 0.0;
  for (const auto& batch : trace.batches) {
    t = machine.run_batch(policy, batch, t);
  }
  return machine.finish(t, policy.name(), trace.name);
}

SimResult simulate_named(const trace::TaskTrace& trace,
                         const std::string& policy_name,
                         const SimOptions& options) {
  auto policy = make_policy(policy_name, trace.class_names);
  return simulate(trace, *policy, options);
}

}  // namespace eewa::sim
