// Discrete-event simulator of a DVFS-capable multi-core machine.
//
// This is the substitute for the paper's 16-core Opteron 8380 testbed
// (see DESIGN.md §2): cores execute trace tasks in
//   exec(f) = work · (alpha + (1 - alpha) · F0/f)
// seconds, idle cores spin (burning full dynamic power at their current
// frequency — the effect the paper's §II example is built on), stealing
// probes and DVFS transitions cost time, and an EnergyAccount integrates
// the PowerModel over everything.
//
// Scheduling decisions are delegated to a Policy (Cilk, Cilk-D, WATS,
// EEWA — see policies.hpp); the machine provides the pools, frequency
// control and clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "core/core_type.hpp"
#include "dvfs/dvfs_backend.hpp"
#include "dvfs/fault_backend.hpp"
#include "dvfs/frequency_ladder.hpp"
#include "dvfs/transition_model.hpp"
#include "energy/energy_account.hpp"
#include "energy/power_model.hpp"
#include "obs/tracer.hpp"
#include "trace/task_trace.hpp"
#include "util/rng.hpp"

namespace eewa::sim {

/// Index of a task within the current batch.
using TaskId = std::size_t;

/// Simulator configuration.
struct SimOptions {
  std::size_t cores = 16;
  energy::PowerModel power = energy::PowerModel::opteron8380_server();
  dvfs::TransitionModel transition{};
  /// Cost of one steal probe (check a victim's deque).
  double steal_attempt_s = 2e-6;
  /// Cores per socket (the paper's server is 4 × quad-core Opteron).
  /// 0 disables topology: every probe costs steal_attempt_s.
  std::size_t cores_per_socket = 0;
  /// Probe-cost multiplier when thief and victim sit on different
  /// sockets (remote cache line transfer).
  double remote_steal_multiplier = 3.0;
  /// Fixed dispatch cost per acquired task.
  double dispatch_overhead_s = 0.5e-6;
  /// Multiplier on the measured end-of-batch adjuster time (models the
  /// paper's slower 2008-era cores when reproducing Table III).
  double adjuster_overhead_scale = 1.0;
  /// When >= 0, charge this fixed per-batch adjuster overhead instead
  /// of the host-measured time: the run becomes bit-exactly
  /// deterministic (the measured default injects microsecond-scale
  /// host-clock noise into the timeline).
  double fixed_adjuster_overhead_s = -1.0;
  /// When true, a core that has given up on finding work halts (mwait)
  /// instead of spinning, drawing PowerModel's halt power. The paper's
  /// runtimes all spin (that is the waste EEWA attacks); this switch
  /// exists for the thrifty-barrier-style ablation.
  bool idle_halt = false;
  /// When false, run_batch does not retain a per-batch BatchStats entry
  /// (the run totals and the EnergyAccount still accumulate). Fleet runs
  /// push millions of tasks through hundreds of thousands of batches;
  /// retaining every BatchStats would dominate memory.
  bool keep_batch_stats = true;
  /// Seeded DVFS actuation faults (transient write failures, stuck
  /// cores, rung drift) applied to request_rung — the deterministic
  /// test hook for the retry/reconcile/degrade ladder. The fault stream
  /// has its own seed so enabling faults does not perturb scheduling
  /// randomness.
  dvfs::FaultSpec faults{};
  std::uint64_t seed = 42;
  /// Heterogeneous machine description (e.g.
  /// core::MachineTopology::big_little()). When set it must cover
  /// exactly `cores` cores and carry a power model on every type; each
  /// core then charges energy under its own cluster's model, task
  /// execution scales by the core's type-relative slowdown, and `power`
  /// only supplies the machine floor and the type-0 ladder that
  /// ladder() keeps advertising (its size must match type 0's).
  std::shared_ptr<const core::MachineTopology> topology;
  /// Optional event tracer. Needs cores + 1 tracks (one per core plus a
  /// control track). All timestamps are *simulated* time converted to
  /// microseconds — never mix a Machine and a wall-clock host (the real
  /// Runtime) in one tracer, the timelines are incommensurable.
  obs::EventTracer* tracer = nullptr;

  const dvfs::FrequencyLadder& ladder() const { return power.ladder(); }
};

/// Per-batch outcome.
struct BatchStats {
  double span_s = 0.0;      ///< barrier-to-barrier work time
  double overhead_s = 0.0;  ///< end-of-batch scheduler overhead
  std::vector<std::size_t> cores_per_rung;  ///< Fig. 8 series
  std::size_t steals = 0;
  std::size_t probes = 0;
  std::size_t transitions = 0;
  double core_energy_j = 0.0;  ///< cores only, this batch
  double energy_j = 0.0;       ///< incl. machine-floor share
};

/// Whole-run outcome.
struct SimResult {
  std::string policy;
  std::string workload;
  double time_s = 0.0;
  double energy_j = 0.0;      ///< whole machine (paper's wall measure)
  double cpu_energy_j = 0.0;  ///< cores only
  std::size_t steals = 0;
  std::size_t probes = 0;
  std::size_t transitions = 0;
  std::vector<BatchStats> batches;
  std::vector<double> rung_residency_s;  ///< core-seconds per rung
};

class Machine;

/// A scheduling policy drives one simulated run. Policies own all
/// cross-batch state (profiles, controllers, plans).
class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Configure pools, distribute the batch's *already released* tasks
  /// (release_s == 0), and set core frequencies for the coming batch
  /// (via Machine::configure_pools, push_task, request_rung). Tasks
  /// with a later release are delivered through place_task when their
  /// time comes.
  virtual void batch_start(Machine& m, const trace::Batch& batch,
                           std::size_t batch_index) = 0;

  /// Place one task that was just spawned mid-batch into some pool
  /// (same placement rule the policy uses at batch start).
  virtual void place_task(Machine& m, TaskId id) = 0;

  /// Get the next task for `core`: pop locally, steal, or give up
  /// (return nullopt — the core then spins at its current frequency
  /// until the batch barrier). May call Machine::request_rung (Cilk-D's
  /// drop-to-minimum lives here).
  virtual std::optional<TaskId> acquire(Machine& m, std::size_t core) = 0;

  /// Called when a task finishes (profiling hook).
  virtual void task_done(Machine& m, std::size_t core,
                         const trace::TraceTask& task, double exec_s) = 0;

  /// Called at the batch barrier with the batch's simulated makespan;
  /// returns the scheduler overhead in simulated seconds to append
  /// (EEWA's adjuster runs here).
  virtual double batch_end(Machine& m, double makespan_s) = 0;
};

/// The simulated machine. Create once per run; call run_batch per batch
/// (simulate() in simulate.hpp does this for a whole trace).
class Machine {
 public:
  explicit Machine(const SimOptions& options);

  // --- topology / config -------------------------------------------------
  std::size_t cores() const { return rung_.size(); }
  const dvfs::FrequencyLadder& ladder() const {
    return options_.power.ladder();
  }
  const SimOptions& options() const { return options_; }

  /// Heterogeneous description, or nullptr on a homogeneous machine.
  const core::MachineTopology* topology() const {
    return options_.topology.get();
  }
  /// Cluster of `core` (0 on homogeneous machines).
  std::size_t core_type_of(std::size_t core) const {
    return options_.topology != nullptr
               ? options_.topology->type_of_core(core)
               : 0;
  }
  /// Rungs on `core`'s own ladder.
  std::size_t core_ladder_size(std::size_t core) const {
    return options_.topology != nullptr
               ? options_.topology->type(core_type_of(core)).ladder.size()
               : ladder().size();
  }
  /// Slowdown of `core` at `rung` relative to the machine's globally
  /// fastest (type, rung) row; ladder().slowdown(rung) when homogeneous.
  double core_slowdown(std::size_t core, std::size_t rung) const {
    return options_.topology != nullptr
               ? options_.topology->core_slowdown(core, rung)
               : ladder().slowdown(rung);
  }
  /// Size of the rung axis spanning every cluster's ladder (BatchStats
  /// cores_per_rung / SimResult rung_residency_s indexing).
  std::size_t rung_axis_size() const {
    return options_.topology != nullptr ? options_.topology->max_rungs()
                                        : ladder().size();
  }

  util::Xoshiro256& rng() { return rng_; }
  std::size_t batch_index() const { return batch_index_; }
  /// Absolute simulated time of the activity currently being processed
  /// (open-loop policies use it for sojourn accounting against
  /// TraceTask::release_s).
  double now_s() const { return sim_now_s_; }

  // --- pools (policy API, valid during batch_start/acquire) ---------------
  /// Reset to `groups` pools per core (drops any leftover tasks).
  void configure_pools(std::size_t groups);
  std::size_t group_count() const { return group_count_; }

  /// Push a task into `core`'s pool for group `group`.
  void push_task(std::size_t core, std::size_t group, TaskId id);

  /// LIFO pop from own pool (no locking in the real runtime; free here).
  std::optional<TaskId> pop_local(std::size_t core, std::size_t group);

  /// Random-victim FIFO steal from other cores' pools of `group`.
  /// Each probe costs options().steal_attempt_s of simulated time
  /// (times remote_steal_multiplier across sockets).
  std::optional<TaskId> steal(std::size_t thief, std::size_t group);

  /// Socket of a core under the configured topology (0 when disabled).
  std::size_t socket_of(std::size_t core) const {
    return options_.cores_per_socket == 0
               ? 0
               : core / options_.cores_per_socket;
  }

  /// Tasks currently enqueued for `group` across all cores.
  std::size_t group_task_count(std::size_t group) const {
    return group_counts_.at(group);
  }

  /// FIFO take from a specific pool without probe accounting (the
  /// task-sharing central-queue model; pair with add_acquire_cost).
  std::optional<TaskId> take_front(std::size_t core, std::size_t group);

  /// Charge extra acquisition time (lock contention, bookkeeping) to
  /// the core currently inside Policy::acquire.
  void add_acquire_cost(double seconds) { acquire_probe_cost_s_ += seconds; }

  /// Called from Policy::acquire when returning nullopt: instead of
  /// parking until the barrier (or an injection), wake this core again
  /// after `delay_s` to re-evaluate (reactive governors sample
  /// periodically). Ignored when a task was returned.
  void request_repoll(double delay_s) { pending_repoll_s_ = delay_s; }

  // --- frequency (policy API) ---------------------------------------------
  std::size_t rung(std::size_t core) const { return rung_.at(core); }

  /// Request a frequency change; applied immediately, with the transition
  /// latency and energy charged to the core at its next activity.
  /// Returns false when SimOptions::faults rejected the write (stuck
  /// core or transient failure); a drift fault reports success but the
  /// core lands one rung slower — read rung() back to notice, exactly
  /// as on real cpufreq.
  bool request_rung(std::size_t core, std::size_t new_rung);

  /// Writes rejected / drifted by the configured FaultSpec so far.
  std::size_t fault_rejections() const { return fault_rejections_; }
  std::size_t fault_drifts() const { return fault_drifts_; }

  /// The task table of the current batch.
  const trace::TraceTask& task(TaskId id) const { return (*tasks_).at(id); }

  // --- execution -----------------------------------------------------------
  /// Execution time of `t` on a *type-0* core at `rung` (the paper's
  /// CPU-bound model, extended with the memory-stall fraction alpha).
  double exec_time(const trace::TraceTask& t, std::size_t core_rung) const;

  /// Execution time of `t` on a specific core at `core_rung` — the
  /// typed generalization (identical to exec_time on homogeneous
  /// machines); run_batch charges this.
  double exec_time_on(const trace::TraceTask& t, std::size_t core,
                      std::size_t core_rung) const;

  /// Run one batch starting at absolute sim time `start_s`; returns the
  /// absolute end time (barrier + policy overhead). Appends a BatchStats.
  double run_batch(Policy& policy, const trace::Batch& batch,
                   double start_s);

  // --- power state (fleet park/drain/wake API) -----------------------------
  // A Machine historically assumed it was always powered: batches ran
  // back to back and every simulated second belonged to some batch. A
  // fleet parks idle machines into S-states, so the power boundary is
  // explicit: run_idle charges the powered-idle gaps between batches,
  // park/wake bracket the intervals whose (S-state) energy the caller
  // accounts. The charge clock never rewinds across the cycle — the
  // same monotonicity contract charged_until_ enforces inside a batch.

  /// False between park() and wake(). run_batch / run_idle / park throw
  /// std::logic_error on a parked machine — simulated silicon cannot
  /// execute while powered off.
  bool powered() const { return powered_; }

  /// Absolute simulated time through which every core's energy has been
  /// charged (batch ends, idle charges and wake points all advance it).
  double charged_through() const { return session_charged_s_; }

  /// Charge powered-idle spin (or halt, with SimOptions::idle_halt) on
  /// every core from charged_through() to until_s at its current rung.
  /// No-op when until_s has already been charged.
  void run_idle(double until_s);

  /// Power down at at_s (charging the idle tail up to at_s first). The
  /// machine must be drained: throws std::logic_error when any pool
  /// still holds a task — parking must never strand queued work.
  void park(double at_s);

  /// Power back up at at_s. The parked interval's energy is the
  /// caller's to account (S-state ladder); core charging resumes at
  /// at_s, so a park/wake cycle never re-bills or skips a core-second.
  /// Throws std::logic_error when powered or when at_s would rewind the
  /// charge clock.
  void wake(double at_s);

  /// Tasks still sitting in pools (0 after every completed batch).
  std::size_t queued_tasks() const;

  // --- results ---------------------------------------------------------------
  const energy::EnergyAccount& account() const { return account_; }
  const std::vector<BatchStats>& batch_stats() const { return stats_; }
  std::size_t total_steals() const { return total_steals_; }
  std::size_t total_probes() const { return total_probes_; }
  std::size_t total_transitions() const { return total_transitions_; }
  /// Tasks completed across all batches.
  std::size_t total_completed() const { return total_completed_; }

  /// Finalize accounting at absolute end time `end_s` and build the
  /// result summary.
  SimResult finish(double end_s, std::string policy_name,
                   std::string workload_name);

 private:
  void charge(std::size_t core, double from_s, double to_s, std::size_t rung,
              bool active);
  /// Discrete events: task completions, mid-batch task injections
  /// (spawns), and wakeups of idle cores after an injection.
  struct Ev {
    enum Kind { kComplete, kInject, kWake };
    double t;
    Kind kind;
    std::size_t core;  // kComplete/kWake
    TaskId task;       // kComplete/kInject
    double exec_s;     // kComplete
    bool operator>(const Ev& o) const {
      if (t != o.t) return t > o.t;
      if (kind != o.kind) return kind > o.kind;  // inject before wake
      return core > o.core;
    }
  };

  bool fault_chance(double p);

  SimOptions options_;
  energy::EnergyAccount account_;
  util::Xoshiro256 rng_;
  util::SplitMix64 fault_rng_;
  std::size_t fault_rejections_ = 0;
  std::size_t fault_drifts_ = 0;

  std::vector<std::size_t> rung_;
  std::vector<double> pending_latency_s_;  // unpaid DVFS stall per core
  std::vector<double> charged_until_;      // energy charged up to, per core
  std::size_t acquire_probes_ = 0;         // probes in the current acquire

  std::size_t group_count_ = 1;
  // pools_[core * group_count_ + group]
  std::vector<std::deque<TaskId>> pools_;
  std::vector<std::size_t> group_counts_;
  double acquire_probe_cost_s_ = 0.0;  // time cost of the current acquire
  double pending_repoll_s_ = 0.0;      // repoll request from acquire

  const std::vector<trace::TraceTask>* tasks_ = nullptr;
  std::size_t batch_index_ = 0;
  double sim_now_s_ = 0.0;  // sim time of the activity being processed

  bool powered_ = true;
  double session_charged_s_ = 0.0;  // all cores charged through here
  std::size_t total_completed_ = 0;

  std::vector<BatchStats> stats_;
  std::size_t total_steals_ = 0;
  std::size_t total_probes_ = 0;
  std::size_t total_transitions_ = 0;
  std::size_t batch_steals_ = 0;
  std::size_t batch_probes_ = 0;
  std::size_t batch_transitions_ = 0;
};

/// DvfsBackend view over a Machine's frequency controls, so the
/// EewaController's fault-tolerant actuation path (retry, readback,
/// reconcile) drives simulated cores through the exact same interface
/// as real cpufreq hardware. The Machine must outlive the adapter.
class MachineDvfsBackend : public dvfs::DvfsBackend {
 public:
  explicit MachineDvfsBackend(Machine& m) : m_(m) {}

  const dvfs::FrequencyLadder& ladder() const override {
    return m_.ladder();
  }
  std::size_t core_count() const override { return m_.cores(); }
  bool set_frequency(std::size_t core, std::size_t freq_index) override {
    return m_.request_rung(core, freq_index);
  }
  std::size_t frequency_index(std::size_t core) const override {
    return m_.rung(core);
  }
  bool is_live() const override { return true; }
  std::size_t transition_count() const override {
    return m_.total_transitions();
  }

 private:
  Machine& m_;
};

}  // namespace eewa::sim
