// The four schedulers of the paper's evaluation, as simulator policies:
//
//  - CilkPolicy:  classic random work-stealing, every core at a fixed
//                 frequency (F0 by default, or a caller-supplied
//                 asymmetric configuration for the Fig. 7 experiment).
//  - CilkDPolicy: Cilk + the "D" energy tweak: a core that finds every
//                 pool empty scales itself to the lowest frequency; all
//                 cores are restored to F0 at the next batch.
//  - WatsPolicy:  workload-aware stealing on a *fixed* asymmetric
//                 configuration (rob-the-weaker-first preference lists,
//                 heavy classes allocated to fast c-groups), no DVFS.
//  - EewaPolicy:  the paper's contribution — wraps core::EewaController:
//                 measurement batch at F0, then per-batch frequency plans
//                 plus preference-based stealing.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/eewa_controller.hpp"
#include "core/preference_list.hpp"
#include "core/task_class.hpp"
#include "sim/machine.hpp"
#include "util/tournament_tree.hpp"

namespace eewa::sim {

/// Task-sharing (the OpenMP-style alternative the paper's §I contrasts
/// with stealing): one central queue; every acquisition pays a lock
/// cost that grows with the number of cores contending for it. All
/// cores stay at F0.
class SharingPolicy : public Policy {
 public:
  /// `lock_base_s`: uncontended pop cost; the effective cost scales
  /// with the machine size (coarse contention model).
  explicit SharingPolicy(double lock_base_s = 1e-6)
      : lock_base_s_(lock_base_s) {}

  std::string name() const override { return "sharing"; }
  void batch_start(Machine& m, const trace::Batch& batch,
                   std::size_t batch_index) override;
  void place_task(Machine& m, TaskId id) override;
  std::optional<TaskId> acquire(Machine& m, std::size_t core) override;
  void task_done(Machine& m, std::size_t core, const trace::TraceTask& task,
                 double exec_s) override;
  double batch_end(Machine& m, double makespan_s) override;

 private:
  double lock_base_s_;
};

/// Plain random work-stealing at fixed frequencies.
class CilkPolicy : public Policy {
 public:
  /// All cores at F0.
  CilkPolicy() = default;

  /// Fixed per-core rungs (the Fig. 7 asymmetric configuration).
  explicit CilkPolicy(std::vector<std::size_t> fixed_rungs);

  std::string name() const override { return "cilk"; }
  void batch_start(Machine& m, const trace::Batch& batch,
                   std::size_t batch_index) override;
  void place_task(Machine& m, TaskId id) override;
  std::optional<TaskId> acquire(Machine& m, std::size_t core) override;
  void task_done(Machine& m, std::size_t core, const trace::TraceTask& task,
                 double exec_s) override;
  double batch_end(Machine& m, double makespan_s) override;

 private:
  std::vector<std::size_t> fixed_rungs_;  // empty = all F0
};

/// Cilk with idle cores self-scaling to the lowest frequency.
class CilkDPolicy : public Policy {
 public:
  std::string name() const override { return "cilk-d"; }
  void batch_start(Machine& m, const trace::Batch& batch,
                   std::size_t batch_index) override;
  void place_task(Machine& m, TaskId id) override;
  std::optional<TaskId> acquire(Machine& m, std::size_t core) override;
  void task_done(Machine& m, std::size_t core, const trace::TraceTask& task,
                 double exec_s) override;
  double batch_end(Machine& m, double makespan_s) override;
};

/// A per-core reactive governor baseline (Linux "ondemand"-style, the
/// scheduler-oblivious alternative): random stealing like Cilk, but an
/// idle core steps one rung down per failed sweep and jumps straight
/// back to F0 when it gets work. Sits between Cilk-D (one big drop) and
/// EEWA (planned) in sophistication.
class OndemandPolicy : public Policy {
 public:
  std::string name() const override { return "ondemand"; }
  void batch_start(Machine& m, const trace::Batch& batch,
                   std::size_t batch_index) override;
  void place_task(Machine& m, TaskId id) override;
  std::optional<TaskId> acquire(Machine& m, std::size_t core) override;
  void task_done(Machine& m, std::size_t core, const trace::TraceTask& task,
                 double exec_s) override;
  double batch_end(Machine& m, double makespan_s) override;
};

/// Workload-aware task stealing (WATS) on a fixed asymmetric machine.
class WatsPolicy : public Policy {
 public:
  /// `core_rungs[c]` is the fixed ladder rung of core c; `class_names`
  /// are the trace's class names (profiling identity).
  WatsPolicy(std::vector<std::size_t> core_rungs,
             std::vector<std::string> class_names);

  std::string name() const override { return "wats"; }
  void batch_start(Machine& m, const trace::Batch& batch,
                   std::size_t batch_index) override;
  void place_task(Machine& m, TaskId id) override;
  std::optional<TaskId> acquire(Machine& m, std::size_t core) override;
  void task_done(Machine& m, std::size_t core, const trace::TraceTask& task,
                 double exec_s) override;
  double batch_end(Machine& m, double makespan_s) override;

 private:
  void build_groups(const Machine& m);

  std::vector<std::size_t> core_rungs_;
  std::vector<std::string> class_names_;
  core::TaskClassRegistry registry_;
  std::vector<std::size_t> class_ids_;  // trace class -> registry id

  // Fixed c-group structure (built once). On typed machines groups are
  // keyed per (core type, rung) — clusters own independent ladders — and
  // ordered by the topology's global effective-speed rows.
  std::vector<std::vector<std::size_t>> group_cores_;  // fastest first
  std::vector<std::size_t> group_rung_;
  std::vector<std::size_t> group_type_;
  std::vector<std::size_t> core_group_;
  core::PreferenceTable prefs_ = {};
  bool groups_built_ = false;

  // Allocation computed at each batch end for the next batch.
  std::vector<std::size_t> class_to_group_;
  std::vector<std::size_t> rr_;  // round-robin cursor per group
  bool first_batch_ = true;
};

/// The EEWA scheduler.
class EewaPolicy : public Policy {
 public:
  /// `class_names` are the trace's class names (the "function names"
  /// EEWA groups tasks by).
  explicit EewaPolicy(std::vector<std::string> class_names,
                      core::ControllerOptions options = {});

  std::string name() const override { return "eewa"; }
  void batch_start(Machine& m, const trace::Batch& batch,
                   std::size_t batch_index) override;
  void place_task(Machine& m, TaskId id) override;
  std::optional<TaskId> acquire(Machine& m, std::size_t core) override;
  void task_done(Machine& m, std::size_t core, const trace::TraceTask& task,
                 double exec_s) override;
  double batch_end(Machine& m, double makespan_s) override;

  /// The wrapped controller (valid after the first batch_start).
  const core::EewaController& controller() const { return *ctrl_; }

  /// Most frequently applied cores-per-rung configuration across the
  /// run so far (the Fig. 7 "most often used frequency configuration").
  std::vector<std::size_t> modal_rungs(const Machine& m) const;

  /// Per-batch, per-core rungs recorded by the (possibly reconciled)
  /// plan at each batch start.
  const std::vector<std::vector<std::size_t>>& planned_rungs() const {
    return planned_rungs_;
  }

  /// Per-batch, per-core rungs the simulated machine actually reached.
  /// Matches planned_rungs() whenever supervised actuation reconciled
  /// the plan to reality.
  const std::vector<std::vector<std::size_t>>& applied_rungs() const {
    return applied_rungs_;
  }

 private:
  std::vector<std::string> class_names_;
  core::ControllerOptions options_;
  std::unique_ptr<core::EewaController> ctrl_;
  std::vector<std::size_t> class_ids_;  // trace class -> controller id
  std::vector<std::size_t> core_group_;
  std::vector<std::size_t> rr_;  // round-robin cursor per group
  double overhead_us_seen_ = 0.0;
  std::vector<std::vector<std::size_t>> applied_rungs_;  // per batch
  std::vector<std::vector<std::size_t>> planned_rungs_;  // per batch
};

/// Shared helper: push the *released* tasks of `batch` round-robin over
/// all cores into pool group 0 (the classic single-pool distribution);
/// tasks with release_s > 0 arrive later through place_task.
void distribute_round_robin(Machine& m, const trace::Batch& batch);

/// Construct a per-machine scheduling policy by name ("cilk", "cilk-d",
/// "sharing", "ondemand", "eewa"). `class_names` are the trace's class
/// names (only EEWA uses them). Throws std::invalid_argument on an
/// unknown name. simulate_named and the fleet both build through here.
std::unique_ptr<Policy> make_policy(const std::string& name,
                                    const std::vector<std::string>& class_names);

// --- fleet placement tier ---------------------------------------------------
// One tier above the per-machine schedulers: the fleet routes each
// arriving task to a machine, and only then does that machine's Policy
// decide which core runs it. Placements are deterministic by contract
// (no RNG) — fleet runs must be bitwise-reproducible from the seed.

/// What the placement tier sees of one machine at routing time.
struct MachineView {
  bool powered = true;
  std::size_t sleep_state = 0;  ///< ladder index while parked
  /// Committed-plus-staged work per core, in seconds: a proxy for how
  /// long a new task would wait before a core frees up.
  double backlog_s = 0.0;
  /// Latency to first instruction if routed here now (0 when powered).
  double wake_latency_s = 0.0;
};

/// Routes arriving tasks to machines.
///
/// Two usage modes. The legacy mode is a bare `place(work_s, views)`
/// per arrival, which scans views in O(M). The indexed mode is the
/// fleet's hot path: `begin_epoch(views)` once after the per-epoch view
/// refresh builds an internal index, each `place` answers from the
/// index in O(log M), and `update(i, views)` repairs the index after
/// the fleet mutates views[i] (staging work, starting a wake). Both
/// modes return identical picks — the index encodes the same
/// first-strictly-better tie rule the scans use.
class FleetPlacement {
 public:
  virtual ~FleetPlacement() = default;
  virtual std::string name() const = 0;
  /// Pick a machine index for a task of `work_s` normalized work.
  /// `views` is kept current by the fleet between calls.
  virtual std::size_t place(double work_s,
                            const std::vector<MachineView>& views) = 0;
  /// Build the O(log M) index over `views`. Without this call, place()
  /// falls back to the linear scan. Call again whenever views were
  /// changed outside update()'s knowledge (the fleet calls it once per
  /// epoch, right after refreshing every view).
  virtual void begin_epoch(const std::vector<MachineView>& views) {
    (void)views;
  }
  /// Repair the index after views[i] changed. No-op for placements
  /// without an index (round-robin never looks at the views).
  virtual void update(std::size_t i, const std::vector<MachineView>& views) {
    (void)i;
    (void)views;
  }
};

/// Baseline: cycle through machines regardless of state — wakes parked
/// machines needlessly and spreads load thin (the anti-consolidation
/// strawman the energy comparison is made against).
class RoundRobinPlacement : public FleetPlacement {
 public:
  std::string name() const override { return "round-robin"; }
  std::size_t place(double work_s,
                    const std::vector<MachineView>& views) override;

 private:
  std::size_t cursor_ = 0;
};

/// Latency-greedy: the machine where the task would start soonest
/// (backlog plus any wake latency), ties to the lowest index.
class LeastLoadedPlacement : public FleetPlacement {
 public:
  std::string name() const override { return "least-loaded"; }
  std::size_t place(double work_s,
                    const std::vector<MachineView>& views) override;
  void begin_epoch(const std::vector<MachineView>& views) override;
  void update(std::size_t i, const std::vector<MachineView>& views) override;

 private:
  /// argmin over backlog + wake latency, ties to the lowest index.
  util::TournamentTree<double, std::less<double>> cost_;
};

/// Energy-greedy pack-and-park: fill the *busiest* powered machine that
/// still has room (keeping the working set dense so idle machines can
/// park and sink down the ladder), wake the shallowest sleeper only
/// when every powered machine is at the fill line, and spill to
/// least-loaded when nothing is parked.
class PackAndParkPlacement : public FleetPlacement {
 public:
  /// `fill_s`: per-core backlog at which a machine counts as full.
  explicit PackAndParkPlacement(double fill_s) : fill_s_(fill_s) {}

  std::string name() const override { return "pack"; }
  std::size_t place(double work_s,
                    const std::vector<MachineView>& views) override;
  void begin_epoch(const std::vector<MachineView>& views) override;
  void update(std::size_t i, const std::vector<MachineView>& views) override;

 private:
  double fill_s_;
  /// argmax backlog over powered machines below the fill line.
  util::TournamentTree<double, std::greater<double>> packable_;
  /// argmin wake latency over parked machines.
  util::TournamentTree<double, std::less<double>> sleepers_;
  /// Spill tier: least-loaded argmin over everything.
  util::TournamentTree<double, std::less<double>> cost_;
};

/// Placement factory: "round-robin", "least-loaded", "pack".
/// `pack_fill_s` parameterizes the pack policy (ignored by the others).
/// Throws std::invalid_argument on an unknown name.
std::unique_ptr<FleetPlacement> make_placement(const std::string& name,
                                               double pack_fill_s);

}  // namespace eewa::sim
