#include "sim/machine.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace eewa::sim {

namespace {

/// Per-core power models for the EnergyAccount; empty when homogeneous.
std::vector<const energy::PowerModel*> per_core_models(
    const SimOptions& options) {
  std::vector<const energy::PowerModel*> models;
  const core::MachineTopology* topo = options.topology.get();
  if (topo == nullptr) return models;
  if (topo->total_cores() != options.cores) {
    throw std::invalid_argument(
        "Machine: topology core count does not match cores");
  }
  if (!topo->has_power_models()) {
    throw std::invalid_argument(
        "Machine: topology requires per-type power models");
  }
  if (topo->type(0).ladder.size() != options.power.ladder().size()) {
    throw std::invalid_argument(
        "Machine: power ladder must match the topology's type-0 ladder");
  }
  models.reserve(options.cores);
  for (std::size_t c = 0; c < options.cores; ++c) {
    models.push_back(topo->type(topo->type_of_core(c)).model.get());
  }
  return models;
}

}  // namespace

Machine::Machine(const SimOptions& options)
    : options_(options),
      account_(options_.power, options.cores, per_core_models(options_)),
      rng_(options.seed),
      fault_rng_(options.faults.seed),
      rung_(options.cores, 0),
      pending_latency_s_(options.cores, 0.0),
      charged_until_(options.cores, 0.0),
      pools_(options.cores),
      group_counts_(1, 0) {
  if (options.cores == 0) {
    throw std::invalid_argument("Machine: need at least one core");
  }
  if (options.tracer != nullptr &&
      options.tracer->track_count() < options.cores + 1) {
    throw std::invalid_argument(
        "Machine: tracer needs cores + 1 tracks (one per core plus the "
        "control track)");
  }
}

void Machine::configure_pools(std::size_t groups) {
  if (groups == 0) {
    throw std::invalid_argument("Machine: need at least one pool group");
  }
  if (group_count_ == groups && pools_.size() == cores() * groups) {
    // Same shape as the previous batch (the common fleet case: one
    // machine runs hundreds of thousands of batches with a fixed class
    // count) — clear in place and keep each deque's allocated blocks.
    for (auto& p : pools_) p.clear();
    std::fill(group_counts_.begin(), group_counts_.end(), 0);
    return;
  }
  group_count_ = groups;
  pools_.assign(cores() * groups, {});
  group_counts_.assign(groups, 0);
}

void Machine::push_task(std::size_t core, std::size_t group, TaskId id) {
  pools_.at(core * group_count_ + group).push_back(id);
  ++group_counts_.at(group);
}

std::optional<TaskId> Machine::pop_local(std::size_t core,
                                         std::size_t group) {
  auto& pool = pools_.at(core * group_count_ + group);
  if (pool.empty()) return std::nullopt;
  const TaskId id = pool.back();
  pool.pop_back();
  --group_counts_[group];
  return id;
}

std::optional<TaskId> Machine::take_front(std::size_t core,
                                          std::size_t group) {
  auto& pool = pools_.at(core * group_count_ + group);
  if (pool.empty()) return std::nullopt;
  const TaskId id = pool.front();
  pool.pop_front();
  --group_counts_[group];
  return id;
}

std::optional<TaskId> Machine::steal(std::size_t thief, std::size_t group) {
  if (group_counts_.at(group) == 0) return std::nullopt;
  const std::size_t n = cores();
  auto take = [&](std::size_t victim) -> std::optional<TaskId> {
    auto& pool = pools_[victim * group_count_ + group];
    if (pool.empty()) return std::nullopt;
    const TaskId id = pool.front();  // steal the oldest (deque top)
    pool.pop_front();
    --group_counts_[group];
    ++batch_steals_;
    ++total_steals_;
    if (obs::EventTracer* tr = options_.tracer;
        tr != nullptr && tr->enabled()) {
      tr->steal(thief, sim_now_s_ * 1e6, static_cast<std::uint32_t>(group),
                static_cast<std::uint32_t>(victim), /*cross_group=*/false);
    }
    return id;
  };
  auto probe = [&](std::size_t victim) {
    ++acquire_probes_;
    ++batch_probes_;
    ++total_probes_;
    double cost = options_.steal_attempt_s;
    if (socket_of(victim) != socket_of(thief)) {
      cost *= options_.remote_steal_multiplier;
    }
    acquire_probe_cost_s_ += cost;
  };
  // Random probing, as the real runtime does; every probe costs time
  // (more across sockets).
  for (std::size_t attempt = 0; attempt < 4 * n; ++attempt) {
    // Draw over the n-1 other cores; remapping a self-hit to thief+1
    // would probe that neighbour twice as often as everyone else.
    const std::size_t victim =
        n > 1 ? util::uniform_excluding(rng_.next(), thief, n) : thief;
    probe(victim);
    if (auto id = take(victim)) return id;
  }
  // Deterministic sweep fallback (bounded worst case).
  for (std::size_t victim = 0; victim < n; ++victim) {
    probe(victim);
    if (auto id = take(victim)) return id;
  }
  return std::nullopt;
}

bool Machine::fault_chance(double p) {
  if (p <= 0.0) return false;
  const double u = static_cast<double>(fault_rng_.next() >> 11) * 0x1.0p-53;
  return u < p;
}

bool Machine::request_rung(std::size_t core, std::size_t new_rung) {
  if (new_rung >= core_ladder_size(core)) {
    throw std::out_of_range("Machine: rung out of range");
  }
  if (options_.faults.enabled()) {
    if (options_.faults.is_stuck(core)) {
      ++fault_rejections_;
      return false;
    }
    if (fault_chance(options_.faults.transient_failure_p)) {
      ++fault_rejections_;
      return false;
    }
    if (fault_chance(options_.faults.drift_p)) {
      const std::size_t drifted =
          std::min(new_rung + 1, core_ladder_size(core) - 1);
      if (drifted != new_rung) {
        new_rung = drifted;
        ++fault_drifts_;
      }
    }
  }
  if (rung_.at(core) == new_rung) return true;
  rung_[core] = new_rung;
  if (obs::EventTracer* tr = options_.tracer;
      tr != nullptr && tr->enabled()) {
    tr->rung(core, sim_now_s_ * 1e6, static_cast<std::uint32_t>(core),
             static_cast<std::uint32_t>(new_rung));
  }
  pending_latency_s_[core] += options_.transition.latency_s;
  account_.add_extra_joules(options_.transition.energy_j);
  ++batch_transitions_;
  ++total_transitions_;
  return true;
}

std::size_t Machine::queued_tasks() const {
  std::size_t n = 0;
  for (std::size_t c : group_counts_) n += c;
  return n;
}

void Machine::run_idle(double until_s) {
  if (!powered_) {
    throw std::logic_error("Machine: run_idle on a parked machine");
  }
  if (until_s <= session_charged_s_) return;
  sim_now_s_ = until_s;
  for (std::size_t c = 0; c < cores(); ++c) {
    charge(c, session_charged_s_, until_s, rung_[c],
           /*active=*/!options_.idle_halt);
  }
  session_charged_s_ = until_s;
}

void Machine::park(double at_s) {
  if (!powered_) {
    throw std::logic_error("Machine: park on an already-parked machine");
  }
  if (at_s < session_charged_s_ - 1e-12) {
    throw std::logic_error(
        "Machine: park in the past (an interval would be billed both "
        "powered and parked)");
  }
  if (queued_tasks() != 0) {
    throw std::logic_error("Machine: parking would strand queued tasks");
  }
  run_idle(at_s);
  powered_ = false;
}

void Machine::wake(double at_s) {
  if (powered_) {
    throw std::logic_error("Machine: wake on a powered machine");
  }
  if (at_s < session_charged_s_ - 1e-12) {
    throw std::logic_error(
        "Machine: wake rewinds the charge clock (would re-bill the "
        "pre-park interval)");
  }
  powered_ = true;
  // The parked interval [charged_through, at_s) is the caller's S-state
  // residency; core charging resumes here and stays monotone.
  session_charged_s_ = std::max(session_charged_s_, at_s);
}

double Machine::exec_time(const trace::TraceTask& t,
                          std::size_t core_rung) const {
  const double slowdown = ladder().slowdown(core_rung);
  return t.work_s * (t.mem_alpha + (1.0 - t.mem_alpha) * slowdown);
}

double Machine::exec_time_on(const trace::TraceTask& t, std::size_t core,
                             std::size_t core_rung) const {
  const double slowdown = core_slowdown(core, core_rung);
  return t.work_s * (t.mem_alpha + (1.0 - t.mem_alpha) * slowdown);
}

void Machine::charge(std::size_t core, double from_s, double to_s,
                     std::size_t rung, bool active) {
  if (to_s > from_s) {
    account_.add_core_time(core, to_s - from_s, rung, active);
  }
  // Never rewind: a zero-length charge in the past must not let a later
  // charge re-bill an interval this core already paid for.
  charged_until_[core] = std::max(charged_until_[core], to_s);
}

double Machine::run_batch(Policy& policy, const trace::Batch& batch,
                          double start_s) {
  if (!powered_) {
    throw std::logic_error("Machine: run_batch on a parked machine");
  }
  if (start_s < session_charged_s_ - 1e-12) {
    throw std::logic_error(
        "Machine: batch starts before the charged-through point (would "
        "re-bill an interval)");
  }
  tasks_ = &batch.tasks;
  batch_steals_ = batch_probes_ = batch_transitions_ = 0;
  sim_now_s_ = start_s;
  const double core_j_before = account_.core_joules();
  obs::EventTracer* tr = options_.tracer;

  policy.batch_start(*this, batch, batch_index_);

  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> pq;
  std::vector<double> idle_from(cores(), -1.0);
  std::size_t remaining = batch.tasks.size();
  double last_completion = start_s;

  // Tasks spawned mid-batch arrive as injection events.
  for (std::size_t i = 0; i < batch.tasks.size(); ++i) {
    if (batch.tasks[i].release_s > 0.0) {
      pq.push(Ev{start_s + batch.tasks[i].release_s, Ev::kInject, 0, i,
                 0.0});
    }
  }

  for (auto& cu : charged_until_) cu = start_s;

  // Start (or idle) one core at `now`; schedules its completion event.
  auto kick = [&](std::size_t core, double now) {
    sim_now_s_ = now;
    acquire_probes_ = 0;
    acquire_probe_cost_s_ = 0.0;
    pending_repoll_s_ = 0.0;
    const std::size_t pre_rung = rung_[core];
    const double pre_pending = pending_latency_s_[core];
    const auto got = policy.acquire(*this, core);
    // Probe time runs at the pre-acquire frequency...
    double t = now + acquire_probe_cost_s_;
    charge(core, now, t, pre_rung, /*active=*/true);
    // ...then any transition the policy requested stalls the core.
    const double stall = pending_latency_s_[core];
    if (stall > 0.0) {
      charge(core, t, t + stall, rung_[core], /*active=*/true);
      t += stall;
      pending_latency_s_[core] = 0.0;
    }
    (void)pre_pending;
    if (got) {
      const double dispatch = options_.dispatch_overhead_s;
      const double exec = exec_time_on(task(*got), core, rung_[core]);
      charge(core, t, t + dispatch + exec, rung_[core], /*active=*/true);
      pq.push(Ev{t + dispatch + exec, Ev::kComplete, core, *got, exec});
    } else {
      idle_from[core] = t;
      if (pending_repoll_s_ > 0.0) {
        pq.push(Ev{t + pending_repoll_s_, Ev::kWake, core, 0, 0.0});
      }
    }
  };

  // Batch start: every core pays its (possibly just-planned) transition,
  // then goes hunting for work.
  for (std::size_t c = 0; c < cores(); ++c) {
    double t = start_s;
    const double stall = pending_latency_s_[c];
    if (stall > 0.0) {
      charge(c, t, t + stall, rung_[c], /*active=*/true);
      t += stall;
      pending_latency_s_[c] = 0.0;
    }
    if (remaining > 0) {
      kick(c, t);
    } else {
      idle_from[c] = t;
    }
  }

  BatchStats bs;
  bs.cores_per_rung.assign(rung_axis_size(), 0);
  for (std::size_t c = 0; c < cores(); ++c) ++bs.cores_per_rung[rung_[c]];

  while (remaining > 0) {
    if (pq.empty()) {
      throw std::logic_error(
          "Machine: tasks remain but nothing is executing (policy lost "
          "tasks?)");
    }
    const Ev ev = pq.top();
    pq.pop();
    sim_now_s_ = ev.t;
    switch (ev.kind) {
      case Ev::kComplete:
        if (tr != nullptr && tr->enabled()) {
          tr->task(ev.core, (ev.t - ev.exec_s) * 1e6, ev.exec_s * 1e6,
                   static_cast<std::uint32_t>(task(ev.task).class_id),
                   static_cast<std::uint32_t>(rung_[ev.core]),
                   /*failed=*/false);
        }
        policy.task_done(*this, ev.core, task(ev.task), ev.exec_s);
        --remaining;
        ++total_completed_;
        last_completion = ev.t;
        if (remaining > 0) kick(ev.core, ev.t);
        else idle_from[ev.core] = ev.t;
        break;
      case Ev::kInject:
        policy.place_task(*this, ev.task);
        // A fresh task may unblock idle cores; wake them to re-probe.
        for (std::size_t c = 0; c < cores(); ++c) {
          if (idle_from[c] >= 0.0) {
            pq.push(Ev{ev.t, Ev::kWake, c, 0, 0.0});
          }
        }
        break;
      case Ev::kWake: {
        if (idle_from[ev.core] < 0.0) break;
        // An injection can wake a core "before" it finished the failed
        // probe sweep that put it to sleep (idle_from > ev.t); the core
        // re-probes the moment it actually becomes idle, never earlier —
        // rewinding would re-bill probe time already charged.
        const double wake_t = std::max(ev.t, idle_from[ev.core]);
        // Charge the idle spin up to the wake, then go hunting again.
        charge(ev.core, idle_from[ev.core], wake_t, rung_[ev.core],
               /*active=*/!options_.idle_halt);
        idle_from[ev.core] = -1.0;
        kick(ev.core, wake_t);
        break;
      }
    }
  }

  const double makespan_end = batch.tasks.empty() ? start_s : last_completion;
  // A core whose final (failed) acquire sweep or transition stall ran past
  // the last completion is charged beyond makespan_end; the barrier is
  // wherever the last core actually stopped, else re-charging from
  // makespan_end would double-count the straggler's tail and break
  // Σ residency == cores · wall time.
  double batch_busy_end = makespan_end;
  for (std::size_t c = 0; c < cores(); ++c) {
    batch_busy_end = std::max(batch_busy_end, charged_until_[c]);
  }
  // Idle cores spun (or, with idle_halt, slept) until the barrier.
  for (std::size_t c = 0; c < cores(); ++c) {
    if (idle_from[c] >= 0.0 && idle_from[c] < batch_busy_end) {
      charge(c, idle_from[c], batch_busy_end, rung_[c],
             /*active=*/!options_.idle_halt);
    }
  }

  sim_now_s_ = batch_busy_end;
  const double overhead = policy.batch_end(*this, makespan_end - start_s);
  const double end_s = batch_busy_end + overhead;
  if (tr != nullptr && tr->enabled()) {
    // The policy's end-of-batch work (EEWA: the Table III adjuster)
    // nests at the tail of the batch span, on the control track.
    if (overhead > 0.0) {
      tr->phase(cores(), batch_busy_end * 1e6, overhead * 1e6,
                obs::PhaseKind::kPlan, batch_index_);
    }
    tr->phase(cores(), start_s * 1e6, (end_s - start_s) * 1e6,
              obs::PhaseKind::kBatch, batch_index_);
  }
  if (overhead > 0.0) {
    for (std::size_t c = 0; c < cores(); ++c) {
      charge(c, batch_busy_end, end_s, rung_[c], /*active=*/true);
    }
  }

  // The batch span runs to the barrier — where the last core actually
  // stopped — not to the last task completion; the controller's T above
  // still uses the task makespan.
  bs.span_s = batch_busy_end - start_s;
  bs.overhead_s = overhead;
  bs.steals = batch_steals_;
  bs.probes = batch_probes_;
  bs.transitions = batch_transitions_;
  bs.core_energy_j = account_.core_joules() - core_j_before;
  bs.energy_j =
      bs.core_energy_j + options_.power.floor_w() * (end_s - start_s);
  if (options_.keep_batch_stats) stats_.push_back(std::move(bs));

  ++batch_index_;
  tasks_ = nullptr;
  session_charged_s_ = std::max(session_charged_s_, end_s);
  return end_s;
}

SimResult Machine::finish(double end_s, std::string policy_name,
                          std::string workload_name) {
  account_.set_makespan(end_s);
  SimResult res;
  res.policy = std::move(policy_name);
  res.workload = std::move(workload_name);
  res.time_s = end_s;
  res.energy_j = account_.total_joules();
  res.cpu_energy_j = account_.core_joules();
  res.steals = total_steals_;
  res.probes = total_probes_;
  res.transitions = total_transitions_;
  res.batches = stats_;
  res.rung_residency_s.resize(rung_axis_size());
  for (std::size_t j = 0; j < rung_axis_size(); ++j) {
    res.rung_residency_s[j] = account_.rung_residency_s(j);
  }
  return res;
}

}  // namespace eewa::sim
