#include "sim/policies.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/wats_allocation.hpp"

namespace eewa::sim {

void distribute_round_robin(Machine& m, const trace::Batch& batch) {
  // Shuffle the submission order so deque positions are not correlated
  // with task size (in a real run spawn order and stealing randomize
  // this; a fixed generator order would bias LIFO pops systematically).
  std::vector<TaskId> order;
  order.reserve(batch.tasks.size());
  for (std::size_t i = 0; i < batch.tasks.size(); ++i) {
    if (batch.tasks[i].release_s <= 0.0) order.push_back(i);
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[m.rng().bounded(i)]);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    m.push_task(i % m.cores(), 0, order[i]);
  }
}

/// Mid-batch spawns land on a random core's group-0 pool (in a real
/// runtime the spawning core pushes locally; a random owner models the
/// spawner being an arbitrary running worker).
void place_random(Machine& m, TaskId id, std::size_t group = 0) {
  m.push_task(m.rng().bounded(m.cores()), group, id);
}

// ------------------------------------------------------------- Sharing ----

void SharingPolicy::batch_start(Machine& m, const trace::Batch& batch,
                                std::size_t /*batch_index*/) {
  for (std::size_t c = 0; c < m.cores(); ++c) m.request_rung(c, 0);
  m.configure_pools(1);
  // One central FIFO queue, held on core 0.
  for (std::size_t i = 0; i < batch.tasks.size(); ++i) {
    if (batch.tasks[i].release_s <= 0.0) m.push_task(0, 0, i);
  }
}

void SharingPolicy::place_task(Machine& m, TaskId id) {
  m.push_task(0, 0, id);
}

std::optional<TaskId> SharingPolicy::acquire(Machine& m, std::size_t core) {
  // Every dequeue serializes on the shared lock; the coarse contention
  // model scales the critical section with the number of potential
  // contenders (this is exactly the scalability hazard the paper's §I
  // cites when motivating distributed task pools).
  m.add_acquire_cost(lock_base_s_ *
                     (1.0 + static_cast<double>(m.cores()) / 8.0));
  (void)core;
  return m.take_front(0, 0);
}

void SharingPolicy::task_done(Machine&, std::size_t,
                              const trace::TraceTask&, double) {}

double SharingPolicy::batch_end(Machine&, double) { return 0.0; }

// ---------------------------------------------------------------- Cilk ----

CilkPolicy::CilkPolicy(std::vector<std::size_t> fixed_rungs)
    : fixed_rungs_(std::move(fixed_rungs)) {}

void CilkPolicy::batch_start(Machine& m, const trace::Batch& batch,
                             std::size_t /*batch_index*/) {
  if (!fixed_rungs_.empty() && fixed_rungs_.size() != m.cores()) {
    throw std::invalid_argument("CilkPolicy: fixed_rungs/core mismatch");
  }
  for (std::size_t c = 0; c < m.cores(); ++c) {
    m.request_rung(c, fixed_rungs_.empty() ? 0 : fixed_rungs_[c]);
  }
  m.configure_pools(1);
  distribute_round_robin(m, batch);
}

void CilkPolicy::place_task(Machine& m, TaskId id) {
  place_random(m, id);
}

std::optional<TaskId> CilkPolicy::acquire(Machine& m, std::size_t core) {
  if (auto id = m.pop_local(core, 0)) return id;
  return m.steal(core, 0);
}

void CilkPolicy::task_done(Machine&, std::size_t, const trace::TraceTask&,
                           double) {}

double CilkPolicy::batch_end(Machine&, double) { return 0.0; }

// -------------------------------------------------------------- Cilk-D ----

void CilkDPolicy::batch_start(Machine& m, const trace::Batch& batch,
                              std::size_t /*batch_index*/) {
  // Restore every core that parked itself at the bottom last batch.
  for (std::size_t c = 0; c < m.cores(); ++c) m.request_rung(c, 0);
  m.configure_pools(1);
  distribute_round_robin(m, batch);
}

void CilkDPolicy::place_task(Machine& m, TaskId id) {
  place_random(m, id);
}

std::optional<TaskId> CilkDPolicy::acquire(Machine& m, std::size_t core) {
  auto got = m.pop_local(core, 0);
  if (!got) got = m.steal(core, 0);
  if (got) {
    // A core that parked itself mid-batch ramps back up on new work.
    if (m.rung(core) != 0) m.request_rung(core, 0);
    return got;
  }
  // Nothing anywhere: self-scale to the lowest frequency until more
  // work appears or the barrier (the paper's "Cilk-D" baseline). The
  // bottom rung is the core's own ladder's (clusters may differ).
  m.request_rung(core, m.core_ladder_size(core) - 1);
  return std::nullopt;
}

void CilkDPolicy::task_done(Machine&, std::size_t, const trace::TraceTask&,
                            double) {}

double CilkDPolicy::batch_end(Machine&, double) { return 0.0; }

// ------------------------------------------------------------ Ondemand ----

void OndemandPolicy::batch_start(Machine& m, const trace::Batch& batch,
                                 std::size_t /*batch_index*/) {
  for (std::size_t c = 0; c < m.cores(); ++c) m.request_rung(c, 0);
  m.configure_pools(1);
  distribute_round_robin(m, batch);
}

void OndemandPolicy::place_task(Machine& m, TaskId id) {
  m.push_task(m.rng().bounded(m.cores()), 0, id);
}

std::optional<TaskId> OndemandPolicy::acquire(Machine& m,
                                              std::size_t core) {
  auto got = m.pop_local(core, 0);
  if (!got) got = m.steal(core, 0);
  if (got) {
    if (m.rung(core) != 0) m.request_rung(core, 0);  // jump to max
    return got;
  }
  // Step one rung down per sampling period (gradual,
  // utilization-driven), re-evaluating at the governor's sampling rate.
  const std::size_t rung = m.rung(core);
  if (rung + 1 < m.core_ladder_size(core)) {
    m.request_rung(core, rung + 1);
    m.request_repoll(10e-3);  // ondemand-style sampling interval
  }
  return std::nullopt;
}

void OndemandPolicy::task_done(Machine&, std::size_t,
                               const trace::TraceTask&, double) {}

double OndemandPolicy::batch_end(Machine&, double) { return 0.0; }

// ---------------------------------------------------------------- WATS ----

WatsPolicy::WatsPolicy(std::vector<std::size_t> core_rungs,
                       std::vector<std::string> class_names)
    : core_rungs_(std::move(core_rungs)),
      class_names_(std::move(class_names)) {}

void WatsPolicy::build_groups(const Machine& m) {
  if (core_rungs_.size() != m.cores()) {
    throw std::invalid_argument("WatsPolicy: core_rungs/core mismatch");
  }
  // Groups are keyed by rung — or, on typed machines, by the topology's
  // flattened (type, rung) row, so two clusters at the same rung index
  // stay separate groups and the fastest-first order is by true
  // effective speed rather than raw rung index.
  const core::MachineTopology* topo = m.topology();
  std::map<std::size_t, std::vector<std::size_t>> by_key;
  for (std::size_t c = 0; c < core_rungs_.size(); ++c) {
    const std::size_t key =
        topo != nullptr
            ? topo->row_of(topo->type_of_core(c), core_rungs_[c])
            : core_rungs_[c];
    by_key[key].push_back(c);
  }
  core_group_.assign(m.cores(), 0);
  for (auto& [key, cores] : by_key) {
    for (std::size_t c : cores) core_group_[c] = group_rung_.size();
    group_rung_.push_back(topo != nullptr ? topo->row_rung(key) : key);
    group_type_.push_back(topo != nullptr ? topo->row_type(key) : 0);
    group_cores_.push_back(std::move(cores));
  }
  // Preference lists over the u fixed groups (WATS's rob-the-weaker-first
  // lists never change because the frequencies never change).
  std::vector<dvfs::CGroup> groups;
  for (std::size_t g = 0; g < group_rung_.size(); ++g) {
    groups.push_back(dvfs::CGroup{.freq_index = group_rung_[g],
                                  .core_type = group_type_[g],
                                  .cores = group_cores_[g]});
  }
  prefs_ = core::PreferenceTable(
      dvfs::CGroupLayout(std::move(groups), {}, m.cores()));
  for (const auto& name : class_names_) {
    class_ids_.push_back(registry_.intern(name));
  }
  class_to_group_.assign(registry_.class_count(), 0);
  groups_built_ = true;
}

void WatsPolicy::batch_start(Machine& m, const trace::Batch& batch,
                             std::size_t batch_index) {
  if (!groups_built_) build_groups(m);
  for (std::size_t c = 0; c < m.cores(); ++c) {
    m.request_rung(c, core_rungs_[c]);
  }
  registry_.begin_iteration();
  m.configure_pools(group_cores_.size());

  std::vector<TaskId> order;
  order.reserve(batch.tasks.size());
  for (std::size_t i = 0; i < batch.tasks.size(); ++i) {
    if (batch.tasks[i].release_s <= 0.0) order.push_back(i);
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[m.rng().bounded(i)]);
  }
  rr_.assign(group_cores_.size(), 0);
  first_batch_ = batch_index == 0;
  if (first_batch_) {
    // No workload knowledge yet: spread over all cores, own-group pools.
    std::size_t next = 0;
    for (const TaskId id : order) {
      const std::size_t core = next++ % m.cores();
      m.push_task(core, core_group_[core], id);
    }
    return;
  }
  // Allocate classes to groups (computed at the previous batch_end),
  // round-robin within the group's cores.
  for (const TaskId id : order) place_task(m, id);
}

void WatsPolicy::place_task(Machine& m, TaskId id) {
  if (first_batch_) {
    const std::size_t core = m.rng().bounded(m.cores());
    m.push_task(core, core_group_[core], id);
    return;
  }
  std::size_t g = 0;
  const std::size_t cid = class_ids_.at(m.task(id).class_id);
  if (cid < class_to_group_.size()) g = class_to_group_[cid];
  const auto& cores = group_cores_[g];
  m.push_task(cores[rr_[g]++ % cores.size()], g, id);
}

std::optional<TaskId> WatsPolicy::acquire(Machine& m, std::size_t core) {
  const auto& order = prefs_.for_group(core_group_[core]);
  for (std::size_t g : order) {
    if (auto id = m.pop_local(core, g)) return id;
    if (m.group_task_count(g) > 0) {
      if (auto id = m.steal(core, g)) return id;
    }
  }
  return std::nullopt;
}

void WatsPolicy::task_done(Machine& m, std::size_t core,
                           const trace::TraceTask& task, double exec_s) {
  // Eq. 1 normalization against the machine's fastest row. WATS's model
  // stays CPU-bound (no memory-stall correction — that is EEWA's
  // memory-aware extension); on typed machines the executing core's own
  // (type, rung) slowdown keeps workloads recorded on different
  // clusters comparable. The homogeneous expression is kept verbatim.
  const double w =
      m.topology() != nullptr
          ? exec_s / m.core_slowdown(core, m.rung(core))
          : core::normalized_workload(exec_s, m.rung(core), m.ladder());
  registry_.record(class_ids_.at(task.class_id), w);
}

double WatsPolicy::batch_end(Machine& m, double /*makespan_s*/) {
  // Rank classes by mean workload and pack them into groups fastest
  // first, proportionally to each group's computational capacity.
  const core::MachineTopology* topo = m.topology();
  std::vector<double> capacity(group_cores_.size(), 0.0);
  for (std::size_t g = 0; g < group_cores_.size(); ++g) {
    if (topo != nullptr) {
      // Typed capacity: each member core contributes its own cluster's
      // relative speed at the group's rung.
      for (std::size_t c : group_cores_[g]) {
        capacity[g] += 1.0 / m.core_slowdown(c, group_rung_[g]);
      }
    } else {
      capacity[g] = static_cast<double>(group_cores_[g].size()) *
                    m.ladder().relative_speed(group_rung_[g]);
    }
  }
  class_to_group_ = core::allocate_classes_proportional(
      registry_.iteration_profile(), capacity, registry_.class_count());
  return 0.0;
}

// ---------------------------------------------------------------- EEWA ----

EewaPolicy::EewaPolicy(std::vector<std::string> class_names,
                       core::ControllerOptions options)
    : class_names_(std::move(class_names)), options_(options) {}

void EewaPolicy::batch_start(Machine& m, const trace::Batch& batch,
                             std::size_t /*batch_index*/) {
  if (!ctrl_) {
    // A typed machine hands its topology to the planner: the controller
    // then builds per-core-type CC columns and carves typed plans.
    if (m.topology() != nullptr && options_.adjuster.topology == nullptr) {
      options_.adjuster.topology = m.options().topology;
    }
    ctrl_ = std::make_unique<core::EewaController>(m.ladder(), m.cores(),
                                                   options_);
    for (const auto& name : class_names_) {
      class_ids_.push_back(ctrl_->class_id(name));
    }
  }
  ctrl_->begin_batch();

  // Fault-tolerant actuation: retries, readback, and — when a core
  // cannot reach its assigned rung — plan reconciliation, all through
  // the same supervisor the real runtime uses. After this call plan()
  // describes the machine as it actually is.
  MachineDvfsBackend backend(m);
  ctrl_->apply_supervised(backend);

  const core::FrequencyPlan& plan = ctrl_->plan();
  const dvfs::CGroupLayout& layout = plan.layout;
  const std::size_t u = layout.group_count();
  m.configure_pools(u);

  core_group_.assign(m.cores(), 0);
  for (std::size_t g = 0; g < u; ++g) {
    for (std::size_t c : layout.group(g).cores) {
      if (c < m.cores()) core_group_[c] = g;
    }
  }
  applied_rungs_.emplace_back();
  for (std::size_t c = 0; c < m.cores(); ++c) {
    applied_rungs_.back().push_back(m.rung(c));
  }
  planned_rungs_.emplace_back(m.cores(), 0);
  for (std::size_t g = 0; g < u; ++g) {
    for (std::size_t c : layout.group(g).cores) {
      if (c < m.cores()) planned_rungs_.back()[c] = layout.group(g).freq_index;
    }
  }

  // Allocate each released task to its class's c-group, round-robin
  // within the group's cores (in shuffled order, so queue position does
  // not correlate with generator order); unknown classes go to the
  // fastest group. Mid-batch spawns flow through place_task.
  std::vector<TaskId> order;
  order.reserve(batch.tasks.size());
  for (std::size_t i = 0; i < batch.tasks.size(); ++i) {
    if (batch.tasks[i].release_s <= 0.0) order.push_back(i);
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[m.rng().bounded(i)]);
  }
  rr_.assign(u, 0);
  for (const TaskId id : order) place_task(m, id);
}

void EewaPolicy::place_task(Machine& m, TaskId id) {
  const std::size_t cid = class_ids_.at(m.task(id).class_id);
  const std::size_t g = ctrl_->group_of_class(cid);
  const auto& cores = ctrl_->plan().layout.group(g).cores;
  m.push_task(cores[rr_[g]++ % cores.size()], g, id);
}

std::optional<TaskId> EewaPolicy::acquire(Machine& m, std::size_t core) {
  // Feasibility-filtered stealing: a core below F0 refuses tasks whose
  // class-mean execution time at its frequency would overrun the ideal
  // iteration time T — the same critical-path rule the planner applies.
  // Without it, a parked core that grabs a coarse task near the batch
  // start can stretch the makespan by the full slowdown factor.
  const double T = ctrl_->ideal_time_s();
  auto feasible_here = [&](TaskId id) {
    const std::size_t rung = m.rung(core);
    // The fastest c-group must take anything, or tasks could strand. A
    // core running at the machine's full speed (slowdown 1 — on typed
    // machines only the fastest cluster's top rung) likewise.
    if (m.core_slowdown(core, rung) <= 1.0 || core_group_[core] == 0 ||
        T <= 0.0) {
      return true;
    }
    const std::size_t cid = class_ids_.at(m.task(id).class_id);
    const double mean_w = ctrl_->registry().mean_workload(cid);
    const double alpha = ctrl_->registry().mean_alpha(cid);
    // core_slowdown is this core's own (type, rung) slowdown on typed
    // machines and exactly ladder().slowdown(rung) otherwise.
    const double eff = alpha + (1.0 - alpha) * m.core_slowdown(core, rung);
    return mean_w * eff <= T;
  };
  const auto& order = ctrl_->preferences().for_group(core_group_[core]);
  for (std::size_t g : order) {
    if (auto id = m.pop_local(core, g)) {
      if (feasible_here(*id)) return id;
      m.push_task(core, g, *id);  // leave it for a faster thief
      continue;
    }
    if (m.group_task_count(g) > 0) {
      if (auto id = m.steal(core, g)) {
        if (feasible_here(*id)) return id;
        m.push_task(core, g, *id);
      }
    }
  }
  return std::nullopt;
}

void EewaPolicy::task_done(Machine& m, std::size_t core,
                           const trace::TraceTask& task, double exec_s) {
  ctrl_->record_task(class_ids_.at(task.class_id), exec_s, m.rung(core),
                     task.cmi, task.mem_alpha, m.core_type_of(core));
}

double EewaPolicy::batch_end(Machine& m, double makespan_s) {
  ctrl_->end_batch(makespan_s);
  const double us = ctrl_->adjust_overhead_us() - overhead_us_seen_;
  overhead_us_seen_ = ctrl_->adjust_overhead_us();
  if (m.options().fixed_adjuster_overhead_s >= 0.0) {
    return m.options().fixed_adjuster_overhead_s;
  }
  return us * 1e-6 * m.options().adjuster_overhead_scale;
}

std::vector<std::size_t> EewaPolicy::modal_rungs(const Machine& m) const {
  if (applied_rungs_.empty()) {
    return std::vector<std::size_t>(m.cores(), 0);
  }
  // The most frequent configuration, ignoring the F0 measurement batch
  // when anything else exists.
  std::map<std::vector<std::size_t>, std::size_t> freq;
  for (std::size_t b = 1; b < applied_rungs_.size(); ++b) {
    ++freq[applied_rungs_[b]];
  }
  if (freq.empty()) return applied_rungs_.front();
  const auto best = std::max_element(
      freq.begin(), freq.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return best->first;
}

std::unique_ptr<Policy> make_policy(
    const std::string& name, const std::vector<std::string>& class_names) {
  if (name == "cilk") return std::make_unique<CilkPolicy>();
  if (name == "cilk-d") return std::make_unique<CilkDPolicy>();
  if (name == "sharing") return std::make_unique<SharingPolicy>();
  if (name == "ondemand") return std::make_unique<OndemandPolicy>();
  if (name == "eewa") return std::make_unique<EewaPolicy>(class_names);
  throw std::invalid_argument("make_policy: unknown policy " + name);
}

std::size_t RoundRobinPlacement::place(double,
                                       const std::vector<MachineView>& views) {
  const std::size_t pick = cursor_ % views.size();
  cursor_ = (cursor_ + 1) % views.size();
  return pick;
}

void LeastLoadedPlacement::begin_epoch(
    const std::vector<MachineView>& views) {
  cost_.reset(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) update(i, views);
}

void LeastLoadedPlacement::update(std::size_t i,
                                  const std::vector<MachineView>& views) {
  cost_.update(i, views[i].backlog_s + views[i].wake_latency_s);
}

std::size_t LeastLoadedPlacement::place(
    double, const std::vector<MachineView>& views) {
  // Indexed fast path: the tree's tie-to-left rule returns the same
  // lowest-index minimum the scan below finds.
  if (cost_.size() == views.size() && !views.empty()) {
    return cost_.winner();
  }
  std::size_t best = 0;
  double best_cost = views[0].backlog_s + views[0].wake_latency_s;
  for (std::size_t i = 1; i < views.size(); ++i) {
    const double cost = views[i].backlog_s + views[i].wake_latency_s;
    if (cost < best_cost) {
      best = i;
      best_cost = cost;
    }
  }
  return best;
}

void PackAndParkPlacement::begin_epoch(
    const std::vector<MachineView>& views) {
  packable_.reset(views.size());
  sleepers_.reset(views.size());
  cost_.reset(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) update(i, views);
}

void PackAndParkPlacement::update(std::size_t i,
                                  const std::vector<MachineView>& views) {
  const auto& v = views[i];
  if (v.powered && v.backlog_s < fill_s_) {
    packable_.update(i, v.backlog_s);
  } else {
    packable_.disable(i);
  }
  if (!v.powered) {
    sleepers_.update(i, v.wake_latency_s);
  } else {
    sleepers_.disable(i);
  }
  cost_.update(i, v.backlog_s + v.wake_latency_s);
}

std::size_t PackAndParkPlacement::place(
    double, const std::vector<MachineView>& views) {
  if (packable_.size() == views.size() && !views.empty()) {
    // Indexed fast path: same three tiers, each answered in O(1) from a
    // tree repaired in O(log M) per update.
    if (const std::size_t w = packable_.winner();
        w != decltype(packable_)::kNone) {
      return w;
    }
    if (const std::size_t w = sleepers_.winner();
        w != decltype(sleepers_)::kNone) {
      return w;
    }
    return cost_.winner();
  }
  // Densest-first: among powered machines below the fill line, the one
  // with the most backlog keeps the working set smallest.
  std::size_t pick = views.size();
  double pick_backlog = -1.0;
  for (std::size_t i = 0; i < views.size(); ++i) {
    const auto& v = views[i];
    if (v.powered && v.backlog_s < fill_s_ && v.backlog_s > pick_backlog) {
      pick = i;
      pick_backlog = v.backlog_s;
    }
  }
  if (pick < views.size()) return pick;
  // Every powered machine is full: open the shallowest sleeper.
  double pick_latency = 0.0;
  for (std::size_t i = 0; i < views.size(); ++i) {
    const auto& v = views[i];
    if (!v.powered &&
        (pick == views.size() || v.wake_latency_s < pick_latency)) {
      pick = i;
      pick_latency = v.wake_latency_s;
    }
  }
  if (pick < views.size()) return pick;
  // Nothing parked either: spill to the least-loaded machine.
  LeastLoadedPlacement fallback;
  return fallback.place(0.0, views);
}

std::unique_ptr<FleetPlacement> make_placement(const std::string& name,
                                               double pack_fill_s) {
  if (name == "round-robin") return std::make_unique<RoundRobinPlacement>();
  if (name == "least-loaded") return std::make_unique<LeastLoadedPlacement>();
  if (name == "pack") {
    return std::make_unique<PackAndParkPlacement>(pack_fill_s);
  }
  throw std::invalid_argument("make_placement: unknown placement " + name);
}

}  // namespace eewa::sim
