#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace eewa::sim {

std::vector<SleepState> default_sleep_ladder() {
  // Powers sit under the 150 W Opteron machine floor; latencies span
  // clock-gate (sub-ms) to cold boot (seconds), one decade per rung —
  // the shape of the SPECpower-style machine-class tables.
  return {
      {"s1", 100.0, 0.5e-3},
      {"s2", 80.0, 5e-3},
      {"s3", 40.0, 50e-3},
      {"s4", 10.0, 0.5},
      {"off", 0.0, 5.0},
  };
}

SimOptions Fleet::machine_options(const FleetOptions& opts,
                                  std::size_t idx) {
  SimOptions o = opts.machine;
  // Decorrelate per-machine scheduling randomness; golden-ratio stride
  // keeps adjacent machines' streams far apart even for tiny seeds.
  o.seed = util::mix64(o.seed ^ (0x9E3779B97F4A7C15ull * (idx + 1)));
  o.keep_batch_stats = false;
  if (o.fixed_adjuster_overhead_s < 0.0) {
    // The measured adjuster overhead injects host-clock noise; a fleet
    // run must be bit-exact, so substitute the calibrated constant.
    o.fixed_adjuster_overhead_s = 20e-6;
  }
  o.tracer = nullptr;  // per-core event tracks don't compose at fleet scale
  return o;
}

namespace {

/// Everything the fleet tracks about one machine beyond the Machine
/// itself. A Slot is touched by exactly one thread during the parallel
/// machine-epoch phase and only by the router between phases — that
/// ownership handoff (epoch barrier on both sides) is the entire
/// synchronization story.
struct Slot {
  std::unique_ptr<Machine> m;
  std::unique_ptr<Policy> policy;
  double busy_until = 0.0;  ///< absolute end of the last batch
  bool parked = false;
  std::size_t state = 0;  ///< ladder index while parked
  double parked_since = 0.0;
  double state_enter = 0.0;
  double parked_total_s = 0.0;
  std::size_t idle_epochs = 0;
  std::size_t epochs_in_state = 0;
  bool pending_wake = false;
  double wake_at = 0.0;
  std::vector<trace::Arrival> staged;
  trace::Batch batch;  ///< reused every epoch (no per-epoch churn)
  obs::MachineReport rep;
};

void validate(const FleetOptions& opts) {
  if (opts.machines == 0) {
    throw std::invalid_argument("Fleet: machines must be >= 1");
  }
  if (!(opts.epoch_s > 0.0)) {
    throw std::invalid_argument("Fleet: epoch_s must be > 0");
  }
  if (opts.threads > util::ThreadPool::kMaxThreads) {
    throw std::invalid_argument(
        "Fleet: threads = " + std::to_string(opts.threads) +
        " is not a plausible worker count (0 = hardware concurrency)");
  }
  if (opts.ladder.empty()) {
    throw std::invalid_argument("Fleet: empty sleep ladder");
  }
  for (std::size_t k = 0; k < opts.ladder.size(); ++k) {
    const auto& s = opts.ladder[k];
    if (s.power_w < 0.0 || s.wake_latency_s <= 0.0) {
      throw std::invalid_argument("Fleet: ladder state " + s.name +
                                  " has negative power or non-positive "
                                  "wake latency");
    }
    if (k > 0 && !(s.power_w < opts.ladder[k - 1].power_w &&
                   s.wake_latency_s > opts.ladder[k - 1].wake_latency_s)) {
      throw std::invalid_argument(
          "Fleet: ladder must be strictly decreasing in power and "
          "strictly increasing in wake latency");
    }
  }
  if (opts.initial_state > opts.ladder.size()) {
    throw std::invalid_argument("Fleet: initial_state beyond the ladder");
  }
  if (opts.transition_energy_j < 0.0) {
    throw std::invalid_argument("Fleet: negative transition energy");
  }
  if (opts.park_after_epochs == 0 || opts.deepen_after_epochs == 0) {
    throw std::invalid_argument(
        "Fleet: park_after_epochs / deepen_after_epochs must be >= 1");
  }
}

}  // namespace

Fleet::Fleet(FleetOptions opts, trace::ArrivalSpec arrivals)
    : opts_(std::move(opts)), spec_(std::move(arrivals)) {
  validate(opts_);
  // Fail fast on unknown names (before a long run starts).
  make_placement(opts_.placement, 1.0);
  std::vector<std::string> class_names;
  for (const auto& c : spec_.classes) class_names.push_back(c.name);
  make_policy(opts_.policy, class_names);
}

obs::FleetReport Fleet::run() {
  const std::size_t M = opts_.machines;
  const std::size_t ladder_n = opts_.ladder.size();
  const double cores = static_cast<double>(opts_.machine.cores);

  std::vector<std::string> class_names;
  for (const auto& c : spec_.classes) class_names.push_back(c.name);

  std::vector<Slot> slots(M);
  for (std::size_t i = 0; i < M; ++i) {
    auto& s = slots[i];
    s.m = std::make_unique<Machine>(machine_options(opts_, i));
    s.policy = make_policy(opts_.policy, class_names);
    s.rep.sleep_residency_s.assign(ladder_n, 0.0);
    s.rep.wakes_per_state.assign(ladder_n, 0);
    if (opts_.initial_state > 0) {
      s.m->park(0.0);
      s.parked = true;
      s.state = opts_.initial_state - 1;
      s.rep.parks++;  // the cold start counts in the transition ledger
    }
  }

  const double fill =
      opts_.pack_fill_s > 0.0 ? opts_.pack_fill_s : 2.0 * opts_.epoch_s;
  auto placement = make_placement(opts_.placement, fill);

  trace::ArrivalStream stream(spec_);

  obs::FleetReport out;
  out.machines = M;
  out.cores_per_machine = opts_.machine.cores;
  out.epoch_s = opts_.epoch_s;
  for (const auto& st : opts_.ladder) {
    out.ladder.push_back({st.name, st.power_w, st.wake_latency_s});
  }

  const std::size_t epochs = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(spec_.duration_s / opts_.epoch_s)));
  out.epochs = epochs;

  // The worker pool lives for the whole run (spawned here, joined on
  // scope exit) so epochs pay a wakeup, never a thread spawn. With
  // threads == 1 (or one machine) no pool exists and every step below
  // runs inline — the serial engine, byte for byte.
  std::optional<util::ThreadPool> pool;
  const std::size_t threads =
      opts_.threads == 0 ? util::hardware_threads() : opts_.threads;
  if (threads > 1 && M > 1) pool.emplace(threads);

  std::vector<MachineView> views(M);
  std::vector<trace::Arrival> epoch_arrivals;  // reused across epochs

  // The per-machine epoch step: run the staged batch (waking a sleeper
  // first), then apply consolidation. Touches only slot i and reads
  // only shared immutable state, so the pool may run any subset of
  // machines concurrently; the serial engine calls it in index order.
  const auto step_machine = [&](std::size_t i, double t0, double t1) {
    auto& s = slots[i];
    const bool ran = !s.staged.empty();
    if (ran) {
      double start;
      if (s.parked) {
        const double w = s.wake_at;
        const double lat = opts_.ladder[s.state].wake_latency_s;
        s.rep.sleep_residency_s[s.state] += w - s.state_enter;
        s.rep.wakes_per_state[s.state]++;
        s.rep.wakes++;
        s.rep.wake_stall_s += lat;
        s.parked_total_s += w - s.parked_since;
        s.m->wake(w);
        s.m->run_idle(w + lat);  // the wake stall, billed as powered idle
        s.parked = false;
        s.pending_wake = false;
        s.epochs_in_state = 0;
        start = w + lat;
      } else {
        start = std::max(s.m->charged_through(), t0);
        s.m->run_idle(start);  // powered-idle gap since the last batch
      }
      s.batch.tasks.clear();
      for (const auto& a : s.staged) {
        trace::TraceTask t = a.task;
        t.release_s = std::max(0.0, a.time_s - start);
        s.batch.tasks.push_back(t);
      }
      const double end = s.m->run_batch(*s.policy, s.batch, start);
      s.busy_until = end;
      if (s.rep.first_start_s < 0.0) s.rep.first_start_s = start;
      ++s.rep.batches;
      s.idle_epochs = 0;
      s.staged.clear();
    }

    // Consolidation: an idle machine parks, a sleeper sinks deeper.
    if (s.parked) {
      if (++s.epochs_in_state >= opts_.deepen_after_epochs &&
          s.state + 1 < ladder_n) {
        s.rep.sleep_residency_s[s.state] += t1 - s.state_enter;
        ++s.state;
        s.state_enter = t1;
        s.epochs_in_state = 0;
      }
    } else if (ran || s.busy_until > t1) {
      s.idle_epochs = 0;
    } else if (++s.idle_epochs >= opts_.park_after_epochs) {
      s.m->run_idle(t1);
      s.m->park(t1);
      s.parked = true;
      s.state = 0;
      s.parked_since = t1;
      s.state_enter = t1;
      s.epochs_in_state = 0;
      s.idle_epochs = 0;
      ++s.rep.parks;
    }
  };

  for (std::size_t e = 0; e < epochs; ++e) {
    const double t0 = static_cast<double>(e) * opts_.epoch_s;
    const double t1 = static_cast<double>(e + 1) * opts_.epoch_s;
    const bool last = e + 1 == epochs;

    // Refresh routing views from the machines' committed state, then
    // hand them to the placement's O(log M) index.
    for (std::size_t i = 0; i < M; ++i) {
      const auto& s = slots[i];
      auto& v = views[i];
      v.powered = !s.parked;
      v.sleep_state = s.parked ? s.state : 0;
      v.wake_latency_s =
          s.parked ? opts_.ladder[s.state].wake_latency_s : 0.0;
      v.backlog_s = s.parked ? 0.0 : std::max(0.0, s.busy_until - t0);
    }
    placement->begin_epoch(views);

    // Route this epoch's arrivals task by task (serial — placement
    // state is inherently sequential, each pick depends on the last).
    // The final epoch drains the stream unconditionally so float noise
    // in epochs * epoch_s versus duration_s can never drop a tail
    // arrival.
    epoch_arrivals.clear();
    stream.drain_until(t1, last, epoch_arrivals);
    for (const trace::Arrival& a : epoch_arrivals) {
      ++out.offered;
      out.offered_work_s += a.task.work_s;
      const std::size_t pick = placement->place(a.task.work_s, views);
      auto& v = views[pick];
      if (opts_.max_backlog_s > 0.0 && v.backlog_s > opts_.max_backlog_s) {
        ++out.shed;
        out.shed_work_s += a.task.work_s;
      } else {
        auto& s = slots[pick];
        if (s.parked && !s.pending_wake) {
          // First task routed to a sleeper: the wake starts now; until
          // the batch phase the view already reflects a powered machine
          // carrying the wake stall as backlog.
          s.pending_wake = true;
          s.wake_at = a.time_s;
          v.powered = true;
          v.backlog_s += v.wake_latency_s;
          v.wake_latency_s = 0.0;
          v.sleep_state = 0;
        }
        s.staged.push_back(a);
        ++s.rep.routed;
        v.backlog_s += a.task.work_s / cores;
        placement->update(pick, views);
      }
    }

    // Machine-epoch phase: batches and consolidation, data-parallel
    // across machines (the epoch barrier is parallel_for's return).
    if (pool) {
      pool->parallel_for(M, [&](std::size_t i) { step_machine(i, t0, t1); });
    } else {
      for (std::size_t i = 0; i < M; ++i) step_machine(i, t0, t1);
    }
  }

  // Drain: the last batches may run past the final epoch boundary.
  double horizon = static_cast<double>(epochs) * opts_.epoch_s;
  for (const auto& s : slots) horizon = std::max(horizon, s.busy_until);
  out.horizon_s = horizon;

  // Per-machine finalization (idle tails, energy decomposition) is
  // again machine-local and runs on the pool ...
  const double floor_w = opts_.machine.power.floor_w();
  const auto finish_machine = [&](std::size_t i) {
    auto& s = slots[i];
    if (s.parked) {
      s.rep.sleep_residency_s[s.state] += horizon - s.state_enter;
      s.parked_total_s += horizon - s.parked_since;
      s.rep.final_state = s.state + 1;
    } else {
      s.m->run_idle(horizon);
      s.rep.final_state = 0;
    }
    s.rep.powered_s = horizon - s.parked_total_s;
    const auto& acct = s.m->account();
    s.rep.completed = s.m->total_completed();
    s.rep.charged_core_s = acct.active_s() + acct.halted_s();
    s.rep.core_energy_j = acct.core_joules();
    s.rep.floor_energy_j = floor_w * s.rep.powered_s;
    for (std::size_t k = 0; k < ladder_n; ++k) {
      s.rep.sleep_energy_j +=
          s.rep.sleep_residency_s[k] * opts_.ladder[k].power_w;
    }
    s.rep.transition_energy_j =
        static_cast<double>(s.rep.parks + s.rep.wakes) *
        opts_.transition_energy_j;
    s.rep.steals = s.m->total_steals();
    s.rep.probes = s.m->total_probes();
    s.rep.dvfs_transitions = s.m->total_transitions();
  };
  if (pool) {
    pool->parallel_for(M, finish_machine);
  } else {
    for (std::size_t i = 0; i < M; ++i) finish_machine(i);
  }

  // ... while the fleet-level merge stays serial and in machine-index
  // order, so floating-point sums associate identically no matter how
  // the parallel phases interleaved.
  for (std::size_t i = 0; i < M; ++i) {
    auto& s = slots[i];
    out.routed += s.rep.routed;
    out.completed += s.rep.completed;
    out.parks += s.rep.parks;
    out.wakes += s.rep.wakes;
    out.powered_machine_s += s.rep.powered_s;
    out.parked_machine_s += s.parked_total_s;
    out.energy_j += s.rep.energy_j();
    out.per_machine.push_back(std::move(s.rep));
  }
  out.in_flight = out.routed - out.completed;
  return out;
}

}  // namespace eewa::sim
