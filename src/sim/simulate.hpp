// One-call experiment driver: run a full task trace under a policy on a
// fresh simulated machine.
#pragma once

#include "sim/machine.hpp"
#include "sim/policies.hpp"
#include "trace/task_trace.hpp"

namespace eewa::sim {

/// Simulate every batch of `trace` back to back under `policy`.
SimResult simulate(const trace::TaskTrace& trace, Policy& policy,
                   const SimOptions& options);

/// Convenience: run the named baseline ("cilk", "cilk-d", "sharing",
/// "ondemand", "eewa") with default policy construction. WATS needs a
/// frequency configuration and must be constructed explicitly.
SimResult simulate_named(const trace::TaskTrace& trace,
                         const std::string& policy_name,
                         const SimOptions& options);

}  // namespace eewa::sim
