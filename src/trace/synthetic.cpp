#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace eewa::trace {

TaskTrace generate(const SyntheticSpec& spec) {
  if (spec.classes.empty()) {
    throw std::invalid_argument("synthetic: need at least one class");
  }
  TaskTrace trace;
  trace.name = spec.name;
  for (const auto& c : spec.classes) trace.class_names.push_back(c.name);

  util::Xoshiro256 rng(spec.seed);
  for (std::size_t b = 0; b < spec.batches; ++b) {
    Batch batch;
    for (std::size_t k = 0; k < spec.classes.size(); ++k) {
      const ClassSpec& c = spec.classes[k];
      // Per-batch drift of the class mean.
      double batch_mean = c.mean_work_s;
      if (spec.batch_jitter_cv > 0.0) {
        batch_mean *= std::max(
            0.1, 1.0 + spec.batch_jitter_cv * rng.normal());
      }
      for (std::size_t t = 0; t < c.tasks_per_batch; ++t) {
        TraceTask task;
        task.class_id = k;
        task.work_s = c.cv > 0.0
                          ? rng.lognormal_mean_cv(batch_mean, c.cv)
                          : batch_mean;
        task.work_s = std::max(task.work_s, 1e-9);
        task.cmi = c.cmi;
        task.mem_alpha = c.mem_alpha;
        if (spec.release_window_s > 0.0) {
          task.release_s = rng.uniform(0.0, spec.release_window_s);
        }
        batch.tasks.push_back(task);
      }
    }
    trace.batches.push_back(std::move(batch));
  }
  trace.validate();
  return trace;
}

TaskTrace geometric_classes(std::size_t k, std::size_t tasks_per_class,
                            double heaviest_work_s, double spread,
                            std::size_t batches, std::uint64_t seed,
                            double cv) {
  if (k == 0 || spread <= 0.0) {
    throw std::invalid_argument("geometric_classes: bad parameters");
  }
  SyntheticSpec spec;
  spec.name = "geometric";
  spec.batches = batches;
  spec.seed = seed;
  for (std::size_t i = 0; i < k; ++i) {
    ClassSpec c;
    c.name = "class" + std::to_string(i);
    c.tasks_per_batch = tasks_per_class;
    const double ratio =
        k == 1 ? 1.0
               : std::pow(1.0 / spread,
                          static_cast<double>(i) / static_cast<double>(k - 1));
    c.mean_work_s = heaviest_work_s * ratio;
    c.cv = cv;
    spec.classes.push_back(std::move(c));
  }
  return generate(spec);
}

TaskTrace balanced(std::size_t tasks_per_batch, double work_s,
                   std::size_t batches, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "balanced";
  spec.batches = batches;
  spec.seed = seed;
  spec.classes.push_back(
      ClassSpec{"uniform_task", tasks_per_batch, work_s, 0.02, 0.0, 0.0});
  return generate(spec);
}

TaskTrace bimodal(std::size_t heavy_tasks, double heavy_work_s,
                  std::size_t light_tasks, double light_work_s,
                  std::size_t batches, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "bimodal";
  spec.batches = batches;
  spec.seed = seed;
  spec.classes.push_back(
      ClassSpec{"heavy_task", heavy_tasks, heavy_work_s, 0.1, 0.0, 0.0});
  spec.classes.push_back(
      ClassSpec{"light_task", light_tasks, light_work_s, 0.1, 0.0, 0.0});
  return generate(spec);
}

}  // namespace eewa::trace
