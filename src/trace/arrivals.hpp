// Open-loop arrival streams for the service mode (docs/service_mode.md).
//
// A batched TaskTrace describes work that exists all at once; a service
// sees work *arrive* — a timestamped stream whose offered rate is set by
// the outside world, not by the scheduler's completion rate. This
// generator produces such streams deterministically from a seed, in the
// shapes the overload harness needs: steady Poisson traffic, square-wave
// bursts, and a bimodal class mix. Rates are expressed as a multiple of
// the machine's estimated capacity so "2x overload" means the same thing
// across machines and simulators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/task_trace.hpp"
#include "util/rng.hpp"

namespace eewa::trace {

/// Temporal shape of the stream.
enum class ArrivalKind {
  kSteady,  ///< Poisson arrivals at a constant rate
  kBursty,  ///< square wave: rate * burst_factor half the period, idle rest
};

/// One service class in the stream.
struct ArrivalClassSpec {
  std::string name;
  double weight = 1.0;        ///< share of arrivals (normalized over classes)
  double mean_work_s = 0.0;   ///< mean normalized work per task (Eq. 1)
  double cv = 0.0;            ///< lognormal jitter of task work
  double cmi = 0.0;           ///< cache-miss intensity attached to tasks
  double mem_alpha = 0.0;     ///< memory-stall fraction
  std::size_t sla = 1;        ///< admission tier (0 = never shed)
};

/// A complete open-loop stream description.
struct ArrivalSpec {
  std::string name = "arrivals";
  std::vector<ArrivalClassSpec> classes;
  /// Offered load as a fraction of capacity: 1.0 means arrivals carry
  /// exactly `cores` core-seconds of work per second; 2.0 is a 2x
  /// overload that no scheduler can serve without shedding.
  double load = 1.0;
  std::size_t cores = 16;  ///< capacity normalizer
  double duration_s = 1.0;
  ArrivalKind kind = ArrivalKind::kSteady;
  double burst_factor = 4.0;  ///< kBursty: on-phase rate multiplier
  double burst_period_s = 0.1;
  std::uint64_t seed = 1;

  /// Mean offered task rate (tasks/second) implied by load and the
  /// class mix's mean work.
  double rate_tps() const;
};

/// One arrival: a task plus its absolute arrival time. `task.release_s`
/// carries the arrival time too, so a stream converts trivially into a
/// single released Batch for the simulator.
struct Arrival {
  double time_s = 0.0;
  TraceTask task;
};

/// Streaming form of the generator: yields the identical sequence one
/// arrival at a time, so fleet-scale consumers (10M+ tasks) never hold
/// the whole stream in memory. A zero offered rate (load == 0, or an
/// all-zero-work class mix) yields an empty stream; an empty class list
/// still throws, as generate_arrivals does.
class ArrivalStream {
 public:
  explicit ArrivalStream(const ArrivalSpec& spec);

  /// Next arrival in time order, or nullopt once past spec.duration_s.
  std::optional<Arrival> next();

  /// Bulk form for epoch-driven consumers: append every remaining
  /// arrival with time_s < until_s (all of them when `all` is set — the
  /// fleet's final-epoch unconditional drain) to `out`, reusing out's
  /// capacity, and return the count appended. Interleaving drain_until
  /// and next() yields exactly the next()-only sequence; once `out` has
  /// reached its high-water capacity, steady-state calls perform zero
  /// heap allocations.
  std::size_t drain_until(double until_s, bool all,
                          std::vector<Arrival>& out);

  const ArrivalSpec& spec() const { return spec_; }

 private:
  /// Generate the next arrival, ignoring the peek slot.
  std::optional<Arrival> generate();

  ArrivalSpec spec_;
  util::Xoshiro256 rng_;
  std::vector<double> cdf_;  ///< class-selection CDF over weights
  double rate_ = 0.0;
  double peak_rate_ = 0.0;
  double t_ = 0.0;
  bool done_ = false;
  /// One-arrival lookahead for drain_until's boundary test; an arrival
  /// at or past until_s stays here for the next call.
  std::optional<Arrival> peeked_;
};

/// Generate the stream, sorted by time. Deterministic in spec.seed.
/// Throws std::invalid_argument when the spec's offered rate is not
/// positive (use ArrivalStream directly when an empty stream is valid).
std::vector<Arrival> generate_arrivals(const ArrivalSpec& spec);

/// Pack a stream into a one-batch TaskTrace (release_s = arrival time):
/// the simulator's open-loop mirror of the same traffic.
TaskTrace arrivals_to_trace(const ArrivalSpec& spec,
                            const std::vector<Arrival>& arrivals);

}  // namespace eewa::trace
