// Synthetic trace generators: parameterized batched workloads for tests
// and ablation benches, plus canned shapes (balanced, bimodal, zipf).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/task_trace.hpp"

namespace eewa::trace {

/// Per-class parameters of a synthetic workload.
struct ClassSpec {
  std::string name;
  std::size_t tasks_per_batch = 0;
  double mean_work_s = 0.0;  ///< mean normalized work per task
  double cv = 0.0;           ///< coefficient of variation of task work
  double cmi = 0.0;          ///< cache-miss intensity attached to tasks
  double mem_alpha = 0.0;    ///< memory-stall fraction (0 = CPU-bound)
};

/// A synthetic application: the same classes every batch, with lognormal
/// per-task jitter and a per-batch multiplicative drift to model the
/// paper's "workloads change slightly in different iterations".
struct SyntheticSpec {
  std::string name = "synthetic";
  std::vector<ClassSpec> classes;
  std::size_t batches = 10;
  double batch_jitter_cv = 0.05;  ///< per-(batch,class) mean drift
  /// Spread task spawns uniformly over [0, window] seconds after the
  /// batch start (0 = all tasks available at the barrier). Models
  /// programs whose batches materialize gradually.
  double release_window_s = 0.0;
  std::uint64_t seed = 1;
};

/// Generate a trace from the spec. Fully deterministic in the seed.
TaskTrace generate(const SyntheticSpec& spec);

/// k equally-sized classes with geometrically spaced workloads
/// (heaviest/lightest ratio = `spread`). The workhorse test shape.
TaskTrace geometric_classes(std::size_t k, std::size_t tasks_per_class,
                            double heaviest_work_s, double spread,
                            std::size_t batches, std::uint64_t seed,
                            double cv = 0.1);

/// One class, perfectly balanced tasks: EEWA should keep most cores fast.
TaskTrace balanced(std::size_t tasks_per_batch, double work_s,
                   std::size_t batches, std::uint64_t seed);

/// Two classes, a few heavy tasks and many light ones (high imbalance):
/// the shape where EEWA saves the most energy.
TaskTrace bimodal(std::size_t heavy_tasks, double heavy_work_s,
                  std::size_t light_tasks, double light_work_s,
                  std::size_t batches, std::uint64_t seed);

}  // namespace eewa::trace
