#include "trace/arrivals.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace eewa::trace {

namespace {

double mean_work_of_mix(const std::vector<ArrivalClassSpec>& classes) {
  double weight = 0.0;
  double work = 0.0;
  for (const auto& c : classes) {
    weight += c.weight;
    work += c.weight * c.mean_work_s;
  }
  return weight > 0.0 ? work / weight : 0.0;
}

}  // namespace

double ArrivalSpec::rate_tps() const {
  const double mean_work = mean_work_of_mix(classes);
  if (mean_work <= 0.0) return 0.0;
  // load = (rate * mean_work) / cores  =>  rate = load * cores / mean_work.
  return load * static_cast<double>(cores) / mean_work;
}

ArrivalStream::ArrivalStream(const ArrivalSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  if (spec_.classes.empty()) {
    throw std::invalid_argument("ArrivalStream: no classes");
  }
  rate_ = spec_.rate_tps();
  if (rate_ <= 0.0) {
    done_ = true;  // an empty stream, not an error (zero offered load)
    return;
  }
  // Class-selection CDF over weights.
  cdf_.resize(spec_.classes.size());
  double total_weight = 0.0;
  for (std::size_t k = 0; k < spec_.classes.size(); ++k) {
    total_weight += std::max(0.0, spec_.classes[k].weight);
    cdf_[k] = total_weight;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("ArrivalStream: zero total weight");
  }
  for (auto& c : cdf_) c /= total_weight;
  // Thinned Poisson process: draw at the peak rate, keep a draw with
  // probability rate(t)/peak. This keeps the square wave exact without
  // per-phase bookkeeping.
  peak_rate_ = spec_.kind == ArrivalKind::kBursty
                   ? rate_ * spec_.burst_factor
                   : rate_;
}

std::optional<Arrival> ArrivalStream::next() {
  if (peeked_) {
    auto a = *peeked_;
    peeked_.reset();
    return a;
  }
  return generate();
}

std::size_t ArrivalStream::drain_until(double until_s, bool all,
                                       std::vector<Arrival>& out) {
  std::size_t appended = 0;
  for (;;) {
    if (!peeked_) peeked_ = generate();
    if (!peeked_) return appended;
    if (!all && !(peeked_->time_s < until_s)) return appended;
    out.push_back(*peeked_);
    peeked_.reset();
    ++appended;
  }
}

std::optional<Arrival> ArrivalStream::generate() {
  if (done_) return std::nullopt;
  const auto rate_at = [&](double t) {
    if (spec_.kind != ArrivalKind::kBursty) return rate_;
    // On-phase for the first half of each period at burst_factor times
    // the mean; off-phase compensates so the mean offered load holds.
    const double phase = t - std::floor(t / spec_.burst_period_s) *
                                 spec_.burst_period_s;
    const bool on = phase < 0.5 * spec_.burst_period_s;
    const double off_rate =
        std::max(0.0, rate_ * (2.0 - spec_.burst_factor));
    return on ? rate_ * spec_.burst_factor : off_rate;
  };
  for (;;) {
    t_ += rng_.exponential(1.0 / peak_rate_);
    if (t_ >= spec_.duration_s) {
      done_ = true;
      return std::nullopt;
    }
    if (peak_rate_ > rate_ && !rng_.chance(rate_at(t_) / peak_rate_)) {
      continue;
    }
    const double u = rng_.uniform();
    std::size_t k = 0;
    while (k + 1 < cdf_.size() && cdf_[k] < u) ++k;
    const auto& cls = spec_.classes[k];
    Arrival a;
    a.time_s = t_;
    a.task.class_id = k;
    a.task.work_s = cls.cv > 0.0
                        ? rng_.lognormal_mean_cv(cls.mean_work_s, cls.cv)
                        : cls.mean_work_s;
    a.task.cmi = cls.cmi;
    a.task.mem_alpha = cls.mem_alpha;
    a.task.release_s = t_;
    return a;
  }
}

std::vector<Arrival> generate_arrivals(const ArrivalSpec& spec) {
  if (spec.classes.empty()) {
    throw std::invalid_argument("generate_arrivals: no classes");
  }
  if (spec.rate_tps() <= 0.0) {
    throw std::invalid_argument("generate_arrivals: non-positive rate");
  }
  ArrivalStream stream(spec);
  std::vector<Arrival> out;
  out.reserve(
      static_cast<std::size_t>(spec.rate_tps() * spec.duration_s * 1.1) +
      16);
  while (auto a = stream.next()) out.push_back(std::move(*a));
  // Already time-sorted by construction; keep the guarantee explicit.
  std::sort(out.begin(), out.end(), [](const Arrival& x, const Arrival& y) {
    return x.time_s < y.time_s;
  });
  return out;
}

TaskTrace arrivals_to_trace(const ArrivalSpec& spec,
                            const std::vector<Arrival>& arrivals) {
  TaskTrace trace;
  trace.name = spec.name;
  for (const auto& c : spec.classes) trace.class_names.push_back(c.name);
  Batch batch;
  batch.tasks.reserve(arrivals.size());
  for (const auto& a : arrivals) batch.tasks.push_back(a.task);
  trace.batches.push_back(std::move(batch));
  return trace;
}

}  // namespace eewa::trace
