// Task traces: the batched task sets an iteration-based application
// produces. A trace abstracts a workload away from its kernel code — the
// per-task `work_s` is the task's execution time on a core at the fastest
// frequency F0 (exactly the normalized workload of paper Eq. 1). Traces
// come from synthetic generators (tests), or from calibrated
// measurements of the seven real benchmark kernels (experiments).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eewa::trace {

/// One task instance.
struct TraceTask {
  std::size_t class_id = 0;  ///< index into TaskTrace::class_names
  double work_s = 0.0;       ///< execution time at F0, seconds
  double cmi = 0.0;          ///< cache misses per instruction (profiling)
  /// Fraction of execution time that does NOT scale with frequency
  /// (memory stalls): exec(f) = work_s · (alpha + (1-alpha) · F0/f).
  /// 0 = perfectly CPU-bound.
  double mem_alpha = 0.0;
  /// Seconds after the batch start at which the task is spawned
  /// (0 = available at the barrier, the classic all-at-once batch).
  /// Staggered releases model programs whose tasks spawn tasks.
  double release_s = 0.0;
};

/// One batch (iteration) of tasks.
struct Batch {
  std::vector<TraceTask> tasks;

  /// Sum of work_s over the batch.
  double total_work_s() const;
};

/// A complete application trace: named classes and batched tasks.
struct TaskTrace {
  std::string name;                       ///< benchmark name
  std::vector<std::string> class_names;   ///< function names, by class_id
  std::vector<Batch> batches;

  std::size_t class_count() const { return class_names.size(); }
  std::size_t batch_count() const { return batches.size(); }

  /// Total tasks across all batches.
  std::size_t task_count() const;

  /// Sum of work over everything.
  double total_work_s() const;

  /// Throws std::invalid_argument when any class_id is out of range,
  /// any work is non-positive, or any mem_alpha is outside [0, 1].
  void validate() const;

  /// CSV with one row per task: batch,class,work_s,cmi,mem_alpha.
  std::string to_csv() const;

  /// Parse the to_csv format back into a trace (classes are interned in
  /// order of first appearance). Throws std::invalid_argument on
  /// malformed input. Round-trips with to_csv exactly up to float
  /// printing precision.
  static TaskTrace from_csv(const std::string& csv,
                            std::string name = "imported");
};

}  // namespace eewa::trace
