#include "trace/task_trace.hpp"

#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/csv.hpp"

namespace eewa::trace {

double Batch::total_work_s() const {
  double sum = 0.0;
  for (const auto& t : tasks) sum += t.work_s;
  return sum;
}

std::size_t TaskTrace::task_count() const {
  std::size_t n = 0;
  for (const auto& b : batches) n += b.tasks.size();
  return n;
}

double TaskTrace::total_work_s() const {
  double sum = 0.0;
  for (const auto& b : batches) sum += b.total_work_s();
  return sum;
}

void TaskTrace::validate() const {
  for (const auto& b : batches) {
    for (const auto& t : b.tasks) {
      if (t.class_id >= class_names.size()) {
        throw std::invalid_argument("TaskTrace: class_id out of range");
      }
      if (!(t.work_s > 0.0)) {
        throw std::invalid_argument("TaskTrace: work must be positive");
      }
      if (t.mem_alpha < 0.0 || t.mem_alpha > 1.0) {
        throw std::invalid_argument("TaskTrace: mem_alpha outside [0,1]");
      }
      if (t.cmi < 0.0) {
        throw std::invalid_argument("TaskTrace: negative cmi");
      }
      if (t.release_s < 0.0) {
        throw std::invalid_argument("TaskTrace: negative release time");
      }
    }
  }
}

TaskTrace TaskTrace::from_csv(const std::string& csv, std::string name) {
  TaskTrace out;
  out.name = std::move(name);
  std::unordered_map<std::string, std::size_t> ids;
  std::istringstream lines(csv);
  std::string line;
  bool header = true;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (header) {
      if (line.rfind("batch,", 0) != 0) {
        throw std::invalid_argument("TaskTrace::from_csv: missing header");
      }
      header = false;
      continue;
    }
    std::istringstream cells(line);
    std::string batch_s, cls, work_s, cmi_s, alpha_s, release_s;
    if (!std::getline(cells, batch_s, ',') ||
        !std::getline(cells, cls, ',') ||
        !std::getline(cells, work_s, ',') ||
        !std::getline(cells, cmi_s, ',') ||
        !std::getline(cells, alpha_s, ',')) {
      throw std::invalid_argument("TaskTrace::from_csv: short row");
    }
    const bool has_release = static_cast<bool>(
        std::getline(cells, release_s));  // optional (older exports)
    std::size_t batch_idx, class_id;
    TraceTask task;
    try {
      batch_idx = std::stoul(batch_s);
      task.work_s = std::stod(work_s);
      task.cmi = std::stod(cmi_s);
      task.mem_alpha = std::stod(alpha_s);
      task.release_s = has_release ? std::stod(release_s) : 0.0;
    } catch (const std::exception&) {
      throw std::invalid_argument("TaskTrace::from_csv: bad number");
    }
    const auto it = ids.find(cls);
    if (it == ids.end()) {
      class_id = out.class_names.size();
      ids.emplace(cls, class_id);
      out.class_names.push_back(cls);
    } else {
      class_id = it->second;
    }
    task.class_id = class_id;
    if (batch_idx >= out.batches.size()) out.batches.resize(batch_idx + 1);
    out.batches[batch_idx].tasks.push_back(task);
  }
  out.validate();
  return out;
}

std::string TaskTrace::to_csv() const {
  util::CsvWriter csv;
  csv.row({"batch", "class", "work_s", "cmi", "mem_alpha", "release_s"});
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (const auto& t : batches[b].tasks) {
      csv.row_values(b, class_names.at(t.class_id), t.work_s, t.cmi,
                     t.mem_alpha, t.release_s);
    }
  }
  return csv.str();
}

}  // namespace eewa::trace
