#include "workloads/data_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace eewa::wl {

std::vector<std::uint8_t> markov_text(std::size_t bytes,
                                      std::uint64_t seed) {
  // Order-1 model: after a vowel prefer consonants and vice versa; spaces
  // every ~5 letters; occasional punctuation and newlines.
  static constexpr char vowels[] = "aeiou";
  static constexpr char consonants[] = "bcdfghjklmnpqrstvwxyz";
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out;
  out.reserve(bytes);
  bool last_vowel = false;
  std::size_t word_len = 0;
  while (out.size() < bytes) {
    if (word_len > 2 && rng.chance(0.22)) {
      if (rng.chance(0.08)) {
        out.push_back('.');
        if (out.size() < bytes && rng.chance(0.3)) out.push_back('\n');
      }
      if (out.size() < bytes) out.push_back(' ');
      word_len = 0;
      continue;
    }
    char c;
    if (last_vowel) {
      c = consonants[rng.bounded(sizeof(consonants) - 1)];
      last_vowel = rng.chance(0.15);
    } else {
      c = vowels[rng.bounded(sizeof(vowels) - 1)];
      last_vowel = !rng.chance(0.2);
    }
    if (word_len == 0 && rng.chance(0.05)) {
      c = static_cast<char>(c - 'a' + 'A');
    }
    out.push_back(static_cast<std::uint8_t>(c));
    ++word_len;
  }
  return out;
}

std::vector<std::uint8_t> skewed_bytes(std::size_t bytes,
                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const util::ZipfSampler zipf(256, 1.2);
  // Shuffle the rank→byte mapping so runs differ per seed.
  std::vector<std::uint8_t> alphabet(256);
  for (std::size_t i = 0; i < 256; ++i) {
    alphabet[i] = static_cast<std::uint8_t>(i);
  }
  for (std::size_t i = 255; i > 0; --i) {
    std::swap(alphabet[i], alphabet[rng.bounded(i + 1)]);
  }
  std::vector<std::uint8_t> out(bytes);
  for (auto& b : out) b = alphabet[zipf.sample(rng)];
  return out;
}

std::vector<std::uint8_t> random_bytes(std::size_t bytes,
                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next() & 0xff);
  return out;
}

std::vector<std::uint8_t> synthetic_image(std::size_t width,
                                          std::size_t height,
                                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> img(width * height * 3);
  const double fx = rng.uniform(0.005, 0.03);
  const double fy = rng.uniform(0.005, 0.03);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const double g1 =
          127.5 + 100.0 * std::sin(fx * static_cast<double>(x)) *
                      std::cos(fy * static_cast<double>(y));
      const double g2 = 255.0 * static_cast<double>(x) /
                        static_cast<double>(width ? width : 1);
      const double g3 = 255.0 * static_cast<double>(y) /
                        static_cast<double>(height ? height : 1);
      const std::size_t i = (y * width + x) * 3;
      auto noisy = [&](double v) {
        v += rng.normal(0.0, 4.0);
        return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
      };
      img[i + 0] = noisy(g1);
      img[i + 1] = noisy(g2);
      img[i + 2] = noisy(g3);
    }
  }
  // A few flat rectangles (hard edges → high-frequency DCT content).
  for (int r = 0; r < 4; ++r) {
    const std::size_t x0 = rng.bounded(width ? width : 1);
    const std::size_t y0 = rng.bounded(height ? height : 1);
    const std::size_t w = std::min(width - x0, std::size_t{24});
    const std::size_t h = std::min(height - y0, std::size_t{24});
    const std::uint8_t shade = static_cast<std::uint8_t>(rng.bounded(256));
    for (std::size_t y = y0; y < y0 + h; ++y) {
      for (std::size_t x = x0; x < x0 + w; ++x) {
        const std::size_t i = (y * width + x) * 3;
        img[i] = img[i + 1] = img[i + 2] = shade;
      }
    }
  }
  return img;
}

}  // namespace eewa::wl
