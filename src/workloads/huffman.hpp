// Canonical Huffman coder over the byte alphabet. Code lengths are
// limited to kMaxCodeLen by iterative frequency damping (rebuilding with
// halved counts until the tree fits), the stream is self-describing
// (length table + bit count header), and decoding uses the canonical
// first-code tables.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace eewa::wl {

/// Maximum code length the encoder will emit.
inline constexpr unsigned kHuffMaxCodeLen = 20;

/// Canonical code lengths (one per byte symbol, 0 = absent) for the
/// given frequency table, all <= kHuffMaxCodeLen.
std::array<std::uint8_t, 256> huffman_code_lengths(
    const std::array<std::uint64_t, 256>& freq);

/// Encode `data`; output embeds the header. Empty input encodes to a
/// minimal valid stream.
std::vector<std::uint8_t> huffman_encode(
    const std::vector<std::uint8_t>& data);

/// Decode a stream produced by huffman_encode. Throws
/// std::invalid_argument on malformed input.
std::vector<std::uint8_t> huffman_decode(
    const std::vector<std::uint8_t>& data);

}  // namespace eewa::wl
