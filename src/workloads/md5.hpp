// MD5 message digest (RFC 1321), paper benchmark #6. Incremental API
// plus a one-shot helper; validated against the RFC test vectors.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eewa::wl {

/// Incremental MD5 context.
class Md5 {
 public:
  Md5() { reset(); }

  /// Reinitialize to the empty message.
  void reset();

  /// Absorb `len` bytes.
  void update(const std::uint8_t* data, std::size_t len);
  void update(const std::vector<std::uint8_t>& data) {
    update(data.data(), data.size());
  }

  /// Finalize and return the 16-byte digest (context must be reset to
  /// reuse).
  std::array<std::uint8_t, 16> digest();

 private:
  void process_block(const std::uint8_t block[64]);

  std::array<std::uint32_t, 4> state_{};
  std::uint64_t length_ = 0;  // bytes absorbed
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

/// One-shot digest.
std::array<std::uint8_t, 16> md5(const std::vector<std::uint8_t>& data);

/// Lower-case hex of a digest.
std::string md5_hex(const std::vector<std::uint8_t>& data);

}  // namespace eewa::wl
