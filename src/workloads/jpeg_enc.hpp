// JE — JPEG encoding (paper benchmark #4): the full JPEG baseline
// computation — RGB→YCbCr, 8×8 forward DCT, quality-scaled quantization,
// zigzag, DC delta coding, (run,size) AC symbols with amplitude bits and
// canonical Huffman entropy coding — plus the matching decoder for
// round-trip/PSNR validation. The container layout is our own (not
// JFIF); the arithmetic is the JPEG baseline pipeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eewa::wl {

/// An interleaved 8-bit RGB image.
struct Image {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> rgb;  ///< width*height*3 bytes

  bool valid() const { return rgb.size() == width * height * 3; }
};

/// Encoder settings.
struct JpegOptions {
  int quality = 75;  ///< 1 (worst) .. 100 (best), libjpeg-style scaling
};

/// Encode an image. Throws std::invalid_argument on invalid input.
std::vector<std::uint8_t> jpeg_encode(const Image& image,
                                      const JpegOptions& opt = {});

/// Decode a stream from jpeg_encode back to RGB (lossy round trip).
Image jpeg_decode(const std::vector<std::uint8_t>& data);

/// Peak signal-to-noise ratio between two same-sized images, in dB.
double psnr(const Image& a, const Image& b);

}  // namespace eewa::wl
