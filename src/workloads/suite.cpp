#include "workloads/suite.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "workloads/bwt.hpp"
#include "workloads/bzip2ish.hpp"
#include "workloads/data_gen.hpp"
#include "workloads/dmc.hpp"
#include "workloads/jpeg_enc.hpp"
#include "workloads/lzw.hpp"
#include "workloads/md5.hpp"
#include "workloads/mtf_rle.hpp"
#include "workloads/sha1.hpp"

namespace eewa::wl {

const std::vector<BenchmarkDef>& suite() {
  // Task mixes: ~128 tasks per batch (the paper's suggested batch size).
  // Size CVs choose each benchmark's workload imbalance — hash-style
  // "files" are heavily skewed (few huge, many small), codec blocks are
  // more uniform. These shapes drive the Fig. 6 energy spread.
  // Task mixes follow the paper's regime: workloads differ strongly
  // *between* task classes but are similar within a class ("task
  // workloads of different iterations have similar patterns", §II-A),
  // and batches underutilize the 16-core machine — the paper's own
  // Fig. 3 claims just 7 of 16 F0-cores. Each benchmark has a
  // coarse-block class that pins the batch critical path plus a
  // fine-block class supplying parallel filler whose cores EEWA can
  // downclock or park. Counts/sizes are tuned so the seven benchmarks
  // spread across the paper's 8.7%-29.8% savings band.
  static const std::vector<BenchmarkDef> kSuite = {
      {"BWC",
       "Burrows Wheeler Transforming Compression",
       {{"bwc_bwt_stage", KernelKind::kBwcBwtStage, 8, 60.0e3, 0.15},
        {"bwc_entropy_stage", KernelKind::kBwcEntropyStage, 80, 10.0e3,
         0.25}}},
      {"Bzip-2",
       "Bzip2 file compression algorithm",
       {{"bz_large_block", KernelKind::kBzCompress, 6, 45.0e3, 0.15},
        {"bz_small_block", KernelKind::kBzCompress, 24, 6.0e3, 0.25}}},
      {"DMC",
       "Dynamic Markov Coding",
       {{"dmc_large_block", KernelKind::kDmcCompress, 7, 70.0e3, 0.15},
        {"dmc_small_block", KernelKind::kDmcCompress, 32, 8.0e3, 0.25}}},
      {"JE",
       "JPEG Encoding Algorithm",
       {{"je_encode_tile", KernelKind::kJeEncode, 12, 30.0e3, 0.15},
        {"je_thumbnail", KernelKind::kJeThumbnail, 28, 4.0e3, 0.25}}},
      {"LZW",
       "Lempel-Ziv-Welch data compression",
       {{"lzw_large_block", KernelKind::kLzwCompress, 6, 55.0e3, 0.15},
        {"lzw_small_block", KernelKind::kLzwCompress, 24, 8.0e3, 0.25}}},
      {"MD5",
       "Message Digest Algorithm",
       {{"md5_large_file", KernelKind::kMd5Hash, 5, 400.0e3, 0.12},
        {"md5_small_file", KernelKind::kMd5Hash, 40, 25.0e3, 0.2}}},
      {"SHA-1",
       "SHA-1 cryptographic hash function",
       {{"sha1_large_file", KernelKind::kSha1Hash, 5, 320.0e3, 0.12},
        {"sha1_small_file", KernelKind::kSha1Hash, 40, 20.0e3, 0.2}}},
  };
  return kSuite;
}

const BenchmarkDef& find_benchmark(std::string_view name) {
  for (const auto& b : suite()) {
    if (b.name == name) return b;
  }
  throw std::invalid_argument("find_benchmark: unknown benchmark " +
                              std::string(name));
}

namespace {

/// Tile dimensions for a JPEG task covering about `bytes` of RGB data.
std::pair<std::size_t, std::size_t> tile_dims(std::size_t bytes) {
  const auto side = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(bytes) / 3.0));
  const std::size_t dim = std::max<std::size_t>(8, side / 8 * 8);
  return {dim, dim};
}

std::uint64_t mix_digest(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::uint64_t run_kernel(KernelKind kernel, std::size_t bytes,
                         std::uint64_t seed) {
  bytes = std::max<std::size_t>(bytes, 64);
  switch (kernel) {
    case KernelKind::kBwcBwtStage: {
      const auto data = markov_text(bytes, seed);
      const auto bwt = bwt_forward(data);
      return mix_digest(bwt.last_column) ^ bwt.primary_index;
    }
    case KernelKind::kBwcEntropyStage: {
      const auto data = markov_text(bytes, seed);
      const auto mtf = mtf_encode(data);
      return mix_digest(rle_zeros_encode(mtf));
    }
    case KernelKind::kBzCompress: {
      const auto data = markov_text(bytes, seed);
      return mix_digest(bzip2ish_compress_block(data));
    }
    case KernelKind::kDmcCompress: {
      const auto data = markov_text(bytes, seed);
      return mix_digest(dmc_compress_block(data));
    }
    case KernelKind::kJeEncode: {
      const auto [w, h] = tile_dims(bytes);
      const Image img{w, h, synthetic_image(w, h, seed)};
      return mix_digest(jpeg_encode(img, JpegOptions{75}));
    }
    case KernelKind::kJeThumbnail: {
      const auto [w, h] = tile_dims(bytes);
      const Image img{w, h, synthetic_image(w, h, seed)};
      return mix_digest(jpeg_encode(img, JpegOptions{35}));
    }
    case KernelKind::kLzwCompress: {
      const auto data = markov_text(bytes, seed);
      return mix_digest(lzw_compress(data));
    }
    case KernelKind::kMd5Hash: {
      const auto data = skewed_bytes(bytes, seed);
      const auto d = md5(data);
      return mix_digest({d.begin(), d.end()});
    }
    case KernelKind::kSha1Hash: {
      const auto data = skewed_bytes(bytes, seed);
      const auto d = sha1(data);
      return mix_digest({d.begin(), d.end()});
    }
  }
  throw std::logic_error("run_kernel: unknown kernel");
}

Calibration calibrate(std::size_t sample_bytes, int reps) {
  using Clock = std::chrono::steady_clock;
  Calibration cal;
  static constexpr KernelKind kAll[] = {
      KernelKind::kBwcBwtStage, KernelKind::kBwcEntropyStage,
      KernelKind::kBzCompress,  KernelKind::kDmcCompress,
      KernelKind::kJeEncode,    KernelKind::kJeThumbnail,
      KernelKind::kLzwCompress, KernelKind::kMd5Hash,
      KernelKind::kSha1Hash};
  for (KernelKind k : kAll) {
    double best_ns = 1e18;
    volatile std::uint64_t sink = 0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      sink = sink ^ run_kernel(k, sample_bytes, 1234 + static_cast<unsigned>(r));
      const double ns =
          std::chrono::duration<double, std::nano>(Clock::now() - t0)
              .count();
      best_ns = std::min(best_ns, ns);
    }
    (void)sink;
    cal.ns_per_byte[k] =
        std::max(best_ns / static_cast<double>(sample_bytes), 0.01);
  }
  return cal;
}

Calibration reference_calibration() {
  // ns/byte on the reference dev machine (x86-64, ~3 GHz). Used by the
  // deterministic experiment benches; `calibrate()` refreshes them when
  // real-host costs are wanted.
  Calibration cal;
  cal.ns_per_byte = {
      {KernelKind::kBwcBwtStage, 95.0},
      {KernelKind::kBwcEntropyStage, 14.0},
      {KernelKind::kBzCompress, 130.0},
      {KernelKind::kDmcCompress, 75.0},
      {KernelKind::kJeEncode, 60.0},
      {KernelKind::kJeThumbnail, 45.0},
      {KernelKind::kLzwCompress, 55.0},
      {KernelKind::kMd5Hash, 5.0},
      {KernelKind::kSha1Hash, 6.5},
  };
  return cal;
}

trace::TaskTrace build_trace(const BenchmarkDef& bench,
                             const Calibration& cal, std::size_t batches,
                             std::uint64_t seed) {
  trace::TaskTrace out;
  out.name = bench.name;
  for (const auto& c : bench.classes) out.class_names.push_back(c.class_name);

  util::Xoshiro256 rng(seed ^ util::mix64(std::hash<std::string>{}(
                                bench.name)));
  for (std::size_t b = 0; b < batches; ++b) {
    trace::Batch batch;
    for (std::size_t k = 0; k < bench.classes.size(); ++k) {
      const ClassDef& c = bench.classes[k];
      // Slight per-batch drift, as the paper's iteration model assumes.
      const double batch_mean =
          c.mean_bytes * std::max(0.2, 1.0 + 0.04 * rng.normal());
      for (std::size_t t = 0; t < c.tasks_per_batch; ++t) {
        const double bytes =
            std::max(64.0, rng.lognormal_mean_cv(batch_mean, c.cv));
        trace::TraceTask task;
        task.class_id = k;
        task.work_s = cal.cost_s(c.kernel, bytes);
        batch.tasks.push_back(task);
      }
    }
    out.batches.push_back(std::move(batch));
  }
  out.validate();
  return out;
}

std::vector<SuiteTask> make_batch(const BenchmarkDef& bench,
                                  std::size_t batch_index,
                                  std::uint64_t seed) {
  std::vector<SuiteTask> tasks;
  util::Xoshiro256 rng(seed ^ util::mix64(batch_index) ^
                       util::mix64(std::hash<std::string>{}(bench.name)));
  for (const auto& c : bench.classes) {
    const double batch_mean =
        c.mean_bytes * std::max(0.2, 1.0 + 0.04 * rng.normal());
    for (std::size_t t = 0; t < c.tasks_per_batch; ++t) {
      const auto bytes = static_cast<std::size_t>(
          std::max(64.0, rng.lognormal_mean_cv(batch_mean, c.cv)));
      const std::uint64_t task_seed = rng.next();
      const KernelKind kernel = c.kernel;
      tasks.push_back(SuiteTask{
          c.class_name, bytes,
          [kernel, bytes, task_seed] {
            return run_kernel(kernel, bytes, task_seed);
          }});
    }
  }
  return tasks;
}

}  // namespace eewa::wl
