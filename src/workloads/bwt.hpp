// Burrows–Wheeler transform over cyclic rotations, via prefix-doubling
// suffix ranking (O(n log² n)). Forward returns the last column plus the
// primary index (the row of the original string in the sorted rotation
// matrix); inverse reconstructs with the LF mapping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eewa::wl {

/// Forward BWT result.
struct BwtResult {
  std::vector<std::uint8_t> last_column;
  std::size_t primary_index = 0;
};

/// Forward transform of `data` (empty input allowed).
BwtResult bwt_forward(const std::vector<std::uint8_t>& data);

/// Inverse transform; `primary_index` must be < last_column.size() (or 0
/// for empty input). Throws std::invalid_argument otherwise.
std::vector<std::uint8_t> bwt_inverse(
    const std::vector<std::uint8_t>& last_column, std::size_t primary_index);

/// The sorted-rotation order used by the forward transform (exposed for
/// tests): sa[i] is the start offset of the i-th smallest rotation.
std::vector<std::uint32_t> sort_rotations(
    const std::vector<std::uint8_t>& data);

}  // namespace eewa::wl
