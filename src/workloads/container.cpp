#include "workloads/container.hpp"

#include <stdexcept>

#include "workloads/bwc.hpp"
#include "workloads/bzip2ish.hpp"
#include "workloads/dmc.hpp"
#include "workloads/lzw.hpp"

namespace eewa::wl {

namespace {

constexpr std::uint8_t kMagic[4] = {'E', 'E', 'W', 'C'};

using Bytes = std::vector<std::uint8_t>;

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(const Bytes& in, std::size_t& i) {
  if (i + 4 > in.size()) {
    throw std::invalid_argument("container: truncated");
  }
  const std::uint32_t v = (static_cast<std::uint32_t>(in[i]) << 24) |
                          (static_cast<std::uint32_t>(in[i + 1]) << 16) |
                          (static_cast<std::uint32_t>(in[i + 2]) << 8) |
                          static_cast<std::uint32_t>(in[i + 3]);
  i += 4;
  return v;
}

Bytes compress_block(ContainerCodec codec, const Bytes& block) {
  switch (codec) {
    case ContainerCodec::kBwc:
      return bwc_compress_block(block);
    case ContainerCodec::kBzip2ish:
      return bzip2ish_compress_block(block);
    case ContainerCodec::kDmc:
      return dmc_compress_block(block);
    case ContainerCodec::kLzw:
      return lzw_compress(block);
  }
  throw std::invalid_argument("container: unknown codec");
}

Bytes decompress_block(ContainerCodec codec, const Bytes& block) {
  switch (codec) {
    case ContainerCodec::kBwc:
      return bwc_decompress_block(block);
    case ContainerCodec::kBzip2ish:
      return bzip2ish_decompress_block(block);
    case ContainerCodec::kDmc:
      return dmc_decompress_block(block);
    case ContainerCodec::kLzw:
      return lzw_decompress(block);
  }
  throw std::invalid_argument("container: unknown codec");
}

}  // namespace

Bytes container_compress(const Bytes& data, ContainerCodec codec,
                         std::size_t block_size) {
  if (block_size == 0) {
    throw std::invalid_argument("container: block_size must be >= 1");
  }
  const std::size_t blocks =
      data.empty() ? 0 : (data.size() + block_size - 1) / block_size;
  Bytes out;
  for (std::uint8_t m : kMagic) out.push_back(m);
  out.push_back(static_cast<std::uint8_t>(codec));
  put_u32(out, static_cast<std::uint32_t>(blocks));
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * block_size;
    const std::size_t hi = std::min(lo + block_size, data.size());
    const Bytes block(data.begin() + static_cast<long>(lo),
                      data.begin() + static_cast<long>(hi));
    const Bytes packed = compress_block(codec, block);
    put_u32(out, static_cast<std::uint32_t>(packed.size()));
    if (!packed.empty()) {
      out.insert(out.end(), packed.begin(), packed.end());
    }
  }
  return out;
}

Bytes container_decompress(const Bytes& container) {
  std::size_t i = 0;
  if (container.size() < 9 || container[0] != kMagic[0] ||
      container[1] != kMagic[1] || container[2] != kMagic[2] ||
      container[3] != kMagic[3]) {
    throw std::invalid_argument("container: bad magic");
  }
  i = 4;
  const std::uint8_t codec_raw = container[i++];
  if (codec_raw > static_cast<std::uint8_t>(ContainerCodec::kLzw)) {
    throw std::invalid_argument("container: unknown codec");
  }
  const auto codec = static_cast<ContainerCodec>(codec_raw);
  const std::uint32_t blocks = get_u32(container, i);
  Bytes out;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const std::uint32_t size = get_u32(container, i);
    if (i + size > container.size()) {
      throw std::invalid_argument("container: truncated block");
    }
    const Bytes packed(container.begin() + static_cast<long>(i),
                       container.begin() + static_cast<long>(i + size));
    i += size;
    const Bytes block = decompress_block(codec, packed);
    out.insert(out.end(), block.begin(), block.end());
  }
  return out;
}

}  // namespace eewa::wl
