#include "workloads/sha1.hpp"

#include <algorithm>

namespace eewa::wl {

namespace {

std::uint32_t rotl(std::uint32_t x, std::uint32_t n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  length_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t block[64]) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(const std::uint8_t* data, std::size_t len) {
  length_ += len;
  while (len > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffered_);
    std::copy(data, data + take,
              buffer_.begin() + static_cast<long>(buffered_));
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
}

std::array<std::uint8_t, 20> Sha1::digest() {
  const std::uint64_t bit_len = length_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  update(len_be, 8);
  std::array<std::uint8_t, 20> out{};
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      out[static_cast<std::size_t>(i * 4 + j)] = static_cast<std::uint8_t>(
          state_[static_cast<std::size_t>(i)] >> (8 * (3 - j)));
    }
  }
  return out;
}

std::array<std::uint8_t, 20> sha1(const std::vector<std::uint8_t>& data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.digest();
}

std::string sha1_hex(const std::vector<std::uint8_t>& data) {
  static constexpr char hex[] = "0123456789abcdef";
  const auto d = sha1(data);
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : d) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 15]);
  }
  return out;
}

}  // namespace eewa::wl
