// BWC — Burrows-Wheeler transform compression (paper benchmark #1):
// block-wise BWT → move-to-front → zero-run RLE → canonical Huffman.
// Self-describing block format; exact round trip.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eewa::wl {

/// Compress one block (the task granularity of the BWC benchmark).
std::vector<std::uint8_t> bwc_compress_block(
    const std::vector<std::uint8_t>& block);

/// Invert bwc_compress_block. Throws std::invalid_argument on malformed
/// input.
std::vector<std::uint8_t> bwc_decompress_block(
    const std::vector<std::uint8_t>& data);

}  // namespace eewa::wl
