// DMC — Dynamic Markov Coding (Cormack & Horspool 1987), the paper's
// benchmark #3: a bit-level finite-state predictor grown by state
// cloning, driving a binary arithmetic coder (Witten–Neal–Cleary).
// The model starts as a depth-8 bit-tree braid and clones states as
// transition counts warrant; when the node pool is exhausted the model
// resets (as real DMC implementations do).
#pragma once

#include <cstdint>
#include <vector>

namespace eewa::wl {

/// Tuning knobs (exposed for tests/benches).
struct DmcOptions {
  std::size_t max_nodes = 1u << 16;  ///< model reset threshold
  double clone_threshold_from = 2.0;
  double clone_threshold_rest = 2.0;
};

/// Compress a block. Output embeds the byte count header.
std::vector<std::uint8_t> dmc_compress_block(
    const std::vector<std::uint8_t>& block, const DmcOptions& opt = {});

/// Exact inverse of dmc_compress_block (same options required).
/// Throws std::invalid_argument on malformed input.
std::vector<std::uint8_t> dmc_decompress_block(
    const std::vector<std::uint8_t>& data, const DmcOptions& opt = {});

}  // namespace eewa::wl
