// The benchmark suite (paper Table II): seven CPU-bound, batch-structured
// applications built from the kernels in this library. Each benchmark is
// a set of task classes (function names) with per-class task counts and
// block-size distributions; ~128 tasks launch per batch as the paper's
// programs do.
//
// Two consumption modes:
//  * make_batch()  — real closures for the thread runtime / examples.
//  * build_trace() — a simulator TaskTrace whose per-task work is
//    `bytes × ns_per_byte(kernel)` with per-byte costs measured on this
//    host by calibrate(); class cost *ratios* (the thing the scheduler
//    reacts to) therefore come from real kernel executions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/task_trace.hpp"

namespace eewa::wl {

/// Which kernel a task class runs.
enum class KernelKind {
  kBwcBwtStage,      // BWT forward transform of a text block
  kBwcEntropyStage,  // MTF + zero-run RLE of a text block
  kBzCompress,       // full bzip2-style pipeline
  kDmcCompress,      // dynamic Markov coding
  kJeEncode,         // JPEG-encode an image tile, quality 75
  kJeThumbnail,      // JPEG-encode a small tile, quality 35
  kLzwCompress,      // LZW
  kMd5Hash,          // MD5 digest
  kSha1Hash,         // SHA-1 digest
};

/// One task class of a benchmark.
struct ClassDef {
  std::string class_name;
  KernelKind kernel;
  std::size_t tasks_per_batch;
  double mean_bytes;  ///< mean input size per task
  double cv;          ///< lognormal coefficient of variation of sizes
};

/// One benchmark (one row of Table II).
struct BenchmarkDef {
  std::string name;
  std::string description;
  std::vector<ClassDef> classes;
};

/// All seven benchmarks, in the paper's order.
const std::vector<BenchmarkDef>& suite();

/// Lookup by name ("BWC", "Bzip-2", "DMC", "JE", "LZW", "MD5", "SHA-1").
/// Throws std::invalid_argument when unknown.
const BenchmarkDef& find_benchmark(std::string_view name);

/// Execute the kernel on `bytes` of deterministic seeded input; returns
/// a checksum-ish value so the work cannot be optimized away.
std::uint64_t run_kernel(KernelKind kernel, std::size_t bytes,
                         std::uint64_t seed);

/// Host calibration: measured per-byte cost of each kernel.
struct Calibration {
  std::map<KernelKind, double> ns_per_byte;

  double cost_s(KernelKind k, double bytes) const {
    return ns_per_byte.at(k) * bytes * 1e-9;
  }
};

/// Measure every kernel on `sample_bytes` of data, `reps` repetitions
/// (minimum taken). Deterministic inputs; timing is host-dependent.
Calibration calibrate(std::size_t sample_bytes = 16384, int reps = 3);

/// A built-in calibration (measured on the reference dev machine) so the
/// simulator experiments are reproducible without timing noise.
Calibration reference_calibration();

/// Build a simulator trace: `batches` batches of the benchmark's task
/// mix with seeded size sampling and slight per-batch drift.
trace::TaskTrace build_trace(const BenchmarkDef& bench,
                             const Calibration& cal, std::size_t batches,
                             std::uint64_t seed);

/// One real, runnable task.
struct SuiteTask {
  std::string class_name;
  std::size_t bytes;
  std::function<std::uint64_t()> run;
};

/// Materialize one batch of real tasks (closures over seeded data).
std::vector<SuiteTask> make_batch(const BenchmarkDef& bench,
                                  std::size_t batch_index,
                                  std::uint64_t seed);

}  // namespace eewa::wl
