// Deterministic synthetic corpora for the benchmark kernels. The paper's
// benchmarks consume files from "official websites"; we substitute
// seeded generators with realistic statistics: Markov-chain English-like
// text (compressible, for the compressors) and a smooth-gradient RGB
// image with noise (for the JPEG encoder).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eewa::wl {

/// English-like bytes from a small order-1 Markov model over letters,
/// spaces and punctuation. Compressible (entropy ≈ 2-3 bits/byte).
std::vector<std::uint8_t> markov_text(std::size_t bytes, std::uint64_t seed);

/// Bytes with a skewed (Zipf-ish) symbol distribution over the full byte
/// alphabet; stresses entropy coders differently than text.
std::vector<std::uint8_t> skewed_bytes(std::size_t bytes, std::uint64_t seed);

/// Uniform random bytes (incompressible; worst case for the codecs).
std::vector<std::uint8_t> random_bytes(std::size_t bytes, std::uint64_t seed);

/// An RGB image (width*height*3 bytes, row-major) of smooth gradients
/// plus seeded noise and a few rectangles — enough structure for DCT
/// energy compaction to be observable.
std::vector<std::uint8_t> synthetic_image(std::size_t width,
                                          std::size_t height,
                                          std::uint64_t seed);

}  // namespace eewa::wl
