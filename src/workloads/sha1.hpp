// SHA-1 (FIPS 180-1), paper benchmark #7. Incremental API plus one-shot
// helpers; validated against the FIPS test vectors.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eewa::wl {

/// Incremental SHA-1 context.
class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const std::vector<std::uint8_t>& data) {
    update(data.data(), data.size());
  }

  /// Finalize and return the 20-byte digest.
  std::array<std::uint8_t, 20> digest();

 private:
  void process_block(const std::uint8_t block[64]);

  std::array<std::uint32_t, 5> state_{};
  std::uint64_t length_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

/// One-shot digest.
std::array<std::uint8_t, 20> sha1(const std::vector<std::uint8_t>& data);

/// Lower-case hex of a digest.
std::string sha1_hex(const std::vector<std::uint8_t>& data);

}  // namespace eewa::wl
