#include "workloads/jpeg_enc.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "util/bit_io.hpp"
#include "workloads/huffman.hpp"

namespace eewa::wl {

namespace {

// Annex K luminance/chrominance quantization tables.
constexpr std::array<int, 64> kLumaQ = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};
constexpr std::array<int, 64> kChromaQ = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

std::array<int, 64> scaled_table(const std::array<int, 64>& base,
                                 int quality) {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, 64> out{};
  for (int i = 0; i < 64; ++i) {
    out[static_cast<std::size_t>(i)] = std::clamp(
        (base[static_cast<std::size_t>(i)] * scale + 50) / 100, 1, 255);
  }
  return out;
}

void fdct8(const double in[64], double out[64]) {
  // Separable reference DCT-II, orthonormal scaling.
  static double cosv[8][8];
  static bool init = false;
  if (!init) {
    for (int k = 0; k < 8; ++k) {
      for (int x = 0; x < 8; ++x) {
        cosv[k][x] = std::cos((2.0 * x + 1.0) * k * M_PI / 16.0);
      }
    }
    init = true;
  }
  double tmp[64];
  for (int y = 0; y < 8; ++y) {
    for (int k = 0; k < 8; ++k) {
      double s = 0.0;
      for (int x = 0; x < 8; ++x) s += in[y * 8 + x] * cosv[k][x];
      tmp[y * 8 + k] = s * (k == 0 ? std::sqrt(1.0 / 8.0)
                                   : std::sqrt(2.0 / 8.0));
    }
  }
  for (int k = 0; k < 8; ++k) {
    for (int l = 0; l < 8; ++l) {
      double s = 0.0;
      for (int y = 0; y < 8; ++y) s += tmp[y * 8 + l] * cosv[k][y];
      out[k * 8 + l] =
          s * (k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0));
    }
  }
}

void idct8(const double in[64], double out[64]) {
  static double cosv[8][8];
  static bool init = false;
  if (!init) {
    for (int k = 0; k < 8; ++k) {
      for (int x = 0; x < 8; ++x) {
        cosv[k][x] = std::cos((2.0 * x + 1.0) * k * M_PI / 16.0);
      }
    }
    init = true;
  }
  double tmp[64];
  for (int k = 0; k < 8; ++k) {
    for (int x = 0; x < 8; ++x) {
      double s = 0.0;
      for (int l = 0; l < 8; ++l) {
        s += in[k * 8 + l] * cosv[l][x] *
             (l == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0));
      }
      tmp[k * 8 + x] = s;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      double s = 0.0;
      for (int k = 0; k < 8; ++k) {
        s += tmp[k * 8 + x] * cosv[k][y] *
             (k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0));
      }
      out[y * 8 + x] = s;
    }
  }
}

unsigned size_category(int v) {
  unsigned s = 0;
  unsigned a = static_cast<unsigned>(v < 0 ? -v : v);
  while (a) {
    ++s;
    a >>= 1;
  }
  return s;
}

void put_amplitude(util::BitWriter& bw, int v, unsigned size) {
  if (size == 0) return;
  const int bits = v >= 0 ? v : v + (1 << size) - 1;
  bw.write(static_cast<std::uint64_t>(bits), size);
}

int get_amplitude(util::BitReader& br, unsigned size) {
  if (size == 0) return 0;
  const int bits = static_cast<int>(br.read(size));
  if (bits < (1 << (size - 1))) {
    return bits - (1 << size) + 1;
  }
  return bits;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& i) {
  if (i + 4 > in.size()) {
    throw std::invalid_argument("jpeg: truncated stream");
  }
  const std::uint32_t v = (static_cast<std::uint32_t>(in[i]) << 24) |
                          (static_cast<std::uint32_t>(in[i + 1]) << 16) |
                          (static_cast<std::uint32_t>(in[i + 2]) << 8) |
                          static_cast<std::uint32_t>(in[i + 3]);
  i += 4;
  return v;
}

struct Planes {
  std::size_t w8 = 0, h8 = 0;  // padded dims
  std::vector<double> y, cb, cr;
};

Planes to_ycbcr(const Image& img) {
  Planes p;
  p.w8 = (img.width + 7) / 8 * 8;
  p.h8 = (img.height + 7) / 8 * 8;
  p.y.resize(p.w8 * p.h8);
  p.cb.resize(p.w8 * p.h8);
  p.cr.resize(p.w8 * p.h8);
  for (std::size_t yy = 0; yy < p.h8; ++yy) {
    const std::size_t sy = std::min(yy, img.height - 1);
    for (std::size_t xx = 0; xx < p.w8; ++xx) {
      const std::size_t sx = std::min(xx, img.width - 1);
      const std::size_t i = (sy * img.width + sx) * 3;
      const double r = img.rgb[i], g = img.rgb[i + 1], b = img.rgb[i + 2];
      const std::size_t o = yy * p.w8 + xx;
      p.y[o] = 0.299 * r + 0.587 * g + 0.114 * b - 128.0;
      p.cb[o] = -0.168736 * r - 0.331264 * g + 0.5 * b;
      p.cr[o] = 0.5 * r - 0.418688 * g - 0.081312 * b;
    }
  }
  return p;
}

}  // namespace

std::vector<std::uint8_t> jpeg_encode(const Image& image,
                                      const JpegOptions& opt) {
  if (!image.valid() || image.width == 0 || image.height == 0) {
    throw std::invalid_argument("jpeg_encode: invalid image");
  }
  const Planes planes = to_ycbcr(image);
  const auto lq = scaled_table(kLumaQ, opt.quality);
  const auto cq = scaled_table(kChromaQ, opt.quality);

  std::vector<std::uint8_t> symbols;  // DC size cats + AC (run,size)
  util::BitWriter bits;               // amplitude bits

  auto encode_plane = [&](const std::vector<double>& plane,
                          const std::array<int, 64>& q) {
    int prev_dc = 0;
    for (std::size_t by = 0; by < planes.h8; by += 8) {
      for (std::size_t bx = 0; bx < planes.w8; bx += 8) {
        double block[64], coef[64];
        for (int yy = 0; yy < 8; ++yy) {
          for (int xx = 0; xx < 8; ++xx) {
            block[yy * 8 + xx] =
                plane[(by + static_cast<std::size_t>(yy)) * planes.w8 + bx +
                      static_cast<std::size_t>(xx)];
          }
        }
        fdct8(block, coef);
        int zz[64];
        for (int i = 0; i < 64; ++i) {
          const int src = kZigzag[static_cast<std::size_t>(i)];
          zz[i] = static_cast<int>(std::lround(
              coef[src] / q[static_cast<std::size_t>(src)]));
        }
        // DC delta.
        const int diff = zz[0] - prev_dc;
        prev_dc = zz[0];
        const unsigned dsz = size_category(diff);
        symbols.push_back(static_cast<std::uint8_t>(dsz));
        put_amplitude(bits, diff, dsz);
        // AC run-length symbols.
        int run = 0;
        for (int i = 1; i < 64; ++i) {
          if (zz[i] == 0) {
            ++run;
            continue;
          }
          while (run >= 16) {
            symbols.push_back(0xF0);  // ZRL
            run -= 16;
          }
          const unsigned asz = size_category(zz[i]);
          symbols.push_back(
              static_cast<std::uint8_t>((run << 4) | asz));
          put_amplitude(bits, zz[i], asz);
          run = 0;
        }
        if (run > 0) symbols.push_back(0x00);  // EOB
      }
    }
  };
  encode_plane(planes.y, lq);
  encode_plane(planes.cb, cq);
  encode_plane(planes.cr, cq);

  const auto sym_huff = huffman_encode(symbols);
  const auto bit_bytes = bits.take();

  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(image.width));
  put_u32(out, static_cast<std::uint32_t>(image.height));
  out.push_back(static_cast<std::uint8_t>(std::clamp(opt.quality, 1, 100)));
  put_u32(out, static_cast<std::uint32_t>(sym_huff.size()));
  out.insert(out.end(), sym_huff.begin(), sym_huff.end());
  put_u32(out, static_cast<std::uint32_t>(bit_bytes.size()));
  out.insert(out.end(), bit_bytes.begin(), bit_bytes.end());
  return out;
}

Image jpeg_decode(const std::vector<std::uint8_t>& data) {
  std::size_t pos = 0;
  Image img;
  img.width = get_u32(data, pos);
  img.height = get_u32(data, pos);
  if (img.width == 0 || img.height == 0 ||
      img.width > (1u << 16) || img.height > (1u << 16) ||
      img.width * img.height > (1u << 26)) {
    throw std::invalid_argument("jpeg_decode: implausible dimensions");
  }
  if (pos >= data.size()) {
    throw std::invalid_argument("jpeg_decode: truncated stream");
  }
  const int quality = data[pos++];
  const std::uint32_t sym_len = get_u32(data, pos);
  if (pos + sym_len > data.size()) {
    throw std::invalid_argument("jpeg_decode: truncated symbols");
  }
  const std::vector<std::uint8_t> sym_huff(
      data.begin() + static_cast<long>(pos),
      data.begin() + static_cast<long>(pos + sym_len));
  pos += sym_len;
  const std::uint32_t bit_len = get_u32(data, pos);
  if (pos + bit_len > data.size()) {
    throw std::invalid_argument("jpeg_decode: truncated bits");
  }
  util::BitReader bits({data.data() + pos, bit_len});

  const auto symbols = huffman_decode(sym_huff);
  const auto lq = scaled_table(kLumaQ, quality);
  const auto cq = scaled_table(kChromaQ, quality);

  const std::size_t w8 = (img.width + 7) / 8 * 8;
  const std::size_t h8 = (img.height + 7) / 8 * 8;
  std::vector<double> y(w8 * h8), cb(w8 * h8), cr(w8 * h8);

  std::size_t sp = 0;  // symbol cursor
  auto decode_plane = [&](std::vector<double>& plane,
                          const std::array<int, 64>& q) {
    int prev_dc = 0;
    for (std::size_t by = 0; by < h8; by += 8) {
      for (std::size_t bx = 0; bx < w8; bx += 8) {
        int zz[64] = {};
        if (sp >= symbols.size()) {
          throw std::invalid_argument("jpeg_decode: symbol underrun");
        }
        const unsigned dsz = symbols[sp++];
        prev_dc += get_amplitude(bits, dsz);
        zz[0] = prev_dc;
        int i = 1;
        while (i < 64) {
          if (sp >= symbols.size()) {
            throw std::invalid_argument("jpeg_decode: symbol underrun");
          }
          const std::uint8_t s = symbols[sp++];
          if (s == 0x00) break;  // EOB
          if (s == 0xF0) {
            i += 16;
            continue;
          }
          i += s >> 4;
          if (i >= 64) {
            throw std::invalid_argument("jpeg_decode: AC index overflow");
          }
          zz[i++] = get_amplitude(bits, s & 0x0F);
        }
        double coef[64], block[64];
        for (int k = 0; k < 64; ++k) {
          const int dst = kZigzag[static_cast<std::size_t>(k)];
          coef[dst] = static_cast<double>(zz[k]) *
                      q[static_cast<std::size_t>(dst)];
        }
        idct8(coef, block);
        for (int yy = 0; yy < 8; ++yy) {
          for (int xx = 0; xx < 8; ++xx) {
            plane[(by + static_cast<std::size_t>(yy)) * w8 + bx +
                  static_cast<std::size_t>(xx)] = block[yy * 8 + xx];
          }
        }
      }
    }
  };
  decode_plane(y, lq);
  decode_plane(cb, cq);
  decode_plane(cr, cq);

  img.rgb.resize(img.width * img.height * 3);
  for (std::size_t yy = 0; yy < img.height; ++yy) {
    for (std::size_t xx = 0; xx < img.width; ++xx) {
      const std::size_t o = yy * w8 + xx;
      const double Y = y[o] + 128.0, Cb = cb[o], Cr = cr[o];
      auto clamp8 = [](double v) {
        return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
      };
      const std::size_t i = (yy * img.width + xx) * 3;
      img.rgb[i + 0] = clamp8(Y + 1.402 * Cr);
      img.rgb[i + 1] = clamp8(Y - 0.344136 * Cb - 0.714136 * Cr);
      img.rgb[i + 2] = clamp8(Y + 1.772 * Cb);
    }
  }
  return img;
}

double psnr(const Image& a, const Image& b) {
  if (a.width != b.width || a.height != b.height || !a.valid() ||
      !b.valid()) {
    throw std::invalid_argument("psnr: image mismatch");
  }
  double mse = 0.0;
  for (std::size_t i = 0; i < a.rgb.size(); ++i) {
    const double d = static_cast<double>(a.rgb[i]) - b.rgb[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.rgb.size());
  if (mse <= 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace eewa::wl
