// Move-to-front recoding and two run-length schemes:
//  - rle_literal: bzip2's RLE1 — a run of 4+ identical bytes becomes the
//    4 bytes plus one extra-count byte (runs longer than 259 split).
//  - rle_zeros:   zero-run coding for post-MTF streams, where 0 dominates:
//    a run of k zeros becomes {0x00, k-1} with k capped at 256.
// All transforms are exactly invertible.
#pragma once

#include <cstdint>
#include <vector>

namespace eewa::wl {

/// Move-to-front encode (byte alphabet).
std::vector<std::uint8_t> mtf_encode(const std::vector<std::uint8_t>& data);

/// Move-to-front decode.
std::vector<std::uint8_t> mtf_decode(const std::vector<std::uint8_t>& data);

/// bzip2-style RLE1 encode.
std::vector<std::uint8_t> rle_literal_encode(
    const std::vector<std::uint8_t>& data);

/// bzip2-style RLE1 decode. Throws std::invalid_argument on truncation.
std::vector<std::uint8_t> rle_literal_decode(
    const std::vector<std::uint8_t>& data);

/// Zero-run encode (for MTF output).
std::vector<std::uint8_t> rle_zeros_encode(
    const std::vector<std::uint8_t>& data);

/// Zero-run decode. Throws std::invalid_argument on truncation.
std::vector<std::uint8_t> rle_zeros_decode(
    const std::vector<std::uint8_t>& data);

}  // namespace eewa::wl
