#include "workloads/bwt.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace eewa::wl {

std::vector<std::uint32_t> sort_rotations(
    const std::vector<std::uint8_t>& data) {
  const std::size_t n = data.size();
  std::vector<std::uint32_t> sa(n);
  std::iota(sa.begin(), sa.end(), 0);
  if (n <= 1) return sa;

  std::vector<std::uint32_t> rank(n), tmp(n);
  for (std::size_t i = 0; i < n; ++i) rank[i] = data[i];

  for (std::size_t k = 1; k < n; k <<= 1) {
    auto key = [&](std::uint32_t i) {
      return std::pair<std::uint32_t, std::uint32_t>(
          rank[i], rank[(i + k) % n]);
    };
    std::sort(sa.begin(), sa.end(),
              [&](std::uint32_t a, std::uint32_t b) { return key(a) < key(b); });
    tmp[sa[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      tmp[sa[i]] = tmp[sa[i - 1]] + (key(sa[i - 1]) < key(sa[i]) ? 1 : 0);
    }
    rank = tmp;
    if (rank[sa[n - 1]] == n - 1) break;  // all ranks distinct
  }
  return sa;
}

BwtResult bwt_forward(const std::vector<std::uint8_t>& data) {
  BwtResult res;
  const std::size_t n = data.size();
  if (n == 0) return res;
  const auto sa = sort_rotations(data);
  res.last_column.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t start = sa[i];
    res.last_column[i] = data[(start + n - 1) % n];
    if (start == 0) res.primary_index = i;
  }
  return res;
}

std::vector<std::uint8_t> bwt_inverse(
    const std::vector<std::uint8_t>& last_column,
    std::size_t primary_index) {
  const std::size_t n = last_column.size();
  if (n == 0) {
    if (primary_index != 0) {
      throw std::invalid_argument("bwt_inverse: bad primary index");
    }
    return {};
  }
  if (primary_index >= n) {
    throw std::invalid_argument("bwt_inverse: bad primary index");
  }

  // C[c]: number of symbols < c in the last column.
  std::array<std::size_t, 257> count{};
  for (std::uint8_t c : last_column) ++count[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 1; c < 257; ++c) count[c] += count[c - 1];

  // P[i]: occurrences of last_column[i] before position i.
  std::vector<std::size_t> lf(n);
  {
    std::array<std::size_t, 256> seen{};
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t c = last_column[i];
      lf[i] = count[c] + seen[c];
      ++seen[c];
    }
  }

  std::vector<std::uint8_t> out(n);
  std::size_t row = primary_index;
  for (std::size_t i = n; i-- > 0;) {
    out[i] = last_column[row];
    row = lf[row];
  }
  return out;
}

}  // namespace eewa::wl
