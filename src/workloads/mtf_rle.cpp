#include "workloads/mtf_rle.hpp"

#include <numeric>
#include <stdexcept>

namespace eewa::wl {

namespace {

std::vector<std::uint8_t> identity_alphabet() {
  std::vector<std::uint8_t> a(256);
  std::iota(a.begin(), a.end(), 0);
  return a;
}

}  // namespace

std::vector<std::uint8_t> mtf_encode(const std::vector<std::uint8_t>& data) {
  auto alphabet = identity_alphabet();
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  for (std::uint8_t b : data) {
    std::size_t idx = 0;
    while (alphabet[idx] != b) ++idx;
    out.push_back(static_cast<std::uint8_t>(idx));
    for (std::size_t i = idx; i > 0; --i) alphabet[i] = alphabet[i - 1];
    alphabet[0] = b;
  }
  return out;
}

std::vector<std::uint8_t> mtf_decode(const std::vector<std::uint8_t>& data) {
  auto alphabet = identity_alphabet();
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  for (std::uint8_t idx : data) {
    const std::uint8_t b = alphabet[idx];
    out.push_back(b);
    for (std::size_t i = idx; i > 0; --i) alphabet[i] = alphabet[i - 1];
    alphabet[0] = b;
  }
  return out;
}

std::vector<std::uint8_t> rle_literal_encode(
    const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t b = data[i];
    std::size_t run = 1;
    while (i + run < data.size() && data[i + run] == b && run < 259) ++run;
    if (run >= 4) {
      out.insert(out.end(), 4, b);
      out.push_back(static_cast<std::uint8_t>(run - 4));
    } else {
      out.insert(out.end(), run, b);
    }
    i += run;
  }
  return out;
}

std::vector<std::uint8_t> rle_literal_decode(
    const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t b = data[i];
    std::size_t run = 1;
    while (run < 4 && i + run < data.size() && data[i + run] == b) ++run;
    if (run == 4) {
      if (i + 4 >= data.size()) {
        throw std::invalid_argument("rle_literal_decode: truncated run");
      }
      const std::size_t extra = data[i + 4];
      out.insert(out.end(), 4 + extra, b);
      i += 5;
    } else {
      out.insert(out.end(), run, b);
      i += run;
    }
  }
  return out;
}

std::vector<std::uint8_t> rle_zeros_encode(
    const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  std::size_t i = 0;
  while (i < data.size()) {
    if (data[i] == 0) {
      std::size_t run = 1;
      while (i + run < data.size() && data[i + run] == 0 && run < 256) {
        ++run;
      }
      out.push_back(0);
      out.push_back(static_cast<std::uint8_t>(run - 1));
      i += run;
    } else {
      out.push_back(data[i]);
      ++i;
    }
  }
  return out;
}

std::vector<std::uint8_t> rle_zeros_decode(
    const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  std::size_t i = 0;
  while (i < data.size()) {
    if (data[i] == 0) {
      if (i + 1 >= data.size()) {
        throw std::invalid_argument("rle_zeros_decode: truncated run");
      }
      out.insert(out.end(), static_cast<std::size_t>(data[i + 1]) + 1, 0);
      i += 2;
    } else {
      out.push_back(data[i]);
      ++i;
    }
  }
  return out;
}

}  // namespace eewa::wl
