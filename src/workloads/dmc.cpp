#include "workloads/dmc.hpp"

#include <cstddef>
#include <stdexcept>

#include "util/bit_io.hpp"

namespace eewa::wl {

namespace {

// ------------------------------------------------------------ DMC model --

struct DmcNode {
  std::uint32_t next[2];
  float count[2];
};

/// The shared predictor; encoder and decoder must evolve identically.
class DmcModel {
 public:
  explicit DmcModel(const DmcOptions& opt) : opt_(opt) { reset(); }

  /// Probability counts for the next bit in the current state, as
  /// integer weights for the arithmetic coder (always >= 1 each).
  void weights(std::uint32_t& w0, std::uint32_t& w1) const {
    const DmcNode& s = nodes_[state_];
    w0 = static_cast<std::uint32_t>(s.count[0] * 16.0f) + 1;
    w1 = static_cast<std::uint32_t>(s.count[1] * 16.0f) + 1;
  }

  /// Advance the model on the observed bit (with cloning).
  void update(unsigned bit) {
    // Index-based access throughout: push_back below may reallocate.
    const std::uint32_t t = nodes_[state_].next[bit];
    const float from_count = nodes_[state_].count[bit];
    const float to_total = nodes_[t].count[0] + nodes_[t].count[1];
    if (from_count > opt_.clone_threshold_from &&
        to_total - from_count > opt_.clone_threshold_rest &&
        nodes_.size() < opt_.max_nodes) {
      // Clone the target: split its statistics proportionally to how
      // much of its traffic comes through this edge.
      const float r = from_count / to_total;
      DmcNode clone;
      clone.next[0] = nodes_[t].next[0];
      clone.next[1] = nodes_[t].next[1];
      clone.count[0] = nodes_[t].count[0] * r;
      clone.count[1] = nodes_[t].count[1] * r;
      nodes_[t].count[0] -= clone.count[0];
      nodes_[t].count[1] -= clone.count[1];
      nodes_.push_back(clone);
      nodes_[state_].next[bit] =
          static_cast<std::uint32_t>(nodes_.size() - 1);
    }
    DmcNode& s = nodes_[state_];
    s.count[bit] += 1.0f;
    if (s.count[bit] > 4096.0f) {
      s.count[0] *= 0.5f;
      s.count[1] *= 0.5f;
    }
    state_ = s.next[bit];
    if (nodes_.size() >= opt_.max_nodes) reset();
  }

  std::size_t node_count() const { return nodes_.size(); }

 private:
  void reset() {
    // Depth-8 bit-tree braid: heap-indexed nodes 1..255; edges below the
    // leaves wrap back to the root, so byte boundaries share the root.
    nodes_.assign(256, DmcNode{{1, 1}, {0.2f, 0.2f}});
    for (std::uint32_t i = 1; i < 256; ++i) {
      for (unsigned b = 0; b < 2; ++b) {
        const std::uint32_t child = 2 * i + b;
        nodes_[i].next[b] = child < 256 ? child : 1;
      }
    }
    state_ = 1;
  }

  DmcOptions opt_;
  std::vector<DmcNode> nodes_;
  std::uint32_t state_ = 1;
};

// -------------------------------------------- binary arithmetic coder --

constexpr std::uint64_t kTopValue = 0xFFFFFFFFULL;
constexpr std::uint64_t kHalf = 0x80000000ULL;
constexpr std::uint64_t kQuarter = 0x40000000ULL;
constexpr std::uint64_t kThreeQuarter = 0xC0000000ULL;

class ArithEncoder {
 public:
  void encode(unsigned bit, std::uint32_t w0, std::uint32_t w1) {
    const std::uint64_t range = high_ - low_ + 1;
    const std::uint64_t total = static_cast<std::uint64_t>(w0) + w1;
    const std::uint64_t mid = low_ + range * w0 / total - 1;
    if (bit == 0) {
      high_ = mid;
    } else {
      low_ = mid + 1;
    }
    for (;;) {
      if (high_ < kHalf) {
        emit(0);
      } else if (low_ >= kHalf) {
        emit(1);
        low_ -= kHalf;
        high_ -= kHalf;
      } else if (low_ >= kQuarter && high_ < kThreeQuarter) {
        ++pending_;
        low_ -= kQuarter;
        high_ -= kQuarter;
      } else {
        break;
      }
      low_ <<= 1;
      high_ = (high_ << 1) | 1;
    }
  }

  std::vector<std::uint8_t> finish() {
    ++pending_;
    emit(low_ >= kQuarter ? 1 : 0);
    return bw_.take();
  }

 private:
  void emit(unsigned bit) {
    bw_.write_bit(bit);
    for (; pending_ > 0; --pending_) bw_.write_bit(bit ^ 1u);
  }

  util::BitWriter bw_;
  std::uint64_t low_ = 0;
  std::uint64_t high_ = kTopValue;
  std::size_t pending_ = 0;
};

class ArithDecoder {
 public:
  explicit ArithDecoder(util::BitReader& br) : br_(br) {
    for (int i = 0; i < 32; ++i) value_ = (value_ << 1) | br_.read_bit();
  }

  unsigned decode(std::uint32_t w0, std::uint32_t w1) {
    const std::uint64_t range = high_ - low_ + 1;
    const std::uint64_t total = static_cast<std::uint64_t>(w0) + w1;
    const std::uint64_t mid = low_ + range * w0 / total - 1;
    unsigned bit;
    if (value_ <= mid) {
      bit = 0;
      high_ = mid;
    } else {
      bit = 1;
      low_ = mid + 1;
    }
    for (;;) {
      if (high_ < kHalf) {
        // nothing
      } else if (low_ >= kHalf) {
        low_ -= kHalf;
        high_ -= kHalf;
        value_ -= kHalf;
      } else if (low_ >= kQuarter && high_ < kThreeQuarter) {
        low_ -= kQuarter;
        high_ -= kQuarter;
        value_ -= kQuarter;
      } else {
        break;
      }
      low_ <<= 1;
      high_ = (high_ << 1) | 1;
      value_ = (value_ << 1) | br_.read_bit();
    }
    return bit;
  }

 private:
  util::BitReader& br_;
  std::uint64_t low_ = 0;
  std::uint64_t high_ = kTopValue;
  std::uint64_t value_ = 0;
};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

std::vector<std::uint8_t> dmc_compress_block(
    const std::vector<std::uint8_t>& block, const DmcOptions& opt) {
  DmcModel model(opt);
  ArithEncoder enc;
  for (std::uint8_t byte : block) {
    for (int i = 7; i >= 0; --i) {
      const unsigned bit = (byte >> i) & 1u;
      std::uint32_t w0, w1;
      model.weights(w0, w1);
      enc.encode(bit, w0, w1);
      model.update(bit);
    }
  }
  auto payload = enc.finish();
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 4);
  put_u32(out, static_cast<std::uint32_t>(block.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> dmc_decompress_block(
    const std::vector<std::uint8_t>& data, const DmcOptions& opt) {
  if (data.size() < 4) {
    throw std::invalid_argument("dmc: truncated header");
  }
  const std::size_t n = (static_cast<std::size_t>(data[0]) << 24) |
                        (static_cast<std::size_t>(data[1]) << 16) |
                        (static_cast<std::size_t>(data[2]) << 8) |
                        static_cast<std::size_t>(data[3]);
  // Arithmetic coding cannot legitimately expand 8 input bits into more
  // than ~2^10 output bytes under this model; use a generous cap so a
  // corrupted header cannot trigger a multi-gigabyte allocation.
  if (n > (data.size() - 4 + 64) * 1024) {
    throw std::invalid_argument("dmc: implausible decoded size");
  }
  util::BitReader br({data.data() + 4, data.size() - 4});
  DmcModel model(opt);
  ArithDecoder dec(br);
  std::vector<std::uint8_t> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    unsigned byte = 0;
    for (int i = 0; i < 8; ++i) {
      std::uint32_t w0, w1;
      model.weights(w0, w1);
      const unsigned bit = dec.decode(w0, w1);
      model.update(bit);
      byte = (byte << 1) | bit;
    }
    out.push_back(static_cast<std::uint8_t>(byte));
  }
  return out;
}

}  // namespace eewa::wl
