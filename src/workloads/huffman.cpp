#include "workloads/huffman.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/bit_io.hpp"

namespace eewa::wl {

namespace {

/// Plain Huffman tree depth computation.
std::array<std::uint8_t, 256> tree_depths(
    const std::array<std::uint64_t, 256>& freq) {
  struct Node {
    std::uint64_t weight;
    int left = -1, right = -1;
    int symbol = -1;
  };
  std::vector<Node> nodes;
  using Entry = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (int s = 0; s < 256; ++s) {
    if (freq[static_cast<std::size_t>(s)] > 0) {
      nodes.push_back(Node{freq[static_cast<std::size_t>(s)], -1, -1, s});
      pq.emplace(nodes.back().weight, static_cast<int>(nodes.size()) - 1);
    }
  }
  std::array<std::uint8_t, 256> depth{};
  if (nodes.empty()) return depth;
  if (nodes.size() == 1) {
    depth[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return depth;
  }
  while (pq.size() > 1) {
    const auto [wa, a] = pq.top();
    pq.pop();
    const auto [wb, b] = pq.top();
    pq.pop();
    nodes.push_back(Node{wa + wb, a, b, -1});
    pq.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
  }
  // DFS to assign depths.
  std::vector<std::pair<int, std::uint8_t>> stack{{pq.top().second, 0}};
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.symbol >= 0) {
      depth[static_cast<std::size_t>(node.symbol)] = d;
    } else {
      stack.push_back({node.left, static_cast<std::uint8_t>(d + 1)});
      stack.push_back({node.right, static_cast<std::uint8_t>(d + 1)});
    }
  }
  return depth;
}

/// Canonical codes from lengths: code[s] for every symbol with len > 0.
std::array<std::uint32_t, 256> canonical_codes(
    const std::array<std::uint8_t, 256>& len) {
  std::array<std::uint32_t, 256> code{};
  std::array<std::uint32_t, kHuffMaxCodeLen + 2> count{};
  for (auto l : len) ++count[l];
  count[0] = 0;
  std::array<std::uint32_t, kHuffMaxCodeLen + 2> next{};
  std::uint32_t c = 0;
  for (unsigned bits = 1; bits <= kHuffMaxCodeLen; ++bits) {
    c = (c + count[bits - 1]) << 1;
    next[bits] = c;
  }
  for (int s = 0; s < 256; ++s) {
    const auto l = len[static_cast<std::size_t>(s)];
    if (l > 0) code[static_cast<std::size_t>(s)] = next[l]++;
  }
  return code;
}

}  // namespace

std::array<std::uint8_t, 256> huffman_code_lengths(
    const std::array<std::uint64_t, 256>& freq) {
  std::array<std::uint64_t, 256> f = freq;
  for (int iter = 0; iter < 64; ++iter) {
    const auto depth = tree_depths(f);
    const auto max_d = *std::max_element(depth.begin(), depth.end());
    if (max_d <= kHuffMaxCodeLen) return depth;
    // Damp the distribution and retry: halve (keeping nonzero symbols
    // nonzero), which flattens the tree.
    for (auto& v : f) {
      if (v > 0) v = (v + 1) / 2;
    }
  }
  throw std::logic_error("huffman_code_lengths: damping failed to converge");
}

std::vector<std::uint8_t> huffman_encode(
    const std::vector<std::uint8_t>& data) {
  std::array<std::uint64_t, 256> freq{};
  for (std::uint8_t b : data) ++freq[b];
  const auto len = huffman_code_lengths(freq);
  const auto code = canonical_codes(len);

  util::BitWriter bw;
  // Header: symbol count (32 bits) then 256 5-bit code lengths.
  bw.write(static_cast<std::uint64_t>(data.size()), 32);
  for (auto l : len) bw.write(l, 5);
  for (std::uint8_t b : data) bw.write(code[b], len[b]);
  return bw.take();
}

std::vector<std::uint8_t> huffman_decode(
    const std::vector<std::uint8_t>& data) {
  util::BitReader br({data.data(), data.size()});
  const auto n = static_cast<std::size_t>(br.read(32));
  // Header-declared size sanity: a valid stream encodes each symbol in
  // at least one bit, so n can never exceed the remaining bit count.
  if (n > data.size() * 8) {
    throw std::invalid_argument("huffman_decode: implausible symbol count");
  }
  std::array<std::uint8_t, 256> len{};
  for (auto& l : len) l = static_cast<std::uint8_t>(br.read(5));
  if (n == 0) return {};

  // Canonical decode tables: first code and first symbol index per length.
  std::array<std::uint32_t, kHuffMaxCodeLen + 2> count{};
  for (auto l : len) {
    if (l > kHuffMaxCodeLen) {
      throw std::invalid_argument("huffman_decode: bad code length");
    }
    ++count[l];
  }
  count[0] = 0;
  std::vector<std::uint8_t> symbols;  // sorted by (length, symbol)
  for (unsigned bits = 1; bits <= kHuffMaxCodeLen; ++bits) {
    for (int s = 0; s < 256; ++s) {
      if (len[static_cast<std::size_t>(s)] == bits) {
        symbols.push_back(static_cast<std::uint8_t>(s));
      }
    }
  }
  if (symbols.empty()) {
    throw std::invalid_argument("huffman_decode: no symbols");
  }
  std::array<std::uint32_t, kHuffMaxCodeLen + 2> first_code{};
  std::array<std::uint32_t, kHuffMaxCodeLen + 2> first_sym{};
  std::uint32_t c = 0, sym_index = 0;
  for (unsigned bits = 1; bits <= kHuffMaxCodeLen; ++bits) {
    c = (c + count[bits - 1]) << 1;
    first_code[bits] = c;
    first_sym[bits] = sym_index;
    sym_index += count[bits];
  }

  std::vector<std::uint8_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t acc = 0;
    unsigned bits = 0;
    for (;;) {
      if (br.exhausted() && bits > kHuffMaxCodeLen) {
        throw std::invalid_argument("huffman_decode: truncated stream");
      }
      acc = (acc << 1) | br.read_bit();
      ++bits;
      if (bits > kHuffMaxCodeLen) {
        throw std::invalid_argument("huffman_decode: invalid code");
      }
      if (count[bits] > 0 && acc >= first_code[bits] &&
          acc - first_code[bits] < count[bits]) {
        out.push_back(symbols[first_sym[bits] + (acc - first_code[bits])]);
        break;
      }
    }
  }
  return out;
}

}  // namespace eewa::wl
