// A multi-block container so the compressors handle arbitrary-size
// inputs: the data is chunked, each block goes through the selected
// codec independently (which is also what makes the codecs natural
// task-parallel workloads), and a self-describing header ties it
// together. Exact round trip for every codec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eewa::wl {

/// Which block codec the container uses.
enum class ContainerCodec : std::uint8_t {
  kBwc = 0,
  kBzip2ish = 1,
  kDmc = 2,
  kLzw = 3,
};

/// Chunk `data` into `block_size`-byte blocks and compress each.
/// block_size must be >= 1. Empty input yields a valid empty container.
std::vector<std::uint8_t> container_compress(
    const std::vector<std::uint8_t>& data, ContainerCodec codec,
    std::size_t block_size = 64 * 1024);

/// Exact inverse of container_compress. Throws std::invalid_argument on
/// malformed input (bad magic, unknown codec, truncation).
std::vector<std::uint8_t> container_decompress(
    const std::vector<std::uint8_t>& container);

}  // namespace eewa::wl
