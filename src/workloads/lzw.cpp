#include "workloads/lzw.hpp"

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/bit_io.hpp"

namespace eewa::wl {

namespace {

constexpr std::uint32_t kClearCode = 256;
constexpr std::uint32_t kStopCode = 257;
constexpr std::uint32_t kFirstFree = 258;
constexpr unsigned kMinBits = 9;
constexpr unsigned kMaxBits = 16;
constexpr std::uint32_t kMaxEntries = 1u << kMaxBits;

}  // namespace

std::vector<std::uint8_t> lzw_compress(
    const std::vector<std::uint8_t>& data) {
  util::BitWriter bw;
  std::unordered_map<std::string, std::uint32_t> dict;
  dict.reserve(kMaxEntries * 2);
  auto reset_dict = [&] {
    dict.clear();
    for (std::uint32_t c = 0; c < 256; ++c) {
      dict.emplace(std::string(1, static_cast<char>(c)), c);
    }
  };
  reset_dict();
  std::uint32_t next_code = kFirstFree;
  unsigned bits = kMinBits;

  std::string current;
  for (std::uint8_t byte : data) {
    std::string candidate = current;
    candidate.push_back(static_cast<char>(byte));
    if (dict.count(candidate)) {
      current = std::move(candidate);
      continue;
    }
    bw.write(dict.at(current), bits);
    if (next_code < kMaxEntries) {
      dict.emplace(std::move(candidate), next_code++);
      if (next_code > (1u << bits) && bits < kMaxBits) ++bits;
    } else {
      bw.write(kClearCode, bits);
      reset_dict();
      next_code = kFirstFree;
      bits = kMinBits;
    }
    current.assign(1, static_cast<char>(byte));
  }
  if (!current.empty()) {
    bw.write(dict.at(current), bits);
    // Mirror the per-code width bookkeeping (the decoder inserts an entry
    // after this code and checks the width) so STOP uses the same width.
    if (next_code < kMaxEntries) {
      ++next_code;
      if (next_code > (1u << bits) && bits < kMaxBits) ++bits;
    }
  }
  bw.write(kStopCode, bits);
  return bw.take();
}

std::vector<std::uint8_t> lzw_decompress(
    const std::vector<std::uint8_t>& data) {
  util::BitReader br({data.data(), data.size()});
  std::vector<std::string> dict;
  auto reset_dict = [&] {
    dict.clear();
    dict.reserve(kMaxEntries);
    for (std::uint32_t c = 0; c < 256; ++c) {
      dict.emplace_back(1, static_cast<char>(c));
    }
    dict.emplace_back();  // CLEAR
    dict.emplace_back();  // STOP
  };
  reset_dict();
  unsigned bits = kMinBits;
  std::vector<std::uint8_t> out;
  std::string previous;

  for (;;) {
    if (br.exhausted()) {
      throw std::invalid_argument("lzw_decompress: missing stop code");
    }
    const auto code = static_cast<std::uint32_t>(br.read(bits));
    if (code == kStopCode) break;
    if (code == kClearCode) {
      reset_dict();
      bits = kMinBits;
      previous.clear();
      continue;
    }
    std::string entry;
    if (code < dict.size() && !(code == kClearCode || code == kStopCode)) {
      entry = dict[code];
    } else if (code == dict.size() && !previous.empty()) {
      entry = previous + previous[0];  // the KwKwK special case
    } else {
      throw std::invalid_argument("lzw_decompress: invalid code");
    }
    out.insert(out.end(), entry.begin(), entry.end());
    if (!previous.empty() && dict.size() < kMaxEntries) {
      dict.push_back(previous + entry[0]);
    }
    // The encoder's next_code runs one entry ahead of this dictionary
    // (it inserts after every emitted code, we insert from the second
    // code on), so the width bump must anticipate by one.
    if (dict.size() + 1 > (1u << bits) && bits < kMaxBits) ++bits;
    previous = std::move(entry);
  }
  return out;
}

}  // namespace eewa::wl
