// Bzip-2 style compressor (paper benchmark #2): the bzip2 pipeline
// RLE1 → BWT → MTF → zero-run RLE → canonical Huffman, per block.
// (Bit-stream layout is ours, not the .bz2 format — the benchmark
// exercises the same computation.)
#pragma once

#include <cstdint>
#include <vector>

namespace eewa::wl {

/// Compress one block through the full bzip2-style pipeline.
std::vector<std::uint8_t> bzip2ish_compress_block(
    const std::vector<std::uint8_t>& block);

/// Exact inverse. Throws std::invalid_argument on malformed input.
std::vector<std::uint8_t> bzip2ish_decompress_block(
    const std::vector<std::uint8_t>& data);

}  // namespace eewa::wl
