#include "workloads/bwc.hpp"

#include <stdexcept>

#include "workloads/bwt.hpp"
#include "workloads/huffman.hpp"
#include "workloads/mtf_rle.hpp"

namespace eewa::wl {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& i) {
  if (i + 4 > in.size()) {
    throw std::invalid_argument("bwc: truncated header");
  }
  const std::uint32_t v = (static_cast<std::uint32_t>(in[i]) << 24) |
                          (static_cast<std::uint32_t>(in[i + 1]) << 16) |
                          (static_cast<std::uint32_t>(in[i + 2]) << 8) |
                          static_cast<std::uint32_t>(in[i + 3]);
  i += 4;
  return v;
}

}  // namespace

std::vector<std::uint8_t> bwc_compress_block(
    const std::vector<std::uint8_t>& block) {
  const BwtResult bwt = bwt_forward(block);
  const auto mtf = mtf_encode(bwt.last_column);
  const auto rle = rle_zeros_encode(mtf);
  const auto huff = huffman_encode(rle);

  std::vector<std::uint8_t> out;
  out.reserve(huff.size() + 8);
  put_u32(out, static_cast<std::uint32_t>(bwt.primary_index));
  put_u32(out, static_cast<std::uint32_t>(huff.size()));
  out.insert(out.end(), huff.begin(), huff.end());
  return out;
}

std::vector<std::uint8_t> bwc_decompress_block(
    const std::vector<std::uint8_t>& data) {
  std::size_t i = 0;
  const std::uint32_t primary = get_u32(data, i);
  const std::uint32_t huff_size = get_u32(data, i);
  if (i + huff_size > data.size()) {
    throw std::invalid_argument("bwc: truncated payload");
  }
  const std::vector<std::uint8_t> huff(
      data.begin() + static_cast<long>(i),
      data.begin() + static_cast<long>(i + huff_size));
  const auto rle = huffman_decode(huff);
  const auto mtf = rle_zeros_decode(rle);
  const auto last = mtf_decode(mtf);
  return bwt_inverse(last, primary);
}

}  // namespace eewa::wl
