// LZW — Lempel–Ziv–Welch dictionary compression (paper benchmark #5).
// Variable-width codes from 9 up to 16 bits; the dictionary resets via an
// explicit CLEAR code when full, so arbitrarily long inputs round-trip.
#pragma once

#include <cstdint>
#include <vector>

namespace eewa::wl {

/// Compress a block (self-describing stream).
std::vector<std::uint8_t> lzw_compress(const std::vector<std::uint8_t>& data);

/// Exact inverse. Throws std::invalid_argument on malformed input.
std::vector<std::uint8_t> lzw_decompress(
    const std::vector<std::uint8_t>& data);

}  // namespace eewa::wl
