#include "workloads/bzip2ish.hpp"

#include <stdexcept>

#include "workloads/bwt.hpp"
#include "workloads/huffman.hpp"
#include "workloads/mtf_rle.hpp"

namespace eewa::wl {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& i) {
  if (i + 4 > in.size()) {
    throw std::invalid_argument("bzip2ish: truncated header");
  }
  const std::uint32_t v = (static_cast<std::uint32_t>(in[i]) << 24) |
                          (static_cast<std::uint32_t>(in[i + 1]) << 16) |
                          (static_cast<std::uint32_t>(in[i + 2]) << 8) |
                          static_cast<std::uint32_t>(in[i + 3]);
  i += 4;
  return v;
}

}  // namespace

std::vector<std::uint8_t> bzip2ish_compress_block(
    const std::vector<std::uint8_t>& block) {
  const auto rle1 = rle_literal_encode(block);
  const BwtResult bwt = bwt_forward(rle1);
  const auto mtf = mtf_encode(bwt.last_column);
  const auto rle2 = rle_zeros_encode(mtf);
  const auto huff = huffman_encode(rle2);

  std::vector<std::uint8_t> out;
  out.reserve(huff.size() + 4);
  put_u32(out, static_cast<std::uint32_t>(bwt.primary_index));
  out.insert(out.end(), huff.begin(), huff.end());
  return out;
}

std::vector<std::uint8_t> bzip2ish_decompress_block(
    const std::vector<std::uint8_t>& data) {
  std::size_t i = 0;
  const std::uint32_t primary = get_u32(data, i);
  const std::vector<std::uint8_t> huff(data.begin() + static_cast<long>(i),
                                       data.end());
  const auto rle2 = huffman_decode(huff);
  const auto mtf = rle_zeros_decode(rle2);
  const auto last = mtf_decode(mtf);
  const auto rle1 = bwt_inverse(last, primary);
  return rle_literal_decode(rle1);
}

}  // namespace eewa::wl
