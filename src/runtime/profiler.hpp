// Online profiling (paper §III-A-1): each worker records, without locks,
// the class and execution time of every task it completes. The records
// are merged into the EewaController at the batch barrier.
#pragma once

#include <cstddef>
#include <vector>

namespace eewa::rt {

/// One completed-task observation.
struct TaskRecord {
  std::size_t class_id;
  double exec_s;      ///< measured wall time of the task body
  std::size_t rung;   ///< ladder rung of the executing core
  double cmi;         ///< cache-miss intensity (0 when not measured)
};

/// Per-worker, single-writer record buffer.
class WorkerProfile {
 public:
  void record(std::size_t class_id, double exec_s, std::size_t rung,
              double cmi = 0.0) {
    records_.push_back(TaskRecord{class_id, exec_s, rung, cmi});
  }

  const std::vector<TaskRecord>& records() const { return records_; }

  void clear() { records_.clear(); }

  std::size_t size() const { return records_.size(); }

  void reserve(std::size_t n) { records_.reserve(n); }

 private:
  std::vector<TaskRecord> records_;
};

/// Merge all workers' records into one vector (batch-barrier step).
std::vector<TaskRecord> merge_profiles(std::vector<WorkerProfile>& workers);

}  // namespace eewa::rt
