// Chase–Lev work-stealing deque (Chase & Lev, SPAA'05) with the C11/C++11
// memory orderings of Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13).
//
// Single owner pushes/pops at the bottom without contention; any number
// of thieves steal from the top with a CAS. The backing ring grows
// geometrically; retired rings are kept alive so concurrent reads of a
// stale ring stay safe without a reclamation scheme (the standard
// approach for this structure). The owner may free the retired chain
// with reclaim() at a point where no thief can be in flight — the
// runtime does this at every batch barrier.
//
// T must be trivially copyable (we store raw task pointers).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-based publication below looks like a data race on the stored
// elements' pointees. Under TSan we move the same orderings onto the
// adjacent atomic operations (strictly stronger, slightly slower) so the
// happens-before edges become visible to the tool.
#if defined(__SANITIZE_THREAD__)
#define EEWA_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EEWA_TSAN 1
#endif
#endif
#ifndef EEWA_TSAN
#define EEWA_TSAN 0
#endif

namespace eewa::rt {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "ChaseLevDeque requires trivially copyable elements");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : top_(0), bottom_(0) {
    std::size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    rings_.push_back(std::make_unique<Ring>(cap));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: push onto the bottom.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* a = ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity()) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, value);
#if EEWA_TSAN
    bottom_.store(b + 1, std::memory_order_release);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only: pop from the bottom (LIFO).
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* a = ring_.load(std::memory_order_relaxed);
#if EEWA_TSAN
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#endif
    std::optional<T> result;
    if (t <= b) {
      result = a->get(b);
      if (t == b) {
        // Last element: race against thieves.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          result.reset();
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return result;
  }

  /// Thieves: steal from the top (FIFO). Returns nullopt when empty or
  /// when losing a race (caller just tries another victim).
  std::optional<T> steal() {
#if EEWA_TSAN
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t < b) {
      Ring* a = ring_.load(std::memory_order_acquire);
      T value = a->get(t);
      if (!top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return std::nullopt;  // lost the race
      }
      return value;
    }
    return std::nullopt;
  }

  /// Owner only, and only while no thief can be mid-steal (e.g. at the
  /// runtime's batch barrier): free every retired ring, keeping the live
  /// one. Without this, a single burst that grew the ring leaves the
  /// whole geometric chain of predecessors allocated for the deque's
  /// lifetime.
  void reclaim() {
    if (rings_.size() <= 1) return;
    // The live ring is always the most recently grown (rings_.back()).
    auto keep = std::move(rings_.back());
    rings_.clear();
    rings_.push_back(std::move(keep));
  }

  /// Rings currently allocated (1 + retired; diagnostics/tests).
  std::size_t ring_count() const { return rings_.size(); }

  /// Approximate size (racy; for heuristics/diagnostics only).
  std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  class Ring {
   public:
    explicit Ring(std::size_t cap) : mask_(cap - 1), slots_(cap) {}

    std::size_t capacity() const { return mask_ + 1; }

    void put(std::int64_t i, T v) {
      slots_[static_cast<std::size_t>(i) & mask_].store(
          v, std::memory_order_relaxed);
    }

    T get(std::int64_t i) const {
      return slots_[static_cast<std::size_t>(i) & mask_].load(
          std::memory_order_relaxed);
    }

   private:
    std::size_t mask_;
    std::vector<std::atomic<T>> slots_;
  };

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Ring>(old->capacity() * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Ring* raw = bigger.get();
    rings_.push_back(std::move(bigger));  // old rings stay alive
    ring_.store(raw, std::memory_order_release);
    return raw;
  }

  alignas(64) std::atomic<std::int64_t> top_;
  alignas(64) std::atomic<std::int64_t> bottom_;
  alignas(64) std::atomic<Ring*> ring_;
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-managed (grow only)
};

}  // namespace eewa::rt
