#include "runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/fast_clock.hpp"
#include "util/rng.hpp"

#include "core/preference_list.hpp"
#include "core/wats_allocation.hpp"
#include "util/cpu_affinity.hpp"

namespace eewa::rt {

namespace {

thread_local std::size_t tl_worker_id = static_cast<std::size_t>(-1);
thread_local Runtime* tl_runtime = nullptr;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Idle backoff thresholds (worker_main): pure spin for the first sweeps,
// sched_yield up to the next bound, then 1us -> 256us exponential sleep.
constexpr std::size_t kIdleSpinSweeps = 16;
constexpr std::size_t kIdleYieldSweeps = 48;
constexpr std::size_t kIdleSleepMaxShift = 8;  // 2^8 us = 256us cap

}  // namespace

Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {
  const std::size_t n =
      options_.workers ? options_.workers : util::hardware_cpu_count();
  if (!options_.fixed_rungs.empty() && options_.fixed_rungs.size() != n) {
    throw std::invalid_argument("Runtime: fixed_rungs size != workers");
  }
  if (options_.kind == SchedulerKind::kWats && options_.fixed_rungs.empty()) {
    throw std::invalid_argument("Runtime: kWats requires fixed_rungs");
  }
  if (options_.tracer != nullptr && options_.tracer->track_count() < n + 1) {
    throw std::invalid_argument(
        "Runtime: tracer needs workers + 1 tracks (one per worker plus "
        "the control track)");
  }

  if (options_.backend != nullptr) {
    backend_ = options_.backend;
  } else {
    owned_backend_ =
        std::make_unique<dvfs::TraceBackend>(options_.ladder, n);
    backend_ = owned_backend_.get();
  }
  controller_ = std::make_unique<core::EewaController>(
      options_.ladder, n, options_.controller);
  // Controller phases (plan, k-tuple search, actuation, reconciliation)
  // land on the control track, after the per-worker tracks.
  controller_->set_tracer(options_.tracer, n);
  metrics_ = std::make_unique<obs::MetricsRegistry>(n);
  steal_rng_ = std::vector<util::CachelinePadded<std::uint64_t>>(n);
  worker_rung_ = std::vector<util::CachelinePadded<std::size_t>>(n);
  arenas_ = std::vector<util::CachelinePadded<TaskArena>>(n);
  // Calibrate the task-timing clock now so the ~2ms window is paid at
  // construction, not inside the first task measurement.
  (void)util::FastClock::seconds_per_tick();

  pools_.resize(n);
  for (auto& wp : pools_) {
    for (std::size_t g = 0; g < options_.ladder.size(); ++g) {
      wp.deques.push_back(std::make_unique<ChaseLevDeque<Task*>>());
    }
  }
  profiles_.resize(n);
  group_counts_ = std::vector<util::CachelinePadded<std::atomic<std::int64_t>>>(
      options_.ladder.size() * n);
  for (auto& gc : group_counts_) gc->store(0, std::memory_order_relaxed);
  worker_group_.assign(n, 0);

  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

ClassHandle Runtime::handle(std::string_view class_name) {
  // Fast path: a wait-free snapshot probe. The writer callback (rare:
  // first sight of a name) interns into the controller's registry under
  // the table's mutex, keeping the cache and the authority in lockstep.
  return ClassHandle{interner_.intern(
      class_name, [&] { return controller_->class_id(class_name); })};
}

std::size_t Runtime::group_of_worker(std::size_t id) const {
  return worker_group_[id];
}

std::int64_t Runtime::group_count_approx(std::size_t group) const {
  const std::size_t n = pools_.size();
  std::int64_t total = 0;
  for (std::size_t w = 0; w < n; ++w) {
    total +=
        group_counts_[group * n + w]->load(std::memory_order_acquire);
  }
  return total;
}

std::pair<std::size_t, std::size_t> distribution_target(
    const std::vector<std::vector<std::size_t>>& group_workers,
    std::vector<std::size_t>& rr, std::size_t group) {
  std::size_t g = group;
  if (g >= group_workers.size() || group_workers[g].empty()) {
    // Fastest (lowest-index) non-empty group takes the orphaned tasks.
    g = group_workers.size();
    for (std::size_t cand = 0; cand < group_workers.size(); ++cand) {
      if (!group_workers[cand].empty()) {
        g = cand;
        break;
      }
    }
    if (g == group_workers.size()) {
      throw std::logic_error(
          "distribution_target: no c-group has any worker");
    }
  }
  const auto& workers = group_workers[g];
  return {g, workers[rr[g]++ % workers.size()]};
}

void Runtime::prepare_batch(std::vector<TaskDesc>& tasks) {
  obs::EventTracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  const double prep_ts = tracing ? tracer->now_us() : 0.0;
  controller_->begin_batch();
  const std::size_t n = pools_.size();

  // Workers are parked at the barrier: the control thread is the sole
  // owner of every deque and arena. Retire last batch's spawned tasks
  // (keeping the slabs) and free deque rings grown by spawn bursts.
  for (auto& arena : arenas_) arena->reset();
  for (auto& wp : pools_) {
    for (auto& dq : wp.deques) dq->reclaim();
  }

  // 1. Frequencies + c-group structure for this batch. group_workers_
  // and class_to_group_ are member scratch reused across batches.
  auto& group_workers = group_workers_;
  for (auto& g : group_workers) g.clear();
  auto& class_to_group = class_to_group_;
  class_to_group.clear();
  switch (options_.kind) {
    case SchedulerKind::kCilk: {
      for (std::size_t c = 0; c < n; ++c) {
        backend_->set_frequency(
            c, options_.fixed_rungs.empty() ? 0 : options_.fixed_rungs[c]);
      }
      group_workers.resize(1);
      for (std::size_t c = 0; c < n; ++c) group_workers[0].push_back(c);
      break;
    }
    case SchedulerKind::kCilkD: {
      backend_->set_all(0);
      group_workers.resize(1);
      for (std::size_t c = 0; c < n; ++c) group_workers[0].push_back(c);
      break;
    }
    case SchedulerKind::kWats: {
      // Fixed asymmetric configuration; groups by distinct rung.
      std::vector<std::size_t> rungs = options_.fixed_rungs;
      for (std::size_t c = 0; c < n; ++c) {
        backend_->set_frequency(c, rungs[c]);
      }
      std::vector<std::size_t> distinct;
      for (std::size_t r : rungs) {
        bool seen = false;
        for (std::size_t d : distinct) seen = seen || d == r;
        if (!seen) distinct.push_back(r);
      }
      std::sort(distinct.begin(), distinct.end());
      group_workers.resize(distinct.size());
      std::vector<double> capacity(distinct.size(), 0.0);
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t g = 0; g < distinct.size(); ++g) {
          if (rungs[c] == distinct[g]) {
            group_workers[g].push_back(c);
            capacity[g] += options_.ladder.relative_speed(distinct[g]);
          }
        }
      }
      class_to_group = core::allocate_classes_proportional(
          controller_->registry().iteration_profile(), capacity,
          controller_->registry().class_count());
      break;
    }
    case SchedulerKind::kEewa: {
      // Supervised actuation: retries with backoff, readback, and plan
      // reconciliation when cores miss their rung — the layout below is
      // the post-reconciliation one, so worker groups and preference
      // lists always describe what the hardware actually runs.
      controller_->apply_supervised(*backend_);
      const auto& layout = controller_->plan().layout;
      group_workers.resize(layout.group_count());
      for (std::size_t g = 0; g < layout.group_count(); ++g) {
        for (std::size_t c : layout.group(g).cores) {
          if (c < n) group_workers[g].push_back(c);
        }
      }
      break;
    }
  }

  group_count_ = group_workers.size();
  for (std::size_t g = 0; g < group_workers.size(); ++g) {
    for (std::size_t c : group_workers[g]) worker_group_[c] = g;
  }
  // preference_list(g, count) is a pure function of (g, count): reuse
  // the cached lists whenever the group count is unchanged.
  if (pref_lists_.size() != group_count_) {
    pref_lists_.clear();
    for (std::size_t g = 0; g < group_count_; ++g) {
      pref_lists_.push_back(core::preference_list(g, group_count_));
    }
  }
  for (auto& gc : group_counts_) gc->store(0, std::memory_order_relaxed);
  metrics_->begin_batch(group_count_);
  // Cache the achieved rung per worker for the batch (readback, not the
  // requested value: actuation can fail under injection). run_one_task
  // reads this cache once per task instead of calling frequency_index —
  // a virtual call that some backends guard with a mutex.
  for (std::size_t c = 0; c < n; ++c) {
    *worker_rung_[c] = backend_->frequency_index(c);
  }
  if (tracing) {
    // Snapshot the per-core rungs this batch runs at (the DVFS series a
    // trace viewer shows alongside the task spans).
    const double ts = tracer->now_us();
    for (std::size_t c = 0; c < n; ++c) {
      tracer->rung(n, ts, static_cast<std::uint32_t>(c),
                   static_cast<std::uint32_t>(*worker_rung_[c]));
    }
  }

  // 2. Pre-intern classes and materialize tasks. Repeated names hit the
  // intern table's wait-free path; only first-sight names lock.
  batch_tasks_.clear();
  batch_tasks_.reserve(tasks.size());
  for (auto& td : tasks) {
    batch_tasks_.push_back(
        Task{handle(td.class_name).id, std::move(td.fn)});
  }

  // 3. Distribute round-robin into the owning group's workers. Workers
  // are parked at the batch barrier, so the control thread may safely
  // act as the deque owner here.
  auto& rr = rr_;
  rr.assign(group_count_, 0);
  for (auto& task : batch_tasks_) {
    std::size_t g = 0;
    if (options_.kind == SchedulerKind::kEewa) {
      g = controller_->group_of_class(task.class_id);
    } else if (options_.kind == SchedulerKind::kWats &&
               task.class_id < class_to_group.size()) {
      g = class_to_group[task.class_id];
    }
    if (g >= group_count_) g = 0;
    // A reconciled layout can leave a group with no workers below n;
    // distribution_target then reroutes to the fastest non-empty group
    // instead of taking worker % 0.
    const auto [dg, w] = distribution_target(group_workers, rr, g);
    pools_[w].deques[dg]->push(&task);
    group_count_bump(dg, w, 1);
  }
  remaining_.store(static_cast<std::int64_t>(batch_tasks_.size()),
                   std::memory_order_release);
  if (tracing) {
    tracer->phase(n, prep_ts, tracer->now_us() - prep_ts,
                  obs::PhaseKind::kPrepare, batch_tasks_.size());
  }
}

double Runtime::run_batch(std::vector<TaskDesc> tasks) {
  prepare_batch(tasks);
  const auto t0 = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
    workers_active_ = pools_.size();
  }
  cv_start_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return workers_active_ == 0; });
  }
  const double makespan = seconds_since(t0);
  finish_batch(makespan);
  std::exception_ptr failure;
  {
    std::lock_guard<std::mutex> lock(failure_mu_);
    failure = first_failure_;
    first_failure_ = nullptr;
  }
  if (failure) std::rethrow_exception(failure);
  return makespan;
}

void Runtime::finish_batch(double makespan_s) {
  obs::EventTracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  const double profile_ts = tracing ? tracer->now_us() : 0.0;
  trace::Batch* recording = nullptr;
  if (options_.record_trace) {
    recorded_.batches.emplace_back();
    recording = &recorded_.batches.back();
  }
  const auto& ladder = options_.ladder;
  for (auto& profile : profiles_) {
    for (const auto& rec : profile.records()) {
      const double alpha = core::estimate_alpha_from_cmi(rec.cmi);
      controller_->record_task(rec.class_id, rec.exec_s, rec.rung, rec.cmi,
                               alpha);
      if (recording != nullptr) {
        // Normalized (F0) workload via the alpha-corrected Eq. 1 — the
        // simulator's exec-time model inverts this exactly.
        const double eff =
            alpha + (1.0 - alpha) * ladder.slowdown(rec.rung);
        recording->tasks.push_back(trace::TraceTask{
            rec.class_id, std::max(rec.exec_s / eff, 1e-9), rec.cmi,
            alpha});
      }
    }
    profile.clear();
  }
  if (recording != nullptr) {
    // Keep the class-name table in sync with the registry.
    const auto& reg = controller_->registry();
    recorded_.name = "recorded";
    recorded_.class_names.clear();
    for (std::size_t id = 0; id < reg.class_count(); ++id) {
      recorded_.class_names.push_back(reg.name(id));
    }
  }
  if (tracing) {
    tracer->phase(pools_.size(), profile_ts, tracer->now_us() - profile_ts,
                  obs::PhaseKind::kProfile, batch_tasks_.size());
  }
  metrics_->finalize_batch();
  // Feed the watchdog the batch's task exceptions before replanning;
  // enough of them degrade the run to the safe all-F0 configuration.
  const std::size_t failed_now =
      failed_tasks_.load(std::memory_order_relaxed);
  controller_->note_task_failures(failed_now - failed_seen_);
  failed_seen_ = failed_now;
  controller_->end_batch(makespan_s);
  ++batches_;
  std::size_t spawned = 0;
  for (const auto& arena : arenas_) spawned += arena->size();
  tasks_run_ += batch_tasks_.size() + spawned;
}

void Runtime::spawn(ClassHandle handle, TaskFn fn) {
  if (tl_runtime != this) {
    throw std::logic_error("Runtime::spawn called outside a worker task");
  }
  // Steady-state hot path: no mutex, no heap allocation. The task lives
  // in the calling worker's arena (slab growth is amortized and batch-
  // local), the capture sits inline in the TaskFn, and the push goes to
  // the worker's own deque bottom.
  const std::size_t id = tl_worker_id;
  Task* raw = arenas_[id]->create(handle.id, std::move(fn));
  std::size_t g = options_.kind == SchedulerKind::kEewa
                      ? controller_->group_of_class(handle.id)
                      : worker_group_[id];
  if (g >= group_count_) g = 0;
  remaining_.fetch_add(1, std::memory_order_acq_rel);
  pools_[id].deques[g]->push(raw);
  group_count_bump(g, id, 1);
  ++metrics_->worker(id).spawns;
}

std::optional<Task*> Runtime::steal_from_group(std::size_t id,
                                               std::size_t group) {
  if (group_count_approx(group) <= 0) {
    return std::nullopt;
  }
  const std::size_t n = pools_.size();
  obs::WorkerCounters& wc = metrics_->worker(id);
  // Random victim probing, bounded per sweep; callers loop while work
  // remains, so a failed sweep is retried from the top-level loop. The
  // RNG state persists across calls (seeded once in worker_main): a
  // per-call clock reseed is a syscall-adjacent read in the hottest
  // path, and coarse clocks hand concurrent sweeps identical victim
  // sequences — correlated probing the paper's analysis assumes away.
  std::uint64_t& state = *steal_rng_[id];
  for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
    state = util::mix64(state);
    // Draw over the n-1 non-self workers; remapping a self-hit to id+1
    // would double that neighbour's probing probability.
    const std::size_t victim =
        n > 1 ? util::uniform_excluding(state, id, n) : id;
    ++wc.probes;
    if (auto t = pools_[victim].deques[group]->steal()) {
      group_count_bump(group, id, -1);
      steals_.fetch_add(1, std::memory_order_relaxed);
      const bool cross = group != worker_group_[id];
      if (cross) {
        ++wc.robs[group];
      } else {
        ++wc.steals[group];
      }
      if (obs::EventTracer* tracer = options_.tracer;
          tracer != nullptr && tracer->enabled()) {
        tracer->steal(id, tracer->now_us(),
                      static_cast<std::uint32_t>(group),
                      static_cast<std::uint32_t>(victim), cross);
      }
      return t;
    }
    if (group_count_approx(group) <= 0) break;
  }
  ++wc.failed_sweeps;
  return std::nullopt;
}

std::optional<Task*> Runtime::acquire(std::size_t id) {
  const auto& order = pref_lists_[worker_group_[id]];
  for (std::size_t g : order) {
    if (auto t = pools_[id].deques[g]->pop()) {
      group_count_bump(g, id, -1);
      ++metrics_->worker(id).pops[g];
      return t;
    }
    if (auto t = steal_from_group(id, g)) return t;
  }
  return std::nullopt;
}

bool Runtime::run_one_task(std::size_t id, PerfCounters* pmc) {
  auto got = acquire(id);
  if (!got) return false;
  Task* task = *got;
  obs::EventTracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  std::size_t rung = *worker_rung_[id];
  // Cilk-D ramps back up the moment it has work again. Read the rung
  // back after actuating: under fault injection the request can fail,
  // and the profile must record what the core actually ran at.
  if (options_.kind == SchedulerKind::kCilkD && rung != 0) {
    backend_->set_frequency(id, 0);
    rung = backend_->frequency_index(id);
    *worker_rung_[id] = rung;
  }
  if (pmc != nullptr) pmc->start();
  Clock::time_point t0_tp;
  if (tracing) t0_tp = Clock::now();
  const std::uint64_t t0 = util::FastClock::ticks();
  bool failed = false;
  try {
    task->fn();
  } catch (...) {
    // A throwing task must not take the worker (and the batch barrier)
    // down with it; capture the first failure for run_batch to rethrow.
    failed = true;
    failed_tasks_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(failure_mu_);
    if (!first_failure_) first_failure_ = std::current_exception();
  }
  const double exec_s = util::FastClock::seconds_since(t0);
  const double cmi = pmc != nullptr ? pmc->stop().cmi() : 0.0;
  if (!failed) {
    // Failed tasks are excluded from the profile (and their CMI from
    // the §IV-D gate): a task that threw early looks ultra-fast and
    // would drag its class's Eq. 1 workload mean down, corrupting the
    // CC table the next plan is built from.
    profiles_[id].record(task->class_id, exec_s, rung, cmi);
  }
  obs::WorkerCounters& wc = metrics_->worker(id);
  ++wc.tasks;
  wc.cls(task->class_id).observe(exec_s, failed);
  if (tracing) {
    tracer->task(id, tracer->to_us(t0_tp), exec_s * 1e6,
                 static_cast<std::uint32_t>(task->class_id),
                 static_cast<std::uint32_t>(rung), failed);
  }
  remaining_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void Runtime::worker_main(std::size_t id) {
  tl_worker_id = id;
  tl_runtime = this;
  // Seed the persistent victim-selection RNG exactly once per worker;
  // distinct non-zero seeds keep concurrent sweeps decorrelated.
  *steal_rng_[id] = util::mix64(static_cast<std::uint64_t>(id) + 1);
  if (options_.pin_threads) util::pin_current_thread(id);
  PerfCounters pmc_storage;
  PerfCounters* pmc =
      options_.enable_pmc && pmc_storage.available() ? &pmc_storage
                                                     : nullptr;

  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }

    std::size_t idle_sweeps = 0;
    while (remaining_.load(std::memory_order_acquire) > 0) {
      if (run_one_task(id, pmc)) {
        idle_sweeps = 0;
        continue;
      }
      ++idle_sweeps;
      ++metrics_->worker(id).idle_sweeps;
      if (options_.kind == SchedulerKind::kCilkD && idle_sweeps == 2 &&
          *worker_rung_[id] != options_.ladder.slowest_index()) {
        backend_->set_frequency(id, options_.ladder.slowest_index());
        *worker_rung_[id] = backend_->frequency_index(id);
      }
      // Idle backoff ramp: spin the first sweeps (work usually appears
      // within a steal sweep or two), then yield, then sleep with an
      // exponentially growing, capped interval. The cap keeps worst-case
      // wakeup latency at ~256us — negligible against any batch long
      // enough to leave a worker starved, while an idle worker stops
      // burning the memory bandwidth the CMI gate (§IV-D) measures.
      if (idle_sweeps > kIdleSpinSweeps) {
        if (idle_sweeps <= kIdleYieldSweeps) {
          std::this_thread::yield();
        } else {
          const std::size_t ramp =
              std::min<std::size_t>(idle_sweeps - kIdleYieldSweeps - 1,
                                    kIdleSleepMaxShift);
          std::this_thread::sleep_for(
              std::chrono::microseconds(1u << ramp));
        }
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_active_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace eewa::rt
