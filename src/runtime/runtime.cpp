#include "runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <type_traits>

#include "util/fast_clock.hpp"
#include "util/rng.hpp"

#include "core/adjuster.hpp"
#include "core/preference_list.hpp"
#include "core/wats_allocation.hpp"
#include "util/cpu_affinity.hpp"

namespace eewa::rt {

namespace {

thread_local std::size_t tl_worker_id = static_cast<std::size_t>(-1);
thread_local Runtime* tl_runtime = nullptr;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Idle backoff thresholds (worker_main): pure spin for the first sweeps,
// sched_yield up to the next bound, then 1us exponential sleep, with the
// final tier (2^8 us) parking on the deep-sleep condvar instead of an
// open-loop sleep so producers can end the wait early.
constexpr std::size_t kIdleSpinSweeps = 16;
constexpr std::size_t kIdleYieldSweeps = 48;
constexpr std::size_t kIdleSleepMaxShift = 8;  // 2^8 us = 256us cap

// How many inbox items a service worker moves into its deques per
// scheduling loop: enough to amortize the ring hops, small enough that a
// worker sitting on a full inbox starts executing promptly.
constexpr std::size_t kInboxDrainChunk = 64;

}  // namespace

// Service-mode shared state, heap-allocated per start_service so the
// batch-only footprint of Runtime stays unchanged.
struct Runtime::ServiceState {
  ServiceOptions opts;
  std::vector<std::uint8_t> declared;  ///< class-id -> declared in opts
  std::size_t class_count = 0;
  BoundedMpscQueue<ServiceItem> ingress;
  std::vector<std::unique_ptr<SpscRing<ServiceItem>>> inboxes;
  std::vector<std::unique_ptr<SpscRing<ProfileRec>>> profile_rings;
  std::deque<ServiceItem> staging;  ///< dispatcher-local overflow, FIFO
  AdmissionController admission;
  PlanPublisher publisher;  ///< readers: workers, then the dispatcher
  /// Snapshot each worker currently holds a hazard pin on; owner-written,
  /// read by spawn() on the same thread.
  std::vector<util::CachelinePadded<const PlanSnapshot*>> worker_snap;
  /// Per-worker ServiceNode recycle lists (owner-only): task envelopes
  /// cycle inbox -> deque -> execute -> freelist, so steady-state service
  /// execution allocates nothing and memory stays bounded by the queue
  /// capacities.
  std::vector<std::vector<ServiceNode*>> freelists;
  std::vector<std::size_t> rr;  ///< dispatcher round-robin cursors

  std::atomic<bool> accepting{false};
  std::atomic<bool> dispatcher_stop{false};
  std::atomic<bool> planner_stop{false};
  std::atomic<bool> workers_exit{false};
  /// Tasks in the ingress ring or staging (offered, not yet admitted).
  std::atomic<std::uint64_t> pending{0};
  /// Tasks admitted or spawned and not yet executed (inboxes + deques +
  /// currently running).
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<std::uint64_t> profile_drops{0};

  std::thread dispatcher;
  std::thread planner;
  Clock::time_point t0;

  ServiceState(const ServiceOptions& o, std::size_t workers,
               std::vector<std::size_t> sla, std::vector<std::uint8_t> decl,
               std::size_t classes)
      : opts(o),
        declared(std::move(decl)),
        class_count(classes),
        ingress(o.queue_capacity),
        admission(o.policy, std::move(sla), o.high_watermark,
                  o.queue_capacity),
        publisher(workers + 1, workers),
        worker_snap(workers),
        freelists(workers) {
    for (std::size_t w = 0; w < workers; ++w) {
      inboxes.push_back(
          std::make_unique<SpscRing<ServiceItem>>(o.inbox_capacity));
      profile_rings.push_back(
          std::make_unique<SpscRing<ProfileRec>>(8192));
      *worker_snap[w] = nullptr;
    }
  }

  ~ServiceState() {
    for (auto& fl : freelists) {
      for (ServiceNode* node : fl) delete node;
    }
  }
};


Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {
  const std::size_t n =
      options_.workers ? options_.workers : util::hardware_cpu_count();
  if (!options_.fixed_rungs.empty() && options_.fixed_rungs.size() != n) {
    throw std::invalid_argument("Runtime: fixed_rungs size != workers");
  }
  if (options_.kind == SchedulerKind::kWats && options_.fixed_rungs.empty()) {
    throw std::invalid_argument("Runtime: kWats requires fixed_rungs");
  }
  if (options_.tracer != nullptr && options_.tracer->track_count() < n + 1) {
    throw std::invalid_argument(
        "Runtime: tracer needs workers + 1 tracks (one per worker plus "
        "the control track)");
  }

  if (options_.backend != nullptr) {
    backend_ = options_.backend;
  } else {
    owned_backend_ =
        std::make_unique<dvfs::TraceBackend>(options_.ladder, n);
    backend_ = owned_backend_.get();
  }
  controller_ = std::make_unique<core::EewaController>(
      options_.ladder, n, options_.controller);
  // Controller phases (plan, k-tuple search, actuation, reconciliation)
  // land on the control track, after the per-worker tracks.
  controller_->set_tracer(options_.tracer, n);
  metrics_ = std::make_unique<obs::MetricsRegistry>(n);
  steal_rng_ = std::vector<util::CachelinePadded<std::uint64_t>>(n);
  worker_rung_ = std::vector<util::CachelinePadded<std::size_t>>(n);
  arenas_ = std::vector<util::CachelinePadded<TaskArena>>(n);
  // Calibrate the task-timing clock now so the ~2ms window is paid at
  // construction, not inside the first task measurement.
  (void)util::FastClock::seconds_per_tick();

  pools_.resize(n);
  for (auto& wp : pools_) {
    for (std::size_t g = 0; g < options_.ladder.size(); ++g) {
      wp.deques.push_back(std::make_unique<ChaseLevDeque<Task*>>());
    }
  }
  profiles_.resize(n);
  group_counts_ = std::vector<util::CachelinePadded<std::atomic<std::int64_t>>>(
      options_.ladder.size() * n);
  for (auto& gc : group_counts_) gc->store(0, std::memory_order_relaxed);
  worker_group_.assign(n, 0);

  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Runtime::~Runtime() {
  if (service_active_.load(std::memory_order_acquire)) {
    try {
      stop_service();
    } catch (...) {
      // Destructors must not throw; the service threads are joined by
      // stop_service before anything can propagate here anyway.
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  wake_sleepers();
  for (auto& t : threads_) t.join();
}

ClassHandle Runtime::handle(std::string_view class_name) {
  // Fast path: a wait-free snapshot probe. The writer callback (rare:
  // first sight of a name) interns into the controller's registry under
  // the table's mutex, keeping the cache and the authority in lockstep.
  return ClassHandle{interner_.intern(
      class_name, [&] { return controller_->class_id(class_name); })};
}

std::size_t Runtime::group_of_worker(std::size_t id) const {
  return worker_group_[id];
}

std::int64_t Runtime::group_count_approx(std::size_t group) const {
  const std::size_t n = pools_.size();
  std::int64_t total = 0;
  for (std::size_t w = 0; w < n; ++w) {
    total +=
        group_counts_[group * n + w]->load(std::memory_order_acquire);
  }
  return total;
}

std::pair<std::size_t, std::size_t> distribution_target(
    const std::vector<std::vector<std::size_t>>& group_workers,
    std::vector<std::size_t>& rr, std::size_t group) {
  std::size_t g = group;
  if (g >= group_workers.size() || group_workers[g].empty()) {
    // Fastest (lowest-index) non-empty group takes the orphaned tasks.
    g = group_workers.size();
    for (std::size_t cand = 0; cand < group_workers.size(); ++cand) {
      if (!group_workers[cand].empty()) {
        g = cand;
        break;
      }
    }
    if (g == group_workers.size()) {
      throw std::logic_error(
          "distribution_target: no c-group has any worker");
    }
  }
  const auto& workers = group_workers[g];
  return {g, workers[rr[g]++ % workers.size()]};
}

void Runtime::prepare_batch(std::vector<TaskDesc>& tasks) {
  obs::EventTracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  const double prep_ts = tracing ? tracer->now_us() : 0.0;
  controller_->begin_batch();
  const std::size_t n = pools_.size();

  // Workers are parked at the barrier: the control thread is the sole
  // owner of every deque and arena. Retire last batch's spawned tasks
  // (keeping the slabs) and free deque rings grown by spawn bursts.
  for (auto& arena : arenas_) arena->reset();
  for (auto& wp : pools_) {
    for (auto& dq : wp.deques) dq->reclaim();
  }

  // 1. Frequencies + c-group structure for this batch. group_workers_
  // and class_to_group_ are member scratch reused across batches.
  auto& group_workers = group_workers_;
  for (auto& g : group_workers) g.clear();
  auto& class_to_group = class_to_group_;
  class_to_group.clear();
  switch (options_.kind) {
    case SchedulerKind::kCilk: {
      for (std::size_t c = 0; c < n; ++c) {
        backend_->set_frequency(
            c, options_.fixed_rungs.empty() ? 0 : options_.fixed_rungs[c]);
      }
      group_workers.resize(1);
      for (std::size_t c = 0; c < n; ++c) group_workers[0].push_back(c);
      break;
    }
    case SchedulerKind::kCilkD: {
      backend_->set_all(0);
      group_workers.resize(1);
      for (std::size_t c = 0; c < n; ++c) group_workers[0].push_back(c);
      break;
    }
    case SchedulerKind::kWats: {
      // Fixed asymmetric configuration; groups by distinct rung.
      std::vector<std::size_t> rungs = options_.fixed_rungs;
      for (std::size_t c = 0; c < n; ++c) {
        backend_->set_frequency(c, rungs[c]);
      }
      std::vector<std::size_t> distinct;
      for (std::size_t r : rungs) {
        bool seen = false;
        for (std::size_t d : distinct) seen = seen || d == r;
        if (!seen) distinct.push_back(r);
      }
      std::sort(distinct.begin(), distinct.end());
      group_workers.resize(distinct.size());
      std::vector<double> capacity(distinct.size(), 0.0);
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t g = 0; g < distinct.size(); ++g) {
          if (rungs[c] == distinct[g]) {
            group_workers[g].push_back(c);
            capacity[g] += options_.ladder.relative_speed(distinct[g]);
          }
        }
      }
      class_to_group = core::allocate_classes_proportional(
          controller_->registry().iteration_profile(), capacity,
          controller_->registry().class_count());
      break;
    }
    case SchedulerKind::kEewa: {
      // Supervised actuation: retries with backoff, readback, and plan
      // reconciliation when cores miss their rung — the layout below is
      // the post-reconciliation one, so worker groups and preference
      // lists always describe what the hardware actually runs.
      controller_->apply_supervised(*backend_);
      const auto& layout = controller_->plan().layout;
      group_workers.resize(layout.group_count());
      for (std::size_t g = 0; g < layout.group_count(); ++g) {
        for (std::size_t c : layout.group(g).cores) {
          if (c < n) group_workers[g].push_back(c);
        }
      }
      break;
    }
  }

  group_count_ = group_workers.size();
  for (std::size_t g = 0; g < group_workers.size(); ++g) {
    for (std::size_t c : group_workers[g]) worker_group_[c] = g;
  }
  // preference_list(g, count) is a pure function of (g, count): reuse
  // the cached lists whenever the group count is unchanged.
  if (pref_lists_.size() != group_count_) {
    pref_lists_.clear();
    for (std::size_t g = 0; g < group_count_; ++g) {
      pref_lists_.push_back(core::preference_list(g, group_count_));
    }
  }
  for (auto& gc : group_counts_) gc->store(0, std::memory_order_relaxed);
  metrics_->begin_batch(group_count_);
  // Cache the achieved rung per worker for the batch (readback, not the
  // requested value: actuation can fail under injection). run_one_task
  // reads this cache once per task instead of calling frequency_index —
  // a virtual call that some backends guard with a mutex.
  for (std::size_t c = 0; c < n; ++c) {
    *worker_rung_[c] = backend_->frequency_index(c);
  }
  if (tracing) {
    // Snapshot the per-core rungs this batch runs at (the DVFS series a
    // trace viewer shows alongside the task spans).
    const double ts = tracer->now_us();
    for (std::size_t c = 0; c < n; ++c) {
      tracer->rung(n, ts, static_cast<std::uint32_t>(c),
                   static_cast<std::uint32_t>(*worker_rung_[c]));
    }
  }

  // 2. Pre-intern classes and materialize tasks. Repeated names hit the
  // intern table's wait-free path; only first-sight names lock.
  batch_tasks_.clear();
  batch_tasks_.reserve(tasks.size());
  for (auto& td : tasks) {
    batch_tasks_.push_back(
        Task{handle(td.class_name).id, std::move(td.fn)});
  }

  // 3. Distribute round-robin into the owning group's workers. Workers
  // are parked at the batch barrier, so the control thread may safely
  // act as the deque owner here.
  auto& rr = rr_;
  rr.assign(group_count_, 0);
  for (auto& task : batch_tasks_) {
    std::size_t g = 0;
    if (options_.kind == SchedulerKind::kEewa) {
      g = controller_->group_of_class(task.class_id);
    } else if (options_.kind == SchedulerKind::kWats &&
               task.class_id < class_to_group.size()) {
      g = class_to_group[task.class_id];
    }
    if (g >= group_count_) g = 0;
    // A reconciled layout can leave a group with no workers below n;
    // distribution_target then reroutes to the fastest non-empty group
    // instead of taking worker % 0.
    const auto [dg, w] = distribution_target(group_workers, rr, g);
    pools_[w].deques[dg]->push(&task);
    group_count_bump(dg, w, 1);
  }
  remaining_.store(static_cast<std::int64_t>(batch_tasks_.size()),
                   std::memory_order_release);
  if (tracing) {
    tracer->phase(n, prep_ts, tracer->now_us() - prep_ts,
                  obs::PhaseKind::kPrepare, batch_tasks_.size());
  }
}

double Runtime::run_batch(std::vector<TaskDesc> tasks) {
  if (service_active_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "Runtime::run_batch: service mode active (stop_service first)");
  }
  prepare_batch(tasks);
  const auto t0 = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
    workers_active_ = pools_.size();
  }
  cv_start_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return workers_active_ == 0; });
  }
  const double makespan = seconds_since(t0);
  finish_batch(makespan);
  std::exception_ptr failure;
  {
    std::lock_guard<std::mutex> lock(failure_mu_);
    failure = first_failure_;
    first_failure_ = nullptr;
  }
  if (failure) std::rethrow_exception(failure);
  return makespan;
}

void Runtime::finish_batch(double makespan_s) {
  obs::EventTracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  const double profile_ts = tracing ? tracer->now_us() : 0.0;
  trace::Batch* recording = nullptr;
  if (options_.record_trace) {
    recorded_.batches.emplace_back();
    recording = &recorded_.batches.back();
  }
  const auto& ladder = options_.ladder;
  // Worker w profiles core w: on a typed topology its observations are
  // attributed to that core's type so the typed CC table normalizes
  // them against the right cluster's rows.
  const core::MachineTopology* topo =
      options_.controller.adjuster.topology.get();
  for (std::size_t w = 0; w < profiles_.size(); ++w) {
    auto& profile = profiles_[w];
    const std::size_t core_type =
        topo != nullptr && w < topo->total_cores() ? topo->type_of_core(w)
                                                   : 0;
    for (const auto& rec : profile.records()) {
      const double alpha = core::estimate_alpha_from_cmi(rec.cmi);
      controller_->record_task(rec.class_id, rec.exec_s, rec.rung, rec.cmi,
                               alpha, core_type);
      if (recording != nullptr) {
        // Normalized (F0) workload via the alpha-corrected Eq. 1 — the
        // simulator's exec-time model inverts this exactly.
        const double eff =
            alpha + (1.0 - alpha) * ladder.slowdown(rec.rung);
        recording->tasks.push_back(trace::TraceTask{
            rec.class_id, std::max(rec.exec_s / eff, 1e-9), rec.cmi,
            alpha});
      }
    }
    profile.clear();
  }
  if (recording != nullptr) {
    // Keep the class-name table in sync with the registry.
    const auto& reg = controller_->registry();
    recorded_.name = "recorded";
    recorded_.class_names.clear();
    for (std::size_t id = 0; id < reg.class_count(); ++id) {
      recorded_.class_names.push_back(reg.name(id));
    }
  }
  if (tracing) {
    tracer->phase(pools_.size(), profile_ts, tracer->now_us() - profile_ts,
                  obs::PhaseKind::kProfile, batch_tasks_.size());
  }
  metrics_->finalize_batch();
  // Feed the watchdog the batch's task exceptions before replanning;
  // enough of them degrade the run to the safe all-F0 configuration.
  const std::size_t failed_now =
      failed_tasks_.load(std::memory_order_relaxed);
  controller_->note_task_failures(failed_now - failed_seen_);
  failed_seen_ = failed_now;
  controller_->end_batch(makespan_s);
  ++batches_;
  std::size_t spawned = 0;
  for (const auto& arena : arenas_) spawned += arena->size();
  tasks_run_ += batch_tasks_.size() + spawned;
}

void Runtime::spawn(ClassHandle handle, TaskFn fn) {
  if (tl_runtime != this) {
    throw std::logic_error("Runtime::spawn called outside a worker task");
  }
  const std::size_t id = tl_worker_id;
  if (service_active_.load(std::memory_order_relaxed)) {
    // Service-mode spawn: the node comes from the worker's own recycle
    // list and the c-group from the snapshot this worker already holds a
    // hazard pin on — still no locks, no cross-thread allocation.
    ServiceState& st = *service_;
    ServiceNode* node = alloc_service_node(id);
    node->task.class_id = handle.id;
    node->task.fn = std::move(fn);
    node->tag = 0;
    node->submit_ticks = util::FastClock::ticks();
    const PlanSnapshot* snap = *st.worker_snap[id];
    std::size_t g = 0;
    if (snap != nullptr && handle.id < snap->plan.layout.class_count()) {
      g = snap->plan.layout.group_of_class(handle.id);
      if (g >= snap->group_workers.size()) g = 0;
    }
    st.in_flight.fetch_add(1, std::memory_order_acq_rel);
    pools_[id].deques[g]->push(&node->task);
    group_count_bump(g, id, 1);
    obs::ServiceWorkerCounters& wc = service_metrics_->worker(id);
    wc.bump(wc.spawned);
    wake_sleepers();
    return;
  }
  // Steady-state hot path: no mutex, no heap allocation. The task lives
  // in the calling worker's arena (slab growth is amortized and batch-
  // local), the capture sits inline in the TaskFn, and the push goes to
  // the worker's own deque bottom.
  Task* raw = arenas_[id]->create(handle.id, std::move(fn));
  std::size_t g = options_.kind == SchedulerKind::kEewa
                      ? controller_->group_of_class(handle.id)
                      : worker_group_[id];
  if (g >= group_count_) g = 0;
  remaining_.fetch_add(1, std::memory_order_acq_rel);
  pools_[id].deques[g]->push(raw);
  group_count_bump(g, id, 1);
  ++metrics_->worker(id).spawns;
  wake_sleepers();
}

std::optional<Task*> Runtime::steal_from_group(std::size_t id,
                                               std::size_t group) {
  if (group_count_approx(group) <= 0) {
    return std::nullopt;
  }
  const std::size_t n = pools_.size();
  obs::WorkerCounters& wc = metrics_->worker(id);
  // Random victim probing, bounded per sweep; callers loop while work
  // remains, so a failed sweep is retried from the top-level loop. The
  // RNG state persists across calls (seeded once in worker_main): a
  // per-call clock reseed is a syscall-adjacent read in the hottest
  // path, and coarse clocks hand concurrent sweeps identical victim
  // sequences — correlated probing the paper's analysis assumes away.
  std::uint64_t& state = *steal_rng_[id];
  for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
    state = util::mix64(state);
    // Draw over the n-1 non-self workers; remapping a self-hit to id+1
    // would double that neighbour's probing probability.
    const std::size_t victim =
        n > 1 ? util::uniform_excluding(state, id, n) : id;
    ++wc.probes;
    if (auto t = pools_[victim].deques[group]->steal()) {
      group_count_bump(group, id, -1);
      steals_.fetch_add(1, std::memory_order_relaxed);
      const bool cross = group != worker_group_[id];
      if (cross) {
        ++wc.robs[group];
      } else {
        ++wc.steals[group];
      }
      if (obs::EventTracer* tracer = options_.tracer;
          tracer != nullptr && tracer->enabled()) {
        tracer->steal(id, tracer->now_us(),
                      static_cast<std::uint32_t>(group),
                      static_cast<std::uint32_t>(victim), cross);
      }
      return t;
    }
    if (group_count_approx(group) <= 0) break;
  }
  ++wc.failed_sweeps;
  return std::nullopt;
}

std::optional<Task*> Runtime::acquire(std::size_t id) {
  const auto& order = pref_lists_[worker_group_[id]];
  for (std::size_t g : order) {
    if (auto t = pools_[id].deques[g]->pop()) {
      group_count_bump(g, id, -1);
      ++metrics_->worker(id).pops[g];
      return t;
    }
    if (auto t = steal_from_group(id, g)) return t;
  }
  return std::nullopt;
}

bool Runtime::run_one_task(std::size_t id, PerfCounters* pmc) {
  auto got = acquire(id);
  if (!got) return false;
  Task* task = *got;
  obs::EventTracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  std::size_t rung = *worker_rung_[id];
  // Cilk-D ramps back up the moment it has work again. Read the rung
  // back after actuating: under fault injection the request can fail,
  // and the profile must record what the core actually ran at.
  if (options_.kind == SchedulerKind::kCilkD && rung != 0) {
    backend_->set_frequency(id, 0);
    rung = backend_->frequency_index(id);
    *worker_rung_[id] = rung;
  }
  if (pmc != nullptr) pmc->start();
  Clock::time_point t0_tp;
  if (tracing) t0_tp = Clock::now();
  const std::uint64_t t0 = util::FastClock::ticks();
  bool failed = false;
  try {
    task->fn();
  } catch (...) {
    // A throwing task must not take the worker (and the batch barrier)
    // down with it; capture the first failure for run_batch to rethrow.
    failed = true;
    failed_tasks_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(failure_mu_);
    if (!first_failure_) first_failure_ = std::current_exception();
  }
  const double exec_s = util::FastClock::seconds_since(t0);
  const double cmi = pmc != nullptr ? pmc->stop().cmi() : 0.0;
  if (!failed) {
    // Failed tasks are excluded from the profile (and their CMI from
    // the §IV-D gate): a task that threw early looks ultra-fast and
    // would drag its class's Eq. 1 workload mean down, corrupting the
    // CC table the next plan is built from.
    profiles_[id].record(task->class_id, exec_s, rung, cmi);
  }
  obs::WorkerCounters& wc = metrics_->worker(id);
  ++wc.tasks;
  wc.cls(task->class_id).observe(exec_s, failed);
  if (tracing) {
    tracer->task(id, tracer->to_us(t0_tp), exec_s * 1e6,
                 static_cast<std::uint32_t>(task->class_id),
                 static_cast<std::uint32_t>(rung), failed);
  }
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Batch complete: end deep-parked peers' waits now rather than after
    // their sleep cap expires.
    wake_sleepers();
  }
  return true;
}

void Runtime::worker_main(std::size_t id) {
  tl_worker_id = id;
  tl_runtime = this;
  // Seed the persistent victim-selection RNG exactly once per worker;
  // distinct non-zero seeds keep concurrent sweeps decorrelated.
  *steal_rng_[id] = util::mix64(static_cast<std::uint64_t>(id) + 1);
  if (options_.pin_threads) util::pin_current_thread(id);
  PerfCounters pmc_storage;
  PerfCounters* pmc =
      options_.enable_pmc && pmc_storage.available() ? &pmc_storage
                                                     : nullptr;

  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }

    if (service_active_.load(std::memory_order_acquire)) {
      service_worker_loop(id, pmc);
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_active_ == 0) cv_done_.notify_all();
      continue;
    }

    std::size_t idle_sweeps = 0;
    while (remaining_.load(std::memory_order_acquire) > 0) {
      if (run_one_task(id, pmc)) {
        idle_sweeps = 0;
        continue;
      }
      ++idle_sweeps;
      ++metrics_->worker(id).idle_sweeps;
      if (options_.kind == SchedulerKind::kCilkD && idle_sweeps == 2 &&
          *worker_rung_[id] != options_.ladder.slowest_index()) {
        backend_->set_frequency(id, options_.ladder.slowest_index());
        *worker_rung_[id] = backend_->frequency_index(id);
      }
      // Idle backoff ramp: spin the first sweeps (work usually appears
      // within a steal sweep or two), then yield, then sleep with an
      // exponentially growing interval. The final tier parks on the
      // deep-sleep condvar instead of an open-loop sleep: a spawn (or
      // the batch completing) ends the wait in microseconds, while the
      // old 256us cap remains as the timeout backstop, so worst-case
      // wakeup latency is unchanged and an idle worker still stops
      // burning the memory bandwidth the CMI gate (§IV-D) measures.
      if (idle_sweeps > kIdleSpinSweeps) {
        if (idle_sweeps <= kIdleYieldSweeps) {
          std::this_thread::yield();
        } else {
          const std::size_t ramp =
              std::min<std::size_t>(idle_sweeps - kIdleYieldSweeps - 1,
                                    kIdleSleepMaxShift);
          if (ramp < kIdleSleepMaxShift) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(1u << ramp));
          } else {
            deep_park(1u << kIdleSleepMaxShift, [&] {
              return remaining_.load(std::memory_order_seq_cst) <= 0;
            });
          }
        }
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_active_ == 0) cv_done_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// Open-loop service mode (docs/service_mode.md).

void Runtime::wake_sleepers() {
  // Producers pay one load while nobody is parked. The seq_cst load
  // orders against the sleeper's seq_cst registration in deep_park: a
  // sleeper that registered before our work became visible is seen here.
  if (deep_sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_seq_.store(wake_seq_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
}

void Runtime::start_service(ServiceOptions opts) {
  if (service_active_.load(std::memory_order_acquire)) {
    throw std::logic_error("Runtime::start_service: service already active");
  }
  if (opts.classes.empty()) {
    throw std::invalid_argument(
        "Runtime::start_service: declare at least one class");
  }
  if (opts.epoch_s <= 0.0) {
    throw std::invalid_argument("Runtime::start_service: epoch_s <= 0");
  }
  if (opts.queue_capacity == 0 || opts.inbox_capacity == 0) {
    throw std::invalid_argument(
        "Runtime::start_service: zero queue/inbox capacity");
  }
  if (opts.high_watermark == 0) opts.high_watermark = opts.queue_capacity / 2;

  const std::size_t n = pools_.size();
  // Intern the declared classes now; submit() rejects anything else, so
  // the admission/metrics tables stay fixed-size while the service runs
  // and the planner never races the interner.
  std::size_t table = 0;
  std::vector<std::pair<std::size_t, std::size_t>> ids;
  ids.reserve(opts.classes.size());
  for (const auto& cfg : opts.classes) {
    const std::size_t id = handle(cfg.name).id;
    ids.emplace_back(id, cfg.sla);
    table = std::max(table, id + 1);
  }
  std::vector<std::size_t> sla(table, 1);
  std::vector<std::uint8_t> declared(table, 0);
  for (const auto& [id, s] : ids) {
    declared[id] = 1;
    sla[id] = s;
  }

  auto st = std::make_unique<ServiceState>(opts, n, std::move(sla),
                                           std::move(declared), table);
  service_metrics_ = std::make_unique<obs::ServiceMetrics>(n, table);
  {
    std::lock_guard<std::mutex> lock(service_report_mu_);
    service_reports_.clear();
    service_health_ = core::HealthReport{};
  }

  // Workers are parked at the barrier: reset the deques and the sharded
  // group counters the service will reuse.
  for (auto& wp : pools_) {
    for (auto& dq : wp.deques) dq->reclaim();
  }
  for (auto& gc : group_counts_) gc->store(0, std::memory_order_relaxed);

  // Epoch 0: uniform F0, single group — the safe configuration every
  // service starts (and degrades) to. Actuated before any worker runs.
  core::FrequencyPlan init = core::uniform_plan(n, table);
  for (std::size_t c = 0; c < n; ++c) backend_->set_frequency(c, 0);
  std::vector<std::size_t> achieved(n, 0);
  for (std::size_t c = 0; c < n; ++c) {
    achieved[c] = backend_->frequency_index(c);
  }
  if (!st->publisher.publish(
          PlanSnapshot::build(0, std::move(init), achieved, n))) {
    throw std::logic_error(
        "Runtime::start_service: initial plan failed validation");
  }
  service_metrics_->plan_publishes().fetch_add(1, std::memory_order_relaxed);

  st->t0 = Clock::now();
  st->accepting.store(true, std::memory_order_release);
  service_ = std::move(st);
  service_active_.store(true, std::memory_order_release);

  // Release the workers into the service loop through the same
  // generation gate batches use.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
    workers_active_ = n;
  }
  cv_start_.notify_all();

  service_->dispatcher = std::thread([this] { dispatcher_main(); });
  service_->planner = std::thread([this] { planner_main(); });
}

SubmitResult Runtime::submit(ClassHandle handle, TaskFn fn,
                             std::uint64_t tag) {
  if (!service_active_.load(std::memory_order_acquire)) {
    return SubmitResult::kStopped;
  }
  ServiceState& st = *service_;
  if (!st.accepting.load(std::memory_order_acquire)) {
    return SubmitResult::kStopped;
  }
  if (handle.id >= st.declared.size() || !st.declared[handle.id]) {
    throw std::invalid_argument(
        "Runtime::submit: class not declared in ServiceOptions");
  }
  auto& cls = service_metrics_->cls(handle.id);
  cls.offered.fetch_add(1, std::memory_order_relaxed);
  ServiceItem item;
  item.fn = std::move(fn);
  item.class_id = static_cast<std::uint32_t>(handle.id);
  item.tag = tag;
  item.submit_ticks = util::FastClock::ticks();
  if (st.ingress.push(std::move(item))) {
    st.pending.fetch_add(1, std::memory_order_relaxed);
    wake_sleepers();
    return SubmitResult::kQueued;
  }
  // Ring full — the first line of overload defense. Blocking policy (and
  // gold-tier traffic under any policy) gets backpressure; shed policies
  // drop here with full accounting.
  if (st.opts.policy == AdmissionPolicy::kBlock ||
      st.admission.sla_of(handle.id) == 0) {
    cls.deferred.fetch_add(1, std::memory_order_relaxed);
    return SubmitResult::kBackpressure;
  }
  cls.shed.fetch_add(1, std::memory_order_relaxed);
  if (st.opts.shed_hook) st.opts.shed_hook(handle.id, tag);
  return SubmitResult::kShed;
}

void Runtime::service_shed(std::size_t class_id, std::uint64_t tag) {
  // Dispatcher-side shed of a task that was pending (counted at submit).
  service_metrics_->cls(class_id).shed.fetch_add(1,
                                                 std::memory_order_relaxed);
  service_->pending.fetch_sub(1, std::memory_order_relaxed);
  if (service_->opts.shed_hook) service_->opts.shed_hook(class_id, tag);
}

Runtime::ServiceNode* Runtime::alloc_service_node(std::size_t id) {
  auto& fl = service_->freelists[id];
  if (!fl.empty()) {
    ServiceNode* node = fl.back();
    fl.pop_back();
    return node;
  }
  return new ServiceNode();
}

bool Runtime::dispatch_item(ServiceItem& item, const PlanSnapshot* snap) {
  ServiceState& st = *service_;
  const auto& layout = snap->plan.layout;
  std::size_t g = item.class_id < layout.class_count()
                      ? layout.group_of_class(item.class_id)
                      : 0;
  if (g >= snap->group_workers.size() || snap->group_workers[g].empty()) {
    // Orphaned c-group (all its cores above the worker count): route to
    // the fastest non-empty group, mirroring distribution_target.
    g = snap->group_workers.size();
    for (std::size_t cand = 0; cand < snap->group_workers.size(); ++cand) {
      if (!snap->group_workers[cand].empty()) {
        g = cand;
        break;
      }
    }
    if (g == snap->group_workers.size()) return false;
  }
  if (st.rr.size() < snap->group_workers.size()) {
    st.rr.resize(snap->group_workers.size(), 0);
  }
  const auto& members = snap->group_workers[g];
  const std::uint32_t cls = item.class_id;
  // in_flight moves up before the inbox push: the worker's decrement at
  // completion must never observe the counter at zero.
  st.in_flight.fetch_add(1, std::memory_order_acq_rel);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const std::size_t w = members[(st.rr[g] + i) % members.size()];
    if (st.inboxes[w]->push(std::move(item))) {
      st.rr[g] = (st.rr[g] + i + 1) % members.size();
      st.pending.fetch_sub(1, std::memory_order_relaxed);
      service_metrics_->cls(cls).admitted.fetch_add(
          1, std::memory_order_relaxed);
      wake_sleepers();
      return true;
    }
  }
  st.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  return false;
}

void Runtime::dispatcher_main() {
  ServiceState& st = *service_;
  const std::size_t n = pools_.size();
  const std::size_t reader = n;  // the publisher slot after the workers
  // Dispatch stalls once the executing backlog reaches the ring
  // capacity: with inboxes and staging also capped, total service memory
  // is bounded by a small multiple of queue_capacity — overload fills
  // the ingress ring and turns into backpressure/shedding instead of
  // unbounded RSS.
  const std::size_t dispatch_limit = st.opts.queue_capacity;
  const std::size_t staging_limit = st.opts.queue_capacity;
  std::size_t idle = 0;
  for (;;) {
    const PlanSnapshot* snap = st.publisher.acquire(reader);
    bool progress = false;
    // Oldest staged items first (FIFO matters for shed-oldest).
    while (!st.staging.empty() &&
           st.in_flight.load(std::memory_order_acquire) < dispatch_limit) {
      if (!dispatch_item(st.staging.front(), snap)) break;
      st.staging.pop_front();
      progress = true;
    }
    ServiceItem item;
    while (st.staging.size() < staging_limit && st.ingress.pop(item)) {
      progress = true;
      const std::size_t depth =
          static_cast<std::size_t>(
              st.pending.load(std::memory_order_relaxed)) +
          static_cast<std::size_t>(
              st.in_flight.load(std::memory_order_relaxed));
      const auto decision = st.admission.decide(item.class_id, depth);
      if (decision == AdmissionController::Decision::kShed) {
        service_shed(item.class_id, item.tag);
        continue;
      }
      if (decision == AdmissionController::Decision::kEvictOldest) {
        // SLA tier 0 is never-shed under every policy: the victim is the
        // oldest *sheddable* staged item. When everything staged is
        // protected, the arriving task is shed instead — unless it is
        // itself tier 0, in which case nothing sheds and it stages.
        auto victim = st.staging.begin();
        while (victim != st.staging.end() &&
               st.admission.sla_of(victim->class_id) == 0) {
          ++victim;
        }
        if (victim != st.staging.end()) {
          service_shed(victim->class_id, victim->tag);
          st.staging.erase(victim);
        } else if (st.admission.sla_of(item.class_id) != 0) {
          service_shed(item.class_id, item.tag);
          continue;
        }
      }
      if (st.in_flight.load(std::memory_order_relaxed) >= dispatch_limit ||
          !dispatch_item(item, snap)) {
        st.staging.push_back(std::move(item));
      }
    }
    service_metrics_->set_queue_depth(
        st.pending.load(std::memory_order_relaxed) +
        st.in_flight.load(std::memory_order_relaxed));
    if (progress) {
      idle = 0;
      continue;
    }
    if (st.dispatcher_stop.load(std::memory_order_acquire)) {
      // Shed whatever never got dispatched (normally nothing — the stop
      // path drains first). Conservation: these were pending, now shed.
      while (st.ingress.pop(item)) service_shed(item.class_id, item.tag);
      for (auto& s : st.staging) service_shed(s.class_id, s.tag);
      st.staging.clear();
      if (st.ingress.size_approx() == 0) break;
      continue;
    }
    ++idle;
    if (idle <= kIdleSpinSweeps) {
      // spin: arrivals usually land within a sweep under load
    } else if (idle <= kIdleYieldSweeps) {
      std::this_thread::yield();
    } else {
      st.publisher.release(reader);
      deep_park(1u << kIdleSleepMaxShift, [&] {
        return st.ingress.size_approx() > 0 ||
               st.dispatcher_stop.load(std::memory_order_acquire);
      });
      idle = kIdleYieldSweeps;  // stay in the park tier while idle
    }
  }
  st.publisher.release(reader);
}

std::optional<Task*> Runtime::service_steal(std::size_t id,
                                            std::size_t group, bool cross,
                                            obs::ServiceWorkerCounters& wc) {
  if (group_count_approx(group) <= 0) return std::nullopt;
  const std::size_t n = pools_.size();
  std::uint64_t& state = *steal_rng_[id];
  for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
    state = util::mix64(state);
    const std::size_t victim =
        n > 1 ? util::uniform_excluding(state, id, n) : id;
    if (auto t = pools_[victim].deques[group]->steal()) {
      group_count_bump(group, id, -1);
      steals_.fetch_add(1, std::memory_order_relaxed);
      wc.bump(cross ? wc.robs : wc.steals);
      if (obs::EventTracer* tracer = options_.tracer;
          tracer != nullptr && tracer->enabled()) {
        tracer->steal(id, tracer->now_us(),
                      static_cast<std::uint32_t>(group),
                      static_cast<std::uint32_t>(victim), cross);
      }
      return t;
    }
    if (group_count_approx(group) <= 0) break;
  }
  return std::nullopt;
}

std::optional<Task*> Runtime::service_acquire(std::size_t id,
                                              const PlanSnapshot* snap) {
  obs::ServiceWorkerCounters& wc = service_metrics_->worker(id);
  const std::size_t my_group = snap->worker_group[id];
  const auto& order = snap->prefs.for_group(my_group);
  for (std::size_t g : order) {
    if (auto t = pools_[id].deques[g]->pop()) {
      group_count_bump(g, id, -1);
      wc.bump(wc.pops);
      return t;
    }
    if (auto t = service_steal(id, g, g != my_group, wc)) return t;
  }
  // A plan with fewer groups than its predecessor leaves tasks stranded
  // in deques outside the preference order; sweep those too so every
  // admitted task eventually runs (task conservation).
  for (std::size_t g = order.size(); g < options_.ladder.size(); ++g) {
    if (auto t = pools_[id].deques[g]->pop()) {
      group_count_bump(g, id, -1);
      wc.bump(wc.pops);
      return t;
    }
    if (auto t = service_steal(id, g, true, wc)) return t;
  }
  return std::nullopt;
}

void Runtime::run_service_task(std::size_t id, Task* task, std::size_t rung,
                               PerfCounters* pmc) {
  // The deques carry Task*; the service envelope starts with its Task.
  static_assert(offsetof(ServiceNode, task) == 0,
                "ServiceNode must start with its Task");
  ServiceNode* node = reinterpret_cast<ServiceNode*>(task);
  ServiceState& st = *service_;
  obs::EventTracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  if (pmc != nullptr) pmc->start();
  Clock::time_point t0_tp;
  if (tracing) t0_tp = Clock::now();
  const std::uint64_t t0 = util::FastClock::ticks();
  bool failed = false;
  try {
    task->fn();
  } catch (...) {
    // Service mode has no run_batch to rethrow from: exceptions are
    // counted (per class and in the planner's health report) and the
    // worker moves on.
    failed = true;
    failed_tasks_.fetch_add(1, std::memory_order_relaxed);
  }
  const double exec_s = util::FastClock::seconds_since(t0);
  const double cmi = pmc != nullptr ? pmc->stop().cmi() : 0.0;
  if (!failed) {
    // Same exclusion rule as batch profiling: a task that threw early
    // would corrupt its class's Eq. 1 workload mean.
    if (!st.profile_rings[id]->push(
            ProfileRec{static_cast<std::uint32_t>(task->class_id),
                       static_cast<std::uint32_t>(rung), exec_s, cmi})) {
      st.profile_drops.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const double sojourn_s =
      node->submit_ticks != 0
          ? util::FastClock::seconds_since(node->submit_ticks)
          : exec_s;
  service_metrics_->record_executed(id, task->class_id, sojourn_s, failed);
  if (tracing) {
    tracer->task(id, tracer->to_us(t0_tp), exec_s * 1e6,
                 static_cast<std::uint32_t>(task->class_id),
                 static_cast<std::uint32_t>(rung), failed);
  }
  // Recycle: drop the captured state now (it may pin caller resources),
  // then return the envelope to this worker's freelist.
  node->task.fn = TaskFn{};
  st.freelists[id].push_back(node);
  st.in_flight.fetch_sub(1, std::memory_order_acq_rel);
}

void Runtime::service_worker_loop(std::size_t id, PerfCounters* pmc) {
  ServiceState& st = *service_;
  SpscRing<ServiceItem>& inbox = *st.inboxes[id];
  std::uint64_t seen_seq = 0;
  std::size_t idle_sweeps = 0;
  for (;;) {
    const PlanSnapshot* snap = st.publisher.acquire(id);
    *st.worker_snap[id] = snap;
    if (snap->seq != seen_seq) {
      seen_seq = snap->seq;
      // Adopt the new plan: rung for Eq. 1 normalization. The rung tuple
      // arrived atomically with the layout and preference lists — this
      // is the whole point of the snapshot indirection. Keyed on the
      // publication seq, not the planner epoch: the staleness watchdog
      // can publish its degraded F0 snapshot in the same epoch as a
      // slow-but-valid plan, and that rung change must be adopted too.
      *worker_rung_[id] = snap->worker_rung[id];
    }
    // Move a bounded chunk from the inbox into our own deques (the
    // single-writer contract: only the owner pushes its deque bottoms).
    ServiceItem item;
    std::size_t drained = 0;
    const auto& layout = snap->plan.layout;
    while (drained < kInboxDrainChunk && inbox.pop(item)) {
      ServiceNode* node = alloc_service_node(id);
      node->task.class_id = item.class_id;
      node->task.fn = std::move(item.fn);
      node->tag = item.tag;
      node->submit_ticks = item.submit_ticks;
      std::size_t g = item.class_id < layout.class_count()
                          ? layout.group_of_class(item.class_id)
                          : 0;
      if (g >= snap->group_workers.size()) g = 0;
      pools_[id].deques[g]->push(&node->task);
      group_count_bump(g, id, 1);
      ++drained;
    }
    if (auto got = service_acquire(id, snap)) {
      run_service_task(id, *got, *worker_rung_[id], pmc);
      idle_sweeps = 0;
      continue;
    }
    if (drained > 0) {
      idle_sweeps = 0;
      continue;
    }
    if (st.workers_exit.load(std::memory_order_acquire)) break;
    ++idle_sweeps;
    if (idle_sweeps <= kIdleSpinSweeps) {
      // spin
    } else if (idle_sweeps <= kIdleYieldSweeps) {
      std::this_thread::yield();
    } else {
      const std::size_t ramp = std::min<std::size_t>(
          idle_sweeps - kIdleYieldSweeps - 1, kIdleSleepMaxShift);
      if (ramp < kIdleSleepMaxShift) {
        std::this_thread::sleep_for(std::chrono::microseconds(1u << ramp));
      } else {
        // Deep sleep: release the hazard pin so the planner can reclaim
        // retired snapshots while we park; re-acquired on wake.
        *st.worker_snap[id] = nullptr;
        st.publisher.release(id);
        deep_park(1u << kIdleSleepMaxShift, [&] {
          return inbox.size_approx() > 0 ||
                 st.workers_exit.load(std::memory_order_acquire);
        });
        idle_sweeps = kIdleYieldSweeps;
      }
    }
  }
  *st.worker_snap[id] = nullptr;
  st.publisher.release(id);
}

void Runtime::planner_main() {
  ServiceState& st = *service_;
  const std::size_t n = pools_.size();
  const double epoch_s = st.opts.epoch_s;
  SlidingProfile sliding(st.opts.profile_window_epochs, st.class_count);
  // The planner's epoch budget is tighter than the batch barrier's, so
  // it picks its own searcher (pruned by default) rather than
  // inheriting the batch controller's.
  core::AdjusterOptions adj_opts = options_.controller.adjuster;
  adj_opts.search = st.opts.planner_search;
  const core::Adjuster adjuster(options_.ladder, n, adj_opts);
  const core::ActuationSupervisor supervisor(options_.controller.actuation);
  core::HealthReport health;
  obs::EpochReport prev = service_metrics_->snapshot(0, 0.0, 0, 0);
  auto last_publish = Clock::now();
  std::size_t strikes = 0;
  std::size_t act_failures = 0;
  bool degraded = false;
  std::uint64_t epoch = 1;

  const auto epoch_duration =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(epoch_s));
  auto deadline = st.t0 + epoch_duration;

  const auto account = [&health](const core::ActuationOutcome& out) {
    health.writes += out.writes;
    health.retries += out.retries;
    health.write_failures += out.write_failures;
    health.failed_cores += out.failed_cores.size();
  };
  const auto trace_rungs = [&](const std::vector<std::size_t>& achieved) {
    if (obs::EventTracer* tracer = options_.tracer;
        tracer != nullptr && tracer->enabled()) {
      const double ts = tracer->now_us();
      for (std::size_t c = 0; c < achieved.size(); ++c) {
        tracer->rung(n, ts, static_cast<std::uint32_t>(c),
                     static_cast<std::uint32_t>(achieved[c]));
      }
    }
  };

  while (!st.planner_stop.load(std::memory_order_acquire)) {
    // Sleep to the epoch boundary in short slices so stop is prompt.
    for (;;) {
      if (st.planner_stop.load(std::memory_order_acquire)) break;
      const auto now = Clock::now();
      if (now >= deadline) break;
      std::this_thread::sleep_for(std::min<Clock::duration>(
          deadline - now, std::chrono::milliseconds(1)));
    }
    if (st.planner_stop.load(std::memory_order_acquire)) break;

    // 1. Drain the workers' profile rings into the sliding window,
    // applying the alpha-corrected Eq. 1 normalization per record.
    ProfileRec rec;
    for (std::size_t w = 0; w < n; ++w) {
      while (st.profile_rings[w]->pop(rec)) {
        const double alpha = core::estimate_alpha_from_cmi(rec.cmi);
        const double eff =
            alpha + (1.0 - alpha) * options_.ladder.slowdown(rec.rung);
        sliding.record(rec.class_id, std::max(rec.exec_s / eff, 1e-9),
                       alpha);
      }
    }

    // 2. Re-plan off the critical path: Algorithm 1 over the window,
    // supervised rolling actuation, atomic publication. Workers never
    // stop executing while this happens.
    if (st.opts.planner_enabled && !degraded) {
      core::FrequencyPlan plan;
      auto profile = sliding.profile();
      if (profile.empty()) {
        plan = core::uniform_plan(n, st.class_count);
      } else {
        // T = the window the profile spans: demand is work per window,
        // capacity is cores x window. An overloaded window fails the
        // search and falls back to uniform F0 — full capacity is the
        // correct overload response, distinct from watchdog degrade.
        const double window_s =
            epoch_s * static_cast<double>(sliding.filled_epochs());
        plan = adjuster.adjust(std::move(profile), st.class_count, window_s)
                   .plan;
      }
      const core::ActuationOutcome outcome =
          supervisor.apply(plan, *backend_);
      account(outcome);
      bool reconciled = false;
      if (!outcome.ok()) {
        ++act_failures;
        plan = core::reconcile_plan(plan, outcome.achieved);
        ++health.reconciliations;
        reconciled = true;
      } else {
        act_failures = 0;
      }
      if (act_failures >= st.opts.max_actuation_failures) {
        degraded = true;
      } else {
        auto snap = PlanSnapshot::build(epoch, std::move(plan),
                                        outcome.achieved, n);
        snap->reconciled = reconciled;
        if (st.publisher.publish(std::move(snap))) {
          service_metrics_->plan_publishes().fetch_add(
              1, std::memory_order_relaxed);
          trace_rungs(outcome.achieved);
          const auto now = Clock::now();
          const double gap =
              std::chrono::duration<double>(now - last_publish).count();
          last_publish = now;
          if (gap >
              epoch_s * static_cast<double>(st.opts.max_staleness_epochs)) {
            // The plan workers ran under went stale before this publish
            // landed (slow search, slow actuation, scheduling delay).
            service_metrics_->staleness_events().fetch_add(
                1, std::memory_order_relaxed);
            ++strikes;
          } else {
            strikes = 0;
          }
        } else {
          service_metrics_->plan_rejects().fetch_add(
              1, std::memory_order_relaxed);
          ++strikes;
        }
        if (strikes >= st.opts.max_staleness_strikes) degraded = true;
      }
      if (degraded && !health.degraded) {
        // Watchdog escalation, same safe state as the batch controller's
        // degraded mode: whole machine at F0, one group, planning off.
        health.degraded = true;
        ++health.degradations;
        core::FrequencyPlan safe = core::uniform_plan(n, st.class_count);
        const core::ActuationOutcome safe_out =
            supervisor.apply(safe, *backend_);
        account(safe_out);
        auto snap = PlanSnapshot::build(epoch, std::move(safe),
                                        safe_out.achieved, n);
        snap->degraded = true;
        if (st.publisher.publish(std::move(snap))) {
          service_metrics_->plan_publishes().fetch_add(
              1, std::memory_order_relaxed);
          trace_rungs(safe_out.achieved);
        } else {
          service_metrics_->plan_rejects().fetch_add(
              1, std::memory_order_relaxed);
        }
        last_publish = Clock::now();
      }
    }

    // 3. Per-epoch report: delta of the cumulative counters, with the
    // live queue gauges. Identity slack here is bounded by in-transit
    // bumps; the final post-drain report must reconcile exactly.
    const obs::EpochReport cum = service_metrics_->snapshot(
        epoch, seconds_since(st.t0),
        st.pending.load(std::memory_order_relaxed),
        st.in_flight.load(std::memory_order_relaxed));
    obs::EpochReport delta = obs::ServiceMetrics::delta(cum, prev);
    prev = cum;
    health.task_exceptions = static_cast<std::size_t>(cum.failed);
    {
      std::lock_guard<std::mutex> lock(service_report_mu_);
      service_reports_.push_back(std::move(delta));
      service_health_ = health;
    }
    sliding.rotate();
    ++epoch;
    deadline += epoch_duration;
    const auto now = Clock::now();
    if (deadline < now) deadline = now;  // overran: don't spiral
  }
  std::lock_guard<std::mutex> lock(service_report_mu_);
  service_health_ = health;
}

bool Runtime::drain_service(double timeout_s) {
  if (!service_active_.load(std::memory_order_acquire)) return true;
  ServiceState& st = *service_;
  const auto t0 = Clock::now();
  for (;;) {
    if (st.pending.load(std::memory_order_acquire) == 0 &&
        st.in_flight.load(std::memory_order_acquire) == 0 &&
        st.ingress.size_approx() == 0) {
      return true;
    }
    if (seconds_since(t0) > timeout_s) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

obs::EpochReport Runtime::service_snapshot_unlocked() const {
  const ServiceState& st = *service_;
  const std::uint64_t published = st.publisher.epochs_published();
  return service_metrics_->snapshot(
      published == 0 ? 0 : published - 1, seconds_since(st.t0),
      st.pending.load(std::memory_order_acquire),
      st.in_flight.load(std::memory_order_acquire));
}

obs::EpochReport Runtime::service_snapshot() const {
  if (!service_active_.load(std::memory_order_acquire)) {
    throw std::logic_error("Runtime::service_snapshot: no service active");
  }
  return service_snapshot_unlocked();
}

std::vector<obs::EpochReport> Runtime::epoch_reports() const {
  std::lock_guard<std::mutex> lock(service_report_mu_);
  return service_reports_;
}

core::HealthReport Runtime::service_health() const {
  std::lock_guard<std::mutex> lock(service_report_mu_);
  return service_health_;
}

std::uint64_t Runtime::plan_epochs_published() const {
  if (service_ == nullptr) return 0;
  return service_->publisher.epochs_published();
}

obs::EpochReport Runtime::stop_service() {
  if (!service_active_.load(std::memory_order_acquire)) {
    throw std::logic_error("Runtime::stop_service: no service active");
  }
  ServiceState& st = *service_;
  st.accepting.store(false, std::memory_order_release);
  // Best-effort drain; anything still pending after the timeout is shed
  // by the dispatcher's stop path with full accounting.
  drain_service(10.0);
  st.planner_stop.store(true, std::memory_order_release);
  st.dispatcher_stop.store(true, std::memory_order_release);
  wake_sleepers();
  st.dispatcher.join();
  st.planner.join();
  st.workers_exit.store(true, std::memory_order_release);
  wake_sleepers();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return workers_active_ == 0; });
  }
  // Everything is quiescent: the final cumulative report must reconcile
  // exactly (pending/in_flight still counted if the drain timed out).
  obs::EpochReport report = service_snapshot_unlocked();
  service_active_.store(false, std::memory_order_release);
  tasks_run_ += static_cast<std::size_t>(report.executed);
  // Free envelopes a timed-out drain left behind in inboxes and deques
  // (workers are parked; the control thread owns everything again).
  for (std::size_t w = 0; w < pools_.size(); ++w) {
    ServiceItem item;
    while (st.inboxes[w]->pop(item)) {
    }
    for (auto& dq : pools_[w].deques) {
      while (auto t = dq->pop()) {
        delete reinterpret_cast<ServiceNode*>(*t);
      }
      dq->reclaim();
    }
  }
  for (auto& gc : group_counts_) gc->store(0, std::memory_order_relaxed);
  service_.reset();
  return report;
}

}  // namespace eewa::rt
