// Open-loop service mode: configuration, admission control and the
// planner's sliding-window profile (docs/service_mode.md).
//
// Batch mode answers "run these N tasks, then replan at the barrier";
// service mode answers "traffic never stops": submitters push tasks into
// a bounded ingress ring at any time, a dispatcher routes them to
// per-worker inboxes under the currently published plan, and a planner
// thread re-runs Algorithm 1 every epoch off the critical path. Overload
// is a first-class input, not an error: admission control decides, per
// class, between backpressure and shedding, with explicit accounting so
// task conservation still holds (obs::EpochReport::reconciles()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/ktuple_search.hpp"
#include "core/task_class.hpp"

namespace eewa::rt {

/// What the ingress does when the service is over its watermarks.
enum class AdmissionPolicy {
  /// Never shed: a full ingress ring rejects submit() with
  /// kBackpressure and the caller decides (retry, drop, slow down).
  kBlock,
  /// Shed arriving tasks of the lowest SLA tier first: tier 2 sheds at
  /// the high watermark, tier 1 at a higher depth, tier 0 never (it
  /// falls back to backpressure when the ring itself is full).
  kShedLowestSla,
  /// Keep the newest arrivals, evict the oldest undispatched task when
  /// over the watermark (bufferbloat control for latency-tolerant
  /// but freshness-sensitive traffic). SLA tier 0 stays never-shed:
  /// eviction skips protected items and a protected arrival is never
  /// the victim.
  kShedOldest,
};

const char* admission_policy_name(AdmissionPolicy policy);

/// Per-class service configuration. Classes must be declared before
/// start_service so the planner and the admission controller never
/// race the interner.
struct ServiceClassConfig {
  std::string name;
  /// SLA tier: 0 = never shed (gold), larger = shed earlier.
  std::size_t sla = 1;
};

/// Service-mode configuration.
struct ServiceOptions {
  /// Ingress ring slots (rounded up to a power of two). The hard bound
  /// on memory between submitters and the dispatcher.
  std::size_t queue_capacity = 8192;
  /// Per-worker inbox slots (rounded up to a power of two).
  std::size_t inbox_capacity = 2048;
  /// Undispatched depth (ring + staging) at which shedding activates;
  /// 0 means queue_capacity / 2.
  std::size_t high_watermark = 0;
  AdmissionPolicy policy = AdmissionPolicy::kShedLowestSla;
  /// Planner epoch length. Every epoch the planner drains the profile
  /// rings, re-plans, actuates and publishes.
  double epoch_s = 0.005;
  /// Sliding profile window, in epochs.
  std::size_t profile_window_epochs = 4;
  /// A publish that lands more than this many epochs after the previous
  /// one is a staleness event (the plan workers run under is outdated).
  std::size_t max_staleness_epochs = 4;
  /// Consecutive staleness events (or plan-publish rejects) before the
  /// watchdog gives up on planning and degrades to uniform F0.
  std::size_t max_staleness_strikes = 3;
  /// Consecutive failed actuations before degrading (mirrors
  /// core::WatchdogOptions::max_consecutive_actuation_failures).
  std::size_t max_actuation_failures = 3;
  /// False = never search or actuate: the service runs the whole time
  /// under the uniform-F0 single-group plan (the work-stealing
  /// baseline for bench_service_traffic).
  bool planner_enabled = true;
  /// Searcher the planner epoch runs. Defaults to the pruned/DP search:
  /// optimal like exhaustive but sub-millisecond at production scale
  /// (r=16, k=256), so a re-plan stays well inside one epoch and the
  /// staleness watchdog has headroom. Overrides the batch-mode
  /// controller.adjuster.search for the planner thread only.
  core::SearchKind planner_search = core::SearchKind::kPruned;
  /// Classes served; must cover every class submitted.
  std::vector<ServiceClassConfig> classes;
  /// Optional hook invoked (on the dispatcher or a submitter thread)
  /// for every shed task: (class_id, tag). Keep it cheap.
  std::function<void(std::size_t, std::uint64_t)> shed_hook;
};

/// Outcome of one submit().
enum class SubmitResult {
  kQueued,        ///< in the ingress ring (may still be shed later)
  kBackpressure,  ///< ring full under kBlock / gold-tier protection
  kShed,          ///< dropped immediately (ring full under a shed policy)
  kStopped,       ///< service not accepting (stopping or not started)
};

/// Dispatcher-side admission decisions; pure logic, single-threaded,
/// unit-testable without a runtime.
class AdmissionController {
 public:
  AdmissionController(AdmissionPolicy policy,
                      std::vector<std::size_t> class_sla,
                      std::size_t high_watermark,
                      std::size_t queue_capacity);

  enum class Decision {
    kAdmit,      ///< dispatch it
    kShed,       ///< drop the arriving task
    kEvictOldest,  ///< admit it, evict the oldest undispatched task
  };

  /// Decide for an arriving task of `class_id` when the undispatched
  /// depth (ring + staging) is `depth`.
  Decision decide(std::size_t class_id, std::size_t depth) const;

  /// Depth at which tier `sla` starts shedding (kShedLowestSla):
  /// the lowest tier sheds exactly at the high watermark, better tiers
  /// at progressively higher depths, tier 0 never.
  std::size_t shed_threshold(std::size_t sla) const;

  std::size_t high_watermark() const { return high_watermark_; }
  AdmissionPolicy policy() const { return policy_; }
  std::size_t sla_of(std::size_t class_id) const {
    return class_id < class_sla_.size() ? class_sla_[class_id] : max_sla_;
  }

  static constexpr std::size_t kNeverShed =
      std::numeric_limits<std::size_t>::max();

 private:
  AdmissionPolicy policy_;
  std::vector<std::size_t> class_sla_;
  std::size_t high_watermark_;
  std::size_t queue_capacity_;
  std::size_t max_sla_ = 0;
};

/// The planner's sliding per-class profile: a ring of per-epoch buckets
/// aggregated into the ClassProfile vector Algorithm 1 consumes. Only
/// the planner thread touches it.
class SlidingProfile {
 public:
  SlidingProfile(std::size_t window_epochs, std::size_t classes);

  /// Record one completed task (already Eq. 1 normalized).
  void record(std::size_t class_id, double norm_w, double alpha);

  /// Close the current epoch bucket and open the next.
  void rotate();

  /// Aggregate over the window, sorted by mean workload descending (the
  /// CC-table column order). Classes with no tasks in the window are
  /// omitted.
  std::vector<core::ClassProfile> profile() const;

  /// Epochs currently contributing to profile() (<= window).
  std::size_t filled_epochs() const { return filled_; }

  std::size_t class_count() const { return per_class_; }
  void ensure_classes(std::size_t classes);

 private:
  struct Cell {
    std::uint64_t count = 0;
    double sum_w = 0.0;
    double max_w = 0.0;
    double sum_alpha = 0.0;
  };

  std::size_t window_;
  std::size_t per_class_;
  std::size_t head_ = 0;    ///< current bucket
  std::size_t filled_ = 1;  ///< buckets holding data (incl. current)
  std::vector<Cell> cells_;  ///< [bucket * per_class_ + class]
};

}  // namespace eewa::rt
