#include "runtime/pmc.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace eewa::rt {

#if defined(__linux__)

namespace {

int open_counter(std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(::syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                    /*cpu=*/-1, /*group_fd=*/-1,
                                    /*flags=*/0));
}

std::uint64_t read_counter(int fd) {
  std::uint64_t value = 0;
  if (fd >= 0 && ::read(fd, &value, sizeof(value)) != sizeof(value)) {
    value = 0;
  }
  return value;
}

}  // namespace

PerfCounters::PerfCounters()
    : misses_fd_(open_counter(PERF_COUNT_HW_CACHE_MISSES)),
      instr_fd_(open_counter(PERF_COUNT_HW_INSTRUCTIONS)) {
  if (!available()) {
    if (misses_fd_ >= 0) ::close(misses_fd_);
    if (instr_fd_ >= 0) ::close(instr_fd_);
    misses_fd_ = instr_fd_ = -1;
  }
}

PerfCounters::~PerfCounters() {
  if (misses_fd_ >= 0) ::close(misses_fd_);
  if (instr_fd_ >= 0) ::close(instr_fd_);
}

void PerfCounters::start() {
  if (!available()) return;
  ::ioctl(misses_fd_, PERF_EVENT_IOC_RESET, 0);
  ::ioctl(instr_fd_, PERF_EVENT_IOC_RESET, 0);
  ::ioctl(misses_fd_, PERF_EVENT_IOC_ENABLE, 0);
  ::ioctl(instr_fd_, PERF_EVENT_IOC_ENABLE, 0);
}

PerfCounters::Sample PerfCounters::stop() {
  Sample sample;
  if (!available()) return sample;
  ::ioctl(misses_fd_, PERF_EVENT_IOC_DISABLE, 0);
  ::ioctl(instr_fd_, PERF_EVENT_IOC_DISABLE, 0);
  sample.cache_misses = read_counter(misses_fd_);
  sample.instructions = read_counter(instr_fd_);
  return sample;
}

#else  // !__linux__

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
PerfCounters::Sample PerfCounters::stop() { return {}; }

#endif

}  // namespace eewa::rt
