// Atomic plan publication for the epoch-based service mode.
//
// In batch mode the frequency plan changes only at the barrier, where
// workers are parked; in service mode the planner thread re-runs
// Algorithm 1 while workers keep executing, so the handoff must be
// atomic: a worker either sees the complete old plan or the complete new
// one, never a torn mix of rung tuple, c-group layout and preference
// lists.
//
// The mechanism is an epoch pointer with hazard-pointer reclamation:
// the planner builds a fully immutable PlanSnapshot, validates it, and
// swings one atomic pointer; readers pin the snapshot they are using in
// a per-reader hazard slot, and the planner frees a retired snapshot
// only once no slot pins it. Readers are lock-free (two loads on the
// repeat-read fast path); the planner is the only thread that allocates
// or frees.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/frequency_plan.hpp"
#include "core/preference_list.hpp"
#include "util/aligned.hpp"

namespace eewa::rt {

/// One immutable epoch's scheduling state. Built and validated by the
/// planner, then published; never mutated afterwards.
struct PlanSnapshot {
  std::uint64_t epoch = 0;
  /// Monotone publication number, stamped by PlanPublisher::publish()
  /// itself — NOT by the planner. Two snapshots published within the
  /// same planner epoch (a slow-but-valid plan immediately followed by
  /// the staleness watchdog's degraded uniform-F0 configuration) share
  /// an `epoch` but never a `seq`; readers deciding "is this a new
  /// plan?" must key on seq, or they would skip the second snapshot and
  /// keep normalizing by a rung the hardware no longer runs.
  std::uint64_t seq = 0;
  core::FrequencyPlan plan;
  core::PreferenceTable prefs;
  /// Workers of each c-group (layout cores clipped to the worker count).
  std::vector<std::vector<std::size_t>> group_workers;
  /// C-group of each worker under this plan.
  std::vector<std::size_t> worker_group;
  /// Achieved (readback) rung of each worker — what Eq. 1 normalization
  /// must use, which can differ from the plan under actuation faults.
  std::vector<std::size_t> worker_rung;
  /// True when actuation missed targets and the layout was rebuilt
  /// around the achieved rungs (reconcile_plan).
  bool reconciled = false;
  /// True when this is the staleness/actuation watchdog's safe
  /// configuration (all cores at F0, single group).
  bool degraded = false;

  /// Structural validity: what every reader may assume of a published
  /// snapshot. The rung tuple is nondecreasing (c-groups fastest
  /// first), every worker has a group, group membership matches the
  /// group_workers lists, and preference lists cover every group.
  bool valid(std::size_t workers) const;

  /// Build a snapshot from a plan (post-actuation) for `workers`
  /// workers with the given achieved rungs.
  static std::unique_ptr<PlanSnapshot> build(
      std::uint64_t epoch, core::FrequencyPlan plan,
      const std::vector<std::size_t>& achieved_rungs, std::size_t workers);
};

/// Single-writer (planner) / multi-reader (workers, dispatcher) epoch
/// pointer with hazard-slot reclamation.
class PlanPublisher {
 public:
  /// `readers` fixed up front; reader ids are [0, readers). `workers` is
  /// the worker count snapshots are validated against — distinct from
  /// the reader count (the runtime's dispatcher holds a reader slot but
  /// is not a worker).
  PlanPublisher(std::size_t readers, std::size_t workers);
  ~PlanPublisher();

  PlanPublisher(const PlanPublisher&) = delete;
  PlanPublisher& operator=(const PlanPublisher&) = delete;

  /// Planner only. Validates the snapshot; an invalid snapshot is
  /// rejected (returns false, counted in publish_rejects()) and never
  /// becomes visible to any reader. On success the previous snapshot is
  /// retired and freed once no reader pins it.
  bool publish(std::unique_ptr<PlanSnapshot> snap);

  /// Pin and return the current snapshot for `reader`. The pointer stays
  /// valid until the reader's next acquire() or release(). Lock-free;
  /// when the plan has not changed since the last call this is two
  /// relaxed-ish loads.
  const PlanSnapshot* acquire(std::size_t reader);

  /// Drop the reader's pin (call before parking for long).
  void release(std::size_t reader);

  /// The current snapshot without pinning — only safe on the planner
  /// thread or when no publishes can be running.
  const PlanSnapshot* current() const {
    return active_.load(std::memory_order_acquire);
  }

  std::uint64_t epochs_published() const {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t publish_rejects() const {
    return rejects_.load(std::memory_order_relaxed);
  }
  /// Snapshots retired but not yet reclaimed (bounded by readers + 1).
  std::size_t retired_count() const { return retired_.size(); }

 private:
  void scan_retired();

  std::atomic<PlanSnapshot*> active_{nullptr};
  std::size_t workers_ = 0;
  std::vector<util::CachelinePadded<std::atomic<const PlanSnapshot*>>>
      hazards_;
  std::vector<PlanSnapshot*> retired_;  // planner-owned
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> rejects_{0};
};

}  // namespace eewa::rt
