// Lock-free bounded queues for the open-loop service mode.
//
// Two shapes, both fixed-capacity rings whose slots carry their own
// sequence numbers (Vyukov's scheme), so neither ever allocates after
// construction and a full queue reports failure instead of growing —
// boundedness is the first line of overload defense (docs/service_mode.md):
//
//   BoundedMpscQueue  — the ingress ring. Any number of submitter threads
//                       push; the dispatcher thread is the only popper.
//   SpscRing          — the dispatcher → worker inboxes. Exactly one
//                       producer (the dispatcher) and one consumer (the
//                       owning worker).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/aligned.hpp"

namespace eewa::rt {

/// Round `n` up to the next power of two (min 2) so ring indices can be
/// masked instead of taken modulo.
inline std::size_t ring_capacity_for(std::size_t n) {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Bounded multi-producer single-consumer ring (Vyukov sequence cells).
/// push() is wait-free in the common case (one fetch_add-free CAS loop on
/// the tail); pop() is single-consumer and does no RMW at all. A full
/// ring fails the push — callers decide between backpressure and
/// shedding; the queue itself never blocks and never allocates.
template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity)
      : mask_(ring_capacity_for(capacity) - 1),
        cells_(new Cell[mask_ + 1]) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side (any thread). False when the ring is full.
  bool push(T&& value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the cell still holds an unconsumed older item
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side (one thread only). False when empty.
  bool pop(T& out) {
    const std::size_t pos = head_;
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) !=
        static_cast<std::intptr_t>(pos + 1)) {
      return false;
    }
    out = std::move(cell.value);
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_ = pos + 1;
    return true;
  }

  /// Approximate occupancy (exact only when producers are quiet).
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head_ ? tail - head_ : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(util::kCacheLine) std::atomic<std::size_t> tail_{0};
  alignas(util::kCacheLine) std::size_t head_ = 0;  // consumer-owned
};

/// Bounded single-producer single-consumer ring. The dispatcher (sole
/// producer) hands service tasks to a worker (sole consumer); both sides
/// are a load + a store, no RMW anywhere.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(ring_capacity_for(capacity) - 1),
        cells_(new T[mask_ + 1]) {}

  std::size_t capacity() const { return mask_ + 1; }

  bool push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    cells_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(cells_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t mask_;
  std::unique_ptr<T[]> cells_;
  alignas(util::kCacheLine) std::atomic<std::size_t> tail_{0};
  alignas(util::kCacheLine) std::atomic<std::size_t> head_{0};
};

}  // namespace eewa::rt
