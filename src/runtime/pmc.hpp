// Per-thread hardware performance counters via Linux perf_event:
// retired instructions and cache misses, giving the cache-miss
// intensity the paper's §IV-D CPU/memory-bound classifier consumes.
// Containers and locked-down kernels often forbid perf_event_open;
// everything degrades to available() == false and zero samples.
#pragma once

#include <cstdint>

namespace eewa::rt {

/// A pair of per-thread counters (cache misses, instructions).
/// Not thread-safe: each worker owns one instance and samples around
/// the tasks it executes.
class PerfCounters {
 public:
  /// One measurement interval's readings.
  struct Sample {
    std::uint64_t cache_misses = 0;
    std::uint64_t instructions = 0;

    /// Cache-miss intensity (misses per instruction; 0 when empty).
    double cmi() const {
      return instructions == 0
                 ? 0.0
                 : static_cast<double>(cache_misses) /
                       static_cast<double>(instructions);
    }
  };

  /// Try to open the counters for the calling thread.
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when both counters opened successfully.
  bool available() const { return misses_fd_ >= 0 && instr_fd_ >= 0; }

  /// Reset and enable the counters (no-op when unavailable).
  void start();

  /// Disable and read; returns zeros when unavailable.
  Sample stop();

 private:
  int misses_fd_ = -1;
  int instr_fd_ = -1;
};

}  // namespace eewa::rt
