#include "runtime/plan_epoch.hpp"

#include <algorithm>

namespace eewa::rt {

bool PlanSnapshot::valid(std::size_t workers) const {
  if (plan.layout.group_count() == 0) return false;
  // The published rung tuple must be nondecreasing (a planned tuple is
  // sorted ascending by construction; a torn read would not be).
  for (std::size_t i = 1; i < plan.tuple.size(); ++i) {
    if (plan.tuple[i] < plan.tuple[i - 1]) return false;
  }
  // Groups are fastest first by global effective-speed row; within one
  // core type freq_index must be strictly increasing (CGroupLayout's
  // per-type contract) — a torn read would break this, so readers
  // assert it. On heterogeneous layouts the rungs of *different* types
  // interleave freely, so the check must not compare across types.
  const auto& groups = plan.layout.groups();
  for (std::size_t g = 1; g < groups.size(); ++g) {
    for (std::size_t h = 0; h < g; ++h) {
      if (groups[h].core_type == groups[g].core_type &&
          groups[g].freq_index <= groups[h].freq_index) {
        return false;
      }
    }
  }
  if (worker_group.size() != workers || worker_rung.size() != workers) {
    return false;
  }
  if (group_workers.size() != groups.size()) return false;
  if (prefs.group_count() != groups.size()) return false;
  std::size_t member_total = 0;
  for (std::size_t g = 0; g < group_workers.size(); ++g) {
    for (std::size_t w : group_workers[g]) {
      if (w >= workers || worker_group[w] != g) return false;
      ++member_total;
    }
  }
  if (member_total != workers) return false;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (prefs.for_group(g).size() != groups.size()) return false;
  }
  return true;
}

std::unique_ptr<PlanSnapshot> PlanSnapshot::build(
    std::uint64_t epoch, core::FrequencyPlan plan,
    const std::vector<std::size_t>& achieved_rungs, std::size_t workers) {
  auto snap = std::make_unique<PlanSnapshot>();
  snap->epoch = epoch;
  snap->plan = std::move(plan);
  snap->prefs = core::PreferenceTable(snap->plan.layout);
  const auto& layout = snap->plan.layout;
  snap->group_workers.assign(layout.group_count(), {});
  snap->worker_group.assign(workers, 0);
  snap->worker_rung.assign(workers, 0);
  for (std::size_t g = 0; g < layout.group_count(); ++g) {
    for (std::size_t c : layout.group(g).cores) {
      if (c < workers) {
        snap->group_workers[g].push_back(c);
        snap->worker_group[c] = g;
        snap->worker_rung[c] = layout.group(g).freq_index;
      }
    }
  }
  // A layout can leave a worker in no group only if its cores all
  // exceed the worker count; fold such workers into the fastest group
  // so every worker has a home and a preference order.
  std::vector<bool> placed(workers, false);
  for (const auto& gw : snap->group_workers) {
    for (std::size_t w : gw) placed[w] = true;
  }
  for (std::size_t w = 0; w < workers; ++w) {
    if (!placed[w]) {
      snap->group_workers[0].push_back(w);
      snap->worker_group[w] = 0;
      snap->worker_rung[w] = layout.group(0).freq_index;
    }
  }
  for (auto& gw : snap->group_workers) std::sort(gw.begin(), gw.end());
  // Achieved rungs override the plan's intent where readback differed:
  // profiling must normalize by what the core actually runs at.
  for (std::size_t w = 0; w < workers && w < achieved_rungs.size(); ++w) {
    snap->worker_rung[w] = achieved_rungs[w];
  }
  return snap;
}

PlanPublisher::PlanPublisher(std::size_t readers, std::size_t workers)
    : workers_(workers), hazards_(readers) {
  for (auto& h : hazards_) h->store(nullptr, std::memory_order_relaxed);
}

PlanPublisher::~PlanPublisher() {
  delete active_.load(std::memory_order_relaxed);
  for (PlanSnapshot* s : retired_) delete s;
}

bool PlanPublisher::publish(std::unique_ptr<PlanSnapshot> snap) {
  if (snap == nullptr || !snap->valid(workers_)) {
    // A rejected snapshot is destroyed here, before the pointer swing:
    // no reader can ever execute under a plan that failed validation.
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Stamp the publication number before the snapshot becomes visible;
  // single writer, so the counter read-modify-write cannot race.
  snap->seq = published_.load(std::memory_order_relaxed) + 1;
  PlanSnapshot* next = snap.release();
  PlanSnapshot* prev = active_.exchange(next, std::memory_order_acq_rel);
  published_.fetch_add(1, std::memory_order_relaxed);
  if (prev != nullptr) retired_.push_back(prev);
  scan_retired();
  return true;
}

void PlanPublisher::scan_retired() {
  auto pinned = [this](const PlanSnapshot* s) {
    for (const auto& h : hazards_) {
      // seq_cst pairs with the readers' seq_cst hazard publication:
      // a reader that pinned s before our active_ exchange is seen here.
      if (h->load(std::memory_order_seq_cst) == s) return true;
    }
    return false;
  };
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [&](PlanSnapshot* s) {
                                  if (pinned(s)) return false;
                                  delete s;
                                  return true;
                                }),
                 retired_.end());
}

const PlanSnapshot* PlanPublisher::acquire(std::size_t reader) {
  auto& hazard = *hazards_[reader];
  const PlanSnapshot* cur = active_.load(std::memory_order_acquire);
  // Fast path: the plan did not change since this reader's last pin.
  if (cur == hazard.load(std::memory_order_relaxed)) return cur;
  for (;;) {
    // seq_cst store-then-load: the re-check cannot be reordered before
    // the hazard publication, so a snapshot that passes the re-check is
    // pinned before the planner's retire scan could miss it.
    hazard.store(cur, std::memory_order_seq_cst);
    const PlanSnapshot* again = active_.load(std::memory_order_seq_cst);
    if (again == cur) return cur;
    cur = again;
  }
}

void PlanPublisher::release(std::size_t reader) {
  hazards_[reader]->store(nullptr, std::memory_order_release);
}

}  // namespace eewa::rt
