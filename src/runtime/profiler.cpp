#include "runtime/profiler.hpp"

namespace eewa::rt {

std::vector<TaskRecord> merge_profiles(std::vector<WorkerProfile>& workers) {
  std::size_t total = 0;
  for (const auto& w : workers) total += w.size();
  std::vector<TaskRecord> merged;
  merged.reserve(total);
  for (auto& w : workers) {
    const auto& r = w.records();
    merged.insert(merged.end(), r.begin(), r.end());
    w.clear();
  }
  return merged;
}

}  // namespace eewa::rt
