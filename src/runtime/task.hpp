// The unit of scheduling in the real-thread runtime: a callable tagged
// with the task-class (function) name EEWA profiles by.
//
// The callable is a TaskFn, not a std::function: spawn() is the hot path
// of every recursive workload the paper evaluates, and a std::function
// heap-allocates any capture beyond its tiny internal buffer. TaskFn
// stores captures up to kInlineSize bytes inline (move-only, no
// type-erasure allocation) and only falls back to the heap for larger
// closures, so the steady-state spawn path performs zero allocations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace eewa::rt {

/// Move-only type-erased `void()` callable with small-buffer storage.
///
/// Captures up to kInlineSize bytes (and alignment <= alignof(max_align_t))
/// live inside the object; larger closures are boxed on the heap (counted
/// in heap_fallbacks() so tests can assert the hot path stays inline).
class TaskFn {
 public:
  /// Inline capture budget. 48 bytes fits the common recursive-spawn
  /// closure (a runtime pointer, a couple of counters/handles, a depth)
  /// with TaskFn itself still one cache line including its vtable-free
  /// dispatch pointers.
  static constexpr std::size_t kInlineSize = 48;

  TaskFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  TaskFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      relocate_ = [](void* src, void* dst) noexcept {
        Fn* fn = static_cast<Fn*>(src);
        if (dst != nullptr) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      // Heap fallback: box the closure, keep only the pointer inline.
      heap_fallbacks().fetch_add(1, std::memory_order_relaxed);
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      relocate_ = [](void* src, void* dst) noexcept {
        Fn** box = static_cast<Fn**>(src);
        if (dst != nullptr) {
          ::new (dst) Fn*(*box);
        } else {
          delete *box;
        }
      };
    }
  }

  TaskFn(TaskFn&& other) noexcept
      : invoke_(other.invoke_), relocate_(other.relocate_) {
    if (relocate_ != nullptr) relocate_(other.buf_, buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  TaskFn& operator=(TaskFn&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      if (relocate_ != nullptr) relocate_(other.buf_, buf_);
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
    }
    return *this;
  }

  TaskFn(const TaskFn&) = delete;
  TaskFn& operator=(const TaskFn&) = delete;

  ~TaskFn() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Process-wide count of closures that spilled to the heap (capture
  /// larger than kInlineSize). Tests pin the steady-state spawn path to
  /// zero growth here.
  static std::atomic<std::uint64_t>& heap_fallbacks() noexcept {
    static std::atomic<std::uint64_t> count{0};
    return count;
  }

 private:
  void reset() noexcept {
    if (relocate_ != nullptr) relocate_(buf_, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
  }

  void (*invoke_)(void*) = nullptr;
  /// Moves the stored closure from src into dst (placement-new) and
  /// destroys src; destroys src only when dst is null.
  void (*relocate_)(void* src, void* dst) noexcept = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

/// A task as submitted by the application.
struct TaskDesc {
  std::string class_name;  ///< function name (EEWA's class identity)
  TaskFn fn;               ///< the work (move-only)
};

/// Internal representation after class-name interning.
struct Task {
  std::size_t class_id = 0;
  TaskFn fn;
};

/// Pre-interned task-class identity (see Runtime::handle): call sites
/// resolve the name once and spawn through the handle with zero string
/// hashing on the hot path.
struct ClassHandle {
  std::size_t id = 0;
};

/// Bump-allocated slab arena for mid-batch spawned Tasks.
///
/// Single-owner by contract: during a batch exactly one worker allocates
/// from its own arena (spawn() indexes by worker id); at the batch
/// barrier the control thread — sole owner while workers are parked —
/// destroys the tasks with reset(), which keeps the slabs, so a
/// steady-state batch allocates nothing.
class TaskArena {
 public:
  /// Tasks per slab; slabs are a few KiB so a spawn burst amortizes its
  /// rare slab allocation across kSlabTasks spawns.
  static constexpr std::size_t kSlabTasks = 256;

  TaskArena() = default;
  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;
  ~TaskArena() { reset(); }

  /// Owner only: construct a task in place and return its stable address
  /// (valid until reset()).
  Task* create(std::size_t class_id, TaskFn&& fn) {
    const std::size_t slab = count_ / kSlabTasks;
    const std::size_t idx = count_ % kSlabTasks;
    if (slab == slabs_.size()) slabs_.push_back(std::make_unique<Slab>());
    Task* t = slabs_[slab]->at(idx);
    ::new (static_cast<void*>(t)) Task{class_id, std::move(fn)};
    ++count_;
    return t;
  }

  /// Owner only (batch barrier): destroy all tasks, keep the slabs.
  void reset() noexcept {
    for (std::size_t i = count_; i-- > 0;) {
      slabs_[i / kSlabTasks]->at(i % kSlabTasks)->~Task();
    }
    count_ = 0;
  }

  /// Tasks currently alive in the arena.
  std::size_t size() const noexcept { return count_; }

  /// Slabs retained across batches (diagnostics/tests).
  std::size_t slab_count() const noexcept { return slabs_.size(); }

 private:
  struct Slab {
    alignas(alignof(Task)) unsigned char bytes[kSlabTasks * sizeof(Task)];

    Task* at(std::size_t i) noexcept {
      return reinterpret_cast<Task*>(bytes) + i;
    }
  };

  std::vector<std::unique_ptr<Slab>> slabs_;
  std::size_t count_ = 0;
};

}  // namespace eewa::rt
