// The unit of scheduling in the real-thread runtime: a callable tagged
// with the task-class (function) name EEWA profiles by.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace eewa::rt {

/// A task as submitted by the application.
struct TaskDesc {
  std::string class_name;    ///< function name (EEWA's class identity)
  std::function<void()> fn;  ///< the work
};

/// Internal representation after class-name interning.
struct Task {
  std::size_t class_id = 0;
  std::function<void()> fn;
};

}  // namespace eewa::rt
