// The real-thread work-stealing runtime (paper Fig. 4 architecture).
//
// N worker threads, each owning r Chase–Lev deques (one per c-group).
// Batches of tasks are submitted from the control thread; workers pop
// locally, steal randomly within a c-group, and fall through c-groups in
// rob-the-weaker-first preference order. Between batches the
// EewaController replans frequencies and the plan is applied through a
// DvfsBackend (real sysfs cpufreq on hardware, a recording TraceBackend
// elsewhere — energy then comes from ModelMeter).
//
// Scheduler kinds:
//   kCilk  — single pool group, random stealing, frequencies untouched
//            (or pinned to `fixed_rungs` for AMC experiments).
//   kCilkD — kCilk + self-scaling to the bottom rung when a worker finds
//            every pool empty; restored on the next acquire/batch.
//   kWats  — fixed `fixed_rungs`, preference stealing, workload-aware
//            class allocation, no DVFS at runtime.
//   kEewa  — the paper's scheduler: measurement batch at F0, then
//            per-batch frequency plans from the workload-aware adjuster.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/actuation.hpp"
#include "core/eewa_controller.hpp"
#include "core/intern_table.hpp"
#include "dvfs/dvfs_backend.hpp"
#include "dvfs/frequency_ladder.hpp"
#include "dvfs/trace_backend.hpp"
#include "obs/metrics.hpp"
#include "obs/service_metrics.hpp"
#include "obs/tracer.hpp"
#include "runtime/chase_lev_deque.hpp"
#include "runtime/ingress.hpp"
#include "runtime/plan_epoch.hpp"
#include "runtime/pmc.hpp"
#include "runtime/profiler.hpp"
#include "runtime/service.hpp"
#include "runtime/task.hpp"
#include "trace/task_trace.hpp"
#include "util/aligned.hpp"

namespace eewa::rt {

/// Which scheduling policy the runtime applies.
enum class SchedulerKind { kCilk, kCilkD, kWats, kEewa };

/// Runtime configuration.
struct RuntimeOptions {
  /// Worker count; 0 means one per hardware CPU.
  std::size_t workers = 0;
  SchedulerKind kind = SchedulerKind::kEewa;
  dvfs::FrequencyLadder ladder = dvfs::FrequencyLadder::opteron8380();
  core::ControllerOptions controller{};
  /// Fixed per-worker rungs for kWats / asymmetric kCilk runs.
  std::vector<std::size_t> fixed_rungs;
  /// Pin workers to CPUs (no-op where unsupported).
  bool pin_threads = false;
  /// External DVFS backend (e.g. a probed SysfsBackend). When null the
  /// runtime creates an internal TraceBackend over `ladder`.
  dvfs::DvfsBackend* backend = nullptr;
  /// Sample per-task cache-miss intensity with perf_event counters
  /// (silently disabled where perf_event_open is forbidden).
  bool enable_pmc = true;
  /// Record every executed batch as a task trace (normalized workloads,
  /// CMI, estimated stall fractions) retrievable via recorded_trace():
  /// profile an application here, replay it on any simulated machine.
  bool record_trace = false;
  /// Optional event tracer (task spans, steal/DVFS events, controller
  /// phases). Must have at least workers + 1 tracks: one per worker plus
  /// a control track. The runtime never enables/disables it — callers
  /// own the gate. Null = no tracing (scheduler counters in metrics()
  /// are always collected; they are cheap).
  obs::EventTracer* tracer = nullptr;
};

/// Round-robin distribution target for one task bound to c-group
/// `group`: {group, worker}. When the group has no workers (possible
/// after plan reconciliation leaves a layout group whose cores all
/// exceed the worker count), the task falls back to the fastest
/// non-empty group rather than computing worker % 0. `rr` holds the
/// per-group round-robin cursors. Throws std::logic_error when every
/// group is empty.
std::pair<std::size_t, std::size_t> distribution_target(
    const std::vector<std::vector<std::size_t>>& group_workers,
    std::vector<std::size_t>& rr, std::size_t group);

/// Work-stealing runtime with batch (iteration) semantics.
class Runtime {
 public:
  explicit Runtime(RuntimeOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Run one batch to completion (blocking). Returns the batch makespan
  /// in seconds. If any task threw, the batch still runs to completion
  /// (remaining tasks execute), then the first captured exception is
  /// rethrown here.
  double run_batch(std::vector<TaskDesc> tasks);

  /// Spawn a task into the *current* batch; only valid while run_batch
  /// is in flight, typically called from inside a running task. The
  /// steady-state cost is lock-free and allocation-free: the class id
  /// resolves through the read-lock-free intern table, the Task lands in
  /// the calling worker's slab arena, and the push goes to the worker's
  /// own deque.
  void spawn(std::string_view class_name, TaskFn fn) {
    spawn(handle(class_name), std::move(fn));
  }

  /// Spawn through a pre-interned handle: zero string hashing.
  void spawn(ClassHandle handle, TaskFn fn);

  /// Resolve (interning on first sight) a class name to a handle.
  /// Thread-safe; lock-free after the first call for a given name. Call
  /// sites on hot paths should resolve once and spawn by handle.
  ClassHandle handle(std::string_view class_name);

  /// Intern a class name ahead of time (thread-safe).
  std::size_t class_id(std::string_view name) { return handle(name).id; }

  /// The controller (plans, profiles, overhead accounting).
  const core::EewaController& controller() const { return *controller_; }

  /// The DVFS backend in use.
  dvfs::DvfsBackend& backend() { return *backend_; }

  /// The internal TraceBackend, or nullptr when an external backend was
  /// supplied (feed this to energy::ModelMeter).
  const dvfs::TraceBackend* trace_backend() const {
    return owned_backend_.get();
  }

  std::size_t worker_count() const { return pools_.size(); }

  /// Cumulative counters.
  std::size_t total_steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  std::size_t batches_run() const { return batches_; }
  std::size_t tasks_run() const { return tasks_run_; }

  /// The recorded trace (empty unless options.record_trace was set).
  const trace::TaskTrace& recorded_trace() const { return recorded_; }

  /// Tasks that threw, across all batches (their exceptions are
  /// rethrown from run_batch, first one wins per batch).
  std::size_t failed_tasks() const {
    return failed_tasks_.load(std::memory_order_relaxed);
  }

  /// Fault-tolerance counters from the controller (retries,
  /// reconciliations, stuck cores, degradations).
  const core::HealthReport& health() const { return controller_->health(); }

  /// Per-worker scheduler counters (always collected; aggregated into a
  /// BatchReport at each batch barrier).
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// The report of the most recently completed batch; throws
  /// std::out_of_range before the first batch finishes.
  const obs::BatchReport& last_batch_report() const {
    return metrics_->reports().at(metrics_->reports().size() - 1);
  }

  /// The event tracer passed in RuntimeOptions (null when none).
  obs::EventTracer* tracer() const { return options_.tracer; }

  // --- Open-loop service mode (docs/service_mode.md) ---------------------
  //
  // Instead of batch barriers, traffic flows continuously: submit() pushes
  // into a bounded ingress ring, a dispatcher thread applies admission
  // control and routes tasks to per-worker inboxes under the currently
  // published plan, and a planner thread re-runs Algorithm 1 every epoch
  // off the critical path, publishing new plans atomically while workers
  // keep executing.

  /// Enter service mode. Classes must be declared in `opts.classes`
  /// (submit() rejects undeclared ids). Throws if a batch or another
  /// service is active.
  void start_service(ServiceOptions opts);

  /// Submit one task (any thread). kQueued means the task entered the
  /// ingress ring — it may still be shed by admission control before it
  /// runs; the per-class counters (service_metrics()) and the optional
  /// shed hook account for every outcome. `tag` is an opaque caller id
  /// passed through to the shed hook.
  SubmitResult submit(ClassHandle handle, TaskFn fn, std::uint64_t tag = 0);
  SubmitResult submit(std::string_view class_name, TaskFn fn,
                      std::uint64_t tag = 0) {
    return submit(handle(class_name), std::move(fn), tag);
  }

  bool service_active() const {
    return service_active_.load(std::memory_order_acquire);
  }

  /// Wait until the ingress ring, staging and every inbox/deque are empty
  /// (pending == 0 and in_flight == 0). Returns false on timeout.
  bool drain_service(double timeout_s);

  /// Stop accepting, drain, stop dispatcher/planner/worker loops and
  /// return the final cumulative report (which must reconcile exactly).
  obs::EpochReport stop_service();

  /// Live cumulative snapshot (any thread, any time while serving).
  obs::EpochReport service_snapshot() const;

  /// Per-epoch delta reports recorded by the planner (copy).
  std::vector<obs::EpochReport> epoch_reports() const;

  /// The planner's health (actuation retries, reconciliations,
  /// staleness degradations) — service-mode analogue of health().
  core::HealthReport service_health() const;

  /// Service counters; null before the first start_service, survives
  /// stop_service until the next start.
  const obs::ServiceMetrics* service_metrics() const {
    return service_metrics_.get();
  }

  /// Epochs published by the service planner so far (0 when none).
  std::uint64_t plan_epochs_published() const;

 private:
  struct WorkerPools {
    // One deque per c-group (allocated for the full ladder size; a batch
    // uses the first `group_count_`).
    std::vector<std::unique_ptr<ChaseLevDeque<Task*>>> deques;
  };

  void worker_main(std::size_t id);
  bool run_one_task(std::size_t id, PerfCounters* pmc);
  std::optional<Task*> acquire(std::size_t id);
  std::optional<Task*> steal_from_group(std::size_t id, std::size_t group);
  void prepare_batch(std::vector<TaskDesc>& tasks);
  void finish_batch(double makespan_s);
  std::size_t group_of_worker(std::size_t id) const;

  // Service-mode internals.
  struct ServiceItem {
    TaskFn fn;
    std::uint32_t class_id = 0;
    std::uint64_t tag = 0;
    std::uint64_t submit_ticks = 0;
  };
  // A service task's identity while it lives in a deque. Task must stay
  // the first member: the deques carry Task*, and run_service_task
  // recovers the node by pointer identity.
  struct ServiceNode {
    Task task;
    std::uint64_t tag = 0;
    std::uint64_t submit_ticks = 0;
  };
  struct ProfileRec {
    std::uint32_t class_id = 0;
    std::uint32_t rung = 0;
    double exec_s = 0.0;
    double cmi = 0.0;
  };
  struct ServiceState;

  void service_worker_loop(std::size_t id, PerfCounters* pmc);
  void dispatcher_main();
  void planner_main();
  std::optional<Task*> service_acquire(std::size_t id,
                                       const PlanSnapshot* snap);
  std::optional<Task*> service_steal(std::size_t id, std::size_t group,
                                     bool cross,
                                     obs::ServiceWorkerCounters& wc);
  bool dispatch_item(ServiceItem& item, const PlanSnapshot* snap);
  void run_service_task(std::size_t id, Task* task, std::size_t rung,
                        PerfCounters* pmc);
  ServiceNode* alloc_service_node(std::size_t id);
  void service_shed(std::size_t class_id, std::uint64_t tag);
  obs::EpochReport service_snapshot_unlocked() const;

  // Deep-sleep wakeup (shared by batch and service idle loops): workers
  // park on a condvar once the idle ramp hits its cap; producers wake
  // them with one load on the hot path (deep_sleepers_ == 0).
  void wake_sleepers();
  /// Park until wake_sleepers() or `max_us`. `has_work` is re-checked
  /// after the sleeper registers itself (under wake_mu_, which the waker
  /// also takes), closing the check-then-sleep window; the timeout is
  /// the backstop for any residual miss, bounding wakeup latency at the
  /// old open-loop sleep cap.
  template <typename HasWork>
  void deep_park(std::uint64_t max_us, HasWork&& has_work) {
    std::unique_lock<std::mutex> lock(wake_mu_);
    const std::uint64_t seen = wake_seq_.load(std::memory_order_relaxed);
    deep_sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (!has_work()) {
      wake_cv_.wait_for(lock, std::chrono::microseconds(max_us), [&] {
        return wake_seq_.load(std::memory_order_relaxed) != seen;
      });
    }
    deep_sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }

  RuntimeOptions options_;
  std::unique_ptr<dvfs::TraceBackend> owned_backend_;
  dvfs::DvfsBackend* backend_ = nullptr;
  std::unique_ptr<core::EewaController> controller_;
  // Read-lock-free name -> class-id cache mirroring the controller's
  // registry. Every intern goes through it, so its writer mutex is also
  // what serializes the registry's map mutations (the only controller
  // state that can change while workers run).
  core::InternTable interner_;

  std::vector<WorkerPools> pools_;
  std::vector<WorkerProfile> profiles_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  // Per-worker victim-selection RNG state, seeded once per worker in
  // worker_main (never reseeded from the clock: coarse clock reads in
  // the steal path are both slow and correlate victim sequences across
  // concurrent sweeps, defeating the paper's random-stealing assumption).
  std::vector<util::CachelinePadded<std::uint64_t>> steal_rng_;
  // Each worker's current frequency rung, cached so run_one_task never
  // queries the backend per task (frequency_index is virtual and, on
  // some backends, mutex-guarded). Written by the control thread at the
  // batch barrier and by the owning worker at Cilk-D self-scaling
  // transitions; read only by the owner.
  std::vector<util::CachelinePadded<std::size_t>> worker_rung_;
  // Sharded in-flight task counts: one cacheline-padded slot per
  // (group, worker) pair, indexed [group * workers + worker]. Each slot
  // has a single writer — worker w adds 1 to its own slot when it pushes
  // into group g and subtracts 1 from its own slot when it acquires from
  // g (pop or steal) — so the hot path is a plain load/store pair, never
  // a lock-prefixed RMW. A group's in-flight total (the steal gate) is
  // the sum over its worker slots; individual slots may go negative
  // (a worker that steals more than it spawns), only the sum is
  // meaningful. The control thread writes at the batch barrier, where
  // workers are parked.
  std::vector<util::CachelinePadded<std::atomic<std::int64_t>>>
      group_counts_;
  std::int64_t group_count_approx(std::size_t group) const;
  void group_count_bump(std::size_t group, std::size_t worker,
                        std::int64_t delta) {
    auto& slot = *group_counts_[group * pools_.size() + worker];
    slot.store(slot.load(std::memory_order_relaxed) + delta,
               std::memory_order_release);
  }
  std::size_t group_count_ = 1;
  std::vector<std::size_t> worker_group_;
  // Per-batch scratch, all reused across batches (prepare_batch clears
  // instead of reallocating): preference lists are rebuilt only when the
  // group count changes, group_workers_/rr_ keep their buffers.
  std::vector<std::vector<std::size_t>> pref_lists_;
  std::vector<std::vector<std::size_t>> group_workers_;
  std::vector<std::size_t> class_to_group_;
  std::vector<std::size_t> rr_;

  std::vector<Task> batch_tasks_;
  // One slab arena per worker for mid-batch spawns: the owning worker
  // bump-allocates without synchronization; the control thread resets
  // them at the next prepare_batch, where workers are parked.
  std::vector<util::CachelinePadded<TaskArena>> arenas_;

  std::atomic<std::int64_t> remaining_{0};
  std::atomic<std::size_t> steals_{0};
  std::mutex failure_mu_;
  std::exception_ptr first_failure_;
  std::atomic<std::size_t> failed_tasks_{0};
  std::size_t failed_seen_ = 0;  // failures already reported to watchdog

  // Batch lifecycle.
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::size_t workers_active_ = 0;
  bool shutdown_ = false;

  // Deep-sleep tier: a worker that exhausts the idle backoff ramp parks
  // here instead of open-loop sleeping; wake_sleepers() costs producers a
  // single relaxed load while nobody is parked. wake_seq_ is bumped under
  // wake_mu_, which is what makes the sleep/notify handshake lossless.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<std::uint64_t> wake_seq_{0};
  std::atomic<std::size_t> deep_sleepers_{0};

  // Service mode. service_active_ selects the worker loop; the heavy
  // state lives behind a pointer so batch-only users pay nothing.
  std::atomic<bool> service_active_{false};
  std::unique_ptr<ServiceState> service_;
  std::unique_ptr<obs::ServiceMetrics> service_metrics_;
  // Per-epoch reports and planner health outlive stop_service (the
  // planner appends under the mutex; accessors copy under it).
  mutable std::mutex service_report_mu_;
  std::vector<obs::EpochReport> service_reports_;
  core::HealthReport service_health_;

  std::vector<std::thread> threads_;
  std::size_t batches_ = 0;
  std::size_t tasks_run_ = 0;
  trace::TaskTrace recorded_;
};

}  // namespace eewa::rt
