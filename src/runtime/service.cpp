#include "runtime/service.hpp"

#include <algorithm>

namespace eewa::rt {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kShedLowestSla:
      return "shed-lowest-sla";
    case AdmissionPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionPolicy policy,
                                         std::vector<std::size_t> class_sla,
                                         std::size_t high_watermark,
                                         std::size_t queue_capacity)
    : policy_(policy),
      class_sla_(std::move(class_sla)),
      high_watermark_(high_watermark),
      queue_capacity_(std::max(queue_capacity, high_watermark + 1)) {
  for (std::size_t sla : class_sla_) max_sla_ = std::max(max_sla_, sla);
}

std::size_t AdmissionController::shed_threshold(std::size_t sla) const {
  if (sla == 0) return kNeverShed;
  if (max_sla_ == 0) return kNeverShed;
  // The lowest tier sheds exactly at the high watermark; each better
  // tier gets an equal extra share of the remaining headroom, so gold
  // traffic keeps flowing while bronze is already being dropped.
  const std::size_t spread = queue_capacity_ > high_watermark_
                                 ? queue_capacity_ - high_watermark_
                                 : 0;
  const std::size_t tier = std::min(sla, max_sla_);
  return high_watermark_ + (max_sla_ - tier) * spread / max_sla_;
}

AdmissionController::Decision AdmissionController::decide(
    std::size_t class_id, std::size_t depth) const {
  switch (policy_) {
    case AdmissionPolicy::kBlock:
      // Backpressure happens at the ring boundary (submit()); once a
      // task is in, it is dispatched.
      return Decision::kAdmit;
    case AdmissionPolicy::kShedLowestSla:
      return depth >= shed_threshold(sla_of(class_id)) ? Decision::kShed
                                                       : Decision::kAdmit;
    case AdmissionPolicy::kShedOldest:
      return depth >= high_watermark_ ? Decision::kEvictOldest
                                      : Decision::kAdmit;
  }
  return Decision::kAdmit;
}

SlidingProfile::SlidingProfile(std::size_t window_epochs,
                               std::size_t classes)
    : window_(std::max<std::size_t>(window_epochs, 1)), per_class_(classes) {
  cells_.assign(window_ * per_class_, {});
}

void SlidingProfile::ensure_classes(std::size_t classes) {
  if (classes <= per_class_) return;
  std::vector<Cell> grown(window_ * classes);
  for (std::size_t b = 0; b < window_; ++b) {
    for (std::size_t c = 0; c < per_class_; ++c) {
      grown[b * classes + c] = cells_[b * per_class_ + c];
    }
  }
  cells_ = std::move(grown);
  per_class_ = classes;
}

void SlidingProfile::record(std::size_t class_id, double norm_w,
                            double alpha) {
  if (class_id >= per_class_) ensure_classes(class_id + 1);
  Cell& cell = cells_[head_ * per_class_ + class_id];
  cell.count += 1;
  cell.sum_w += norm_w;
  cell.max_w = std::max(cell.max_w, norm_w);
  cell.sum_alpha += alpha;
}

void SlidingProfile::rotate() {
  head_ = (head_ + 1) % window_;
  filled_ = std::min(filled_ + 1, window_);
  // The bucket we are reusing ages out of the window.
  std::fill(cells_.begin() + static_cast<std::ptrdiff_t>(head_ * per_class_),
            cells_.begin() +
                static_cast<std::ptrdiff_t>((head_ + 1) * per_class_),
            Cell{});
}

std::vector<core::ClassProfile> SlidingProfile::profile() const {
  std::vector<core::ClassProfile> out;
  for (std::size_t c = 0; c < per_class_; ++c) {
    std::uint64_t count = 0;
    double sum_w = 0.0;
    double max_w = 0.0;
    double sum_alpha = 0.0;
    for (std::size_t b = 0; b < window_; ++b) {
      const Cell& cell = cells_[b * per_class_ + c];
      count += cell.count;
      sum_w += cell.sum_w;
      max_w = std::max(max_w, cell.max_w);
      sum_alpha += cell.sum_alpha;
    }
    if (count == 0) continue;
    core::ClassProfile p;
    p.class_id = c;
    p.name = "c" + std::to_string(c);
    p.count = count;
    p.mean_workload = sum_w / static_cast<double>(count);
    p.max_workload = max_w;
    p.mean_alpha = sum_alpha / static_cast<double>(count);
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const core::ClassProfile& a, const core::ClassProfile& b) {
              if (a.mean_workload != b.mean_workload) {
                return a.mean_workload > b.mean_workload;
              }
              return a.class_id < b.class_id;
            });
  return out;
}

}  // namespace eewa::rt
