#include "energy/rapl_meter.hpp"

#include <filesystem>
#include <fstream>

namespace eewa::energy {

namespace fs = std::filesystem;

std::uint64_t RaplMeter::read_u64(const std::string& path) {
  std::ifstream in(path);
  std::uint64_t v = 0;
  in >> v;
  return v;
}

RaplMeter::RaplMeter(const std::string& root) {
  std::error_code ec;
  if (!fs::exists(root, ec)) return;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    // Package domains look like "intel-rapl:0"; subdomains (core/dram)
    // like "intel-rapl:0:0" are skipped to avoid double counting.
    if (name.rfind("intel-rapl:", 0) != 0) continue;
    if (name.find(':', std::string("intel-rapl:").size()) !=
        std::string::npos) {
      continue;
    }
    const std::string energy = entry.path().string() + "/energy_uj";
    if (!fs::exists(energy, ec)) continue;
    Domain d;
    d.energy_path = energy;
    d.max_range_uj =
        read_u64(entry.path().string() + "/max_energy_range_uj");
    if (d.max_range_uj == 0) {
      d.max_range_uj = ~0ULL;  // no wraparound info; assume none
    }
    domains_.push_back(std::move(d));
  }
}

void RaplMeter::start() {
  for (auto& d : domains_) d.start_uj = read_u64(d.energy_path);
}

double RaplMeter::stop_joules() {
  double joules = 0.0;
  for (auto& d : domains_) {
    const std::uint64_t now = read_u64(d.energy_path);
    std::uint64_t delta;
    if (now >= d.start_uj) {
      delta = now - d.start_uj;
    } else {
      delta = d.max_range_uj - d.start_uj + now;  // wrapped
    }
    joules += static_cast<double>(delta) * 1e-6;
  }
  return joules;
}

}  // namespace eewa::energy
