// Whole-machine power model. The paper measures energy at the wall for a
// 4-socket Opteron 8380 server; this model reproduces that quantity as
//
//   P(t) = P_floor + Σ_cores [ k_dyn · f_c(t) · V(f_c(t))² · act_c(t)
//                              + P_core_static ]
//
// where act_c is 1 for a core that is executing or spin-stealing and
// `halt_fraction` for a core that is halted (mwait). Spinning burns full
// dynamic power — that is precisely why plain work-stealing wastes energy
// (paper §II) and why Cilk-D/EEWA save it by lowering f while spinning.
#pragma once

#include <cstddef>
#include <vector>

#include "dvfs/frequency_ladder.hpp"

namespace eewa::energy {

/// Per-core + machine-floor power model over a frequency ladder.
class PowerModel {
 public:
  /// `volts[j]` is the supply voltage at ladder rung j (parallel to the
  /// ladder, descending). `dyn_coeff_w` scales f·V² into watts;
  /// `core_static_w` is per-core leakage/uncore share; `floor_w` is the
  /// constant rest-of-machine draw (PSU, fans, DRAM, disks).
  PowerModel(dvfs::FrequencyLadder ladder, std::vector<double> volts,
             double dyn_coeff_w, double core_static_w, double floor_w,
             double halt_fraction = 0.12);

  const dvfs::FrequencyLadder& ladder() const { return ladder_; }

  /// Voltage at rung j.
  double volts(std::size_t j) const { return volts_.at(j); }

  /// Power of one core at rung j; `active` = executing or spin-stealing.
  double core_power_w(std::size_t j, bool active) const;

  /// Constant machine floor in watts.
  double floor_w() const { return floor_w_; }

  /// Power of the whole machine with every one of `cores` cores active at
  /// rung j (convenience for quick estimates).
  double machine_all_active_w(std::size_t cores, std::size_t j) const;

  /// Dynamic (f·V²) component only, at rung j, for an active core.
  double dynamic_power_w(std::size_t j) const;

  /// Energy ratio guardrail: power is strictly decreasing in rung index.
  bool monotonic() const;

  /// The paper's platform: 16 Opteron-8380 cores at {2.5, 1.8, 1.3, 0.8}
  /// GHz with K10-generation voltage steps, ~15 W dynamic per core at the
  /// top rung, 3 W per-core static, and a 150 W machine floor.
  static PowerModel opteron8380_server();

  /// Same silicon model but with a zero machine floor — isolates CPU
  /// energy, used by ablation benches.
  static PowerModel opteron8380_cpu_only();

  /// A modern-server-like model: same ladder, but a much narrower
  /// voltage range (near-threshold floors and aggressive binning leave
  /// little V headroom) and lower leakage. DVFS-on-work saves far less
  /// here — the ablation that shows how much of EEWA's value rides on
  /// the silicon's V-f curve.
  static PowerModel modern_server();

  /// An embedded-style model: wide voltage range and a tiny machine
  /// floor, where frequency scaling pays the most.
  static PowerModel embedded();

 private:
  dvfs::FrequencyLadder ladder_;
  std::vector<double> volts_;
  double dyn_coeff_w_;
  double core_static_w_;
  double floor_w_;
  double halt_fraction_;
};

}  // namespace eewa::energy
