// Intel RAPL energy meter via the Linux powercap sysfs interface
// (/sys/class/powercap/intel-rapl:*). Sums all package domains and handles
// counter wraparound. The sysfs root is injectable so the full code path
// is testable against a fake tree on machines without RAPL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/energy_meter.hpp"

namespace eewa::energy {

/// RAPL package-energy meter.
class RaplMeter : public EnergyMeter {
 public:
  /// Probe `root` (default "/sys/class/powercap") for intel-rapl package
  /// domains. If none are found, available() is false and readings are 0.
  explicit RaplMeter(const std::string& root = "/sys/class/powercap");

  bool available() const override { return !domains_.empty(); }
  void start() override;
  double stop_joules() override;
  std::string name() const override { return "rapl"; }

  /// Number of package domains discovered.
  std::size_t domain_count() const { return domains_.size(); }

 private:
  struct Domain {
    std::string energy_path;
    std::uint64_t max_range_uj;
    std::uint64_t start_uj = 0;
  };

  static std::uint64_t read_u64(const std::string& path);

  std::vector<Domain> domains_;
};

}  // namespace eewa::energy
