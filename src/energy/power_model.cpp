#include "energy/power_model.hpp"

#include <stdexcept>

namespace eewa::energy {

PowerModel::PowerModel(dvfs::FrequencyLadder ladder, std::vector<double> volts,
                       double dyn_coeff_w, double core_static_w,
                       double floor_w, double halt_fraction)
    : ladder_(std::move(ladder)),
      volts_(std::move(volts)),
      dyn_coeff_w_(dyn_coeff_w),
      core_static_w_(core_static_w),
      floor_w_(floor_w),
      halt_fraction_(halt_fraction) {
  if (volts_.size() != ladder_.size()) {
    throw std::invalid_argument("PowerModel: volts must parallel the ladder");
  }
  for (std::size_t j = 1; j < volts_.size(); ++j) {
    if (volts_[j] > volts_[j - 1]) {
      throw std::invalid_argument(
          "PowerModel: voltage must be non-increasing down the ladder");
    }
  }
  if (dyn_coeff_w_ <= 0.0 || core_static_w_ < 0.0 || floor_w_ < 0.0 ||
      halt_fraction_ < 0.0 || halt_fraction_ > 1.0) {
    throw std::invalid_argument("PowerModel: bad coefficients");
  }
}

double PowerModel::dynamic_power_w(std::size_t j) const {
  const double v = volts_.at(j);
  return dyn_coeff_w_ * ladder_.ghz(j) * v * v;
}

double PowerModel::core_power_w(std::size_t j, bool active) const {
  const double dyn = dynamic_power_w(j);
  return (active ? dyn : dyn * halt_fraction_) + core_static_w_;
}

double PowerModel::machine_all_active_w(std::size_t cores,
                                        std::size_t j) const {
  return floor_w_ + static_cast<double>(cores) * core_power_w(j, true);
}

bool PowerModel::monotonic() const {
  for (std::size_t j = 1; j < ladder_.size(); ++j) {
    if (core_power_w(j, true) >= core_power_w(j - 1, true)) return false;
  }
  return true;
}

PowerModel PowerModel::opteron8380_server() {
  // K10 P-state voltage steps (wide VID range — this is what makes DVFS
  // pay: energy per unit of work scales with V², so the bottom rung does
  // the same work for ~(0.95/1.35)² ≈ 50% of the dynamic energy). The
  // dyn coefficient puts the top rung at ~16 W dynamic per core (Opteron
  // 8380 ACP 75 W per quad-core package); 1.2 W per-core leakage and a
  // 150 W rest-of-machine floor for the paper's 4-socket server.
  return PowerModel(dvfs::FrequencyLadder::opteron8380(),
                    {1.35, 1.20, 1.075, 0.95},
                    /*dyn_coeff_w=*/3.51,
                    /*core_static_w=*/1.2,
                    /*floor_w=*/150.0);
}

PowerModel PowerModel::opteron8380_cpu_only() {
  return PowerModel(dvfs::FrequencyLadder::opteron8380(),
                    {1.35, 1.20, 1.075, 0.95},
                    /*dyn_coeff_w=*/3.51,
                    /*core_static_w=*/1.2,
                    /*floor_w=*/0.0);
}

PowerModel PowerModel::modern_server() {
  // Narrow VID range: barely 10% voltage headroom across the ladder.
  return PowerModel(dvfs::FrequencyLadder::opteron8380(),
                    {1.05, 1.02, 0.99, 0.95},
                    /*dyn_coeff_w=*/5.8,
                    /*core_static_w=*/0.8,
                    /*floor_w=*/120.0);
}

PowerModel PowerModel::embedded() {
  // Wide range and almost no platform floor.
  return PowerModel(dvfs::FrequencyLadder::opteron8380(),
                    {1.30, 1.10, 0.95, 0.80},
                    /*dyn_coeff_w=*/1.1,
                    /*core_static_w=*/0.15,
                    /*floor_w=*/4.0);
}

}  // namespace eewa::energy
