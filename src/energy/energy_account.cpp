#include "energy/energy_account.hpp"

#include <stdexcept>

namespace eewa::energy {

EnergyAccount::EnergyAccount(const PowerModel& model, std::size_t cores)
    : model_(model),
      cores_(cores),
      residency_(cores * model.ladder().size(), 0.0) {
  if (cores == 0) {
    throw std::invalid_argument("EnergyAccount: need at least one core");
  }
}

void EnergyAccount::add_core_time(std::size_t core, double dt,
                                  std::size_t rung, bool active) {
  if (dt < 0.0) {
    throw std::invalid_argument("EnergyAccount: negative time segment");
  }
  if (core >= cores_ || rung >= model_.ladder().size()) {
    throw std::out_of_range("EnergyAccount: core or rung out of range");
  }
  residency_[core * model_.ladder().size() + rung] += dt;
  core_j_ += model_.core_power_w(rung, active) * dt;
  (active ? active_s_ : halted_s_) += dt;
}

double EnergyAccount::total_joules() const {
  return core_joules() + model_.floor_w() * makespan_s_;
}

double EnergyAccount::residency_s(std::size_t core, std::size_t rung) const {
  return residency_.at(core * model_.ladder().size() + rung);
}

double EnergyAccount::rung_residency_s(std::size_t rung) const {
  double sum = 0.0;
  for (std::size_t c = 0; c < cores_; ++c) sum += residency_s(c, rung);
  return sum;
}

}  // namespace eewa::energy
