#include "energy/energy_account.hpp"

#include <algorithm>
#include <stdexcept>

namespace eewa::energy {

namespace {

std::size_t rung_axis(const PowerModel& model,
                      const std::vector<const PowerModel*>& core_models) {
  std::size_t n = model.ladder().size();
  for (const PowerModel* m : core_models) {
    if (m == nullptr) {
      throw std::invalid_argument("EnergyAccount: null per-core model");
    }
    n = std::max(n, m->ladder().size());
  }
  return n;
}

}  // namespace

EnergyAccount::EnergyAccount(const PowerModel& model, std::size_t cores,
                             std::vector<const PowerModel*> core_models)
    : model_(model),
      cores_(cores),
      core_models_(std::move(core_models)),
      stride_(rung_axis(model, core_models_)),
      residency_(cores * stride_, 0.0) {
  if (cores == 0) {
    throw std::invalid_argument("EnergyAccount: need at least one core");
  }
  if (!core_models_.empty() && core_models_.size() != cores_) {
    throw std::invalid_argument(
        "EnergyAccount: per-core model count does not match cores");
  }
}

void EnergyAccount::add_core_time(std::size_t core, double dt,
                                  std::size_t rung, bool active) {
  if (dt < 0.0) {
    throw std::invalid_argument("EnergyAccount: negative time segment");
  }
  if (core >= cores_) {
    throw std::out_of_range("EnergyAccount: core or rung out of range");
  }
  const PowerModel& pm = core_model(core);
  if (rung >= pm.ladder().size()) {
    throw std::out_of_range("EnergyAccount: core or rung out of range");
  }
  residency_[core * stride_ + rung] += dt;
  core_j_ += pm.core_power_w(rung, active) * dt;
  (active ? active_s_ : halted_s_) += dt;
}

double EnergyAccount::total_joules() const {
  return core_joules() + model_.floor_w() * makespan_s_;
}

double EnergyAccount::residency_s(std::size_t core, std::size_t rung) const {
  return residency_.at(core * stride_ + rung);
}

double EnergyAccount::rung_residency_s(std::size_t rung) const {
  double sum = 0.0;
  for (std::size_t c = 0; c < cores_; ++c) sum += residency_s(c, rung);
  return sum;
}

}  // namespace eewa::energy
