// Energy bookkeeping: integrates the power model over per-core
// (time-at-rung, activity) segments. The simulator feeds it exact
// segments; the runtime's ModelMeter feeds it segments reconstructed from
// the DVFS trace.
#pragma once

#include <cstddef>
#include <vector>

#include "energy/power_model.hpp"

namespace eewa::energy {

/// Accumulates joules and residency from core activity segments.
class EnergyAccount {
 public:
  /// `model` charges every core and provides the machine floor. On
  /// heterogeneous machines pass `core_models` (one per core, each
  /// outliving the account): core c then charges under *core_models[c]
  /// — its own cluster's ladder and power curve — while `model` still
  /// provides the floor and the default rung axis. Empty = homogeneous.
  EnergyAccount(const PowerModel& model, std::size_t cores,
                std::vector<const PowerModel*> core_models = {});

  /// Charge `dt` seconds of core `core` at ladder rung `rung` (of that
  /// core's own ladder), active (executing/spinning) or halted.
  void add_core_time(std::size_t core, double dt, std::size_t rung,
                     bool active);

  /// Charge a one-off energy cost (e.g. DVFS transition energy).
  void add_extra_joules(double j) { extra_j_ += j; }

  /// Set the wall-clock span over which the machine floor draws power.
  void set_makespan(double seconds) { makespan_s_ = seconds; }
  double makespan_s() const { return makespan_s_; }

  /// Joules from the cores only (dynamic + per-core static + extras).
  double core_joules() const { return core_j_ + extra_j_; }

  /// Whole-machine joules: cores + floor · makespan.
  double total_joules() const;

  /// Seconds core `core` spent at rung `rung` (any activity). The rung
  /// axis spans the largest per-core ladder; rungs a core's own ladder
  /// lacks simply read 0.
  double residency_s(std::size_t core, std::size_t rung) const;

  /// Seconds at rung `rung` summed over all cores.
  double rung_residency_s(std::size_t rung) const;

  /// Seconds of active time summed over all cores.
  double active_s() const { return active_s_; }

  /// Seconds of halted time summed over all cores.
  double halted_s() const { return halted_s_; }

  std::size_t core_count() const { return cores_; }
  const PowerModel& model() const { return model_; }

  /// The model core `c` charges under (the primary model when no
  /// per-core overrides were given).
  const PowerModel& core_model(std::size_t c) const {
    return core_models_.empty() ? model_ : *core_models_.at(c);
  }

 private:
  const PowerModel& model_;
  std::size_t cores_;
  std::vector<const PowerModel*> core_models_;  // empty = homogeneous
  std::size_t stride_;             // rung axis = max per-core ladder size
  std::vector<double> residency_;  // cores_ x stride_, row-major
  double core_j_ = 0.0;
  double extra_j_ = 0.0;
  double active_s_ = 0.0;
  double halted_s_ = 0.0;
  double makespan_s_ = 0.0;
};

}  // namespace eewa::energy
