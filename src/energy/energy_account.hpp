// Energy bookkeeping: integrates the power model over per-core
// (time-at-rung, activity) segments. The simulator feeds it exact
// segments; the runtime's ModelMeter feeds it segments reconstructed from
// the DVFS trace.
#pragma once

#include <cstddef>
#include <vector>

#include "energy/power_model.hpp"

namespace eewa::energy {

/// Accumulates joules and residency from core activity segments.
class EnergyAccount {
 public:
  EnergyAccount(const PowerModel& model, std::size_t cores);

  /// Charge `dt` seconds of core `core` at ladder rung `rung`,
  /// active (executing/spinning) or halted.
  void add_core_time(std::size_t core, double dt, std::size_t rung,
                     bool active);

  /// Charge a one-off energy cost (e.g. DVFS transition energy).
  void add_extra_joules(double j) { extra_j_ += j; }

  /// Set the wall-clock span over which the machine floor draws power.
  void set_makespan(double seconds) { makespan_s_ = seconds; }
  double makespan_s() const { return makespan_s_; }

  /// Joules from the cores only (dynamic + per-core static + extras).
  double core_joules() const { return core_j_ + extra_j_; }

  /// Whole-machine joules: cores + floor · makespan.
  double total_joules() const;

  /// Seconds core `core` spent at rung `rung` (any activity).
  double residency_s(std::size_t core, std::size_t rung) const;

  /// Seconds at rung `rung` summed over all cores.
  double rung_residency_s(std::size_t rung) const;

  /// Seconds of active time summed over all cores.
  double active_s() const { return active_s_; }

  /// Seconds of halted time summed over all cores.
  double halted_s() const { return halted_s_; }

  std::size_t core_count() const { return cores_; }
  const PowerModel& model() const { return model_; }

 private:
  const PowerModel& model_;
  std::size_t cores_;
  std::vector<double> residency_;  // cores_ x ladder.size(), row-major
  double core_j_ = 0.0;
  double extra_j_ = 0.0;
  double active_s_ = 0.0;
  double halted_s_ = 0.0;
  double makespan_s_ = 0.0;
};

}  // namespace eewa::energy
