#include "energy/model_meter.hpp"

#include <stdexcept>

namespace eewa::energy {

ModelMeter::ModelMeter(const PowerModel& model,
                       const dvfs::TraceBackend& backend)
    : model_(model), backend_(backend) {
  if (model_.ladder().size() != backend_.ladder().size()) {
    throw std::invalid_argument(
        "ModelMeter: model and backend ladders differ");
  }
}

void ModelMeter::start() {
  start_s_ = backend_.now_s();
  start_log_size_ = backend_.transitions().size();
  start_rungs_.resize(backend_.core_count());
  for (std::size_t c = 0; c < backend_.core_count(); ++c) {
    start_rungs_[c] = backend_.frequency_index(c);
  }
}

double ModelMeter::stop_joules() {
  const double end_s = backend_.now_s();
  const auto log = backend_.transitions();
  const std::size_t cores = backend_.core_count();

  // Replay per-core rung segments across [start_s_, end_s].
  std::vector<std::size_t> rung = start_rungs_;
  std::vector<double> seg_start(cores, start_s_);
  double joules = model_.floor_w() * (end_s - start_s_);
  auto charge = [&](std::size_t c, double until) {
    const double dt = until - seg_start[c];
    if (dt > 0.0) {
      joules += model_.core_power_w(rung[c], /*active=*/true) * dt;
    }
    seg_start[c] = until;
  };
  for (std::size_t i = start_log_size_; i < log.size(); ++i) {
    const auto& t = log[i];
    if (t.time_s > end_s) break;
    if (t.core < cores) {
      charge(t.core, t.time_s);
      rung[t.core] = t.freq_index;
    }
  }
  for (std::size_t c = 0; c < cores; ++c) charge(c, end_s);
  return joules;
}

}  // namespace eewa::energy
