// Model-based energy meter for the real-thread runtime on machines
// without RAPL: replays the DVFS TraceBackend's transition log between
// start() and stop_joules() through the PowerModel, treating every core
// as active for the whole interval (work-stealing workers spin when idle,
// so this matches the paper's measurement model).
#pragma once

#include <cstddef>

#include "dvfs/trace_backend.hpp"
#include "energy/energy_meter.hpp"
#include "energy/power_model.hpp"

namespace eewa::energy {

/// Integrates PowerModel over the frequency trace recorded by a
/// dvfs::TraceBackend.
class ModelMeter : public EnergyMeter {
 public:
  /// `backend` must outlive the meter and share the model's ladder.
  ModelMeter(const PowerModel& model, const dvfs::TraceBackend& backend);

  bool available() const override { return true; }
  void start() override;
  double stop_joules() override;
  std::string name() const override { return "model"; }

 private:
  const PowerModel& model_;
  const dvfs::TraceBackend& backend_;
  double start_s_ = 0.0;
  std::size_t start_log_size_ = 0;
  std::vector<std::size_t> start_rungs_;
};

}  // namespace eewa::energy
