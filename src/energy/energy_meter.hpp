// Generic energy-measurement interface: start(), then stop_joules().
// Implementations: RaplMeter (hardware counters) and ModelMeter (power
// model over a recorded DVFS trace).
#pragma once

#include <string>

namespace eewa::energy {

/// Measures the energy consumed between start() and stop_joules().
class EnergyMeter {
 public:
  virtual ~EnergyMeter() = default;

  /// True if this meter can produce readings on this machine.
  virtual bool available() const = 0;

  /// Begin a measurement interval.
  virtual void start() = 0;

  /// End the interval and return joules consumed during it.
  virtual double stop_joules() = 0;

  /// Short identifier for reports ("rapl", "model", ...).
  virtual std::string name() const = 0;
};

}  // namespace eewa::energy
