// Tests for the CC table (paper Table I): the CC[j][i] formula, the
// Fig. 3 worked example, ordering requirements, and the ceiling rule.
#include <gtest/gtest.h>

#include "core/cc_table.hpp"

namespace eewa::core {
namespace {

const dvfs::FrequencyLadder kLadder = dvfs::FrequencyLadder::opteron8380();

std::vector<ClassProfile> two_classes() {
  // heavy: 8 tasks × 2 s; light: 16 tasks × 0.5 s.
  return {{0, "heavy", 8, 2.0}, {1, "light", 16, 0.5}};
}

TEST(CCTable, TopRowIsWorkOverT) {
  const auto cc = CCTable::build(two_classes(), kLadder, 4.0);
  EXPECT_EQ(cc.rows(), 4u);
  EXPECT_EQ(cc.cols(), 2u);
  EXPECT_NEAR(cc.at(0, 0), 8 * 2.0 / 4.0, 1e-12);   // 4 cores
  EXPECT_NEAR(cc.at(0, 1), 16 * 0.5 / 4.0, 1e-12);  // 2 cores
}

TEST(CCTable, LowerRowsScaleBySlowdown) {
  const auto cc = CCTable::build(two_classes(), kLadder, 4.0);
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(cc.at(j, i), kLadder.slowdown(j) * cc.at(0, i), 1e-12);
    }
  }
  // Slowest row needs the most cores.
  EXPECT_GT(cc.at(3, 0), cc.at(0, 0));
}

TEST(CCTable, Figure3Example) {
  // The paper's Fig. 3: 4 task classes, 4 frequencies, 16 cores. We
  // reproduce the matrix exactly as printed.
  const auto cc = CCTable::from_matrix({{2, 3, 1, 1},
                                        {4, 6, 2, 2},
                                        {6, 9, 3, 3},
                                        {8, 12, 4, 4}});
  EXPECT_EQ(cc.rows(), 4u);
  EXPECT_EQ(cc.cols(), 4u);
  EXPECT_DOUBLE_EQ(cc.at(1, 1), 6.0);
  EXPECT_DOUBLE_EQ(cc.at(3, 0), 8.0);
  EXPECT_EQ(cc.ceil_at(2, 2), 3u);
}

TEST(CCTable, CeilRoundsUpAndKeepsMinimumOne) {
  const auto cc = CCTable::from_matrix({{0.2, 2.0, 3.01}});
  EXPECT_EQ(cc.ceil_at(0, 0), 1u);  // fractional demand still needs a core
  EXPECT_EQ(cc.ceil_at(0, 1), 2u);  // exact integers stay
  EXPECT_EQ(cc.ceil_at(0, 2), 4u);
}

TEST(CCTable, CeilOfZeroIsZero) {
  const auto cc = CCTable::from_matrix({{0.0}});
  EXPECT_EQ(cc.ceil_at(0, 0), 0u);
}

TEST(CCTable, RequiresDescendingClassOrder) {
  std::vector<ClassProfile> wrong = {{0, "light", 16, 0.5},
                                     {1, "heavy", 8, 2.0}};
  EXPECT_THROW(CCTable::build(wrong, kLadder, 4.0), std::invalid_argument);
}

TEST(CCTable, ValidatesInputs) {
  EXPECT_THROW(CCTable::build({}, kLadder, 4.0), std::invalid_argument);
  EXPECT_THROW(CCTable::build(two_classes(), kLadder, 0.0),
               std::invalid_argument);
  EXPECT_THROW(CCTable::from_matrix({}), std::invalid_argument);
  EXPECT_THROW(CCTable::from_matrix({{1.0, 2.0}, {3.0}}),
               std::invalid_argument);
  const auto cc = CCTable::build(two_classes(), kLadder, 4.0);
  EXPECT_THROW(cc.at(9, 0), std::out_of_range);
  EXPECT_THROW(cc.at(0, 9), std::out_of_range);
}

TEST(CCTable, KeepsClassMetadata) {
  const auto cc = CCTable::build(two_classes(), kLadder, 4.0);
  ASSERT_EQ(cc.classes().size(), 2u);
  EXPECT_EQ(cc.classes()[0].name, "heavy");
  EXPECT_DOUBLE_EQ(cc.ideal_time_s(), 4.0);
}

TEST(CCTable, ToStringRendersAllCells) {
  const auto cc = CCTable::build(two_classes(), kLadder, 4.0);
  const std::string s = cc.to_string();
  EXPECT_NE(s.find("heavy"), std::string::npos);
  EXPECT_NE(s.find("F0"), std::string::npos);
  EXPECT_NE(s.find("F3"), std::string::npos);
}

TEST(RungFeasible, RejectsRungsWhereAMeanTaskMissesT) {
  // One class, mean 1 s, no max metadata recorded (max == 0); T = 1.5 s.
  // At half frequency a mean task takes 2 s > T — the rung must be
  // rejected even though max_workload is absent, or demand()'s rounds<1
  // fallback would silently rank tuples the filter should have blocked.
  std::vector<ClassProfile> cls{{0, "a", 4, 1.0, 0.0, 0.0}};
  const auto cc =
      CCTable::build(cls, dvfs::FrequencyLadder({2.0, 1.0}), 1.5, false);
  EXPECT_TRUE(cc.rung_feasible(0, 0));  // F0 is never rejected
  EXPECT_FALSE(cc.rung_feasible(1, 0));
}

TEST(RungFeasible, AgreesWithDemandOnWhetherAMeanTaskFits) {
  // For every admitted rung j > 0, a mean-sized task must complete
  // within T — i.e. demand() never falls into its rounds < 1 branch for
  // a rung rung_feasible() accepted. Swept over tight and loose T.
  const dvfs::FrequencyLadder ladder({3.0, 2.0, 1.2, 1.0});
  for (double t : {0.4, 0.9, 1.7, 3.5, 9.0}) {
    std::vector<ClassProfile> cls{{0, "heavy", 3, 1.0, 0.0, 0.0},
                                  {1, "light", 20, 0.3, 0.0, 0.0}};
    const auto cc = CCTable::build(cls, ladder, t, false);
    for (std::size_t i = 0; i < cc.cols(); ++i) {
      for (std::size_t j = 1; j < cc.rows(); ++j) {
        const double task_time =
            cls[i].mean_workload * cc.at(j, i) / cc.at(0, i);
        EXPECT_EQ(cc.rung_feasible(j, i), task_time <= t * (1.0 + 1e-9))
            << "T=" << t << " j=" << j << " i=" << i;
      }
    }
  }
}

// The real pipeline: profiles from a registry produce a valid table.
TEST(CCTable, BuildsFromRegistryProfile) {
  TaskClassRegistry reg;
  const auto a = reg.intern("a");
  const auto b = reg.intern("b");
  for (int i = 0; i < 10; ++i) reg.record(a, 1.0);
  for (int i = 0; i < 10; ++i) reg.record(b, 0.25);
  const auto cc = CCTable::build(reg.iteration_profile(), kLadder, 2.0);
  EXPECT_NEAR(cc.at(0, 0), 5.0, 1e-12);   // class a: 10·1/2
  EXPECT_NEAR(cc.at(0, 1), 1.25, 1e-12);  // class b: 10·0.25/2
}

}  // namespace
}  // namespace eewa::core
