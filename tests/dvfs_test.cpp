// Unit tests for the DVFS library: frequency ladders, the recording
// TraceBackend, c-group layouts, and the sysfs cpufreq backend exercised
// against a fake sysfs tree.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dvfs/cgroup.hpp"
#include "dvfs/frequency_ladder.hpp"
#include "dvfs/sysfs_backend.hpp"
#include "dvfs/trace_backend.hpp"
#include "dvfs/transition_model.hpp"

namespace eewa::dvfs {
namespace {

namespace fs = std::filesystem;

TEST(FrequencyLadder, SortsDescendingAndValidates) {
  FrequencyLadder l({1.3, 2.5, 0.8, 1.8});
  EXPECT_EQ(l.size(), 4u);
  EXPECT_DOUBLE_EQ(l.ghz(0), 2.5);
  EXPECT_DOUBLE_EQ(l.ghz(3), 0.8);
  EXPECT_DOUBLE_EQ(l.fastest(), 2.5);
  EXPECT_DOUBLE_EQ(l.slowest(), 0.8);
  EXPECT_EQ(l.slowest_index(), 3u);
}

TEST(FrequencyLadder, RejectsBadInput) {
  EXPECT_THROW(FrequencyLadder({}), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder({-1.0}), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder({0.0, 2.0}), std::invalid_argument);
}

TEST(FrequencyLadder, SlowdownAndRelativeSpeed) {
  const auto l = FrequencyLadder::opteron8380();
  EXPECT_DOUBLE_EQ(l.slowdown(0), 1.0);
  EXPECT_NEAR(l.slowdown(3), 2.5 / 0.8, 1e-12);
  EXPECT_NEAR(l.relative_speed(1), 1.8 / 2.5, 1e-12);
}

TEST(FrequencyLadder, IndexOfFindsExactRungs) {
  const auto l = FrequencyLadder::opteron8380();
  EXPECT_EQ(l.index_of(2.5), 0u);
  EXPECT_EQ(l.index_of(0.8), 3u);
  EXPECT_THROW(l.index_of(1.0), std::out_of_range);
}

TEST(FrequencyLadder, NearestAtLeast) {
  const auto l = FrequencyLadder::opteron8380();
  EXPECT_EQ(l.nearest_at_least(2.0), 0u);   // 2.5 is the slowest rung >= 2.0
  EXPECT_EQ(l.nearest_at_least(2.6), 0u);   // clamped to fastest
  EXPECT_EQ(l.nearest_at_least(0.8), 3u);
  EXPECT_EQ(l.nearest_at_least(1.0), 2u);   // 1.3 is slowest >= 1.0
}

TEST(FrequencyLadder, LinearPreset) {
  const auto l = FrequencyLadder::linear(1.0, 3.0, 5);
  EXPECT_EQ(l.size(), 5u);
  EXPECT_DOUBLE_EQ(l.fastest(), 3.0);
  EXPECT_DOUBLE_EQ(l.slowest(), 1.0);
  EXPECT_THROW(FrequencyLadder::linear(2.0, 1.0, 3), std::invalid_argument);
}

TEST(FrequencyLadder, ToStringMentionsUnits) {
  EXPECT_NE(FrequencyLadder::opteron8380().to_string().find("GHz"),
            std::string::npos);
}

TEST(TraceBackend, RecordsTransitionsWithState) {
  TraceBackend b(FrequencyLadder::opteron8380(), 4);
  EXPECT_EQ(b.core_count(), 4u);
  EXPECT_FALSE(b.is_live());
  EXPECT_EQ(b.frequency_index(2), 0u);
  EXPECT_TRUE(b.set_frequency(2, 3));
  EXPECT_EQ(b.frequency_index(2), 3u);
  EXPECT_EQ(b.transition_count(), 1u);
  const auto log = b.transitions();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].core, 2u);
  EXPECT_EQ(log[0].freq_index, 3u);
  EXPECT_GE(log[0].time_s, 0.0);
}

TEST(TraceBackend, NoopWhenAlreadyAtRung) {
  TraceBackend b(FrequencyLadder::opteron8380(), 2);
  EXPECT_TRUE(b.set_frequency(0, 0));
  EXPECT_EQ(b.transition_count(), 0u);
}

TEST(TraceBackend, RejectsOutOfRange) {
  TraceBackend b(FrequencyLadder::opteron8380(), 2);
  EXPECT_FALSE(b.set_frequency(5, 0));
  EXPECT_FALSE(b.set_frequency(0, 9));
  EXPECT_THROW(TraceBackend(FrequencyLadder::opteron8380(), 0),
               std::invalid_argument);
  EXPECT_THROW(TraceBackend(FrequencyLadder::opteron8380(), 2, 7),
               std::invalid_argument);
}

TEST(TraceBackend, SetAllSetsEveryCore) {
  TraceBackend b(FrequencyLadder::opteron8380(), 8);
  EXPECT_EQ(b.set_all(2), 8u);
  for (std::size_t c = 0; c < 8; ++c) EXPECT_EQ(b.frequency_index(c), 2u);
}

TEST(CGroupLayout, UniformCoversAllCores) {
  const auto l = CGroupLayout::uniform(4, 3, 1);
  EXPECT_EQ(l.group_count(), 1u);
  EXPECT_EQ(l.freq_index(0), 1u);
  EXPECT_EQ(l.class_count(), 3u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(l.core_assigned(c));
    EXPECT_EQ(l.group_of_core(c), 0u);
  }
}

TEST(CGroupLayout, ValidatesStructure) {
  // Unordered groups rejected.
  EXPECT_THROW(CGroupLayout({CGroup{.freq_index = 2, .cores = {0}}, CGroup{.freq_index = 1, .cores = {1}}}, {}, 2),
               std::invalid_argument);
  // Core in two groups rejected.
  EXPECT_THROW(CGroupLayout({CGroup{.freq_index = 0, .cores = {0}}, CGroup{.freq_index = 1, .cores = {0}}}, {}, 2),
               std::invalid_argument);
  // Out-of-range core rejected.
  EXPECT_THROW(CGroupLayout({CGroup{.freq_index = 0, .cores = {5}}}, {}, 2), std::invalid_argument);
  // Class mapped to missing group rejected.
  EXPECT_THROW(CGroupLayout({CGroup{.freq_index = 0, .cores = {0, 1}}}, {3}, 2),
               std::invalid_argument);
  // Empty layout rejected.
  EXPECT_THROW(CGroupLayout({}, {}, 2), std::invalid_argument);
}

TEST(CGroupLayout, CoresPerRungCountsCorrectly) {
  CGroupLayout l({CGroup{.freq_index = 1, .cores = {0, 1, 2}}, CGroup{.freq_index = 3, .cores = {3, 4}}}, {0, 1}, 5);
  const auto counts = l.cores_per_rung(4);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(l.group_of_class(1), 1u);
  EXPECT_EQ(l.group_of_core(4), 1u);
}

TEST(CGroupLayout, PartialCoverageDetected) {
  CGroupLayout l({CGroup{.freq_index = 0, .cores = {0}}}, {}, 3);
  EXPECT_TRUE(l.core_assigned(0));
  EXPECT_FALSE(l.core_assigned(2));
  EXPECT_THROW(l.group_of_core(2), std::out_of_range);
}

TEST(TransitionModel, DefaultsAndFree) {
  const TransitionModel m;
  EXPECT_GT(m.latency_s, 0.0);
  EXPECT_GT(m.energy_j, 0.0);
  const auto f = TransitionModel::free();
  EXPECT_EQ(f.latency_s, 0.0);
  EXPECT_EQ(f.energy_j, 0.0);
}

// ----------------------------------------------------- sysfs (fake tree) --

class SysfsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("eewa_sysfs_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (int c = 0; c < 4; ++c) {
      const fs::path dir = root_ / ("cpu" + std::to_string(c)) / "cpufreq";
      fs::create_directories(dir);
      write(dir / "scaling_available_frequencies",
            "2500000 1800000 1300000 800000\n");
      write(dir / "scaling_governor", "ondemand\n");
      write(dir / "scaling_setspeed", "2500000\n");
      write(dir / "scaling_max_freq", "2500000\n");
    }
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  static void write(const fs::path& p, const std::string& v) {
    std::ofstream out(p);
    out << v;
  }

  static std::string read(const fs::path& p) {
    std::ifstream in(p);
    std::string s;
    std::getline(in, s);
    return s;
  }

  fs::path root_;
};

TEST_F(SysfsFixture, ProbeDiscoversCoresAndLadder) {
  auto backend = SysfsBackend::probe(root_.string());
  ASSERT_TRUE(backend.has_value());
  EXPECT_EQ(backend->core_count(), 4u);
  EXPECT_EQ(backend->ladder().size(), 4u);
  EXPECT_NEAR(backend->ladder().ghz(0), 2.5, 1e-9);
  EXPECT_NEAR(backend->ladder().ghz(3), 0.8, 1e-9);
  EXPECT_EQ(backend->khz(1), 1800000u);
  EXPECT_TRUE(backend->is_live());
  EXPECT_TRUE(backend->userspace_governor());
  // Probe switched every core's governor.
  EXPECT_EQ(read(root_ / "cpu3" / "cpufreq" / "scaling_governor"),
            "userspace");
}

TEST_F(SysfsFixture, SetFrequencyWritesSetspeed) {
  auto backend = SysfsBackend::probe(root_.string());
  ASSERT_TRUE(backend.has_value());
  EXPECT_TRUE(backend->set_frequency(1, 2));
  EXPECT_EQ(backend->frequency_index(1), 2u);
  EXPECT_EQ(backend->transition_count(), 1u);
  EXPECT_EQ(read(root_ / "cpu1" / "cpufreq" / "scaling_setspeed"),
            "1300000");
}

TEST_F(SysfsFixture, RejectsOutOfRangeRequests) {
  auto backend = SysfsBackend::probe(root_.string());
  ASSERT_TRUE(backend.has_value());
  EXPECT_FALSE(backend->set_frequency(9, 0));
  EXPECT_FALSE(backend->set_frequency(0, 9));
}

TEST(SysfsBackend, ProbeFailsGracefullyWithoutTree) {
  EXPECT_FALSE(
      SysfsBackend::probe("/nonexistent/definitely/not/here").has_value());
}

}  // namespace
}  // namespace eewa::dvfs
