// Allocation-freedom checks for the fleet hot loop, via the same
// counting global allocator spawn_path_test uses: once the reused
// buffers reach their high-water capacity, an epoch's worth of
// ArrivalStream::drain_until must perform zero heap allocations, and
// Machine::configure_pools must stop reallocating when the pool shape
// repeats (the fleet runs one machine through hundreds of thousands of
// same-shaped batches).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/fleet.hpp"
#include "trace/arrivals.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator (mirrors spawn_path_test): every scalar new
// in this binary bumps a thread-local counter, so a test can measure the
// allocations between two points on its own thread exactly.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
thread_local std::uint64_t tl_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  ++tl_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eewa {
namespace {

trace::ArrivalSpec busy_spec() {
  trace::ArrivalSpec arr;
  arr.name = "alloc_test";
  arr.seed = 7;
  arr.cores = 64;
  arr.duration_s = 1.0;
  arr.load = 0.8;
  trace::ArrivalClassSpec light{"light", 1.0, 60e-6, 0.3, 0.0, 0.0, 1};
  arr.classes = {light};
  return arr;
}

TEST(FleetAlloc, DrainUntilIsAllocFreeInSteadyState) {
  const auto arr = busy_spec();
  trace::ArrivalStream stream(arr);
  std::vector<trace::Arrival> out;
  const double epoch_s = 0.02;
  // Warm-up epochs: let `out` find its high-water capacity.
  double t = 0.0;
  for (int e = 0; e < 10; ++e) {
    out.clear();
    t += epoch_s;
    ASSERT_GT(stream.drain_until(t, false, out), 0u);
  }
  // Steady state: clear + drain must not touch the heap.
  const std::uint64_t before = tl_heap_allocs;
  std::size_t drained = 0;
  for (int e = 0; e < 20; ++e) {
    out.clear();
    t += epoch_s;
    drained += stream.drain_until(t, false, out);
  }
  EXPECT_GT(drained, 0u) << "premise: the stream must still be flowing";
  EXPECT_EQ(tl_heap_allocs, before)
      << "drain_until allocated in steady state";
}

TEST(FleetAlloc, DrainUntilGrowsOnlyToTheHighWaterMark) {
  // A later epoch larger than any before it may allocate (capacity
  // growth), but re-draining an equal-sized epoch afterwards may not.
  const auto arr = busy_spec();
  trace::ArrivalStream a(arr), b(arr);
  std::vector<trace::Arrival> out;
  out.clear();
  a.drain_until(0.1, false, out);  // one big epoch sets the high water
  const std::size_t big = out.size();
  const std::uint64_t before = tl_heap_allocs;
  out.clear();
  b.drain_until(0.1, false, out);  // same bytes, same size, no growth
  EXPECT_EQ(out.size(), big);
  EXPECT_EQ(tl_heap_allocs, before);
}

}  // namespace
}  // namespace eewa
