// Tests for the observability layer: metrics counters and batch
// aggregation, the event tracer (gating, ring overflow, exports), the
// bundled JSON parser, and end-to-end trace validation against both the
// real runtime and the simulator (span nesting, steal/DVFS events,
// counter reconciliation with tasks executed).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/actuation.hpp"
#include "core/frequency_plan.hpp"
#include "obs/json_lite.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulate.hpp"
#include "trace/task_trace.hpp"

namespace eewa::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, ExecBucketsAreLog2Microseconds) {
  EXPECT_EQ(exec_bucket(0.0), 0u);
  EXPECT_EQ(exec_bucket(0.5e-6), 0u);
  EXPECT_EQ(exec_bucket(1.5e-6), 0u);   // [1, 2) us
  EXPECT_EQ(exec_bucket(3e-6), 1u);     // [2, 4) us
  EXPECT_EQ(exec_bucket(1000e-6), 9u);  // [512, 1024) us
  EXPECT_EQ(exec_bucket(1e9), kExecBuckets - 1);  // clamped
  EXPECT_DOUBLE_EQ(exec_bucket_lo_s(0), 0.0);
  EXPECT_DOUBLE_EQ(exec_bucket_lo_s(3), 8e-6);
}

TEST(Metrics, ClassExecStatsObserveAndMerge) {
  ClassExecStats a;
  a.observe(1e-3, false);
  a.observe(3e-3, true);
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.failed, 1u);
  EXPECT_DOUBLE_EQ(a.min_s, 1e-3);
  EXPECT_DOUBLE_EQ(a.max_s, 3e-3);
  ClassExecStats b;
  b.observe(0.5e-3, false);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min_s, 0.5e-3);
  ClassExecStats empty;
  a.merge(empty);  // merging an empty class is a no-op
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min_s, 0.5e-3);
}

TEST(Metrics, RegistryAggregatesWorkersIntoBatchReport) {
  MetricsRegistry reg(2);
  reg.begin_batch(2);
  WorkerCounters& w0 = reg.worker(0);
  w0.tasks = 3;
  w0.pops[0] = 2;
  w0.steals[0] = 1;
  w0.cls(0).observe(1e-3, false);
  WorkerCounters& w1 = reg.worker(1);
  w1.tasks = 2;
  w1.pops[1] = 1;
  w1.robs[0] = 1;
  w1.spawns = 4;
  w1.cls(2).observe(2e-3, true);
  const BatchReport& r = reg.finalize_batch();
  EXPECT_EQ(r.tasks, 5u);
  EXPECT_EQ(r.spawns, 4u);
  EXPECT_EQ(r.pops, 3u);
  EXPECT_EQ(r.local_steals, 1u);
  EXPECT_EQ(r.cross_robs, 1u);
  EXPECT_EQ(r.acquires(), 5u);
  EXPECT_EQ(r.acquires(), r.tasks);  // the reconciliation invariant
  ASSERT_EQ(r.classes.size(), 3u);
  EXPECT_EQ(r.classes[2].failed, 1u);
  // A second batch resets the counters.
  reg.begin_batch(1);
  EXPECT_EQ(reg.worker(0).tasks, 0u);
  reg.finalize_batch();
  ASSERT_EQ(reg.reports().size(), 2u);
  EXPECT_EQ(reg.reports()[1].tasks, 0u);
  const BatchReport totals = reg.totals();
  EXPECT_EQ(totals.tasks, 5u);
  EXPECT_FALSE(totals.to_string({"alpha", "beta", "gamma"}).empty());
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, DisabledTracerRecordsNothing) {
  EventTracer t(2, 16);
  t.set_enabled(false);
  t.task(0, 1.0, 2.0, 0, 0, false);
  t.steal(1, 3.0, 0, 1, true);
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_FALSE(t.enabled());
}

TEST(Tracer, CompileTimeGateMatchesMacro) {
  EventTracer t(1, 4);
  EXPECT_EQ(t.enabled(), EventTracer::kCompiledIn);
}

TEST(Tracer, RingOverflowDropsOldestAndCounts) {
  if (!EventTracer::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  EventTracer t(1, 4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    t.rung(0, static_cast<double>(i), i, 0);
  }
  EXPECT_EQ(t.event_count(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto evs = t.events(0);
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_DOUBLE_EQ(evs.front().ts_us, 6.0);  // oldest survivor
  EXPECT_DOUBLE_EQ(evs.back().ts_us, 9.0);
}

TEST(Tracer, ChromeJsonIsValidAndCarriesEvents) {
  if (!EventTracer::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  EventTracer t(2, 64);
  t.set_track_name(0, "worker \"0\"");  // exercise escaping
  t.set_class_names({"md5_block"});
  t.task(0, 10.0, 5.0, 0, 2, false);
  t.steal(0, 20.0, 1, 3, /*cross_group=*/true);
  t.rung(1, 30.0, 1, 4);
  t.phase(1, 0.0, 100.0, PhaseKind::kBatch, 7);
  const std::string json = t.chrome_json();
  const JsonValue doc = parse_json(json);
  ASSERT_TRUE(doc.is_object());
  const JsonValue& evs = doc.at("traceEvents");
  ASSERT_TRUE(evs.is_array());
  // 2 thread_name metadata + 4 events.
  EXPECT_EQ(evs.array.size(), 6u);
  bool saw_meta = false, saw_task = false, saw_rob = false, saw_rung = false;
  for (const auto& ev : evs.array) {
    ASSERT_TRUE(ev.is_object());
    const std::string& ph = ev.at("ph").str;
    if (ph == "M") {
      saw_meta = true;
      continue;
    }
    ASSERT_TRUE(ev.at("ts").is_number());
    const JsonValue* cat = ev.find("cat");
    ASSERT_NE(cat, nullptr);
    if (cat->str == "task") {
      saw_task = true;
      EXPECT_EQ(ev.at("ph").str, "X");
      EXPECT_EQ(ev.at("name").str, "md5_block");
      EXPECT_DOUBLE_EQ(ev.at("dur").number, 5.0);
    } else if (cat->str == "rob") {
      saw_rob = true;
      EXPECT_EQ(ev.at("ph").str, "i");
      EXPECT_DOUBLE_EQ(ev.at("args").at("victim").number, 3.0);
    } else if (cat->str == "rung") {
      saw_rung = true;
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_rob);
  EXPECT_TRUE(saw_rung);
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped").number, 0.0);
}

TEST(Tracer, CsvHasHeaderAndOneRowPerEvent) {
  if (!EventTracer::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  EventTracer t(1, 16);
  t.task(0, 1.0, 2.0, 0, 0, false);
  t.rung(0, 3.0, 0, 1);
  const std::string csv = t.csv();
  std::size_t lines = 0;
  for (const char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 events
  EXPECT_EQ(csv.rfind("track,ts_us,dur_us,kind,a,b,c", 0), 0u);
}

// --------------------------------------------------------------- json_lite

TEST(JsonLite, ParsesScalarsContainersAndEscapes) {
  const JsonValue v = parse_json(
      R"({"a": [1, -2.5e1, true, null], "s": "x\nA\"", "o": {}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue& a = v.at("a");
  ASSERT_EQ(a.array.size(), 4u);
  EXPECT_DOUBLE_EQ(a.array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a.array[1].number, -25.0);
  EXPECT_TRUE(a.array[2].boolean);
  EXPECT_TRUE(a.array[3].is_null());
  EXPECT_EQ(v.at("s").str, "x\nA\"");
  EXPECT_TRUE(v.at("o").object.empty());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), std::out_of_range);
}

TEST(JsonLite, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), JsonParseError);
  EXPECT_THROW(parse_json("{"), JsonParseError);
  EXPECT_THROW(parse_json("[1,]"), JsonParseError);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), JsonParseError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW(parse_json("tru"), JsonParseError);
}

// ------------------------------------------------- runtime integration

// Spans on one track must not overlap (each worker runs tasks serially);
// allow a microsecond of clock-rounding slack.
void expect_no_overlap(const std::vector<TraceEvent>& evs) {
  double prev_end = -1e18;
  for (const auto& ev : evs) {
    if (ev.kind != EventKind::kTask || ev.dur_us < 0.0) continue;
    EXPECT_GE(ev.ts_us, prev_end - 1.0);
    prev_end = std::max(prev_end, ev.ts_us + ev.dur_us);
  }
}

// Every span of kind `inner` must nest inside some span of kind `outer`.
void expect_nested(const std::vector<TraceEvent>& evs, PhaseKind inner,
                   PhaseKind outer) {
  for (const auto& ev : evs) {
    if (ev.kind != EventKind::kPhase ||
        ev.a != static_cast<std::uint32_t>(inner)) {
      continue;
    }
    bool contained = false;
    for (const auto& out : evs) {
      if (out.kind != EventKind::kPhase ||
          out.a != static_cast<std::uint32_t>(outer) || out.dur_us < 0.0) {
        continue;
      }
      if (ev.ts_us >= out.ts_us - 1.0 &&
          ev.ts_us + std::max(ev.dur_us, 0.0) <=
              out.ts_us + out.dur_us + 1.0) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "phase " << static_cast<int>(inner)
                           << " span at ts=" << ev.ts_us
                           << " not nested in phase "
                           << static_cast<int>(outer);
  }
}

TEST(RuntimeObservability, ReportReconcilesAndTraceValidates) {
  constexpr std::size_t kWorkers = 2;
  EventTracer tracer(kWorkers + 1, 1 << 16);
  rt::RuntimeOptions opt;
  opt.workers = kWorkers;
  opt.kind = rt::SchedulerKind::kEewa;
  opt.tracer = &tracer;
  rt::Runtime runtime(opt);

  // Batch 1: one parent floods its own deque with spawned children.
  // Each child *sleeps* (yielding the CPU), so even on a single
  // time-sliced CPU the other worker runs against a non-empty deque and
  // must steal; plus plain tasks for both workers.
  std::atomic<int> counter{0};
  std::vector<rt::TaskDesc> tasks;
  rt::Runtime* rtp = &runtime;
  tasks.push_back(rt::TaskDesc{"parent", [rtp, &counter] {
                                 for (int i = 0; i < 100; ++i) {
                                   rtp->spawn("child", [&counter] {
                                     std::this_thread::sleep_for(
                                         std::chrono::microseconds(100));
                                     counter.fetch_add(1);
                                   });
                                 }
                               }});
  for (int i = 0; i < 7; ++i) {
    tasks.push_back(
        rt::TaskDesc{"plain", [&counter] { counter.fetch_add(1); }});
  }
  runtime.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 107);

  const BatchReport& r1 = runtime.last_batch_report();
  EXPECT_EQ(r1.tasks, 108u);  // 8 batch tasks + 100 spawned
  EXPECT_EQ(r1.spawns, 100u);
  // Reconciliation: every executed task was acquired exactly once.
  EXPECT_EQ(r1.acquires(), r1.tasks);
  EXPECT_GT(r1.local_steals + r1.cross_robs, 0u)
      << "the flooded deque must have been stolen from";

  // Batch 2 (planned, post-measurement): invariant must survive a
  // multi-group plan and cross-group robbing too.
  std::vector<rt::TaskDesc> batch2;
  for (int i = 0; i < 64; ++i) {
    batch2.push_back(rt::TaskDesc{"plain", [&counter] {
                                    volatile int x = 0;
                                    for (int k = 0; k < 5000; ++k) x += k;
                                    (void)x;
                                    counter.fetch_add(1);
                                  }});
  }
  runtime.run_batch(std::move(batch2));
  const BatchReport& r2 = runtime.last_batch_report();
  EXPECT_EQ(r2.tasks, 64u);
  EXPECT_EQ(r2.acquires(), r2.tasks);
  ASSERT_EQ(runtime.metrics().reports().size(), 2u);
  EXPECT_EQ(runtime.metrics().totals().tasks, 172u);

  if (!EventTracer::kCompiledIn) return;

  // Trace contents: task spans on worker tracks, steal + rung events,
  // controller phases on the control track.
  std::size_t task_spans = 0;
  bool saw_steal = false;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    const auto evs = tracer.events(w);
    expect_no_overlap(evs);
    for (const auto& ev : evs) {
      task_spans += ev.kind == EventKind::kTask;
      saw_steal = saw_steal || ev.kind == EventKind::kSteal ||
                  ev.kind == EventKind::kRob;
    }
  }
  EXPECT_EQ(task_spans, 172u);
  EXPECT_TRUE(saw_steal);

  const auto control = tracer.events(kWorkers);
  bool saw_rung = false, saw_prepare = false, saw_profile = false;
  for (const auto& ev : control) {
    saw_rung = saw_rung || ev.kind == EventKind::kRung;
    if (ev.kind == EventKind::kPhase) {
      saw_prepare = saw_prepare ||
                    ev.a == static_cast<std::uint32_t>(PhaseKind::kPrepare);
      saw_profile = saw_profile ||
                    ev.a == static_cast<std::uint32_t>(PhaseKind::kProfile);
    }
  }
  EXPECT_TRUE(saw_rung) << "per-batch DVFS rung snapshots missing";
  EXPECT_TRUE(saw_prepare);
  EXPECT_TRUE(saw_profile);
  // Nesting: actuation happens inside prepare_batch, the k-tuple search
  // inside the planning pipeline.
  expect_nested(control, PhaseKind::kActuate, PhaseKind::kPrepare);
  expect_nested(control, PhaseKind::kSearch, PhaseKind::kPlan);

  // And the export round-trips through the JSON parser.
  const JsonValue doc = parse_json(tracer.chrome_json());
  EXPECT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_GT(doc.at("traceEvents").array.size(), 172u);
}

TEST(RuntimeObservability, TracerNeedsWorkerPlusControlTracks) {
  EventTracer tracer(2);  // too few for 2 workers + control
  rt::RuntimeOptions opt;
  opt.workers = 2;
  opt.kind = rt::SchedulerKind::kCilk;
  opt.tracer = &tracer;
  EXPECT_THROW(rt::Runtime runtime(opt), std::invalid_argument);
}

// ------------------------------------------------------ sim integration

trace::TaskTrace tiny_trace(std::size_t batches, std::size_t tasks) {
  trace::TaskTrace tt;
  tt.name = "tiny";
  tt.class_names = {"a", "b"};
  for (std::size_t b = 0; b < batches; ++b) {
    trace::Batch batch;
    for (std::size_t i = 0; i < tasks; ++i) {
      batch.tasks.push_back(
          trace::TraceTask{i % 2, 1e-3 * static_cast<double>(1 + i % 3),
                           0.0, 0.0});
    }
    tt.batches.push_back(std::move(batch));
  }
  return tt;
}

TEST(SimObservability, MachineEmitsSimTimeTrace) {
  if (!EventTracer::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const auto tt = tiny_trace(3, 24);
  sim::SimOptions opt;
  opt.cores = 4;
  opt.fixed_adjuster_overhead_s = 10e-6;
  EventTracer tracer(opt.cores + 1, 1 << 16);
  opt.tracer = &tracer;
  sim::EewaPolicy policy(tt.class_names);
  const auto res = sim::simulate(tt, policy, opt);

  // One task span per executed task, timestamped in simulated time.
  std::size_t task_spans = 0;
  for (std::size_t c = 0; c < opt.cores; ++c) {
    const auto evs = tracer.events(c);
    expect_no_overlap(evs);
    for (const auto& ev : evs) {
      if (ev.kind == EventKind::kTask) {
        ++task_spans;
        EXPECT_LE(ev.ts_us + ev.dur_us, res.time_s * 1e6 + 1.0);
      }
    }
  }
  EXPECT_EQ(task_spans, 3u * 24u);

  // Control track: one batch span per batch, plan spans nested inside.
  const auto control = tracer.events(opt.cores);
  std::size_t batch_spans = 0;
  for (const auto& ev : control) {
    batch_spans += ev.kind == EventKind::kPhase &&
                   ev.a == static_cast<std::uint32_t>(PhaseKind::kBatch);
  }
  EXPECT_EQ(batch_spans, 3u);
  expect_nested(control, PhaseKind::kPlan, PhaseKind::kBatch);

  const JsonValue doc = parse_json(tracer.chrome_json());
  EXPECT_TRUE(doc.at("traceEvents").is_array());

  // A disabled tracer on the same run records nothing.
  EventTracer off(opt.cores + 1);
  off.set_enabled(false);
  sim::SimOptions opt2 = opt;
  opt2.tracer = &off;
  sim::EewaPolicy policy2(tt.class_names);
  sim::simulate(tt, policy2, opt2);
  EXPECT_EQ(off.event_count(), 0u);
}

// ------------------------------------ distribution fallback (bug fix)

TEST(DistributionTarget, FallsBackWhenGroupHasNoWorkers) {
  std::vector<std::vector<std::size_t>> gw = {{0, 1}, {}, {2}};
  std::vector<std::size_t> rr(gw.size(), 0);
  // Group 1 is empty: tasks reroute to the fastest non-empty group,
  // round-robin across its workers.
  EXPECT_EQ(rt::distribution_target(gw, rr, 1),
            (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(rt::distribution_target(gw, rr, 1),
            (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(rt::distribution_target(gw, rr, 2),
            (std::pair<std::size_t, std::size_t>{2, 2}));
  // Out-of-range group ids reroute the same way.
  EXPECT_EQ(rt::distribution_target(gw, rr, 99),
            (std::pair<std::size_t, std::size_t>{0, 0}));
  std::vector<std::vector<std::size_t>> empty = {{}, {}};
  std::vector<std::size_t> rr2(2, 0);
  EXPECT_THROW(rt::distribution_target(empty, rr2, 0), std::logic_error);
}

TEST(DistributionTarget, ReconciledLayoutWithOrphanGroupStillDistributes) {
  // A 6-core plan whose reconciliation groups cores {4, 5} alone; a
  // 4-worker runtime then sees that group with no workers — the exact
  // shape that used to hit `worker % 0`.
  const auto intended = core::uniform_plan(6, 2);
  const auto plan = core::reconcile_plan(intended, {0, 0, 1, 1, 2, 2});
  ASSERT_EQ(plan.layout.group_count(), 3u);
  constexpr std::size_t kWorkers = 4;
  std::vector<std::vector<std::size_t>> gw(plan.layout.group_count());
  for (std::size_t g = 0; g < plan.layout.group_count(); ++g) {
    for (std::size_t c : plan.layout.group(g).cores) {
      if (c < kWorkers) gw[g].push_back(c);
    }
  }
  ASSERT_TRUE(gw[2].empty());
  std::vector<std::size_t> rr(gw.size(), 0);
  for (int i = 0; i < 8; ++i) {
    const auto [g, w] = rt::distribution_target(gw, rr, 2);
    EXPECT_EQ(g, 0u);
    EXPECT_LT(w, kWorkers);
  }
}

}  // namespace
}  // namespace eewa::obs
