// Tests for the full compressors (BWC, bzip2-style, DMC, LZW) and the
// JPEG encoder: exact round trips for the lossless ones, PSNR and
// quality monotonicity for JPEG, compression-ratio sanity, and malformed
// input rejection.
#include <gtest/gtest.h>

#include "workloads/bwc.hpp"
#include "workloads/bzip2ish.hpp"
#include "workloads/container.hpp"
#include "workloads/data_gen.hpp"
#include "workloads/dmc.hpp"
#include "workloads/jpeg_enc.hpp"
#include "workloads/lzw.hpp"

namespace eewa::wl {
namespace {

using Bytes = std::vector<std::uint8_t>;

// ----------------------------------------------- lossless sweep fixture --

struct LosslessCase {
  const char* generator;
  std::size_t size;
  std::uint64_t seed;
};

class LosslessRoundTrip : public ::testing::TestWithParam<LosslessCase> {
 protected:
  Bytes input() const {
    const auto& p = GetParam();
    const std::string g = p.generator;
    if (g == "text") return markov_text(p.size, p.seed);
    if (g == "skewed") return skewed_bytes(p.size, p.seed);
    if (g == "random") return random_bytes(p.size, p.seed);
    if (g == "zeros") return Bytes(p.size, 0);
    if (g == "empty") return {};
    return {};
  }
};

TEST_P(LosslessRoundTrip, Bwc) {
  const auto data = input();
  EXPECT_EQ(bwc_decompress_block(bwc_compress_block(data)), data);
}

TEST_P(LosslessRoundTrip, Bzip2ish) {
  const auto data = input();
  EXPECT_EQ(bzip2ish_decompress_block(bzip2ish_compress_block(data)), data);
}

TEST_P(LosslessRoundTrip, Dmc) {
  const auto data = input();
  EXPECT_EQ(dmc_decompress_block(dmc_compress_block(data)), data);
}

TEST_P(LosslessRoundTrip, Lzw) {
  const auto data = input();
  EXPECT_EQ(lzw_decompress(lzw_compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LosslessRoundTrip,
    ::testing::Values(LosslessCase{"empty", 0, 0},
                      LosslessCase{"text", 1, 1},
                      LosslessCase{"text", 500, 2},
                      LosslessCase{"text", 8192, 3},
                      LosslessCase{"skewed", 3000, 4},
                      LosslessCase{"random", 2048, 5},
                      LosslessCase{"zeros", 4096, 6},
                      LosslessCase{"text", 65536, 7}),
    [](const auto& info) {
      return std::string(info.param.generator) + "_" +
             std::to_string(info.param.size);
    });

// ------------------------------------------------ compression behaviour --

TEST(Bzip2ish, CompressesTextWell) {
  // Our Markov corpus carries more entropy than real English (~4 bits
  // per byte), so expect a solid but not bzip2-on-prose ratio.
  const auto data = markov_text(32768, 11);
  const auto enc = bzip2ish_compress_block(data);
  EXPECT_LT(enc.size(), data.size() * 3 / 4);
}

TEST(Bwc, CompressesTextSomewhat) {
  const auto data = markov_text(32768, 12);
  EXPECT_LT(bwc_compress_block(data).size(), data.size() * 3 / 4);
}

TEST(Dmc, CompressesTextAndAdaptsModel) {
  const auto data = markov_text(16384, 13);
  const auto enc = dmc_compress_block(data);
  EXPECT_LT(enc.size(), data.size());
}

TEST(Dmc, ModelResetRoundTripsPastNodeCap) {
  // A tiny node cap forces several model resets mid-stream; encoder and
  // decoder must reset at identical bit positions.
  DmcOptions opt;
  opt.max_nodes = 512;
  const auto data = markov_text(20000, 14);
  EXPECT_EQ(dmc_decompress_block(dmc_compress_block(data, opt), opt), data);
}

TEST(Dmc, RandomDataDoesNotExplode) {
  const auto data = random_bytes(4096, 15);
  const auto enc = dmc_compress_block(data);
  EXPECT_LT(enc.size(), data.size() * 2);
  EXPECT_EQ(dmc_decompress_block(enc), data);
}

TEST(Dmc, TruncatedHeaderThrows) {
  EXPECT_THROW(dmc_decompress_block({1, 2}), std::invalid_argument);
}

TEST(Lzw, CompressesRepetitiveData) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) {
    const char* s = "abcabcabd";
    data.insert(data.end(), s, s + 9);
  }
  const auto enc = lzw_compress(data);
  EXPECT_LT(enc.size(), data.size() / 3);
  EXPECT_EQ(lzw_decompress(enc), data);
}

TEST(Lzw, DictionaryResetHandledOnHugeInput) {
  // > 64K distinct phrases forces a CLEAR + reset inside the stream.
  const auto data = random_bytes(300000, 16);
  EXPECT_EQ(lzw_decompress(lzw_compress(data)), data);
}

TEST(Lzw, MissingStopCodeThrows) {
  EXPECT_THROW(lzw_decompress({}), std::invalid_argument);
}

TEST(Bwc, TruncatedInputThrows) {
  EXPECT_THROW(bwc_decompress_block({0, 0}), std::invalid_argument);
  const auto enc = bwc_compress_block(markov_text(100, 17));
  Bytes cut(enc.begin(), enc.begin() + static_cast<long>(enc.size() / 2));
  EXPECT_THROW(bwc_decompress_block(cut), std::invalid_argument);
}

// ----------------------------------------------------------- container ----

class ContainerRoundTrip
    : public ::testing::TestWithParam<ContainerCodec> {};

TEST_P(ContainerRoundTrip, MultiBlockInput) {
  // Three and a half blocks at a 4 KiB block size.
  const auto data = markov_text(14000, 31);
  const auto packed = container_compress(data, GetParam(), 4096);
  EXPECT_EQ(container_decompress(packed), data);
}

TEST_P(ContainerRoundTrip, EmptyInput) {
  const Bytes empty;
  const auto packed = container_compress(empty, GetParam());
  EXPECT_EQ(container_decompress(packed), empty);
}

TEST_P(ContainerRoundTrip, ExactBlockMultiple) {
  const auto data = skewed_bytes(8192, 32);
  const auto packed = container_compress(data, GetParam(), 4096);
  EXPECT_EQ(container_decompress(packed), data);
}

INSTANTIATE_TEST_SUITE_P(Codecs, ContainerRoundTrip,
                         ::testing::Values(ContainerCodec::kBwc,
                                           ContainerCodec::kBzip2ish,
                                           ContainerCodec::kDmc,
                                           ContainerCodec::kLzw),
                         [](const auto& info) {
                           switch (info.param) {
                             case ContainerCodec::kBwc: return "bwc";
                             case ContainerCodec::kBzip2ish: return "bzip2";
                             case ContainerCodec::kDmc: return "dmc";
                             case ContainerCodec::kLzw: return "lzw";
                           }
                           return "unknown";
                         });

TEST(Container, RejectsMalformedInput) {
  EXPECT_THROW(container_decompress({1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(container_decompress({'E', 'E', 'W', 'C', 9, 0, 0, 0, 0}),
               std::invalid_argument);  // unknown codec
  auto packed =
      container_compress(markov_text(5000, 33), ContainerCodec::kLzw, 2048);
  packed.resize(packed.size() / 2);  // truncate a block
  EXPECT_THROW(container_decompress(packed), std::invalid_argument);
  EXPECT_THROW(
      container_compress({1, 2, 3}, ContainerCodec::kLzw, 0),
      std::invalid_argument);
}

TEST(Container, HeaderIdentifiesCodec) {
  const auto data = markov_text(1000, 34);
  const auto a = container_compress(data, ContainerCodec::kBwc);
  const auto b = container_compress(data, ContainerCodec::kDmc);
  EXPECT_EQ(a[4], 0);
  EXPECT_EQ(b[4], 2);
}

// ---------------------------------------------------------------- JPEG ----

Image test_image(std::size_t w = 64, std::size_t h = 48,
                 std::uint64_t seed = 20) {
  return Image{w, h, synthetic_image(w, h, seed)};
}

TEST(Jpeg, RoundTripPreservesDimensions) {
  const auto img = test_image();
  const auto dec = jpeg_decode(jpeg_encode(img));
  EXPECT_EQ(dec.width, img.width);
  EXPECT_EQ(dec.height, img.height);
  EXPECT_TRUE(dec.valid());
}

TEST(Jpeg, HighQualityGivesHighPsnr) {
  const auto img = test_image();
  const auto dec = jpeg_decode(jpeg_encode(img, JpegOptions{95}));
  EXPECT_GT(psnr(img, dec), 30.0);
}

TEST(Jpeg, QualityTradesSizeForPsnr) {
  const auto img = test_image(96, 96, 21);
  const auto hi = jpeg_encode(img, JpegOptions{90});
  const auto lo = jpeg_encode(img, JpegOptions{20});
  EXPECT_LT(lo.size(), hi.size());
  const double psnr_hi = psnr(img, jpeg_decode(hi));
  const double psnr_lo = psnr(img, jpeg_decode(lo));
  EXPECT_GT(psnr_hi, psnr_lo);
}

TEST(Jpeg, CompressesRealImageContent) {
  const auto img = test_image(128, 128, 22);
  const auto enc = jpeg_encode(img, JpegOptions{75});
  EXPECT_LT(enc.size(), img.rgb.size() / 2);
}

TEST(Jpeg, NonMultipleOf8DimensionsWork) {
  const auto img = test_image(33, 17, 23);
  const auto dec = jpeg_decode(jpeg_encode(img));
  EXPECT_EQ(dec.width, 33u);
  EXPECT_EQ(dec.height, 17u);
  EXPECT_GT(psnr(img, dec), 20.0);
}

TEST(Jpeg, TinyImage) {
  const auto img = test_image(8, 8, 24);
  EXPECT_GT(psnr(img, jpeg_decode(jpeg_encode(img))), 20.0);
}

TEST(Jpeg, RejectsInvalidInputs) {
  EXPECT_THROW(jpeg_encode(Image{}), std::invalid_argument);
  Image bad{10, 10, Bytes(5)};
  EXPECT_THROW(jpeg_encode(bad), std::invalid_argument);
  EXPECT_THROW(jpeg_decode({1, 2, 3}), std::invalid_argument);
}

TEST(Jpeg, PsnrIdentityIsMax) {
  const auto img = test_image(16, 16, 25);
  EXPECT_DOUBLE_EQ(psnr(img, img), 99.0);
  EXPECT_THROW(psnr(img, test_image(8, 8, 25)), std::invalid_argument);
}

TEST(Jpeg, RejectsAllocationBombHeaders) {
  // A header claiming absurd dimensions must throw, not allocate.
  Bytes bomb = {0x7F, 0xFF, 0xFF, 0xFF, 0x7F, 0xFF, 0xFF, 0xFF, 75};
  bomb.resize(64, 0);
  EXPECT_THROW(jpeg_decode(bomb), std::invalid_argument);
}

// ----------------------------------------------------- garbage fuzzing ----

// Every decoder must survive arbitrary input: either throw
// std::invalid_argument or produce some output — never crash, hang, or
// allocate absurd amounts.
class GarbageFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Bytes garbage() const {
    const auto seed = GetParam();
    auto data = random_bytes(64 + seed % 3000, seed);
    // Keep header-declared sizes small-ish so a "successful" parse
    // stays cheap; the dedicated bomb tests cover the huge-size paths.
    if (data.size() >= 4) {
      data[0] = 0;
      data[1] = 0;
    }
    return data;
  }
};

TEST_P(GarbageFuzz, BwcNeverCrashes) {
  try {
    (void)bwc_decompress_block(garbage());
  } catch (const std::invalid_argument&) {
  }
}

TEST_P(GarbageFuzz, Bzip2ishNeverCrashes) {
  try {
    (void)bzip2ish_decompress_block(garbage());
  } catch (const std::invalid_argument&) {
  }
}

TEST_P(GarbageFuzz, DmcNeverCrashes) {
  try {
    (void)dmc_decompress_block(garbage());
  } catch (const std::invalid_argument&) {
  }
}

TEST_P(GarbageFuzz, LzwNeverCrashes) {
  try {
    (void)lzw_decompress(garbage());
  } catch (const std::invalid_argument&) {
  }
}

TEST_P(GarbageFuzz, JpegNeverCrashes) {
  auto data = garbage();
  // Plant plausible small dimensions so decoding proceeds past the
  // header guard into the entropy sections.
  if (data.size() >= 9) {
    data[0] = data[4] = 0;
    data[1] = data[5] = 0;
    data[2] = data[6] = 0;
    data[3] = data[7] = 16;
  }
  try {
    (void)jpeg_decode(data);
  } catch (const std::invalid_argument&) {
  }
}

TEST_P(GarbageFuzz, ContainerNeverCrashes) {
  auto data = garbage();
  if (data.size() >= 9) {
    data[0] = 'E';
    data[1] = 'E';
    data[2] = 'W';
    data[3] = 'C';
    data[4] = static_cast<std::uint8_t>(GetParam() % 4);
    data[5] = data[6] = 0;  // keep the block count small
  }
  try {
    (void)container_decompress(data);
  } catch (const std::invalid_argument&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageFuzz,
                         ::testing::Range<std::uint64_t>(1000, 1012));

}  // namespace
}  // namespace eewa::wl
