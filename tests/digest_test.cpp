// Known-answer tests for MD5 (RFC 1321 §A.5) and SHA-1 (FIPS 180-1),
// plus incremental-update equivalence and multi-block coverage.
#include <gtest/gtest.h>

#include "workloads/md5.hpp"
#include "workloads/sha1.hpp"

namespace eewa::wl {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Md5, Rfc1321TestSuite) {
  EXPECT_EQ(md5_hex(bytes("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5_hex(bytes("a")), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5_hex(bytes("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5_hex(bytes("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5_hex(bytes("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(md5_hex(bytes("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstu"
                          "vwxyz0123456789")),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5_hex(bytes("1234567890123456789012345678901234567890123456"
                          "7890123456789012345678901234567890")),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const auto data = bytes("the quick brown fox jumps over the lazy dog");
  Md5 ctx;
  for (std::uint8_t b : data) ctx.update(&b, 1);
  EXPECT_EQ(ctx.digest(), md5(data));
}

TEST(Md5, MultiBlockMessage) {
  std::vector<std::uint8_t> data(1000, 'x');
  Md5 a;
  a.update(data.data(), 400);
  a.update(data.data() + 400, 600);
  EXPECT_EQ(a.digest(), md5(data));
}

TEST(Md5, ResetReusesContext) {
  Md5 ctx;
  ctx.update(bytes("junk"));
  (void)ctx.digest();
  ctx.reset();
  ctx.update(bytes("abc"));
  EXPECT_EQ(ctx.digest(), md5(bytes("abc")));
}

TEST(Md5, ExactBlockBoundaries) {
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 128u}) {
    const std::vector<std::uint8_t> data(n, 'b');
    Md5 split;
    split.update(data.data(), n / 2);
    split.update(data.data() + n / 2, n - n / 2);
    EXPECT_EQ(split.digest(), md5(data)) << "length " << n;
  }
}

TEST(Sha1, Fips180TestVectors) {
  EXPECT_EQ(sha1_hex(bytes("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex(bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1_hex(bytes("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  // One million 'a' (FIPS 180-1 third vector).
  const std::vector<std::uint8_t> million(1000000, 'a');
  EXPECT_EQ(sha1_hex(million), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const auto data = bytes("the quick brown fox jumps over the lazy dog");
  Sha1 ctx;
  for (std::uint8_t b : data) ctx.update(&b, 1);
  EXPECT_EQ(ctx.digest(), sha1(data));
}

TEST(Sha1, ExactBlockBoundaries) {
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 128u}) {
    const std::vector<std::uint8_t> data(n, 's');
    Sha1 split;
    split.update(data.data(), n / 3);
    split.update(data.data() + n / 3, n - n / 3);
    EXPECT_EQ(split.digest(), sha1(data)) << "length " << n;
  }
}

TEST(Sha1, ResetReusesContext) {
  Sha1 ctx;
  ctx.update(bytes("junk"));
  (void)ctx.digest();
  ctx.reset();
  ctx.update(bytes("abc"));
  EXPECT_EQ(ctx.digest(), sha1(bytes("abc")));
}

TEST(Digests, DifferentInputsDifferentDigests) {
  EXPECT_NE(md5(bytes("abc")), md5(bytes("abd")));
  EXPECT_NE(sha1(bytes("abc")), sha1(bytes("abd")));
}

}  // namespace
}  // namespace eewa::wl
