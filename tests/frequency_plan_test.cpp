// Tests for turning k-tuples into c-group layouts: core carving, class
// allocation, the leftover-core policies (Fig. 8's parked cores), and
// the uniform-F0 fallback.
#include <gtest/gtest.h>

#include "core/frequency_plan.hpp"

#include "util/rng.hpp"

namespace eewa::core {
namespace {

const dvfs::FrequencyLadder kLadder = dvfs::FrequencyLadder::opteron8380();

CCTable fig3() {
  std::vector<ClassProfile> classes = {{0, "TC0", 1, 4.0},
                                       {1, "TC1", 1, 3.0},
                                       {2, "TC2", 1, 2.0},
                                       {3, "TC3", 1, 1.0}};
  return CCTable::from_matrix(
      {{2, 3, 1, 1}, {4, 6, 2, 2}, {6, 9, 3, 3}, {8, 12, 4, 4}}, classes);
}

TEST(FrequencyPlan, Figure3LayoutUsesAllCores) {
  const auto sr = search_backtracking(fig3(), 16);
  const auto plan = make_frequency_plan(fig3(), sr, 16, kLadder, 4);
  ASSERT_TRUE(plan.planned);
  ASSERT_EQ(plan.layout.group_count(), 2u);
  EXPECT_EQ(plan.layout.group(0).freq_index, 1u);
  EXPECT_EQ(plan.layout.group(0).cores.size(), 10u);
  EXPECT_EQ(plan.layout.group(1).freq_index, 2u);
  EXPECT_EQ(plan.layout.group(1).cores.size(), 6u);
  EXPECT_EQ(plan.claimed_cores, 16u);
  // Heavy classes to the fast group, light to the slow group.
  EXPECT_EQ(plan.layout.group_of_class(0), 0u);
  EXPECT_EQ(plan.layout.group_of_class(1), 0u);
  EXPECT_EQ(plan.layout.group_of_class(2), 1u);
  EXPECT_EQ(plan.layout.group_of_class(3), 1u);
}

TEST(FrequencyPlan, LeftoversParkAtSlowestLadderRung) {
  // One class needing 5 F0 cores of 16 (the SHA-1 shape from Fig. 8).
  std::vector<ClassProfile> one = {{0, "sha1", 1, 5.0}};
  const auto cc = CCTable::from_matrix(
      {{5}, {6.9}, {9.6}, {15.6}}, one);
  SearchResult sr;
  sr.found = true;
  sr.tuple = {0};
  sr.cores_used = 5;
  const auto plan = make_frequency_plan(cc, sr, 16, kLadder, 1,
                                        LeftoverPolicy::kParkAtSlowest);
  ASSERT_TRUE(plan.planned);
  ASSERT_EQ(plan.layout.group_count(), 2u);
  EXPECT_EQ(plan.layout.group(0).freq_index, 0u);
  EXPECT_EQ(plan.layout.group(0).cores.size(), 5u);
  EXPECT_EQ(plan.layout.group(1).freq_index, kLadder.slowest_index());
  EXPECT_EQ(plan.layout.group(1).cores.size(), 11u);
  EXPECT_EQ(plan.claimed_cores, 5u);
  const auto per_rung = plan.layout.cores_per_rung(4);
  EXPECT_EQ(per_rung[0], 5u);
  EXPECT_EQ(per_rung[3], 11u);
}

TEST(FrequencyPlan, LeftoversCanJoinSlowestSelectedGroup) {
  std::vector<ClassProfile> one = {{0, "c", 1, 5.0}};
  const auto cc = CCTable::from_matrix({{5}, {7}, {10}, {16}}, one);
  SearchResult sr;
  sr.found = true;
  sr.tuple = {1};  // class at F1 needing 7 cores
  const auto plan = make_frequency_plan(cc, sr, 16, kLadder, 1,
                                        LeftoverPolicy::kJoinSlowest);
  ASSERT_TRUE(plan.planned);
  ASSERT_EQ(plan.layout.group_count(), 1u);
  EXPECT_EQ(plan.layout.group(0).freq_index, 1u);
  EXPECT_EQ(plan.layout.group(0).cores.size(), 16u);
}

TEST(FrequencyPlan, MergesLeftoversIntoExistingSlowestRungGroup) {
  // Tuple already uses the slowest rung: leftovers merge instead of
  // forming a second group at the same rung (layout would reject it).
  std::vector<ClassProfile> one = {{0, "c", 1, 1.0}};
  const auto cc = CCTable::from_matrix({{2}, {3}, {4}, {6}}, one);
  SearchResult sr;
  sr.found = true;
  sr.tuple = {3};
  const auto plan = make_frequency_plan(cc, sr, 16, kLadder, 1,
                                        LeftoverPolicy::kParkAtSlowest);
  ASSERT_EQ(plan.layout.group_count(), 1u);
  EXPECT_EQ(plan.layout.group(0).freq_index, 3u);
  EXPECT_EQ(plan.layout.group(0).cores.size(), 16u);
}

TEST(FrequencyPlan, FallbackWhenSearchFailed) {
  SearchResult sr;  // found = false
  const auto plan = make_frequency_plan(fig3(), sr, 16, kLadder, 4);
  EXPECT_FALSE(plan.planned);
  ASSERT_EQ(plan.layout.group_count(), 1u);
  EXPECT_EQ(plan.layout.group(0).freq_index, 0u);
  EXPECT_EQ(plan.layout.group(0).cores.size(), 16u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(plan.layout.group_of_class(k), 0u);
  }
}

TEST(FrequencyPlan, UniformPlanHelper) {
  const auto plan = uniform_plan(8, 3);
  EXPECT_FALSE(plan.planned);
  EXPECT_EQ(plan.layout.total_cores(), 8u);
  EXPECT_EQ(plan.layout.class_count(), 3u);
  EXPECT_EQ(plan.claimed_cores, 8u);
}

TEST(FrequencyPlan, UnseenClassesMapToFastestGroup) {
  const auto sr = search_backtracking(fig3(), 16);
  // Registry knows 6 classes; the CC table only covers ids 0..3.
  const auto plan = make_frequency_plan(fig3(), sr, 16, kLadder, 6);
  EXPECT_EQ(plan.layout.group_of_class(4), 0u);
  EXPECT_EQ(plan.layout.group_of_class(5), 0u);
}

TEST(FrequencyPlan, EveryCoreAssignedExactlyOnce) {
  const auto sr = search_backtracking(fig3(), 16);
  const auto plan = make_frequency_plan(fig3(), sr, 16, kLadder, 4);
  for (std::size_t c = 0; c < 16; ++c) {
    EXPECT_TRUE(plan.layout.core_assigned(c));
  }
}

// ---------------------------------------------- randomized plan sweep ----

class RandomizedPlan
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(RandomizedPlan, LayoutInvariantsHold) {
  const auto [cores, seed] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  // Random profile: 1-5 classes with descending mean workloads.
  const std::size_t k = 1 + rng.bounded(5);
  std::vector<ClassProfile> classes;
  double mean = rng.uniform(0.2, 1.0);
  for (std::size_t i = 0; i < k; ++i) {
    ClassProfile p;
    p.class_id = i;
    p.name = "c" + std::to_string(i);
    p.count = 1 + rng.bounded(40);
    p.mean_workload = mean;
    p.max_workload = mean * rng.uniform(1.0, 1.6);
    classes.push_back(p);
    mean *= rng.uniform(0.3, 0.95);
  }
  // Ideal time with enough slack that a tuple usually exists.
  double total_work = 0;
  for (const auto& p : classes) total_work += p.total_workload();
  const double T = std::max(classes[0].max_workload * 1.1,
                            total_work / (0.6 * static_cast<double>(cores)));
  const auto cc = CCTable::build(classes, kLadder, T);
  const auto sr = search_backtracking(cc, cores);
  const auto plan = make_frequency_plan(cc, sr, cores, kLadder, k);

  if (!sr.found) {
    EXPECT_FALSE(plan.planned);
    return;
  }
  ASSERT_TRUE(plan.planned);
  // Every core in exactly one group.
  std::size_t covered = 0;
  for (const auto& g : plan.layout.groups()) covered += g.cores.size();
  EXPECT_EQ(covered, cores);
  for (std::size_t c = 0; c < cores; ++c) {
    EXPECT_TRUE(plan.layout.core_assigned(c));
  }
  // Groups strictly faster-to-slower, every class mapped to a real group.
  for (std::size_t g = 1; g < plan.layout.group_count(); ++g) {
    EXPECT_GT(plan.layout.freq_index(g), plan.layout.freq_index(g - 1));
  }
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_LT(plan.layout.group_of_class(i), plan.layout.group_count());
  }
  // Heavier classes never mapped to slower groups than lighter ones.
  for (std::size_t i = 1; i < k; ++i) {
    EXPECT_LE(plan.layout.group_of_class(i - 1),
              plan.layout.group_of_class(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomizedPlan,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 9, 16, 32),
                       ::testing::Range(1, 9)),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FrequencyPlan, RejectsMismatchedInputs) {
  SearchResult sr;
  sr.found = true;
  sr.tuple = {0};  // arity 1 vs 4 columns
  EXPECT_THROW(make_frequency_plan(fig3(), sr, 16, kLadder, 4),
               std::invalid_argument);
}

TEST(FrequencyPlan, RejectsClassIdOutsideRegistry) {
  const auto sr = search_backtracking(fig3(), 16);
  EXPECT_THROW(make_frequency_plan(fig3(), sr, 16, kLadder, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace eewa::core
