// Tests for task-class bookkeeping: Eq. 1 workload normalization, the
// paper's online mean update TC(f, n+1, (n·w̄ + w)/(n+1)), and the
// descending-workload iteration profile that feeds the CC table.
#include <gtest/gtest.h>

#include "core/task_class.hpp"

namespace eewa::core {
namespace {

const dvfs::FrequencyLadder kLadder = dvfs::FrequencyLadder::opteron8380();

TEST(NormalizedWorkload, IdentityAtTopRung) {
  EXPECT_DOUBLE_EQ(normalized_workload(2.0, 0, kLadder), 2.0);
}

TEST(NormalizedWorkload, ScalesByFrequencyRatio) {
  // A CPU-bound task that takes 2.5 s at 0.8 GHz did 0.8 s of F0 work.
  EXPECT_NEAR(normalized_workload(2.5, 3, kLadder), 2.5 * 0.8 / 2.5, 1e-12);
  // Round trip: time at rung j = w * F0/Fj, normalizing recovers w.
  const double w = 1.7;
  const double t_at_j = w * kLadder.slowdown(2);
  EXPECT_NEAR(normalized_workload(t_at_j, 2, kLadder), w, 1e-12);
}

TEST(TaskClassRegistry, InternIsStableAndIdempotent) {
  TaskClassRegistry reg;
  const auto a = reg.intern("alpha");
  const auto b = reg.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.intern("alpha"), a);
  EXPECT_EQ(reg.id_of("beta"), b);
  EXPECT_TRUE(reg.contains("alpha"));
  EXPECT_FALSE(reg.contains("gamma"));
  EXPECT_THROW(reg.id_of("gamma"), std::out_of_range);
  EXPECT_EQ(reg.class_count(), 2u);
  EXPECT_EQ(reg.name(a), "alpha");
}

TEST(TaskClassRegistry, OnlineMeanMatchesPaperUpdate) {
  TaskClassRegistry reg;
  const auto id = reg.intern("f");
  reg.record(id, 2.0);
  EXPECT_DOUBLE_EQ(reg.mean_workload(id), 2.0);
  reg.record(id, 4.0);
  EXPECT_DOUBLE_EQ(reg.mean_workload(id), 3.0);
  reg.record(id, 9.0);
  EXPECT_DOUBLE_EQ(reg.mean_workload(id), 5.0);
  EXPECT_EQ(reg.total_count(id), 3u);
  EXPECT_EQ(reg.iteration_count(id), 3u);
}

TEST(TaskClassRegistry, MeanPersistsAcrossIterationsCountsReset) {
  TaskClassRegistry reg;
  const auto id = reg.intern("f");
  reg.record(id, 10.0);
  reg.begin_iteration();
  EXPECT_EQ(reg.iteration_count(id), 0u);
  EXPECT_EQ(reg.total_count(id), 1u);
  EXPECT_DOUBLE_EQ(reg.mean_workload(id), 10.0);
  reg.record(id, 20.0);
  EXPECT_EQ(reg.iteration_count(id), 1u);
  // Cumulative mean over both iterations: (10 + 20) / 2.
  EXPECT_DOUBLE_EQ(reg.mean_workload(id), 15.0);
}

TEST(TaskClassRegistry, RejectsNegativeWorkload) {
  TaskClassRegistry reg;
  const auto id = reg.intern("f");
  EXPECT_THROW(reg.record(id, -1.0), std::invalid_argument);
}

TEST(TaskClassRegistry, IterationProfileSortedByMeanDescending) {
  TaskClassRegistry reg;
  const auto light = reg.intern("light");
  const auto heavy = reg.intern("heavy");
  const auto medium = reg.intern("medium");
  for (int i = 0; i < 4; ++i) reg.record(light, 1.0);
  for (int i = 0; i < 2; ++i) reg.record(heavy, 10.0);
  for (int i = 0; i < 3; ++i) reg.record(medium, 5.0);
  const auto profile = reg.iteration_profile();
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0].class_id, heavy);
  EXPECT_EQ(profile[1].class_id, medium);
  EXPECT_EQ(profile[2].class_id, light);
  EXPECT_EQ(profile[0].count, 2u);
  EXPECT_DOUBLE_EQ(profile[0].total_workload(), 20.0);
}

TEST(TaskClassRegistry, ProfileExcludesIdleClasses) {
  TaskClassRegistry reg;
  const auto a = reg.intern("a");
  reg.intern("b");  // never recorded
  reg.record(a, 1.0);
  const auto profile = reg.iteration_profile();
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile[0].class_id, a);
}

TEST(TaskClassRegistry, ProfileTieBreaksDeterministically) {
  TaskClassRegistry reg;
  const auto a = reg.intern("a");
  const auto b = reg.intern("b");
  reg.record(b, 2.0);
  reg.record(a, 2.0);
  const auto profile = reg.iteration_profile();
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0].class_id, a);  // lower id wins ties
  EXPECT_EQ(profile[1].class_id, b);
}

TEST(ClassProfile, TotalWorkload) {
  const ClassProfile p{0, "f", 7, 3.0};
  EXPECT_DOUBLE_EQ(p.total_workload(), 21.0);
}

}  // namespace
}  // namespace eewa::core
